#!/usr/bin/env bash
# Static checks gate: the repo's own AST invariant checkers (`repro lint`)
# plus mypy over the typed island (see mypy.ini).  CI runs this before the
# test matrix; run it locally before pushing.
#
# Usage: scripts/lint.sh [extra `repro lint` args...]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m repro lint "$@"

# mypy is a dev dependency (requirements.txt); environments without it —
# e.g. a minimal runtime install — still get the invariant checkers above.
if python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy --config-file mypy.ini
else
    echo "mypy not installed; skipping type check (pip install -r requirements.txt)"
fi
