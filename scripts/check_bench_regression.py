#!/usr/bin/env python
"""Gate CI on the benchmark report staying on trajectory.

Compares a freshly generated bench report (``BENCH_LATEST.json``, written by
``scripts/bench.sh``) against the committed ``BENCH_PR<n>.json`` trajectory —
the highest-numbered report in the *git HEAD tree* (i.e. the report the
current PR itself committed; the working-tree copy is not trusted because the
fresh bench run overwrites it) — and fails when:

* any *deterministic* headline metric shared by both reports differs
  bitwise — the simulator is deterministic, so throughput / energy /
  goodput / latency figures of merit must reproduce exactly; a PR that
  intentionally changes serving results must commit a matching
  ``BENCH_PR<n>.json``, which then becomes the baseline this gate verifies;
* total wall-clock regresses by more than ``--wallclock-tolerance``
  (default 10%) against the committed report;
* the streaming-scale stage regresses directionally beyond the same
  tolerance: ``stream_requests_per_s`` below the committed floor, or
  ``stream_peak_rss_mb`` above the committed ceiling.

The reports must have been generated with the same ``num_requests`` —
comparing a 50-request CI run against a committed 150-request report would
silently compare different simulations, so that is an error, not a skip.

Usage::

    scripts/bench.sh                      # writes BENCH_PR<n>.json + BENCH_LATEST.json
    python scripts/check_bench_regression.py            # compare vs trajectory
    python scripts/check_bench_regression.py --fresh BENCH_LATEST.json \
        --baseline BENCH_PR4.json --wallclock-tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_BENCH_NAME = re.compile(r"^BENCH_PR(\d+)\.json$")

#: headline keys whose values are wall-clock independent (pure simulation
#: outputs) and therefore must reproduce bit for bit.  Matched as prefixes so
#: per-tenant variants (slo_goodput_interactive, ...) are covered too.
DETERMINISTIC_PREFIXES = (
    "average_speedup",
    "peak_speedup",
    "average_efficiency_gain",
    "peak_efficiency_gain",
    "open_loop_",
    "slo_",
    "fault_",
    "daemon_",
    "preempt_",
    "stream_sim_",
)

#: wall-clock-dependent streaming headline keys gated *directionally* with
#: the wall-clock tolerance instead of bitwise: throughput may only drop so
#: far, peak RSS may only grow so far.  (key, direction) where direction
#: "min" = fresh must stay above baseline*(1-tol), "max" = below
#: baseline*(1+tol).
DIRECTIONAL_KEYS = (
    ("stream_requests_per_s", "min"),
    ("stream_peak_rss_mb", "max"),
)


def _pick_latest(names) -> str | None:
    best: tuple[int, str] | None = None
    for name in names:
        match = _BENCH_NAME.match(name)
        if match is None:
            continue
        number = int(match.group(1))
        if best is None or number > best[0]:
            best = (number, name)
    return best[1] if best else None


def latest_committed_report(root: Path) -> tuple[str, dict] | None:
    """The *committed* BENCH_PR<n>.json with the highest PR number.

    Read from the git HEAD tree, not the working tree: ``scripts/bench.sh``
    writes its fresh report to the default ``BENCH_PR<n>.json`` name, which
    overwrites the checked-out baseline on disk — a working-tree glob would
    then compare the fresh report against itself and the gate could never
    fail.  Falls back to the filesystem (with a loud warning) only when git
    is unavailable.
    """
    try:
        names = subprocess.run(
            ["git", "-C", str(root), "ls-tree", "--name-only", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.split()
        name = _pick_latest(names)
        if name is None:
            return None
        content = subprocess.run(
            ["git", "-C", str(root), "show", f"HEAD:{name}"],
            capture_output=True, text=True, check=True,
        ).stdout
        return f"HEAD:{name}", json.loads(content)
    except (subprocess.CalledProcessError, FileNotFoundError, json.JSONDecodeError):
        print(
            "warning: could not read the committed baseline from git HEAD; "
            "falling back to the working tree, which the fresh bench run may "
            "have overwritten (a self-comparison cannot fail)"
        )
        name = _pick_latest(path.name for path in root.glob("BENCH_PR*.json"))
        if name is None:
            return None
        return name, json.loads((root / name).read_text())


def is_deterministic(key: str) -> bool:
    return any(key.startswith(prefix) for prefix in DETERMINISTIC_PREFIXES)


def compare(fresh: dict, baseline: dict, wallclock_tolerance: float) -> list[str]:
    """Return a list of human-readable failures (empty = gate passes)."""
    failures: list[str] = []
    if fresh.get("num_requests") != baseline.get("num_requests"):
        return [
            f"request-count mismatch: fresh ran {fresh.get('num_requests')} "
            f"requests, baseline {baseline.get('num_requests')} — the reports "
            "describe different simulations; rerun the bench with "
            f"REPRO_BENCH_REQUESTS={baseline.get('num_requests')}"
        ]

    fresh_stream = fresh.get("meta", {}).get("stream_requests")
    baseline_stream = baseline.get("meta", {}).get("stream_requests")
    if baseline_stream is not None and fresh_stream != baseline_stream:
        return [
            f"stream-request-count mismatch: fresh ran {fresh_stream} "
            f"streaming requests, baseline {baseline_stream} — rerun with "
            f"REPRO_BENCH_STREAM_REQUESTS={baseline_stream}"
        ]

    fresh_headline = fresh.get("headline", {})
    baseline_headline = baseline.get("headline", {})
    shared = sorted(set(fresh_headline) & set(baseline_headline))
    if not shared:
        failures.append("no shared headline metrics between the reports")
    # Metrics the fresh run emits that the committed trajectory has never
    # recorded cannot be gated bitwise — warn instead of silently ignoring
    # them, so a PR that adds a deterministic metric without committing a new
    # BENCH_PR<n>.json is visible in the CI log.
    for key in sorted(set(fresh_headline) - set(baseline_headline)):
        if is_deterministic(key):
            print(
                f"warning: headline.{key} = {fresh_headline[key]!r} is "
                "deterministic but absent from the committed baseline; "
                "skipping it (commit a new BENCH_PR<n>.json to start gating "
                "on it)"
            )
    for key in shared:
        if not is_deterministic(key):
            continue
        if fresh_headline[key] != baseline_headline[key]:
            failures.append(
                f"headline.{key}: {fresh_headline[key]!r} != committed "
                f"{baseline_headline[key]!r} (deterministic metric must "
                "reproduce bitwise; commit a new BENCH_PR<n>.json if the "
                "change is intentional)"
            )

    for key, direction in DIRECTIONAL_KEYS:
        if key not in fresh_headline or key not in baseline_headline:
            continue
        fresh_value = float(fresh_headline[key])
        baseline_value = float(baseline_headline[key])
        if direction == "min":
            floor = baseline_value * (1.0 - wallclock_tolerance)
            if fresh_value < floor:
                failures.append(
                    f"headline.{key}: {fresh_value:.3f} fell below "
                    f"{floor:.3f} (committed {baseline_value:.3f} - "
                    f"{wallclock_tolerance:.0%})"
                )
        else:
            ceiling = baseline_value * (1.0 + wallclock_tolerance)
            if fresh_value > ceiling:
                failures.append(
                    f"headline.{key}: {fresh_value:.3f} exceeded "
                    f"{ceiling:.3f} (committed {baseline_value:.3f} + "
                    f"{wallclock_tolerance:.0%})"
                )

    fresh_total = float(fresh.get("total_s", 0.0))
    baseline_total = float(baseline.get("total_s", 0.0))
    if baseline_total > 0 and fresh_total > baseline_total * (1.0 + wallclock_tolerance):
        failures.append(
            f"wall-clock regression: {fresh_total:.3f}s vs committed "
            f"{baseline_total:.3f}s (> {wallclock_tolerance:.0%} over)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", default=str(REPO_ROOT / "BENCH_LATEST.json"),
        help="freshly generated report (default: BENCH_LATEST.json)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="committed report to compare against "
             "(default: highest-numbered BENCH_PR<n>.json)",
    )
    parser.add_argument(
        "--wallclock-tolerance", type=float, default=0.10,
        help="allowed relative wall-clock increase (default 0.10 = 10%%)",
    )
    args = parser.parse_args(argv)

    fresh_path = Path(args.fresh)
    if not fresh_path.exists():
        print(f"error: fresh report {fresh_path} not found (run scripts/bench.sh)")
        return 2
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: baseline report {baseline_path} not found")
            return 2
        baseline_name, baseline = baseline_path.name, json.loads(
            baseline_path.read_text()
        )
    else:
        committed = latest_committed_report(REPO_ROOT)
        if committed is None:
            print("no committed BENCH_PR*.json trajectory yet; nothing to gate on")
            return 0
        baseline_name, baseline = committed

    fresh = json.loads(fresh_path.read_text())
    failures = compare(fresh, baseline, args.wallclock_tolerance)
    if failures:
        print(f"bench regression gate FAILED ({fresh_path.name} vs {baseline_name}):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"bench regression gate passed: {fresh_path.name} matches "
        f"{baseline_name} (wall-clock {float(fresh.get('total_s', 0.0)):.3f}s "
        f"vs {float(baseline.get('total_s', 0.0)):.3f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
