#!/usr/bin/env bash
# Run the serving-simulator benchmark and write BENCH_PR<n>.json at the repo
# root, plus a stable BENCH_LATEST.json copy so CI artifacts and the
# regression gate never chase the per-PR file name.  The stages build every
# system through the unified DeploymentSpec API, so the report doubles as a
# smoke test that the serve path has not regressed.
#
# Usage: scripts/bench.sh [extra `repro bench` args...]
#   REPRO_BENCH_REQUESTS  requests per workload (default 150; the paper uses 1000)
#   REPRO_BENCH_STREAM_REQUESTS  requests for the streaming-scale stage
#                         (default 20000; the headline run uses 1000000)
#   REPRO_BENCH_OUTPUT    report path (default BENCH_PR10.json, the current PR)
#   REPRO_SWEEP_PROCS     process-pool workers for the sweep stages (default: CPU count)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
output="${REPRO_BENCH_OUTPUT:-BENCH_PR10.json}"
python -m repro bench \
    --requests "${REPRO_BENCH_REQUESTS:-150}" \
    --output "$output" \
    "$@"
cp -f "$output" BENCH_LATEST.json
echo "copied $output -> BENCH_LATEST.json"
