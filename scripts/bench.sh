#!/usr/bin/env bash
# Run the serving-simulator benchmark and write BENCH_PR2.json at the repo root.
# The stages now include one open-loop (arrival-time-driven) serving run.
#
# Usage: scripts/bench.sh [extra `repro bench` args...]
#   REPRO_BENCH_REQUESTS  requests per workload (default 150; the paper uses 1000)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec python -m repro bench \
    --requests "${REPRO_BENCH_REQUESTS:-150}" \
    --output BENCH_PR2.json \
    "$@"
