"""Tests for the Murphy yield model and defect sampling."""

import pytest

from repro.hardware.config import WaferConfig
from repro.hardware.yieldmodel import (
    expected_defective_cores,
    murphy_yield,
    sample_defect_map,
)


class TestMurphyYield:
    def test_zero_defect_density_perfect_yield(self):
        assert murphy_yield(2.97, 0.0) == 1.0

    def test_zero_area_perfect_yield(self):
        assert murphy_yield(0.0, 0.09) == 1.0

    def test_paper_core_yield_is_high(self):
        # 2.97 mm^2 at 0.09 defects/cm^2 -> ~99.7% per-core yield.
        yield_value = murphy_yield(2.97, 0.09)
        assert 0.99 < yield_value < 1.0

    def test_yield_decreases_with_area(self):
        assert murphy_yield(10.0, 0.09) < murphy_yield(1.0, 0.09)

    def test_yield_decreases_with_defect_density(self):
        assert murphy_yield(2.97, 0.5) < murphy_yield(2.97, 0.05)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            murphy_yield(-1.0, 0.09)
        with pytest.raises(ValueError):
            murphy_yield(1.0, -0.09)


class TestDefectSampling:
    def test_deterministic_for_seed(self):
        config = WaferConfig()
        a = sample_defect_map(config, seed=42)
        b = sample_defect_map(config, seed=42)
        assert a.defective_cores == b.defective_cores

    def test_different_seeds_differ(self):
        config = WaferConfig()
        a = sample_defect_map(config, seed=1)
        b = sample_defect_map(config, seed=2)
        assert a.defective_cores != b.defective_cores

    def test_defect_count_near_expectation(self):
        config = WaferConfig()
        defects = sample_defect_map(config, seed=0)
        expected = expected_defective_cores(config)
        assert 0 <= len(defects.defective_cores) <= 5 * max(expected, 10)

    def test_healthy_cores_accounting(self):
        config = WaferConfig()
        defects = sample_defect_map(config, seed=0)
        assert defects.healthy_cores + len(defects.defective_cores) == config.cores_per_wafer
        assert 0.0 < defects.observed_yield <= 1.0

    def test_is_defective_lookup(self):
        config = WaferConfig()
        defects = sample_defect_map(config, seed=3)
        for core in list(defects.defective_cores)[:5]:
            assert defects.is_defective(core)

    def test_expected_defective_cores_positive(self):
        assert expected_defective_cores(WaferConfig()) > 0
