"""Runtime fault injection and graceful overload shedding.

Covers the fault-plan data model (parse / dict round trips / validation), the
injector's engine-level semantics (determinism, KV recompute, admission
stalls, capability checks against the KV policy), the system-level path where
all four fault kinds -- including weight-core replacement chains -- flow
through the recovery model, and the overload shedder (deadline-aware early
rejection must *raise* goodput past saturation, and all knobs default off).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.engine import PipelineConfig
from repro.pipeline.tgp import TokenGrainedPipeline
from repro.sim.faults import FaultEvent, FaultPlan, make_fault_plan
from repro.workload.distributions import UniformLengthDistribution
from repro.workload.generator import TraceGenerator, WorkloadSpec
from repro.workload.requests import SLOTarget

from .conftest import make_trace
from .test_engine_equivalence import assert_bitwise_equal, build_engine, mixed_trace


class TestFaultPlanDataModel:
    def test_parse_compact_syntax(self):
        plan = FaultPlan.parse("kv_core@0.5,stall@1.0:0:0.25,kv_block@0.75:3")
        assert [event.kind for event in plan.events] == ["kv_core", "kv_block", "stall"]
        assert plan.events[2].duration_s == 0.25
        assert plan.events[1].target == 3

    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time_s=2.0, kind="stall", duration_s=0.1),
                FaultEvent(time_s=1.0, kind="kv_block"),
            )
        )
        assert [event.time_s for event in plan.events] == [1.0, 2.0]

    def test_dict_round_trip(self):
        plan = FaultPlan.parse("weight_core@0.25:1,stall@0.5:0:0.125")
        restored = FaultPlan.from_dict(json.loads(json.dumps(plan.as_dict())))
        assert restored == plan

    @pytest.mark.parametrize(
        "text",
        ["nope@0.5", "kv_core@-1.0", "kv_core", "kv_core@x", "stall@1.0:0:-2"],
    )
    def test_malformed_plans_rejected(self, text):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(text)

    def test_make_fault_plan_shape(self):
        plan = make_fault_plan(2.0, 2.0, kinds=("kv_block", "stall"))
        assert len(plan) == 4
        assert [event.time_s for event in plan.events] == [0.5, 1.0, 1.5, 2.0]
        assert [event.kind for event in plan.events] == [
            "kv_block", "stall", "kv_block", "stall",
        ]
        # Targets walk forward so successive events hit different cores.
        assert [event.target for event in plan.events] == [0, 1, 2, 3]
        assert make_fault_plan(0.0, 1.0) == FaultPlan()


#: undersized cache so every KV core holds blocks and any kv_block hit
#: actually destroys resident state
PRESSURE = dict(blocks_per_core=2, kv_cores=24, chunk=64)


def pressure_trace():
    return make_trace(num_requests=6, prefill=300, decode=64)


class TestEngineFaultInjection:
    def _run(self, tiny_arch, small_wafer_config, plan, method="run"):
        engine = build_engine(
            TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic", **PRESSURE
        )
        return getattr(engine, method)(pressure_trace(), fault_plan=plan)

    def test_no_plan_is_bitwise_noop(self, tiny_arch, small_wafer_config):
        """An empty plan serves identically to no plan at all."""
        baseline = self._run(tiny_arch, small_wafer_config, None)
        empty = self._run(tiny_arch, small_wafer_config, FaultPlan())
        assert_bitwise_equal(baseline, empty)
        assert baseline.faults is None

    def test_kv_block_loss_forces_recompute(self, tiny_arch, small_wafer_config):
        plan = FaultPlan.parse("kv_block@1e-06")
        result = self._run(tiny_arch, small_wafer_config, plan)
        assert result.faults is not None
        assert result.faults.injected == 1
        assert result.faults.kv_block_losses == 1
        assert result.faults.recovered_sequences > 0
        assert result.faults.recompute_tokens > 0
        # Capacity is untouched: a transient block loss fails no core, so the
        # run still completes every request.
        assert result.ttft.count == 6

    def test_stall_freezes_admission(self, tiny_arch, small_wafer_config):
        plan = FaultPlan.parse("stall@1e-06:0:0.05")
        result = self._run(tiny_arch, small_wafer_config, plan)
        assert result.faults.admission_stalls == 1
        assert result.faults.stall_time_s == 0.05

    def test_injection_is_deterministic(self, tiny_arch, small_wafer_config):
        plan = FaultPlan.parse("kv_block@1e-06,kv_core@0.0001,stall@0.0002:0:0.01")
        first = self._run(tiny_arch, small_wafer_config, plan)
        second = self._run(tiny_arch, small_wafer_config, plan)
        assert_bitwise_equal(first, second)
        assert first.faults.as_dict() == second.faults.as_dict()

    def test_fast_and_scalar_paths_agree(self, tiny_arch, small_wafer_config):
        plan = FaultPlan.parse("kv_block@1e-06,stall@0.0001:0:0.01")
        fast = self._run(tiny_arch, small_wafer_config, plan, method="run")
        scalar = self._run(tiny_arch, small_wafer_config, plan, method="run_scalar")
        assert_bitwise_equal(fast, scalar)
        assert fast.faults.as_dict() == scalar.faults.as_dict()

    def test_static_kv_rejects_core_faults(self, tiny_arch, small_wafer_config):
        engine = build_engine(
            TokenGrainedPipeline, tiny_arch, small_wafer_config, "static"
        )
        with pytest.raises(ConfigurationError):
            engine.run(mixed_trace(), fault_plan=FaultPlan.parse("kv_core@0.1"))

    def test_weight_core_needs_recovery_hook(self, tiny_arch, small_wafer_config):
        """A bare engine has no remapping model, so weight faults are refused."""
        engine = build_engine(
            TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic"
        )
        with pytest.raises(ConfigurationError):
            engine.run(mixed_trace(), fault_plan=FaultPlan.parse("weight_core@0.1"))


class TestSystemFaultInjection:
    """All four fault kinds through the built system's recovery model."""

    PLAN = "weight_core@0.0001,kv_core@0.0002,kv_block@0.0003,stall@0.0004:0:0.001"

    def _serve(self, small_wafer_config, tiny_arch, plan=None, **kwargs):
        from repro.core.system import OuroborosSystem
        from repro.sim.engine import OuroborosSystemConfig

        config = OuroborosSystemConfig(
            wafer=small_wafer_config,
            anneal_iterations=0,
            model_defects=False,
            pipeline=PipelineConfig(
                chunk_tokens=16, context_quantum=16, max_active_sequences=4
            ),
        )
        system = OuroborosSystem(tiny_arch, config, auto_scale_wafers=False)
        trace = make_trace(num_requests=16, prefill=32, decode=16)
        return system.serve(
            trace,
            fault_plan=FaultPlan.parse(plan) if plan else None,
            **kwargs,
        )

    def test_all_kinds_inject_and_recover(self, small_wafer_config, tiny_arch):
        result = self._serve(small_wafer_config, tiny_arch, plan=self.PLAN)
        stats = result.faults
        assert stats.injected == 4
        assert stats.weight_core_failures == 1
        assert stats.kv_core_failures == 1
        assert stats.kv_block_losses == 1
        assert stats.admission_stalls == 1
        assert stats.recovery_latency_s > 0  # the replacement chain cost time
        baseline = self._serve(small_wafer_config, tiny_arch)
        assert result.total_time_s > baseline.total_time_s

    def test_deterministic_across_runs(self, small_wafer_config, tiny_arch):
        first = self._serve(small_wafer_config, tiny_arch, plan=self.PLAN)
        second = self._serve(small_wafer_config, tiny_arch, plan=self.PLAN)
        assert_bitwise_equal(first, second)
        assert first.faults.as_dict() == second.faults.as_dict()

    def test_resume_mid_fault_plan_is_bitwise(self, small_wafer_config, tiny_arch):
        """Checkpointing between fault events replays the rest on resume."""
        from repro.pipeline.checkpoint import EngineCheckpoint

        baseline = self._serve(small_wafer_config, tiny_arch, plan=self.PLAN)
        checkpoint = self._serve(
            small_wafer_config, tiny_arch, plan=self.PLAN, suspend_at_epoch=3
        )
        assert isinstance(checkpoint, EngineCheckpoint)
        restored = EngineCheckpoint.from_dict(
            json.loads(json.dumps(checkpoint.as_dict()))
        )
        resumed = self._serve(
            small_wafer_config, tiny_arch, plan=self.PLAN, resume_from=restored
        )
        assert_bitwise_equal(baseline, resumed)
        assert baseline.faults.as_dict() == resumed.faults.as_dict()


class TestOverloadShedding:
    SLO = SLOTarget(ttft_s=0.002, latency_s=1.0, goodput_target=0.95)

    def _overload_trace(self, rate_per_s=8250.0):
        spec = WorkloadSpec(
            name="overload",
            distribution=UniformLengthDistribution(
                prefill_low=32, prefill_high=96, decode_low=4, decode_high=32
            ),
            num_requests=120,
            seed=3,
            arrival_rate_per_s=rate_per_s,
        )
        trace = TraceGenerator(spec).generate()
        trace.slo = self.SLO
        return trace

    def _engine(self, tiny_arch, small_wafer_config, **shed):
        from repro.kvcache.manager import DistributedKVCacheManager
        from repro.pipeline.stages import TokenCostModel

        config = PipelineConfig(
            chunk_tokens=32, context_quantum=32, max_active_sequences=2, **shed
        )
        kv_manager = DistributedKVCacheManager(
            tiny_arch, kv_core_ids=list(range(48)), blocks_per_core=256
        )
        cost_model = TokenCostModel(arch=tiny_arch, wafer_config=small_wafer_config)
        return TokenGrainedPipeline(tiny_arch, cost_model, kv_manager, config=config)

    def test_deadline_shedding_raises_goodput_past_saturation(
        self, tiny_arch, small_wafer_config
    ):
        no_shed = self._engine(tiny_arch, small_wafer_config).run(
            self._overload_trace()
        )
        shed = self._engine(
            tiny_arch, small_wafer_config, shed_deadline=True, shed_headroom_s=0.0008
        ).run(self._overload_trace())
        assert shed.shed_requests > 0
        assert no_shed.shed_requests == 0
        # The whole point: dropping hopeless requests early frees the wafer
        # for requests that can still meet their deadline.
        assert shed.goodput > no_shed.goodput
        # Shed requests count against goodput -- the denominator includes them.
        assert shed.goodput < 1.0

    def test_shed_knobs_default_off_bitwise(self, tiny_arch, small_wafer_config):
        """Explicitly-disabled shedding reproduces the default engine exactly."""
        default = self._engine(tiny_arch, small_wafer_config).run(
            self._overload_trace()
        )
        explicit = self._engine(
            tiny_arch,
            small_wafer_config,
            shed_deadline=False,
            shed_headroom_s=0.0,
            max_queue_depth=None,
            shed_retries=0,
            shed_backoff_s=0.0,
        ).run(self._overload_trace())
        assert_bitwise_equal(default, explicit)
        assert default.shed_requests == explicit.shed_requests == 0

    def test_depth_bound_with_retries(self, tiny_arch, small_wafer_config):
        """A bounded queue with backoff sheds without deadlocking admission."""
        result = self._engine(
            tiny_arch,
            small_wafer_config,
            shed_deadline=True,
            shed_headroom_s=0.0008,
            max_queue_depth=4,
            shed_retries=2,
            shed_backoff_s=0.001,
        ).run(self._overload_trace())
        assert result.shed_requests > 0
        # Every request was either served or accounted as shed.
        served = result.ttft.count
        assert served + result.shed_requests == 120

    def test_fast_and_scalar_agree_with_shedding(self, tiny_arch, small_wafer_config):
        fast = self._engine(
            tiny_arch, small_wafer_config, shed_deadline=True, shed_headroom_s=0.0008
        ).run(self._overload_trace())
        scalar = self._engine(
            tiny_arch, small_wafer_config, shed_deadline=True, shed_headroom_s=0.0008
        ).run_scalar(self._overload_trace())
        assert_bitwise_equal(fast, scalar)
        assert fast.shed_requests == scalar.shed_requests


class TestCLIErrorSurface:
    """ReproError subclasses surface as one-line errors with exit code 2."""

    def test_malformed_fault_plan_exits_2(self, capsys):
        from repro.cli import main

        code = main(["serve", "llama-13b", "--fault-plan", "bogus@0.5"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "bogus" in captured.err
        assert "Traceback" not in captured.err

    def test_faults_with_baselines_exits_2(self, capsys):
        from repro.cli import main

        code = main(
            ["serve", "llama-13b", "--baselines", "--fault-plan", "kv_block@0.5"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err
