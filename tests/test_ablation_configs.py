"""Tests for the ablation configuration helpers and the energy accountant."""

import pytest

from repro.baselines.multi_die import ABLATION_STEPS, ablation_config, ablation_system
from repro.hardware.config import CrossbarConfig
from repro.hardware.energy import EnergyModel
from repro.results import EnergyBreakdown
from repro.sim.accounting import EnergyAccountant
from repro.sim.engine import KVPolicy, MappingStrategy, PipelineMode


class TestAblationConfigs:
    def test_step_order(self):
        assert ABLATION_STEPS[0] == "Baseline"
        assert ABLATION_STEPS[-1] == "+KV Cache"
        assert len(ABLATION_STEPS) == 6

    def test_unknown_step_rejected(self):
        with pytest.raises(ValueError):
            ablation_config("+Everything")

    def test_baseline_strips_all_features(self):
        config = ablation_config("Baseline")
        assert not config.wafer_integration
        assert not config.cim_enabled
        assert config.pipeline_mode is PipelineMode.SEQUENCE_GRAINED
        assert config.mapping_strategy is MappingStrategy.NAIVE
        assert config.kv_policy is KVPolicy.STATIC

    def test_final_step_enables_everything(self):
        config = ablation_config("+KV Cache")
        assert config.wafer_integration
        assert config.cim_enabled
        assert config.pipeline_mode is PipelineMode.TOKEN_GRAINED
        assert config.mapping_strategy is MappingStrategy.OPTIMIZED
        assert config.kv_policy is KVPolicy.DYNAMIC

    def test_steps_are_cumulative(self):
        enabled_counts = []
        for step in ABLATION_STEPS:
            config = ablation_config(step)
            enabled = sum(
                [
                    config.wafer_integration,
                    config.cim_enabled,
                    config.pipeline_mode is PipelineMode.TOKEN_GRAINED,
                    config.mapping_strategy is MappingStrategy.OPTIMIZED,
                    config.kv_policy is KVPolicy.DYNAMIC,
                ]
            )
            enabled_counts.append(enabled)
        assert enabled_counts == [0, 1, 2, 3, 4, 5]

    def test_ablation_system_constructor(self, tiny_arch):
        system = ablation_system(tiny_arch, "+CIM")
        assert system.config.cim_enabled
        assert system.config.pipeline_mode is PipelineMode.SEQUENCE_GRAINED


class TestEnergyAccountant:
    def test_cim_macs(self):
        accountant = EnergyAccountant(EnergyModel())
        accountant.add_cim_macs(1_000_000, CrossbarConfig())
        assert accountant.breakdown.compute_j > 0

    def test_categories_routed_correctly(self):
        accountant = EnergyAccountant(EnergyModel())
        accountant.add_sram_read(1024)
        accountant.add_sram_write(1024)
        accountant.add_hbm_access(1024)
        accountant.add_nvlink_traffic(1024)
        accountant.add_noc_traffic(1024, hops=2)
        accountant.add_sfu_elements(100)
        accountant.add_digital_macs(100)
        snapshot = accountant.snapshot()
        assert snapshot.on_chip_memory_j > 0
        assert snapshot.off_chip_memory_j > 0
        assert snapshot.communication_j > 0
        assert snapshot.compute_j > 0

    def test_snapshot_is_a_copy(self):
        accountant = EnergyAccountant(EnergyModel())
        snapshot = accountant.snapshot()
        accountant.add_dram_access(1024)
        assert snapshot.off_chip_memory_j == 0.0

    def test_optical_traffic(self):
        accountant = EnergyAccountant(EnergyModel())
        accountant.add_optical_traffic(1024)
        assert accountant.breakdown.communication_j > 0

    def test_preexisting_breakdown(self):
        accountant = EnergyAccountant(EnergyModel(), breakdown=EnergyBreakdown(compute_j=1.0))
        assert accountant.snapshot().compute_j == 1.0
