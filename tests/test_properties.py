"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hardware.config import CrossbarConfig
from repro.hardware.crossbar import effective_sram_ratio
from repro.hardware.htree import LeafAssignment, assignment_cost
from repro.hardware.yieldmodel import murphy_yield
from repro.kvcache.blocks import FreeBlockTable, tokens_per_block
from repro.kvcache.manager import DistributedKVCacheManager
from repro.models.architectures import ModelArch
from repro.results import EnergyBreakdown
from repro.workload.distributions import WikiTextLikeDistribution
from repro.workload.requests import Request, Sequence

# ---------------------------------------------------------------------------
# Hardware invariants
# ---------------------------------------------------------------------------


@given(exponent=st.integers(min_value=2, max_value=8))
def test_crossbar_gemv_cycles_inverse_in_activation_ratio(exponent):
    ratio = 1.0 / (2 ** exponent)
    config = CrossbarConfig(row_activation_ratio=ratio)
    assert config.gemv_cycles == config.activation_bits * math.ceil(
        config.rows / config.rows_active_per_cycle
    )
    # MACs per cycle times cycles always covers the whole array.
    assert config.macs_per_cycle * config.gemv_cycles == config.rows * config.weight_columns


@given(exponent=st.integers(min_value=0, max_value=10))
def test_effective_sram_ratio_monotone(exponent):
    ratio = 1.0 / (2 ** exponent)
    finer = ratio / 2
    assert effective_sram_ratio(finer) >= effective_sram_ratio(ratio)


@given(
    area=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    density=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)
def test_murphy_yield_bounded(area, density):
    value = murphy_yield(area, density)
    assert 0.0 < value <= 1.0


@given(
    head_dim=st.integers(min_value=1, max_value=1024),
    element_bytes=st.integers(min_value=1, max_value=4),
)
def test_tokens_per_block_positive(head_dim, element_bytes):
    assert tokens_per_block(head_dim, element_bytes) >= 1


# ---------------------------------------------------------------------------
# H-tree invariants
# ---------------------------------------------------------------------------


@given(
    parts=st.integers(min_value=1, max_value=4),
    per_part=st.sampled_from([1, 2, 4]),
    data=st.data(),
)
def test_htree_node_count_invariant(parts, per_part, data):
    leaves = parts * per_part
    assume(leaves & (leaves - 1) == 0)
    slices = [(i, o) for o in range(parts) for i in range(per_part)]
    permutation = data.draw(st.permutations(slices))
    cost = assignment_cost(LeafAssignment(slices=list(permutation)))
    # A binary tree over N leaves has exactly N-1 internal nodes.
    assert cost.concat_nodes + cost.reduction_nodes == leaves - 1
    assert cost.weighted_concat_depth >= cost.concat_nodes


@given(
    parts=st.integers(min_value=2, max_value=4),
    per_part=st.sampled_from([2, 4]),
    data=st.data(),
)
def test_htree_grouped_layout_is_lower_bound(parts, per_part, data):
    leaves = parts * per_part
    assume(leaves & (leaves - 1) == 0)
    slices = [(i, o) for o in range(parts) for i in range(per_part)]
    grouped_cost = assignment_cost(LeafAssignment(slices=slices))
    permutation = data.draw(st.permutations(slices))
    shuffled_cost = assignment_cost(LeafAssignment(slices=list(permutation)))
    assert grouped_cost.weighted_concat_depth <= shuffled_cost.weighted_concat_depth


# ---------------------------------------------------------------------------
# Free-block table invariants
# ---------------------------------------------------------------------------


@given(ops=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 200)), max_size=40))
def test_free_block_table_conservation(ops):
    table = FreeBlockTable(num_blocks=8, rows_per_block=128)
    allocated: list[int] = []
    for owner, rows in ops:
        if table.free_blocks > 0:
            index = table.allocate(owner)
            table.append_rows(index, rows)
            allocated.append(index)
        elif allocated:
            table.release(allocated.pop())
        assert table.free_blocks + table.used_blocks == table.num_blocks
        for block in range(table.num_blocks):
            assert 0 <= table.rows_used(block) <= table.rows_per_block


# ---------------------------------------------------------------------------
# Sequence lifecycle invariants
# ---------------------------------------------------------------------------


@given(
    prefill=st.integers(min_value=1, max_value=300),
    decode=st.integers(min_value=0, max_value=300),
    chunks=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=30),
)
def test_sequence_bulk_advance_conserves_tokens(prefill, decode, chunks):
    sequence = Sequence(Request(request_id=0, prefill_length=prefill, decode_length=decode))
    sequence.start()
    processed = 0
    for chunk in chunks:
        segments = sequence.advance_tokens(chunk)
        processed += sum(count for _, count, _ in segments)
        assert sequence.context_length == processed
        if sequence.is_complete:
            break
    assert processed <= prefill + decode
    if sequence.is_complete:
        assert processed == prefill + decode


@given(
    prefill=st.integers(min_value=1, max_value=200),
    decode=st.integers(min_value=1, max_value=200),
    evict_after=st.integers(min_value=1, max_value=400),
)
def test_sequence_eviction_preserves_generated_tokens(prefill, decode, evict_after):
    sequence = Sequence(Request(request_id=0, prefill_length=prefill, decode_length=decode))
    sequence.start()
    sequence.advance_tokens(min(evict_after, prefill + decode - 1))
    generated_before = sequence.generated_tokens
    sequence.evict()
    assert sequence.generated_tokens == generated_before
    sequence.start()
    # Finishing the sequence always needs exactly the un-generated decode
    # tokens plus the full (re)prefill of the discarded context.
    sequence.advance_tokens(10**6)
    assert sequence.is_complete
    assert sequence.generated_tokens == decode


# ---------------------------------------------------------------------------
# KV-manager invariants
# ---------------------------------------------------------------------------


@st.composite
def kv_operations(draw):
    return draw(
        st.lists(
            st.tuples(st.sampled_from(["admit", "grow", "release"]), st.integers(0, 5), st.integers(1, 64)),
            min_size=1,
            max_size=30,
        )
    )


@given(ops=kv_operations())
@settings(max_examples=40, deadline=None)
def test_kv_manager_block_conservation(ops):
    arch = ModelArch(
        name="prop", num_blocks=2, hidden_size=256, num_heads=4, ffn_hidden_size=512,
        vocab_size=1000, max_context=512,
    )
    manager = DistributedKVCacheManager(
        arch, kv_core_ids=list(range(16)), blocks_per_core=8
    )
    sequences: dict[int, Sequence] = {}
    for action, seq_id, amount in ops:
        sequence = sequences.get(seq_id)
        if action == "admit" and sequence is None:
            sequence = Sequence(
                Request(request_id=seq_id, prefill_length=64, decode_length=64)
            )
            sequence.start()
            if manager.try_admit(sequence):
                sequences[seq_id] = sequence
        elif action == "grow" and sequence is not None:
            manager.append_tokens(sequence, amount)
        elif action == "release" and sequence is not None:
            manager.release(sequence)
            del sequences[seq_id]
        # Invariants: block accounting never goes negative or above capacity.
        assert 0 <= manager.used_blocks <= manager.total_blocks
        held = sum(manager.blocks_held(sid) for sid in sequences)
        assert held == manager.used_blocks


# ---------------------------------------------------------------------------
# Misc invariants
# ---------------------------------------------------------------------------


@given(
    compute=st.floats(0, 1e3, allow_nan=False),
    on_chip=st.floats(0, 1e3, allow_nan=False),
    off_chip=st.floats(0, 1e3, allow_nan=False),
    communication=st.floats(0, 1e3, allow_nan=False),
    scale=st.floats(0.1, 10.0, allow_nan=False),
)
def test_energy_breakdown_scaling(compute, on_chip, off_chip, communication, scale):
    energy = EnergyBreakdown(compute, on_chip, off_chip, communication)
    scaled = energy.scaled(scale)
    assert scaled.total_j == (
        scaled.compute_j + scaled.on_chip_memory_j + scaled.off_chip_memory_j + scaled.communication_j
    )
    assert abs(scaled.total_j - energy.total_j * scale) < 1e-6 * max(1.0, energy.total_j)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_wikitext_like_lengths_always_in_bounds(seed):
    import numpy as np

    distribution = WikiTextLikeDistribution()
    sample = distribution.sample(np.random.default_rng(seed))
    assert distribution.min_length <= sample.prefill_length <= distribution.max_length
    assert distribution.min_length <= sample.decode_length <= distribution.max_length
