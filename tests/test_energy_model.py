"""Tests for the energy/area characterisation tables."""

import pytest

from repro.hardware.config import CrossbarConfig
from repro.hardware.energy import (
    CrossbarAreaModel,
    CrossbarEnergyModel,
    EnergyModel,
)
from repro.units import PJ


class TestCrossbarEnergy:
    def test_dynamic_power_sums_components(self):
        model = CrossbarEnergyModel()
        expected = (6.6 + 0.054 + 4.94 + 3.26) * 1e-3
        assert model.dynamic_power_w == pytest.approx(expected)

    def test_energy_per_cycle(self):
        model = CrossbarEnergyModel()
        assert model.energy_per_cycle_j == pytest.approx(
            model.dynamic_power_w / 300e6
        )

    def test_energy_per_mac_order_of_magnitude(self):
        model = CrossbarEnergyModel()
        per_mac = model.energy_per_mac_j(CrossbarConfig())
        # Sub-picojoule per 8-bit MAC at the crossbar level.
        assert 0.01 * PJ < per_mac < 1.0 * PJ

    def test_static_energy_positive(self):
        assert CrossbarEnergyModel().static_energy_per_cycle_j > 0


class TestEnergyModel:
    def test_cim_mac_includes_core_overhead(self):
        model = EnergyModel()
        crossbar = CrossbarConfig()
        assert model.cim_mac_j(crossbar) == pytest.approx(
            model.crossbar.energy_per_mac_j(crossbar) * model.cim_core_overhead_factor
        )

    def test_core_level_efficiency_matches_paper(self):
        """The calibrated core should land near the paper's 10.98 TOPS/W."""
        model = EnergyModel()
        crossbar = CrossbarConfig()
        ops_per_joule = 2.0 / model.cim_mac_j(crossbar)
        tops_per_w = ops_per_joule / 1e12
        assert 8.0 < tops_per_w < 14.0

    def test_cim_cheaper_than_digital_mac(self):
        model = EnergyModel()
        assert model.cim_mac_j(CrossbarConfig()) < model.digital_mac_j

    def test_hbm_much_more_expensive_than_sram(self):
        model = EnergyModel()
        assert model.hbm_j_per_byte > 5 * model.sram_read_j_per_byte

    def test_noc_transfer_energy_scales_with_hops(self):
        model = EnergyModel()
        one = model.noc_transfer_energy_j(1024, hops=1)
        four = model.noc_transfer_energy_j(1024, hops=4)
        assert four == pytest.approx(4 * one)

    def test_noc_transfer_die_crossing_surcharge(self):
        model = EnergyModel()
        without = model.noc_transfer_energy_j(1024, hops=4, die_crossings=0)
        with_crossing = model.noc_transfer_energy_j(1024, hops=4, die_crossings=2)
        assert with_crossing > without

    def test_htree_energy(self):
        model = EnergyModel()
        assert model.htree_energy_j(1024, levels=5) == pytest.approx(
            1024 * 5 * model.htree_j_per_byte_per_level
        )

    def test_gemv_energy_wrapper(self):
        model = EnergyModel()
        crossbar = CrossbarConfig()
        assert model.cim_gemv_energy_j(crossbar, macs=1000) == pytest.approx(
            1000 * model.cim_mac_j(crossbar)
        )


class TestAreaModel:
    def test_reference_area(self):
        model = CrossbarAreaModel()
        reference = model.crossbar_area_mm2(model.reference_activation_ratio)
        assert reference == pytest.approx(0.063 + 0.0023 + 0.0093 + 0.0022)

    def test_area_grows_with_activation_ratio(self):
        model = CrossbarAreaModel()
        assert model.crossbar_area_mm2(1 / 8) > model.crossbar_area_mm2(1 / 32)
        assert model.crossbar_area_mm2(1 / 128) < model.crossbar_area_mm2(1 / 32)

    def test_crossbars_per_core_at_reference(self):
        from repro.hardware.config import CoreConfig

        model = CrossbarAreaModel()
        assert model.crossbars_per_core(CoreConfig(), 1 / 32) == 32

    def test_crossbars_per_core_shrinks_at_higher_ratio(self):
        from repro.hardware.config import CoreConfig

        model = CrossbarAreaModel()
        assert model.crossbars_per_core(CoreConfig(), 1 / 4) < 32
