"""Tests for the inter-core mapper (greedy + annealing) and whole-model mapping."""

import itertools

import pytest

from repro.errors import MappingError
from repro.hardware.wafer import Wafer
from repro.hardware.yieldmodel import DefectMap
from repro.mapping.intercore import BlockMapper, map_model
from repro.mapping.objective import MappingProblem, Placement, evaluate_placement
from repro.units import MB


@pytest.fixture
def tiny_problem(tiny_arch):
    return MappingProblem.from_arch(tiny_arch, core_weight_capacity_bytes=4 * MB)


class TestBlockMapper:
    def test_greedy_places_all_tiles(self, tiny_problem, small_wafer):
        mapper = BlockMapper(tiny_problem, small_wafer)
        mapping = mapper.map_block(list(range(16)))
        assert len(mapping.weight_core_ids) == len(tiny_problem.tiles())
        assert set(mapping.weight_core_ids) <= set(range(16))

    def test_kv_cores_are_leftover_region_cores(self, tiny_problem, small_wafer):
        mapper = BlockMapper(tiny_problem, small_wafer)
        mapping = mapper.map_block(list(range(16)))
        assert set(mapping.kv_core_ids) == set(range(16)) - set(mapping.weight_core_ids)

    def test_insufficient_region_rejected(self, tiny_problem, small_wafer):
        mapper = BlockMapper(tiny_problem, small_wafer)
        with pytest.raises(MappingError):
            mapper.map_block([0, 1])

    def test_defective_cores_skipped(self, tiny_problem, small_wafer_config):
        wafer = Wafer(
            small_wafer_config,
            defect_map=DefectMap(frozenset({0, 1}), core_yield=0.97, total_cores=64),
        )
        mapper = BlockMapper(tiny_problem, wafer)
        mapping = mapper.map_block(list(range(16)))
        assert 0 not in mapping.weight_core_ids
        assert 1 not in mapping.weight_core_ids

    def test_annealing_does_not_worsen_cost(self, tiny_problem, small_wafer):
        region = list(range(16))
        greedy_only = BlockMapper(tiny_problem, small_wafer, anneal_iterations=0)
        annealed = BlockMapper(tiny_problem, small_wafer, anneal_iterations=150, seed=1)
        greedy_cost = greedy_only.map_block(region).cost.total
        annealed_cost = annealed.map_block(region).cost.total
        assert annealed_cost <= greedy_cost * 1.0001

    def test_annealing_reaches_brute_force_optimum_on_tiny_instance(
        self, tiny_problem, small_wafer
    ):
        """On a 4-tile/6-core instance the annealer should match brute force."""
        region = [0, 1, 2, 8, 9, 10]
        tiles = tiny_problem.tiles()
        best = min(
            evaluate_placement(
                tiny_problem, Placement(dict(zip(tiles, perm))), small_wafer
            ).total
            for perm in itertools.permutations(region, len(tiles))
        )
        mapper = BlockMapper(tiny_problem, small_wafer, anneal_iterations=400, seed=3)
        result = mapper.map_block(region)
        assert result.cost.total <= best * 1.10

    def test_mapping_deterministic_for_seed(self, tiny_problem, small_wafer):
        region = list(range(16))
        a = BlockMapper(tiny_problem, small_wafer, anneal_iterations=50, seed=7).map_block(region)
        b = BlockMapper(tiny_problem, small_wafer, anneal_iterations=50, seed=7).map_block(region)
        assert a.weight_core_ids == b.weight_core_ids


class TestMapModel:
    def test_map_model_covers_all_blocks(self, tiny_arch, small_wafer):
        mapping = map_model(tiny_arch, small_wafer)
        assert len(mapping.block_mappings) == tiny_arch.num_blocks
        assert mapping.num_weight_cores == 4 * tiny_arch.num_blocks

    def test_weight_and_kv_cores_disjoint(self, tiny_arch, small_wafer):
        mapping = map_model(tiny_arch, small_wafer)
        assert set(mapping.weight_core_ids).isdisjoint(mapping.kv_core_ids)

    def test_no_core_reused_across_blocks(self, tiny_arch, small_wafer):
        mapping = map_model(tiny_arch, small_wafer)
        cores = mapping.weight_core_ids
        assert len(cores) == len(set(cores))

    def test_model_too_large_rejected(self, small_arch, small_wafer):
        # Small-0.3B needs far more weight cores than the 64-core test wafer has.
        with pytest.raises(MappingError):
            map_model(small_arch, small_wafer)

    def test_activation_route_hops_positive(self, tiny_arch, small_wafer):
        mapping = map_model(tiny_arch, small_wafer)
        assert mapping.activation_route_hops >= 1.0

    def test_total_cost_aggregates_blocks(self, tiny_arch, small_wafer):
        mapping = map_model(tiny_arch, small_wafer)
        assert mapping.total_cost().total >= sum(
            block.cost.total for block in mapping.block_mappings
        )
        assert mapping.byte_hops_per_token() == mapping.total_cost().total

    def test_defects_respected(self, tiny_arch, small_wafer_config):
        defective = frozenset({0, 5, 20})
        wafer = Wafer(
            small_wafer_config,
            defect_map=DefectMap(defective, core_yield=0.95, total_cores=64),
        )
        mapping = map_model(tiny_arch, wafer)
        assert not defective & set(mapping.weight_core_ids)

    def test_average_hops_per_transfer(self, tiny_arch, small_wafer):
        mapping = map_model(tiny_arch, small_wafer)
        assert mapping.average_hops_per_transfer() > 0
