"""Tests for the CIM-core circuit design comparison (Table 2 / Fig. 21 support)."""

import pytest

from repro.baselines.cim_cores import (
    ALL_DESIGNS,
    ISSCC22,
    OUROBOROS_CORE,
    OUROBOROS_LUT_CORE,
    VLSI22,
    CIMCoreSystem,
    cim_core_hardware,
)
from repro.models.architectures import llama_13b
from repro.workload.generator import generate_trace

TRACE = generate_trace("lp128_ld2048", num_requests=10)


class TestDesignTable:
    def test_paper_capacities(self):
        assert OUROBOROS_CORE.wafer_capacity_bytes == pytest.approx(54 * 2**30)
        assert VLSI22.wafer_capacity_bytes < ISSCC22.wafer_capacity_bytes

    def test_dense_designs_more_efficient_at_macro_level(self):
        assert VLSI22.mac_energy_j < OUROBOROS_CORE.mac_energy_j
        assert ISSCC22.mac_energy_j < OUROBOROS_CORE.mac_energy_j

    def test_lut_variant_saves_ten_percent(self):
        assert OUROBOROS_LUT_CORE.mac_energy_j == pytest.approx(
            0.9 * OUROBOROS_CORE.mac_energy_j
        )

    def test_capacity_check(self):
        arch = llama_13b()
        assert OUROBOROS_CORE.fits_model(arch)
        assert not VLSI22.fits_model(arch)
        assert not ISSCC22.fits_model(arch)

    def test_all_designs_registered(self):
        names = {design.name for design in ALL_DESIGNS}
        assert {"VLSI'22", "ISSCC'22", "This work", "This work + LUT"} <= names


class TestSystemLevel:
    def test_capacity_limited_designs_use_hbm(self):
        arch = llama_13b()
        dense = cim_core_hardware(VLSI22, arch)
        ours = cim_core_hardware(OUROBOROS_CORE, arch)
        assert not dense.memory_is_on_chip
        assert ours.memory_is_on_chip
        assert dense.memory_bandwidth_bytes_per_s == pytest.approx(1.6e12)

    def test_ouroboros_core_wins_at_system_level(self):
        """Dense macros lose end-to-end because they stream weights from HBM."""
        arch = llama_13b()
        ours = CIMCoreSystem(arch, OUROBOROS_CORE).serve(TRACE)
        dense = CIMCoreSystem(arch, VLSI22).serve(TRACE)
        assert ours.throughput_tokens_per_s > dense.throughput_tokens_per_s
        assert ours.energy_per_output_token_j < dense.energy_per_output_token_j

    def test_dense_design_energy_dominated_by_off_chip(self):
        arch = llama_13b()
        dense = CIMCoreSystem(arch, ISSCC22).serve(TRACE)
        fractions = dense.energy.fractions()
        assert fractions["off_chip_memory"] > fractions["compute"]
