"""Tests for wafer geometry, S-shaped ordering, defects and lazy cores."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.core import CoreRole
from repro.hardware.wafer import Wafer
from repro.hardware.yieldmodel import DefectMap


class TestGeometry:
    def test_num_cores(self, small_wafer):
        assert small_wafer.num_cores == 64

    def test_coordinate_roundtrip(self, small_wafer):
        for core_id in (0, 7, 8, 63):
            coord = small_wafer.coordinate_of(core_id)
            assert small_wafer.core_id_at(coord.row, coord.col) == core_id

    def test_coordinate_out_of_range(self, small_wafer):
        with pytest.raises(ConfigurationError):
            small_wafer.coordinate_of(64)
        with pytest.raises(ConfigurationError):
            small_wafer.core_id_at(100, 0)

    def test_manhattan_distance(self, small_wafer):
        a = small_wafer.core_id_at(0, 0)
        b = small_wafer.core_id_at(3, 5)
        assert small_wafer.manhattan(a, b) == 8
        assert small_wafer.manhattan(a, a) == 0

    def test_die_membership(self, small_wafer):
        # 4x4 cores per die; core (0,0) and (0,3) same die, (0,4) next die.
        a = small_wafer.core_id_at(0, 0)
        b = small_wafer.core_id_at(0, 3)
        c = small_wafer.core_id_at(0, 4)
        assert small_wafer.same_die(a, b)
        assert not small_wafer.same_die(a, c)
        assert small_wafer.die_crossings(a, c) == 1

    def test_die_of(self, small_wafer):
        core = small_wafer.core_id_at(5, 6)
        die = small_wafer.die_of(core)
        assert die.coordinate.row == 1
        assert die.coordinate.col == 1

    def test_neighbors_interior(self, small_wafer):
        core = small_wafer.core_id_at(3, 3)
        assert len(small_wafer.neighbors(core)) == 4

    def test_neighbors_corner(self, small_wafer):
        assert len(small_wafer.neighbors(0)) == 2

    def test_neighbors_are_adjacent(self, small_wafer):
        core = small_wafer.core_id_at(2, 2)
        for neighbor in small_wafer.neighbors(core):
            assert small_wafer.manhattan(core, neighbor) == 1


class TestSShapedOrder:
    def test_covers_all_cores_once(self, small_wafer):
        order = small_wafer.s_shaped_order()
        assert sorted(order) == list(range(64))

    def test_consecutive_cores_adjacent(self, small_wafer):
        order = small_wafer.s_shaped_order()
        distances = [
            small_wafer.manhattan(a, b) for a, b in zip(order, order[1:])
        ]
        assert max(distances) == 1

    def test_banded_order_covers_all_cores(self, small_wafer):
        order = small_wafer.s_shaped_order(band_height=3)
        assert sorted(order) == list(range(64))

    def test_banded_order_keeps_slices_compact(self, small_wafer):
        order = small_wafer.s_shaped_order(band_height=4)
        slice_cores = order[:16]
        coords = [small_wafer.coordinate_of(c) for c in slice_cores]
        row_span = max(c.row for c in coords) - min(c.row for c in coords)
        col_span = max(c.col for c in coords) - min(c.col for c in coords)
        assert row_span <= 4
        assert col_span <= 4

    def test_band_height_below_one_clamped(self, small_wafer):
        assert small_wafer.s_shaped_order(band_height=0) == small_wafer.s_shaped_order(1)


class TestDefects:
    def test_no_defect_map_all_healthy(self, small_wafer):
        assert small_wafer.num_healthy_cores == 64
        assert not small_wafer.is_defective(0)

    def test_defect_map_applied(self, small_wafer_config):
        defects = DefectMap(
            defective_cores=frozenset({3, 10}), core_yield=0.99, total_cores=64
        )
        wafer = Wafer(small_wafer_config, defect_map=defects)
        assert wafer.is_defective(3)
        assert not wafer.is_defective(4)
        assert wafer.num_healthy_cores == 62
        assert 3 not in wafer.healthy_core_ids()

    def test_mismatched_defect_map_rejected(self, small_wafer_config):
        defects = DefectMap(
            defective_cores=frozenset(), core_yield=1.0, total_cores=100
        )
        with pytest.raises(ConfigurationError):
            Wafer(small_wafer_config, defect_map=defects)

    def test_defective_core_object_marked(self, small_wafer_config):
        defects = DefectMap(
            defective_cores=frozenset({5}), core_yield=0.99, total_cores=64
        )
        wafer = Wafer(small_wafer_config, defect_map=defects)
        assert wafer.core(5).is_defective


class TestLazyCores:
    def test_cores_created_on_demand(self, small_wafer):
        assert small_wafer.instantiated_cores() == {}
        core = small_wafer.core(10)
        assert core.core_id == 10
        assert list(small_wafer.instantiated_cores()) == [10]

    def test_core_identity_stable(self, small_wafer):
        assert small_wafer.core(3) is small_wafer.core(3)

    def test_cores_with_role(self, small_wafer):
        small_wafer.core(1).assign_kv_cache()
        assert small_wafer.cores_with_role(CoreRole.KV_CACHE) == [1]

    def test_capacities(self, small_wafer):
        assert small_wafer.sram_bytes == 64 * 4 * 1024 * 1024
        assert small_wafer.usable_sram_bytes == small_wafer.sram_bytes
        assert small_wafer.peak_ops_per_second > 0
