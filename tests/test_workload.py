"""Tests for length distributions, trace generation and sequence state."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.workload.distributions import (
    FixedLengthDistribution,
    UniformLengthDistribution,
    WikiTextLikeDistribution,
    get_distribution,
)
from repro.workload.generator import TraceGenerator, WorkloadSpec, generate_trace, make_workload
from repro.workload.requests import Request, Sequence, SequencePhase


class TestDistributions:
    def test_fixed_distribution(self):
        dist = FixedLengthDistribution(prefill_length=128, decode_length=2048)
        sample = dist.sample(np.random.default_rng(0))
        assert sample.prefill_length == 128
        assert sample.decode_length == 2048

    def test_fixed_distribution_validation(self):
        with pytest.raises(ConfigurationError):
            FixedLengthDistribution(prefill_length=0, decode_length=1)

    def test_wikitext_like_statistics(self):
        dist = WikiTextLikeDistribution()
        samples = dist.sample_many(2000, seed=1)
        prefills = [s.prefill_length for s in samples]
        assert all(dist.min_length <= p <= dist.max_length for p in prefills)
        median = float(np.median(prefills))
        assert 200 < median < 700
        # Heavy tail: the max should be several times the median.
        assert max(prefills) > 3 * median

    def test_wikitext_variance_exceeds_fixed(self):
        wiki = WikiTextLikeDistribution().sample_many(500, seed=0)
        fixed = FixedLengthDistribution(512, 512).sample_many(500, seed=0)
        assert np.std([s.prefill_length for s in wiki]) > np.std(
            [s.prefill_length for s in fixed]
        )

    def test_uniform_distribution_bounds(self):
        dist = UniformLengthDistribution(prefill_low=10, prefill_high=20, decode_low=1, decode_high=5)
        for sample in dist.sample_many(100, seed=0):
            assert 10 <= sample.prefill_length <= 20
            assert 1 <= sample.decode_length <= 5

    def test_named_lookup(self):
        assert get_distribution("lp128_ld2048").prefill_length == 128
        with pytest.raises(ConfigurationError):
            get_distribution("nonexistent")


class TestTraceGeneration:
    def test_trace_size(self):
        trace = generate_trace("lp2048_ld128", num_requests=10)
        assert len(trace) == 10
        assert trace.total_prefill_tokens == 10 * 2048
        assert trace.total_decode_tokens == 10 * 128

    def test_trace_deterministic_per_seed(self):
        a = generate_trace("wikitext2", num_requests=20, seed=5)
        b = generate_trace("wikitext2", num_requests=20, seed=5)
        assert [r.prefill_length for r in a] == [r.prefill_length for r in b]

    def test_trace_differs_across_seeds(self):
        a = generate_trace("wikitext2", num_requests=20, seed=1)
        b = generate_trace("wikitext2", num_requests=20, seed=2)
        assert [r.prefill_length for r in a] != [r.prefill_length for r in b]

    def test_request_ids_unique(self):
        trace = generate_trace("wikitext2", num_requests=50)
        ids = [r.request_id for r in trace]
        assert len(set(ids)) == 50

    def test_arrival_times_monotone(self):
        spec = WorkloadSpec(
            name="poisson",
            distribution=FixedLengthDistribution(64, 64),
            num_requests=20,
            arrival_rate_per_s=100.0,
        )
        trace = TraceGenerator(spec).generate()
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0

    def test_generate_trace_passes_arrival_rate(self):
        batch = generate_trace("lp128_ld2048", num_requests=10)
        open_loop = generate_trace("lp128_ld2048", num_requests=10, arrival_rate_per_s=50.0)
        assert all(r.arrival_time == 0.0 for r in batch)
        arrivals = [r.arrival_time for r in open_loop]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0
        assert open_loop.spec.arrival_rate_per_s == 50.0

    def test_arrival_rate_does_not_change_the_request_mix(self):
        """Arrivals come from an independent RNG stream: the open-loop trace
        must carry exactly the lengths of the batch trace it is compared to,
        even for distributions that consume the RNG per sample."""
        batch = generate_trace("wikitext2", num_requests=50, seed=3)
        open_loop = generate_trace("wikitext2", num_requests=50, seed=3, arrival_rate_per_s=40.0)
        assert [r.prefill_length for r in batch] == [r.prefill_length for r in open_loop]
        assert [r.decode_length for r in batch] == [r.decode_length for r in open_loop]

    def test_make_workload_passes_arrival_rate(self):
        spec = make_workload("wikitext2", num_requests=10, arrival_rate_per_s=8.0)
        assert spec.arrival_rate_per_s == 8.0

    def test_summary(self):
        trace = generate_trace("lp128_ld2048", num_requests=5)
        summary = trace.summary()
        assert summary["num_requests"] == 5
        assert summary["mean_prefill"] == 128

    def test_invalid_request_count(self):
        with pytest.raises(ConfigurationError):
            make_workload("wikitext2", num_requests=0)


class TestRequestValidation:
    def test_negative_decode_rejected(self):
        with pytest.raises(SchedulingError):
            Request(request_id=0, prefill_length=10, decode_length=-1)

    def test_zero_prefill_rejected(self):
        with pytest.raises(SchedulingError):
            Request(request_id=0, prefill_length=0, decode_length=1)

    def test_totals(self):
        request = Request(request_id=0, prefill_length=10, decode_length=5)
        assert request.total_tokens == 15
        assert request.final_context_length == 15


class TestSequenceLifecycle:
    def make(self, prefill=4, decode=3) -> Sequence:
        return Sequence(Request(request_id=1, prefill_length=prefill, decode_length=decode))

    def test_start_from_waiting(self):
        seq = self.make()
        seq.start(time=1.0)
        assert seq.phase is SequencePhase.PREFILL
        assert seq.admission_time == 1.0

    def test_cannot_start_twice(self):
        seq = self.make()
        seq.start()
        with pytest.raises(SchedulingError):
            seq.start()

    def test_advance_through_phases(self):
        seq = self.make(prefill=2, decode=2)
        seq.start()
        positions = [seq.advance_token() for _ in range(4)]
        assert positions == [0, 1, 2, 3]
        assert seq.is_complete

    def test_advance_after_complete_rejected(self):
        seq = self.make(prefill=1, decode=0)
        seq.start()
        seq.advance_token()
        with pytest.raises(SchedulingError):
            seq.advance_token()

    def test_bulk_advance_spans_phases(self):
        seq = self.make(prefill=4, decode=3)
        seq.start()
        segments = seq.advance_tokens(6)
        assert segments[0][0] is SequencePhase.PREFILL
        assert segments[0][1] == 4
        assert segments[1][0] is SequencePhase.DECODE
        assert segments[1][1] == 2
        assert seq.remaining_decode == 1

    def test_bulk_advance_respects_budget(self):
        seq = self.make(prefill=10, decode=10)
        seq.start()
        segments = seq.advance_tokens(3)
        assert sum(count for _, count, _ in segments) == 3
        assert seq.prefill_progress == 3

    def test_context_length_tracks_progress(self):
        seq = self.make(prefill=3, decode=2)
        seq.start()
        seq.advance_tokens(4)
        assert seq.context_length == 4

    def test_eviction_requires_recompute_but_not_regeneration(self):
        seq = self.make(prefill=4, decode=4)
        seq.start()
        seq.advance_tokens(6)  # 4 prefill + 2 decode
        discarded = seq.evict()
        assert discarded == 6
        assert seq.phase is SequencePhase.EVICTED
        assert seq.generated_tokens == 2
        # Re-admission: re-prefill prompt + 2 generated tokens, then decode 2 more.
        assert seq.remaining_prefill == 6
        assert seq.remaining_decode == 2
        seq.start()
        seq.advance_tokens(8)
        assert seq.is_complete
        assert seq.recomputed_tokens == 6

    def test_evict_from_waiting_rejected(self):
        seq = self.make()
        with pytest.raises(SchedulingError):
            seq.evict()

    def test_double_eviction_accumulates(self):
        seq = self.make(prefill=4, decode=4)
        seq.start()
        seq.advance_tokens(5)
        seq.evict()
        seq.start()
        seq.advance_tokens(2)
        seq.evict()
        assert seq.eviction_count == 2
        assert seq.recomputed_tokens == 7
