"""Tests for the crossbar behavioural model (FFN / attention modes, GEMV costs)."""

import pytest

from repro.errors import CapacityError, KVCacheError
from repro.hardware.config import CrossbarConfig
from repro.hardware.crossbar import (
    Crossbar,
    CrossbarMode,
    effective_sram_ratio,
    throughput_vs_activation_ratio,
)


@pytest.fixture
def ffn_crossbar():
    return Crossbar(mode=CrossbarMode.FFN)


@pytest.fixture
def attention_crossbar():
    xb = Crossbar(mode=CrossbarMode.ATTENTION)
    return xb


class TestWeights:
    def test_load_weights_within_capacity(self, ffn_crossbar):
        ffn_crossbar.load_weights(64 * 1024)
        assert ffn_crossbar.weight_bytes_used == 64 * 1024
        assert ffn_crossbar.weight_bytes_free == 64 * 1024

    def test_load_weights_overflow_rejected(self, ffn_crossbar):
        with pytest.raises(CapacityError):
            ffn_crossbar.load_weights(256 * 1024)

    def test_load_weights_negative_rejected(self, ffn_crossbar):
        with pytest.raises(ValueError):
            ffn_crossbar.load_weights(-1)

    def test_load_weights_wrong_mode(self, attention_crossbar):
        with pytest.raises(KVCacheError):
            attention_crossbar.load_weights(1024)

    def test_reset_weights(self, ffn_crossbar):
        ffn_crossbar.load_weights(1024)
        ffn_crossbar.reset_weights()
        assert ffn_crossbar.weight_bytes_used == 0


class TestLogicalBlocks:
    def test_allocate_and_release(self, attention_crossbar):
        index = attention_crossbar.allocate_block(owner=7)
        assert attention_crossbar.block_owner(index) == 7
        assert attention_crossbar.free_blocks == 7
        attention_crossbar.release_block(index)
        assert attention_crossbar.free_blocks == 8

    def test_allocate_all_blocks_then_fail(self, attention_crossbar):
        for _ in range(8):
            attention_crossbar.allocate_block(owner=1)
        with pytest.raises(CapacityError):
            attention_crossbar.allocate_block(owner=2)

    def test_allocate_in_ffn_mode_rejected(self, ffn_crossbar):
        with pytest.raises(KVCacheError):
            ffn_crossbar.allocate_block(owner=1)

    def test_append_rows_respects_block_capacity(self, attention_crossbar):
        index = attention_crossbar.allocate_block(owner=3)
        stored = attention_crossbar.append_rows(index, 100)
        assert stored == 100
        stored = attention_crossbar.append_rows(index, 100)
        assert stored == attention_crossbar.logical_block_rows - 100

    def test_append_rows_unallocated_rejected(self, attention_crossbar):
        with pytest.raises(KVCacheError):
            attention_crossbar.append_rows(0, 10)

    def test_release_owner_frees_all(self, attention_crossbar):
        attention_crossbar.allocate_block(owner=1)
        attention_crossbar.allocate_block(owner=1)
        attention_crossbar.allocate_block(owner=2)
        freed = attention_crossbar.release_owner(1)
        assert freed == 2
        assert attention_crossbar.free_blocks == 7

    def test_release_unallocated_rejected(self, attention_crossbar):
        with pytest.raises(KVCacheError):
            attention_crossbar.release_block(0)

    def test_block_free_rows(self, attention_crossbar):
        assert attention_crossbar.block_free_rows(0) == attention_crossbar.logical_block_rows
        index = attention_crossbar.allocate_block(owner=1)
        attention_crossbar.append_rows(index, 5)
        assert attention_crossbar.block_free_rows(index) == attention_crossbar.logical_block_rows - 5


class TestGemvCost:
    def test_full_gemv_cycles(self, ffn_crossbar):
        cost = ffn_crossbar.gemv_cost()
        assert cost.cycles == 256
        assert cost.macs == 1024 * 128

    def test_partial_rows_fewer_cycles(self, ffn_crossbar):
        full = ffn_crossbar.gemv_cost()
        partial = ffn_crossbar.gemv_cost(active_rows=128)
        assert partial.cycles < full.cycles
        assert partial.energy_j < full.energy_j

    def test_zero_rows_zero_cost(self, ffn_crossbar):
        cost = ffn_crossbar.gemv_cost(active_rows=0)
        assert cost.cycles == 0
        assert cost.energy_j == 0.0

    def test_rows_clamped_to_array(self, ffn_crossbar):
        cost = ffn_crossbar.gemv_cost(active_rows=10_000)
        assert cost.cycles == ffn_crossbar.gemv_cost().cycles

    def test_energy_scales_with_active_fraction(self, ffn_crossbar):
        half = ffn_crossbar.gemv_cost(active_cols=64)
        full = ffn_crossbar.gemv_cost(active_cols=128)
        assert half.energy_j == pytest.approx(full.energy_j / 2, rel=0.01)

    def test_latency_matches_cycles(self, ffn_crossbar):
        cost = ffn_crossbar.gemv_cost()
        assert cost.latency_s == pytest.approx(cost.cycles / 300e6)

    def test_write_cost_positive(self, ffn_crossbar):
        cost = ffn_crossbar.write_cost(1024)
        assert cost.cycles == 32
        assert cost.energy_j > 0


class TestAreaTradeoff:
    def test_effective_sram_ratio_reference_is_one(self):
        assert effective_sram_ratio(1 / 32) == pytest.approx(1.0)

    def test_higher_ratio_less_sram(self):
        assert effective_sram_ratio(1 / 8) < 1.0

    def test_lower_ratio_more_sram(self):
        assert effective_sram_ratio(1 / 128) > 1.0

    def test_throughput_peaks_at_paper_ratio(self):
        ratios = [1 / 4, 1 / 8, 1 / 16, 1 / 32, 1 / 64, 1 / 128]
        curve = throughput_vs_activation_ratio(ratios)
        best = max(curve, key=curve.get)
        assert best == pytest.approx(1 / 32)
        assert curve[best] == pytest.approx(1.0)

    def test_throughput_curve_normalized(self):
        curve = throughput_vs_activation_ratio([1 / 16, 1 / 32, 1 / 64])
        assert max(curve.values()) == pytest.approx(1.0)
        assert all(0 < value <= 1.0 for value in curve.values())

    def test_curve_monotone_on_each_side_of_peak(self):
        ratios = [1 / 4, 1 / 8, 1 / 16, 1 / 32, 1 / 64, 1 / 128, 1 / 256]
        curve = throughput_vs_activation_ratio(ratios)
        ordered = [curve[r] for r in sorted(ratios)]  # ascending ratio
        peak_index = ordered.index(max(ordered))
        assert all(
            ordered[i] <= ordered[i + 1] for i in range(peak_index)
        )
        assert all(
            ordered[i] >= ordered[i + 1] for i in range(peak_index, len(ordered) - 1)
        )
