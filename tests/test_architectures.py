"""Tests for the model architecture descriptions."""

import pytest

from repro.errors import ConfigurationError
from repro.models.architectures import (
    AttentionMask,
    ModelArch,
    baichuan_13b,
    bert_large,
    fits_on_wafer,
    generic_llm,
    get_model,
    llama_13b,
    llama_32b,
    llama_65b,
    qwen_32b,
    t5_11b,
)
from repro.units import GB


class TestRegistry:
    def test_lookup_by_name_case_insensitive(self):
        assert get_model("LLaMA-13B").name == "LLaMA-13B"
        assert get_model("llama-13b").num_blocks == 40

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            get_model("gpt-5")

    @pytest.mark.parametrize(
        "factory,expected_billions",
        [
            (llama_13b, 13.0),
            (llama_32b, 32.5),
            (llama_65b, 65.0),
            (baichuan_13b, 13.0),
            (qwen_32b, 32.0),
        ],
    )
    def test_parameter_counts_roughly_match_names(self, factory, expected_billions):
        arch = factory()
        assert arch.parameter_count_billions == pytest.approx(
            expected_billions, rel=0.25
        )

    def test_bert_is_encoder(self):
        arch = bert_large()
        assert arch.has_encoder
        assert not arch.is_decoder_only
        assert arch.attention_mask is AttentionMask.BIDIRECTIONAL

    def test_t5_prefix_mask_and_head_override(self):
        arch = t5_11b()
        assert arch.attention_mask is AttentionMask.PREFIX
        assert arch.head_dim == 128
        assert arch.q_dim == 128 * 128

    def test_decoder_only_models(self):
        for factory in (llama_13b, llama_32b, qwen_32b, baichuan_13b):
            assert factory().is_decoder_only


class TestDerivedQuantities:
    def test_head_dim(self):
        assert llama_13b().head_dim == 128

    def test_gqa_kv_dim_smaller(self):
        arch = qwen_32b()
        assert arch.kv_heads == 8
        assert arch.kv_dim < arch.hidden_size

    def test_block_weight_bytes_llama_13b(self):
        arch = llama_13b()
        expected = (
            5120 * (5120 + 2 * 5120)  # qkv
            + 5120 * 5120              # out proj
            + 3 * 5120 * 13824         # gated ffn
        )
        assert arch.block_weight_bytes == expected

    def test_total_weights_fit_single_wafer_13b(self):
        assert fits_on_wafer(llama_13b())
        assert fits_on_wafer(llama_32b())

    def test_llama_65b_does_not_fit_single_wafer(self):
        assert not fits_on_wafer(llama_65b())

    def test_kv_bytes_per_token(self):
        arch = llama_13b()
        assert arch.kv_bytes_per_token_per_block == 2 * 5120
        assert arch.kv_bytes_per_token == 40 * 2 * 5120

    def test_kv_bytes_for_sequence_linear(self):
        arch = llama_13b()
        assert arch.kv_bytes_for_sequence(100) == 100 * arch.kv_bytes_per_token

    def test_flops_per_token_grows_with_context(self):
        arch = llama_13b()
        assert arch.flops_per_token(2048) > arch.flops_per_token(1)

    def test_prefill_flops_superlinear(self):
        arch = llama_13b()
        assert arch.prefill_flops(2048) > 2 * arch.prefill_flops(1024)

    def test_activation_bytes_per_token(self):
        assert llama_13b().activation_bytes_per_token == 5120


class TestGenericModels:
    @pytest.mark.parametrize("size", [7.0, 13.0, 32.0, 65.0, 130.0])
    def test_known_sizes_close(self, size):
        arch = generic_llm(size)
        assert arch.parameter_count_billions == pytest.approx(size, rel=0.3)

    def test_interpolated_size(self):
        arch = generic_llm(20.0)
        assert 10 < arch.parameter_count_billions < 35

    def test_str_representation(self):
        assert "LLaMA-13B" in str(llama_13b())


class TestValidation:
    def test_bad_head_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelArch(
                name="bad", num_blocks=2, hidden_size=100, num_heads=3, ffn_hidden_size=256
            )

    def test_bad_kv_heads_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelArch(
                name="bad",
                num_blocks=2,
                hidden_size=256,
                num_heads=4,
                num_kv_heads=3,
                ffn_hidden_size=256,
            )

    def test_bad_ffn_matrices_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelArch(
                name="bad",
                num_blocks=2,
                hidden_size=256,
                num_heads=4,
                ffn_hidden_size=256,
                ffn_matrices=4,
            )

    def test_encoder_blocks_bounded(self):
        with pytest.raises(ConfigurationError):
            ModelArch(
                name="bad",
                num_blocks=2,
                hidden_size=256,
                num_heads=4,
                ffn_hidden_size=256,
                encoder_blocks=3,
            )

    def test_total_weight_bytes_positive(self, tiny_arch):
        assert tiny_arch.total_weight_bytes > 0
        assert tiny_arch.total_weight_bytes < GB
