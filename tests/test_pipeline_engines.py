"""Tests for the pipeline engines: TGP, sequence-grained and blocked TGP."""

import pytest

from repro.kvcache.manager import DistributedKVCacheManager
from repro.pipeline.blocked import BlockedTokenGrainedPipeline
from repro.pipeline.engine import PipelineConfig
from repro.pipeline.sequence_grained import SequenceGrainedPipeline
from repro.pipeline.stages import TokenCostModel
from repro.pipeline.tgp import TokenGrainedPipeline
from repro.workload.requests import Request, Sequence

from .conftest import make_trace


def build_engine(engine_cls, arch, wafer_config, kv_cores=48, blocks_per_core=256, **kwargs):
    cost_model = TokenCostModel(arch=arch, wafer_config=wafer_config)
    kv_manager = DistributedKVCacheManager(
        arch, kv_core_ids=list(range(kv_cores)), blocks_per_core=blocks_per_core
    )
    config = PipelineConfig(chunk_tokens=32, context_quantum=32)
    return engine_cls(arch, cost_model, kv_manager, config=config, **kwargs)


class TestRunBasics:
    @pytest.mark.parametrize(
        "engine_cls",
        [TokenGrainedPipeline, SequenceGrainedPipeline, BlockedTokenGrainedPipeline],
    )
    def test_trace_completes(self, engine_cls, tiny_arch, small_wafer_config):
        engine = build_engine(engine_cls, tiny_arch, small_wafer_config)
        trace = make_trace(num_requests=6, prefill=24, decode=8)
        result = engine.run(trace)
        assert result.total_tokens == trace.total_tokens
        assert result.output_tokens == trace.total_decode_tokens
        assert result.total_time_s > 0
        assert engine.scheduler.all_done

    def test_energy_accumulated(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config)
        result = engine.run(make_trace(num_requests=4))
        assert result.energy.total_j > 0
        assert result.energy.off_chip_memory_j == 0.0

    def test_utilization_bounded(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config)
        result = engine.run(make_trace(num_requests=4))
        assert 0 < result.utilization <= 1.0

    def test_epoch_records_kept(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config)
        engine.run(make_trace(num_requests=4))
        assert engine.epochs
        assert all(record.tokens > 0 for record in engine.epochs)

    def test_deterministic(self, tiny_arch, small_wafer_config):
        a = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config).run(
            make_trace(num_requests=5)
        )
        b = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config).run(
            make_trace(num_requests=5)
        )
        assert a.total_time_s == pytest.approx(b.total_time_s)
        assert a.energy.total_j == pytest.approx(b.energy.total_j)

    def test_more_requests_take_longer(self, tiny_arch, small_wafer_config):
        short = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config).run(
            make_trace(num_requests=3)
        )
        long = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config).run(
            make_trace(num_requests=12)
        )
        assert long.total_time_s > short.total_time_s
        assert long.energy.total_j > short.energy.total_j


class TestStrategyComparison:
    def test_tgp_beats_sequence_grained_on_mixed_lengths(self, tiny_arch, small_wafer_config):
        """Variable-length workloads create bubbles only for the sequence pipeline."""
        from repro.workload.distributions import UniformLengthDistribution
        from repro.workload.generator import TraceGenerator, WorkloadSpec

        spec = WorkloadSpec(
            name="mixed",
            distribution=UniformLengthDistribution(
                prefill_low=8, prefill_high=96, decode_low=4, decode_high=32
            ),
            num_requests=10,
            seed=3,
        )
        trace_a = TraceGenerator(spec).generate()
        trace_b = TraceGenerator(spec).generate()
        tgp = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config).run(trace_a)
        seq = build_engine(SequenceGrainedPipeline, tiny_arch, small_wafer_config).run(trace_b)
        assert tgp.throughput_tokens_per_s > seq.throughput_tokens_per_s

    def test_blocked_close_to_tgp_for_decoder_models(self, tiny_arch, small_wafer_config):
        trace_a = make_trace(num_requests=8, prefill=32, decode=16)
        trace_b = make_trace(num_requests=8, prefill=32, decode=16)
        tgp = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config).run(trace_a)
        blocked = build_engine(
            BlockedTokenGrainedPipeline, tiny_arch, small_wafer_config
        ).run(trace_b)
        ratio = blocked.throughput_tokens_per_s / tgp.throughput_tokens_per_s
        assert 0.80 <= ratio <= 1.01

    def test_decode_heavy_workload_bounded_by_pipeline_depth(
        self, tiny_arch, small_wafer_config
    ):
        """With a single decoding sequence, throughput is one token per 6N stages."""
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config)
        trace = make_trace(num_requests=1, prefill=4, decode=64)
        result = engine.run(trace)
        interval = engine.stage_interval(32)
        best_case = 1.0 / (interval * engine.depth)
        assert result.throughput_tokens_per_s <= best_case * 1.05


class TestUtilizationModels:
    def seg(self, prefill=16, decode=16, advance=0):
        seq = Sequence(Request(request_id=0, prefill_length=prefill, decode_length=decode))
        seq.start()
        if advance:
            seq.advance_tokens(advance)
        return seq

    def test_tgp_utilization_saturates(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config)
        seq = self.seg(prefill=1000, decode=0)
        utilization = engine.epoch_utilization([(seq, 32)], decode_sequences=0)
        assert utilization == pytest.approx(1.0)

    def test_tgp_decode_only_utilization(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config)
        utilization = engine.epoch_utilization([], decode_sequences=3)
        assert utilization == pytest.approx(3 / engine.depth)

    def test_tgp_zero_work(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config)
        assert engine.epoch_utilization([], 0) == 0.0

    def test_sequence_grained_penalised_by_imbalance(self, tiny_arch, small_wafer_config):
        engine = build_engine(SequenceGrainedPipeline, tiny_arch, small_wafer_config)
        balanced = engine.epoch_utilization([], decode_sequences=8)
        seq = self.seg(prefill=500, decode=0)
        mixed = engine.epoch_utilization([(seq, 32)], decode_sequences=7)
        assert mixed < balanced

    def test_blocked_penalises_longer_new_sequences(self, tiny_arch, small_wafer_config):
        import dataclasses

        encoder_arch = dataclasses.replace(
            tiny_arch,
            attention_mask=__import__("repro.models.architectures", fromlist=["AttentionMask"]).AttentionMask.BIDIRECTIONAL,
            encoder_blocks=tiny_arch.num_blocks,
        )
        engine = build_engine(BlockedTokenGrainedPipeline, encoder_arch, small_wafer_config)
        first = engine.epoch_utilization([(self.seg(prefill=64), 32)], 0)
        # A second, longer sequence introduces a partitioning bubble.
        second = engine.epoch_utilization([(self.seg(prefill=128), 32)], 0)
        assert second <= first
