"""Tests for the mapping-scheme transmission-volume comparison (Fig. 18 support)."""

import pytest

from repro.mapping.baselines import (
    cerebras_summa_volume,
    compare_mapping_schemes,
    ouroboros_volume,
    waferllm_volume,
)


@pytest.fixture(scope="module")
def volumes(tiny_arch_module, small_wafer_module):
    return compare_mapping_schemes(
        tiny_arch_module, small_wafer_module, anneal_iterations=30, seed=0
    )


@pytest.fixture(scope="module")
def tiny_arch_module():
    from repro.models.architectures import ModelArch

    return ModelArch(
        name="Tiny-0.01B",
        num_blocks=2,
        hidden_size=256,
        num_heads=4,
        ffn_hidden_size=512,
        vocab_size=1000,
        max_context=256,
    )


@pytest.fixture(scope="module")
def small_wafer_module():
    from repro.hardware.config import CoreConfig, DieConfig, WaferConfig
    from repro.hardware.wafer import Wafer

    die = DieConfig(core=CoreConfig(), rows=4, cols=4, width_mm=10.0, height_mm=10.0)
    return Wafer(WaferConfig(die=die, die_rows=2, die_cols=2, wafer_side_mm=30.0))


class TestVolumes:
    def test_all_schemes_positive(self, volumes):
        for volume in volumes.values():
            assert volume.byte_hops_per_token > 0
            assert volume.bytes_per_token > 0

    def test_scheme_labels(self, volumes):
        assert set(volumes) == {"Cerebras", "WaferLLM", "Ours"}

    def test_ouroboros_not_worse_than_waferllm(self, volumes):
        assert (
            volumes["Ours"].byte_hops_per_token
            <= volumes["WaferLLM"].byte_hops_per_token
        )

    def test_ouroboros_beats_cerebras(self, volumes):
        assert (
            volumes["Ours"].byte_hops_per_token
            < volumes["Cerebras"].byte_hops_per_token
        )

    def test_normalization_helper(self, volumes):
        assert volumes["Cerebras"].normalized_to(volumes["Cerebras"]) == pytest.approx(1.0)
        assert volumes["Ours"].normalized_to(volumes["Cerebras"]) < 1.0

    def test_volume_scales_with_blocks(self, tiny_arch_module, small_wafer_module):
        import dataclasses

        double = dataclasses.replace(tiny_arch_module, num_blocks=4)
        single_volume = cerebras_summa_volume(tiny_arch_module, small_wafer_module)
        double_volume = cerebras_summa_volume(double, small_wafer_module)
        assert double_volume.byte_hops_per_token == pytest.approx(
            2 * single_volume.byte_hops_per_token
        )

    def test_individual_entry_points(self, tiny_arch_module, small_wafer_module):
        assert waferllm_volume(tiny_arch_module, small_wafer_module).scheme == "WaferLLM"
        assert (
            ouroboros_volume(tiny_arch_module, small_wafer_module, anneal_iterations=10).scheme
            == "Ouroboros"
        )
