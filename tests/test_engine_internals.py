"""Tests for pipeline-engine internals: caching, budgets, livelock handling."""

import pytest

from repro.errors import SimulationError
from repro.kvcache.manager import DistributedKVCacheManager
from repro.pipeline.engine import PipelineConfig
from repro.pipeline.stages import TokenCostModel
from repro.pipeline.tgp import TokenGrainedPipeline
from repro.workload.requests import Request, Sequence, SequencePhase

from .conftest import make_trace


def make_engine(arch, wafer_config, blocks_per_core=256, chunk=32, kv_cores=48):
    cost_model = TokenCostModel(arch=arch, wafer_config=wafer_config)
    kv_manager = DistributedKVCacheManager(
        arch, kv_core_ids=list(range(kv_cores)), blocks_per_core=blocks_per_core
    )
    return TokenGrainedPipeline(
        arch,
        cost_model,
        kv_manager,
        config=PipelineConfig(chunk_tokens=chunk, context_quantum=64),
    )


class TestCaching:
    def test_quantize_rounds_to_quantum(self, tiny_arch, small_wafer_config):
        engine = make_engine(tiny_arch, small_wafer_config)
        assert engine._quantize(1) == 1
        assert engine._quantize(70) == 64
        assert engine._quantize(100) == 128

    def test_interval_cache_populated(self, tiny_arch, small_wafer_config):
        engine = make_engine(tiny_arch, small_wafer_config)
        first = engine.stage_interval(70)
        second = engine.stage_interval(90)  # same quantised key
        assert first == second
        assert len(engine._interval_cache) == 1

    def test_energy_cache_key_matches_interval_cache(self, tiny_arch, small_wafer_config):
        engine = make_engine(tiny_arch, small_wafer_config)
        engine.token_energy(10)
        engine.token_energy(500)
        assert len(engine._energy_cache) == 2


class TestEpochPlanBudgets:
    """Per-sequence budget derivation of the shared epoch planner."""

    def test_prefill_budget_caps_at_chunk(self, tiny_arch, small_wafer_config):
        engine = make_engine(tiny_arch, small_wafer_config, chunk=16)
        seq = Sequence(Request(request_id=0, prefill_length=100, decode_length=10))
        seq.start()
        plan = engine._plan_epoch([seq], 0.0)
        assert plan.budgets == [16]
        assert plan.prefill_takes == [16]
        assert plan.decode_takes == [0]

    def test_decode_budget_caps_at_remaining(self, tiny_arch, small_wafer_config):
        engine = make_engine(tiny_arch, small_wafer_config, chunk=64)
        seq = Sequence(Request(request_id=0, prefill_length=4, decode_length=10))
        seq.start()
        seq.advance_tokens(4)
        assert seq.phase is SequencePhase.DECODE
        plan = engine._plan_epoch([seq], 0.0)
        assert plan.budgets == [10]
        assert plan.decode_takes == [10]

    def test_complete_sequence_budget_zero(self, tiny_arch, small_wafer_config):
        engine = make_engine(tiny_arch, small_wafer_config)
        seq = Sequence(Request(request_id=0, prefill_length=2, decode_length=0))
        seq.start()
        seq.advance_tokens(2)
        plan = engine._plan_epoch([seq], 0.0)
        assert plan.budgets == [0]
        assert plan.split is False


class TestRunEdgeCases:
    def test_empty_wait_queue_finishes_immediately(self, tiny_arch, small_wafer_config):
        engine = make_engine(tiny_arch, small_wafer_config)
        trace = make_trace(num_requests=1, prefill=8, decode=4)
        trace.requests.clear()
        result = engine.run(trace)
        assert result.total_tokens == 0
        assert result.total_time_s >= 0.0

    def test_sequence_too_large_for_cache_raises(self, tiny_arch, small_wafer_config):
        # One block per core and a single-core cache: even one sequence's
        # initial reservation cannot be satisfied.
        engine = make_engine(tiny_arch, small_wafer_config, blocks_per_core=1, kv_cores=2)
        trace = make_trace(num_requests=1, prefill=8, decode=4)
        with pytest.raises(SimulationError):
            engine.run(trace)

    def test_prefill_only_requests_complete(self, tiny_arch, small_wafer_config):
        engine = make_engine(tiny_arch, small_wafer_config)
        trace = make_trace(num_requests=3, prefill=16, decode=0)
        result = engine.run(trace)
        assert result.output_tokens == 0
        assert result.total_tokens == 48

    def test_dependency_bound_enforced(self, tiny_arch, small_wafer_config):
        """A lone decoding sequence cannot finish faster than depth x interval."""
        engine = make_engine(tiny_arch, small_wafer_config, chunk=128)
        trace = make_trace(num_requests=1, prefill=2, decode=50)
        result = engine.run(trace)
        interval = engine.stage_interval(32)
        assert result.total_time_s >= 50 * engine.depth * interval * 0.9

    def test_eviction_pressure_counted(self, tiny_arch, small_wafer_config):
        """An undersized KV cache forces evictions that show up in the result."""
        engine = make_engine(
            tiny_arch, small_wafer_config, blocks_per_core=2, kv_cores=24, chunk=64
        )
        trace = make_trace(num_requests=6, prefill=300, decode=64)
        result = engine.run(trace)
        assert result.output_tokens == trace.total_decode_tokens
        assert result.evictions > 0
        assert result.recomputed_tokens > 0
        assert result.total_tokens > trace.total_tokens  # recomputation is extra work
