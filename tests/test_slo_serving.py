"""Multi-tenant traces, SLO goodput accounting, and serving-latency properties.

Three layers are pinned here:

* the workload layer — :class:`TenantSpec` streams interleave deterministically
  and independently, tenant ids thread through to :class:`Sequence`;
* the result layer — per-tenant :class:`TenantStats` sum to the aggregate and
  goodput counts exactly the requests meeting the :class:`SLOTarget`;
* property-style serving invariants — TTFT / end-to-end latency are
  non-negative and monotone in arrival time under sub-epoch splitting.
"""

from __future__ import annotations

import pytest

from repro.api import DeploymentSpec, deployment
from repro.errors import ConfigurationError
from repro.pipeline.tgp import TokenGrainedPipeline
from repro.workload.distributions import FixedLengthDistribution
from repro.workload.generator import (
    TenantSpec,
    TraceGenerator,
    WorkloadSpec,
    generate_multi_tenant_trace,
)
from repro.workload.requests import SLOTarget

from .test_engine_equivalence import build_engine

TENANTS = (
    TenantSpec(name="chat", workload="lp48_ld16", num_requests=8,
               arrival_rate_per_s=60.0),
    TenantSpec(name="batch", workload="lp96_ld32", num_requests=4,
               arrival_rate_per_s=15.0),
)


def staggered_trace(arrivals, prefill=48, decode=16):
    """Fixed-length single-tenant trace with explicit arrival times."""
    spec = WorkloadSpec(
        name="staggered",
        distribution=FixedLengthDistribution(prefill_length=prefill, decode_length=decode),
        num_requests=len(arrivals),
    )
    trace = TraceGenerator(spec).generate()
    trace.requests = [
        type(request)(
            request_id=request.request_id,
            prefill_length=request.prefill_length,
            decode_length=request.decode_length,
            arrival_time=arrival,
        )
        for request, arrival in zip(trace.requests, arrivals)
    ]
    return trace


# ---------------------------------------------------------------------------
# Multi-tenant trace generation
# ---------------------------------------------------------------------------


class TestMultiTenantTrace:
    def test_deterministic(self):
        first = generate_multi_tenant_trace(TENANTS, seed=7)
        second = generate_multi_tenant_trace(TENANTS, seed=7)
        assert [
            (r.tenant, r.arrival_time, r.prefill_length, r.decode_length)
            for r in first
        ] == [
            (r.tenant, r.arrival_time, r.prefill_length, r.decode_length)
            for r in second
        ]

    def test_sorted_by_arrival_with_sequential_ids(self):
        trace = generate_multi_tenant_trace(TENANTS, seed=0)
        arrivals = [request.arrival_time for request in trace]
        assert arrivals == sorted(arrivals)
        assert [request.request_id for request in trace] == list(range(len(trace)))

    def test_tenant_ids_thread_through(self):
        trace = generate_multi_tenant_trace(TENANTS, seed=0)
        counts = {}
        for request in trace:
            counts[request.tenant] = counts.get(request.tenant, 0) + 1
        assert counts == {"chat": 8, "batch": 4}

    def test_tenant_streams_are_independent(self):
        """Changing one tenant's arrival rate must not perturb another
        tenant's sampled request lengths."""
        from dataclasses import replace

        base = generate_multi_tenant_trace(TENANTS, seed=0)
        perturbed_tenants = (TENANTS[0], replace(TENANTS[1], arrival_rate_per_s=1.0))
        perturbed = generate_multi_tenant_trace(perturbed_tenants, seed=0)

        def chat_lengths(trace):
            return [
                (r.prefill_length, r.decode_length, r.arrival_time)
                for r in sorted(trace, key=lambda r: r.arrival_time)
                if r.tenant == "chat"
            ]

        assert chat_lengths(base) == chat_lengths(perturbed)

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            generate_multi_tenant_trace(
                (TENANTS[0], TENANTS[0]), seed=0
            )

    def test_empty_tenants_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            generate_multi_tenant_trace((), seed=0)

    def test_tenant_slos_attached(self):
        from dataclasses import replace

        slo = SLOTarget(ttft_s=0.1)
        tenants = (replace(TENANTS[0], slo=slo), TENANTS[1])
        trace = generate_multi_tenant_trace(tenants, seed=0, slo=SLOTarget(ttft_s=9.0))
        assert trace.slo_for("chat") == slo
        assert trace.slo_for("batch") == SLOTarget(ttft_s=9.0)


class TestSLOTarget:
    def test_met_by_checks_each_deadline(self):
        slo = SLOTarget(ttft_s=0.5, latency_s=2.0)
        assert slo.met_by(0.4, 1.9)
        assert not slo.met_by(0.6, 1.9)
        assert not slo.met_by(0.4, 2.1)

    def test_missing_samples_pass_vacuously(self):
        slo = SLOTarget(ttft_s=0.5, latency_s=2.0)
        assert slo.met_by(None, 1.0)  # prefill-only request: no TTFT
        assert slo.met_by(None, None)

    def test_validation(self):
        # SLOs are deployment configuration: invalid targets raise the spec
        # layer's typed ConfigurationError.
        with pytest.raises(ConfigurationError):
            SLOTarget(ttft_s=0.0)
        with pytest.raises(ConfigurationError):
            SLOTarget(latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            SLOTarget(goodput_target=0.0)
        with pytest.raises(ConfigurationError):
            SLOTarget(goodput_target=1.5)


# ---------------------------------------------------------------------------
# Per-tenant stats and goodput on RunResult
# ---------------------------------------------------------------------------


class TestTenantStats:
    @pytest.fixture()
    def served(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        slo = SLOTarget(ttft_s=0.05, latency_s=0.5)
        trace = generate_multi_tenant_trace(TENANTS, seed=1, slo=slo)
        return engine, engine.run(trace), slo

    def test_tenant_counts_sum_to_aggregate(self, served):
        engine, result, _ = served
        assert sum(stats.requests for stats in result.tenants.values()) == len(
            engine.scheduler.completed
        )
        assert sum(stats.ttft.count for stats in result.tenants.values()) == result.ttft.count
        assert (
            sum(stats.latency.count for stats in result.tenants.values())
            == result.latency.count
        )

    def test_tenant_means_recombine_to_aggregate(self, served):
        _, result, _ = served
        weighted = sum(
            stats.ttft.mean_s * stats.ttft.count for stats in result.tenants.values()
        )
        assert weighted / result.ttft.count == pytest.approx(result.ttft.mean_s)
        weighted = sum(
            stats.latency.mean_s * stats.latency.count
            for stats in result.tenants.values()
        )
        assert weighted / result.latency.count == pytest.approx(result.latency.mean_s)

    def test_goodput_matches_manual_count(self, served):
        engine, result, slo = served
        met = sum(
            1
            for sequence in engine.scheduler.completed
            if slo.met_by(sequence.ttft_s, sequence.latency_s)
        )
        assert result.goodput == pytest.approx(met / len(engine.scheduler.completed))
        # Aggregate goodput is the request-weighted mean of tenant goodputs.
        weighted = sum(
            stats.goodput * stats.requests for stats in result.tenants.values()
        )
        assert result.goodput == pytest.approx(
            weighted / sum(stats.requests for stats in result.tenants.values())
        )

    def test_no_slo_means_no_goodput(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result = engine.run(generate_multi_tenant_trace(TENANTS, seed=1))
        assert result.goodput is None
        assert all(stats.goodput is None for stats in result.tenants.values())

    def test_single_tenant_trace_collapses_to_default(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result = engine.run(staggered_trace([0.0, 0.01, 0.02]))
        assert set(result.tenants) == {"default"}
        assert result.tenants["default"].requests == 3


# ---------------------------------------------------------------------------
# Property-style serving invariants under sub-epoch splitting
# ---------------------------------------------------------------------------


class TestLatencyProperties:
    #: arrival patterns covering idle gaps, mid-epoch landings and bursts
    ARRIVAL_SETS = [
        [0.0, 0.001, 0.002, 0.003],
        [0.0, 0.05, 0.1, 5.0],
        [0.0, 0.0, 0.0, 0.0],
        [1.0, 1.0001, 3.0, 3.00001, 3.0001],
    ]

    @pytest.mark.parametrize("arrivals", ARRIVAL_SETS)
    @pytest.mark.parametrize("runner", ["run", "run_scalar"])
    def test_latencies_non_negative_and_ordered(
        self, arrivals, runner, tiny_arch, small_wafer_config
    ):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        getattr(engine, runner)(staggered_trace(arrivals))
        for sequence in engine.scheduler.completed:
            assert sequence.ttft_s is not None and sequence.ttft_s >= 0.0
            assert sequence.latency_s is not None and sequence.latency_s >= 0.0
            assert sequence.ttft_s <= sequence.latency_s
            assert sequence.admission_time >= sequence.request.arrival_time

    @pytest.mark.parametrize("arrivals", ARRIVAL_SETS)
    def test_service_monotone_in_arrival_order(
        self, arrivals, tiny_arch, small_wafer_config
    ):
        """FCFS over identical requests: a later arrival never produces its
        first token, nor completes, before an earlier one."""
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        engine.run(staggered_trace(arrivals))
        completed = sorted(
            engine.scheduler.completed, key=lambda s: s.request.request_id
        )
        first_tokens = [s.first_token_time for s in completed]
        completions = [s.completion_time for s in completed]
        assert first_tokens == sorted(first_tokens)
        assert completions == sorted(completions)

    def test_splitting_bounds_admission_delay(self, tiny_arch, small_wafer_config):
        """Every admission lands within one (split) epoch of its arrival:
        admission_time - arrival_time is bounded by the duration of the epoch
        that was running when the request arrived, not by a full chunk."""
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        arrivals = [0.0, 0.002, 0.004, 0.008, 0.016]
        engine.run(staggered_trace(arrivals, prefill=400, decode=32))
        max_epoch = max(record.duration_s for record in engine.epochs)
        for sequence in engine.scheduler.completed:
            delay = sequence.admission_time - sequence.request.arrival_time
            assert 0.0 <= delay <= max_epoch + 1e-12


# ---------------------------------------------------------------------------
# Spec / API integration
# ---------------------------------------------------------------------------


class TestDeploymentSpecTenants:
    def test_roundtrip_with_tenants_and_slo(self):
        spec = (
            deployment("llama-13b")
            .tenant("chat", "wikitext2", 20, 4.0, slo=SLOTarget(ttft_s=0.2))
            .tenant("batch", "lp2048_ld2048", 10, 1.0)
            .slo(ttft_s=1.0, latency_s=5.0, goodput_target=0.9)
            .concurrency(8)
            .build()
        )
        data = spec.to_dict()
        assert DeploymentSpec.from_dict(data) == spec
        assert data["tenants"][0]["slo"]["ttft_s"] == 0.2
        assert data["config"]["pipeline"]["max_active_sequences"] == 8

    def test_label_defaults_to_tenant_names(self):
        spec = (
            deployment("llama-13b")
            .tenant("chat", "wikitext2", 5)
            .tenant("batch", "lp128_ld128", 5)
            .build()
        )
        assert spec.label() == "chat+batch"

    def test_open_loop_tenants_rejected_on_closed_batch_baselines(self):
        builder = (
            deployment("llama-13b")
            .system("dgx-a100")
            .tenant("chat", "wikitext2", 5, arrival_rate_per_s=2.0)
        )
        with pytest.raises(ConfigurationError, match="arrival"):
            builder.build()

    def test_closed_batch_tenants_allowed_on_baselines(self):
        spec = (
            deployment("llama-13b")
            .system("dgx-a100")
            .tenant("chat", "wikitext2", 5)
            .build()
        )
        assert spec.tenants[0].arrival_rate_per_s == 0.0

    def test_tenants_exclude_spec_level_arrival_rate(self):
        with pytest.raises(ConfigurationError, match="arrival_rate_per_s"):
            (
                deployment("llama-13b")
                .arrival_rate(4.0)
                .tenant("chat", "wikitext2", 5)
                .build()
            )

    def test_duplicate_tenants_rejected_at_spec_level(self):
        with pytest.raises(ConfigurationError, match="unique"):
            (
                deployment("llama-13b")
                .tenant("chat", "wikitext2", 5)
                .tenant("chat", "lp128_ld128", 5)
                .build()
            )


# ---------------------------------------------------------------------------
# Scheduling-policy invariants at the serving level
# ---------------------------------------------------------------------------


POLICY_TENANTS = (
    TenantSpec(name="chat", workload="lp48_ld16", num_requests=8,
               arrival_rate_per_s=60.0, weight=2.0, priority=1),
    TenantSpec(name="batch", workload="lp96_ld32", num_requests=4,
               arrival_rate_per_s=15.0),
)

ALL_POLICIES = ("fcfs", "wfq", "priority")


class TestPolicyServingInvariants:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_tenant_stats_sum_to_aggregate(self, policy, tiny_arch, small_wafer_config):
        """The per-tenant accounting contract of PR 4 holds under every
        admission policy: tenant counts/samples recombine to the aggregate."""
        engine = build_engine(
            TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic",
            scheduling_policy=policy,
        )
        slo = SLOTarget(ttft_s=0.05, latency_s=0.5)
        result = engine.run(
            generate_multi_tenant_trace(POLICY_TENANTS, seed=1, slo=slo)
        )
        completed = engine.scheduler.completed
        assert len(completed) == sum(t.num_requests for t in POLICY_TENANTS)
        assert sum(stats.requests for stats in result.tenants.values()) == len(completed)
        assert sum(s.ttft.count for s in result.tenants.values()) == result.ttft.count
        assert (
            sum(s.latency.count for s in result.tenants.values())
            == result.latency.count
        )
        weighted = sum(
            stats.goodput * stats.requests for stats in result.tenants.values()
        )
        assert result.goodput == pytest.approx(
            weighted / sum(stats.requests for stats in result.tenants.values())
        )

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_every_request_completes(self, policy, tiny_arch, small_wafer_config):
        """No policy drops or starves work to completion: the full trace is
        served (for priority, the aging bound is what guarantees this)."""
        engine = build_engine(
            TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic",
            scheduling_policy=policy,
        )
        trace = generate_multi_tenant_trace(POLICY_TENANTS, seed=2)
        result = engine.run(trace)
        assert len(engine.scheduler.completed) == len(trace)
        assert result.output_tokens == trace.total_decode_tokens

    def test_wfq_single_tenant_is_fcfs_bitwise(self, tiny_arch, small_wafer_config):
        """With one tenant there is nothing to arbitrate: wfq must reproduce
        fcfs bit for bit (regression anchor for the degenerate case)."""
        from .test_engine_equivalence import assert_bitwise_equal

        fcfs = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        wfq = build_engine(
            TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic",
            scheduling_policy="wfq",
        )
        arrivals = [0.0, 0.002, 0.004, 0.008, 0.016]
        assert_bitwise_equal(
            fcfs.run(staggered_trace(arrivals, prefill=400, decode=32)),
            wfq.run(staggered_trace(arrivals, prefill=400, decode=32)),
        )

    def test_wfq_is_work_conserving_in_serving(self, tiny_arch, small_wafer_config):
        """No idle epoch while any tenant has arrived work: every recorded
        epoch advances tokens, and the clock only jumps across gaps where
        *nothing* had arrived."""
        engine = build_engine(
            TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic",
            scheduling_policy="wfq",
        )
        trace = generate_multi_tenant_trace(POLICY_TENANTS, seed=3)
        engine.run(trace)
        assert all(record.tokens > 0 for record in engine.epochs)
        # Completions never stall past the last arrival plus total service.
        last_completion = max(s.completion_time for s in engine.scheduler.completed)
        busy_bound = sum(r.duration_s for r in engine.epochs)
        last_arrival = max(r.arrival_time for r in trace)
        assert last_completion <= last_arrival + busy_bound + 1e-9


class TestPolicySpec:
    def test_scheduler_builder_round_trips(self):
        spec = (
            deployment("llama-13b")
            .scheduler("wfq")
            .tenant("chat", "wikitext2", 20, 4.0, weight=3.0, priority=2)
            .tenant("batch", "lp2048_ld2048", 10, 1.0)
            .concurrency(8)
            .build()
        )
        data = spec.to_dict()
        assert data["config"]["pipeline"]["scheduling_policy"] == "wfq"
        assert data["tenants"][0]["weight"] == 3.0
        assert data["tenants"][0]["priority"] == 2
        assert DeploymentSpec.from_dict(data) == spec

    def test_scheduler_builder_aging_rate(self):
        spec = (
            deployment("llama-13b").scheduler("priority", aging_rate=0.5).build()
        )
        assert spec.config.pipeline.scheduling_policy == "priority"
        assert spec.config.pipeline.priority_aging_rate == 0.5
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_policy_rejected_in_builder(self):
        with pytest.raises(ConfigurationError, match="unknown scheduling policy"):
            deployment("llama-13b").scheduler("lifo")

    def test_unknown_policy_rejected_in_config(self):
        from repro.pipeline.engine import PipelineConfig

        with pytest.raises(ConfigurationError, match="unknown scheduling policy"):
            PipelineConfig(scheduling_policy="lifo")

    def test_default_policy_is_fcfs(self):
        spec = deployment("llama-13b").build()
        assert spec.config.pipeline.scheduling_policy == "fcfs"


class TestTenantQuotaServing:
    """End-to-end quota semantics: caps bind per tenant, impossible fits shed.

    The KV quota is a *static* entitlement, so two classes of request can
    never be served under it: a zero-quota tenant's (rejected at admission
    while holding nothing) and one whose own working set exceeds the cap
    (detected when growth fails with no same-tenant victim left).  Both must
    shed permanently — counted against the tenant's goodput — instead of
    livelocking the epoch loop, and must never disturb the other tenant.
    """

    def _pressure_tenants(self, batch_quota):
        return (
            TenantSpec(name="chat", workload="lp200_ld32", num_requests=4,
                       arrival_rate_per_s=2000.0, weight=2.0, priority=1),
            TenantSpec(name="batch", workload="lp320_ld48", num_requests=3,
                       arrival_rate_per_s=800.0, kv_quota=batch_quota),
        )

    def _serve(self, tiny_arch, small_wafer_config, batch_quota):
        engine = build_engine(
            TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic",
            blocks_per_core=2, kv_cores=24, chunk=64,
        )
        trace = generate_multi_tenant_trace(
            self._pressure_tenants(batch_quota), seed=11,
            slo=SLOTarget(ttft_s=0.5, latency_s=2.0),
        )
        return engine, engine.run(trace)

    def test_zero_quota_tenant_shed_at_admission(self, tiny_arch, small_wafer_config):
        engine, result = self._serve(tiny_arch, small_wafer_config, 0.0)
        assert result.tenants["batch"].shed == 3
        assert result.tenants["batch"].goodput == 0.0
        assert result.tenants["chat"].shed == 0
        assert result.tenants["chat"].ttft.count == 4
        assert engine.kv_manager.stats.quota_rejections > 0

    def test_quota_below_working_set_sheds_mid_flight(self, tiny_arch, small_wafer_config):
        """A cap that admits a sequence but can never hold its full context
        sheds it once growth proves the fit impossible -- the run completes."""
        engine, result = self._serve(tiny_arch, small_wafer_config, 0.5)
        assert result.tenants["batch"].shed == 3
        assert result.tenants["chat"].shed == 0
        assert result.tenants["chat"].ttft.count == 4
        # The shed happened mid-flight, after a real admission and growth.
        assert engine.kv_manager.stats.quota_blocked_growths > 0
        assert engine.scheduler.stats.shed_requests == 3

    def test_quota_holding_full_working_set_serves_everyone(
        self, tiny_arch, small_wafer_config
    ):
        """A cap with room for one full batch working set serves all requests
        -- quota pressure queues the tenant intra-tenant, nothing is shed."""
        engine, result = self._serve(tiny_arch, small_wafer_config, 0.75)
        assert result.tenants["batch"].shed == 0
        assert result.tenants["batch"].ttft.count == 3
        assert result.tenants["chat"].ttft.count == 4
