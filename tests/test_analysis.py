"""Fixture-based self-tests for the ``repro lint`` checkers.

Each checker is exercised against a tiny synthetic source tree written to
``tmp_path`` that seeds exactly one violation (plus a clean twin), so the
tests prove both directions: the rule fires on the violation and stays
silent on conforming code.  The final class gates the real repository:
``repro lint`` must exit 0 on ``src/repro`` with no baseline file.
"""

from pathlib import Path

import pytest

from repro.analysis import (
    DeterminismChecker,
    EngineParityChecker,
    FloatStabilityChecker,
    KnobPlumbingChecker,
    SerializationChecker,
    run_lint,
)
from repro.cli import main
from repro.errors import ConfigurationError

pytestmark = pytest.mark.lint

PACKAGE_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


def rules_of(report):
    return sorted({finding.rule for finding in report.findings})


class TestDeterminismChecker:
    def check(self, tmp_path, source: str):
        write_tree(tmp_path, {"sim/engine.py": source})
        return run_lint(tmp_path, [DeterminismChecker()])

    def test_unseeded_global_rng_flagged(self, tmp_path):
        report = self.check(tmp_path, (
            "import random\n"
            "def draw():\n"
            "    return random.random()\n"
        ))
        assert rules_of(report) == ["DET001"]
        assert report.findings[0].path == "sim/engine.py"
        assert report.findings[0].line == 3

    def test_unseeded_default_rng_flagged(self, tmp_path):
        report = self.check(tmp_path, (
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        ))
        assert rules_of(report) == ["DET001"]

    def test_seeded_default_rng_clean(self, tmp_path):
        report = self.check(tmp_path, (
            "import numpy as np\n"
            "def make(seed):\n"
            "    return np.random.default_rng(seed)\n"
        ))
        assert report.ok

    def test_unseeded_rng_in_lazy_generator_flagged(self, tmp_path):
        """The lazy-stream idiom is in scope: ``workload/`` is a DET dir and
        an unseeded rng built inside a generator function body fires."""
        write_tree(tmp_path, {"workload/streams.py": (
            "import numpy as np\n"
            "def arrivals(rate, n):\n"
            "    rng = np.random.default_rng()\n"
            "    for _ in range(n):\n"
            "        yield rng.exponential(1.0 / rate)\n"
        )})
        report = run_lint(tmp_path, [DeterminismChecker()])
        assert rules_of(report) == ["DET001"]
        assert report.findings[0].path == "workload/streams.py"
        assert report.findings[0].line == 3

    def test_seeded_rng_in_lazy_generator_clean(self, tmp_path):
        """The conforming twin: per-tenant rngs derived from (seed, index)."""
        write_tree(tmp_path, {"workload/streams.py": (
            "import numpy as np\n"
            "def arrivals(seed, index, rate, n):\n"
            "    rng = np.random.default_rng((seed, index, 1))\n"
            "    for _ in range(n):\n"
            "        yield rng.exponential(1.0 / rate)\n"
        )})
        report = run_lint(tmp_path, [DeterminismChecker()])
        assert report.ok

    def test_wall_clock_flagged(self, tmp_path):
        report = self.check(tmp_path, (
            "import time\n"
            "from datetime import datetime\n"
            "def stamp():\n"
            "    return time.time(), datetime.now()\n"
        ))
        assert rules_of(report) == ["DET002"]
        assert len(report.findings) == 2

    def test_set_iteration_flagged(self, tmp_path):
        report = self.check(tmp_path, (
            "class M:\n"
            "    def __init__(self):\n"
            "        self._failed = set()\n"
            "    def locals_of(self, index):\n"
            "        return [index[c] for c in self._failed]\n"
        ))
        assert rules_of(report) == ["DET003"]
        assert "self._failed" in report.findings[0].message

    def test_sorted_set_iteration_clean(self, tmp_path):
        report = self.check(tmp_path, (
            "class M:\n"
            "    def __init__(self):\n"
            "        self._failed = set()\n"
            "    def locals_of(self, index):\n"
            "        return [index[c] for c in sorted(self._failed)]\n"
        ))
        assert report.ok

    def test_environ_read_flagged(self, tmp_path):
        report = self.check(tmp_path, (
            "import os\n"
            "def knobs():\n"
            "    return os.environ['X'], os.environ.get('Y'), os.getenv('Z')\n"
        ))
        assert rules_of(report) == ["DET004"]
        assert len(report.findings) == 3

    def test_out_of_scope_module_ignored(self, tmp_path):
        write_tree(tmp_path, {"perf/bench.py": (
            "import os, time\n"
            "def harness():\n"
            "    return os.environ.get('PROCS'), time.perf_counter()\n"
        )})
        report = run_lint(tmp_path, [DeterminismChecker()])
        assert report.ok

    def test_allow_comment_suppresses(self, tmp_path):
        report = self.check(tmp_path, (
            "import os\n"
            "def knob():\n"
            "    return os.getenv('X')  # repro-lint: allow=DET004\n"
        ))
        assert report.ok

    def test_allow_comment_is_rule_specific(self, tmp_path):
        report = self.check(tmp_path, (
            "import os\n"
            "def knob():\n"
            "    return os.getenv('X')  # repro-lint: allow=DET001\n"
        ))
        assert rules_of(report) == ["DET004"]


SERIALIZATION_BAD = """
from dataclasses import dataclass

@dataclass(frozen=True)
class Spec:
    alpha: int
    beta: int

    def as_dict(self):
        return {"alpha": self.alpha, "beat": self.beta}

    @classmethod
    def from_dict(cls, data):
        return cls(alpha=data["alpha"])
"""

SERIALIZATION_GOOD = """
from dataclasses import dataclass

@dataclass(frozen=True)
class Spec:
    alpha: int
    beta: int

    @property
    def total(self):
        return self.alpha + self.beta

    def as_dict(self):
        return {"alpha": self.alpha, "beta": self.beta, "total": self.total}

    @classmethod
    def from_dict(cls, data):
        return cls(alpha=data["alpha"], beta=data.get("beta", 0))
"""

SERIALIZATION_GENERIC = """
from dataclasses import asdict, dataclass

@dataclass(frozen=True)
class Spec:
    alpha: int
    beta: int

    def as_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        return cls(**data)
"""


class TestSerializationChecker:
    def check(self, tmp_path, source: str):
        write_tree(tmp_path, {"spec.py": source})
        return run_lint(tmp_path, [SerializationChecker()])

    def test_missing_and_unknown_keys_flagged(self, tmp_path):
        report = self.check(tmp_path, SERIALIZATION_BAD)
        # as_dict misses 'beta' and emits the typo'd 'beat'; from_dict
        # never reads 'beta'.
        assert rules_of(report) == ["SER001", "SER002", "SER003"]
        symbols = {finding.symbol for finding in report.findings}
        assert symbols == {"Spec.beta", "Spec.beat"}

    def test_complete_roundtrip_clean(self, tmp_path):
        assert self.check(tmp_path, SERIALIZATION_GOOD).ok

    def test_generic_serializers_skipped(self, tmp_path):
        assert self.check(tmp_path, SERIALIZATION_GENERIC).ok

    def test_nested_dict_keys_not_treated_as_schema(self, tmp_path):
        report = self.check(tmp_path, (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Spec:\n"
            "    alpha: int\n"
            "    def as_dict(self):\n"
            "        return {'alpha': {'nested': 1}}\n"
        ))
        assert report.ok


PARITY_BAD = """
class Engine:
    def run(self, scheduler, sequence):
        scheduler.grow(sequence)
        sequence.apply_advance(1, 2)
        self._split_epochs += 1

    def run_scalar(self, scheduler, sequence):
        scheduler.grow(sequence)
        scheduler.complete(sequence)
        sequence.advance_tokens(3)
"""

PARITY_GOOD = """
class Engine:
    def run(self, scheduler, sequence):
        scheduler.grow(sequence)
        scheduler.complete(sequence)
        sequence.apply_advance(1, 2)
        self._split_epochs += 1

    def run_scalar(self, scheduler, sequence):
        scheduler.grow(sequence)
        scheduler.complete(sequence)
        sequence.advance_tokens(3)
        self._split_epochs += 1
"""


class TestEngineParityChecker:
    def check(self, tmp_path, source: str):
        write_tree(tmp_path, {"pipeline/engine.py": source})
        return run_lint(tmp_path, [EngineParityChecker()])

    def test_asymmetric_store_and_call_flagged(self, tmp_path):
        report = self.check(tmp_path, PARITY_BAD)
        assert rules_of(report) == ["PAR001", "PAR002"]
        symbols = {finding.symbol for finding in report.findings}
        assert "Engine.self._split_epochs" in symbols
        assert "Engine.scheduler.complete" in symbols

    def test_equivalent_advance_pair_not_flagged(self, tmp_path):
        assert self.check(tmp_path, PARITY_GOOD).ok

    def test_module_receivers_ignored(self, tmp_path):
        report = self.check(tmp_path, (
            "import numpy as np\n"
            "class Engine:\n"
            "    def run(self):\n"
            "        return np.flatnonzero(np.arange(3))\n"
            "    def run_scalar(self):\n"
            "        return np.arange(3)\n"
        ))
        assert report.ok


KNOBS_BAD = """
from dataclasses import dataclass, replace
import argparse

@dataclass(frozen=True)
class PipelineConfig:
    chunk_tokens: int = 512
    orphan_knob: int = 0

@dataclass(frozen=True)
class DeploymentSpec:
    model: str = "m"
    config: PipelineConfig = PipelineConfig()

class DeploymentBuilder:
    def chunk(self, tokens):
        self._spec = replace(self._spec, config=replace(
            self._spec.config, chunk_tokens=tokens))
        return self

def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("model")
    parser.add_argument("--chunk-tokens", type=int)
    parser.add_argument("--dead-flag", type=int)
    return parser

def main(argv=None):
    args = build_parser().parse_args(argv)
    spec = DeploymentSpec(model=args.model)
    return replace(spec, config=replace(
        spec.config, chunk_tokens=args.chunk_tokens))
"""


class TestKnobPlumbingChecker:
    def check(self, tmp_path, source: str):
        write_tree(tmp_path, {"api.py": source})
        return run_lint(tmp_path, [KnobPlumbingChecker()])

    def test_unplumbed_field_and_dead_flag_flagged(self, tmp_path):
        report = self.check(tmp_path, KNOBS_BAD)
        symbols = {finding.symbol for finding in report.findings}
        # orphan_knob reaches neither the builder nor the CLI; --dead-flag
        # binds a dest nothing reads.
        assert "PipelineConfig.orphan_knob" in symbols
        assert "cli.PipelineConfig.orphan_knob" in symbols
        assert "flag.dead_flag" in symbols
        # config/model are plumbed; chunk_tokens is fully reachable.
        assert not any("chunk_tokens" in symbol for symbol in symbols)

    def test_fields_loop_makes_class_cli_reachable(self, tmp_path):
        report = self.check(tmp_path, KNOBS_BAD + (
            "\n"
            "from dataclasses import fields as dataclass_fields\n"
            "def tune(args):\n"
            "    return {f.name: None for f in dataclass_fields(PipelineConfig)}\n"
        ))
        symbols = {finding.symbol for finding in report.findings}
        assert "cli.PipelineConfig.orphan_knob" not in symbols
        assert "PipelineConfig.orphan_knob" in symbols  # builder gap remains

    def test_tenant_spec_fields_are_knobs(self, tmp_path):
        """TenantSpec joined KNOB_CLASSES when weight/priority/kv_quota
        became serving knobs: an unplumbed tenant field must be flagged."""
        report = self.check(tmp_path, KNOBS_BAD + (
            "\n"
            "@dataclass(frozen=True)\n"
            "class TenantSpec:\n"
            "    name: str = 't'\n"
            "    kv_quota: float | None = None\n"
            "    orphan_tenant_knob: int = 0\n"
            "class TenantBuilder:\n"
            "    def tenant(self, name, kv_quota=None):\n"
            "        return TenantSpec(name=name, kv_quota=kv_quota)\n"
        ))
        symbols = {finding.symbol for finding in report.findings}
        assert "TenantSpec.orphan_tenant_knob" in symbols
        assert "cli.TenantSpec.orphan_tenant_knob" in symbols
        # name/kv_quota are plumbed through the builder; the CLI gap for
        # them disappears with a generic fields(TenantSpec) escape.
        assert "TenantSpec.kv_quota" not in symbols

    def test_tenant_fields_loop_makes_class_cli_reachable(self, tmp_path):
        report = self.check(tmp_path, KNOBS_BAD + (
            "\n"
            "from dataclasses import fields as dataclass_fields\n"
            "@dataclass(frozen=True)\n"
            "class TenantSpec:\n"
            "    name: str = 't'\n"
            "    kv_quota: float | None = None\n"
            "class TenantBuilder:\n"
            "    def tenant(self, name, kv_quota=None):\n"
            "        return TenantSpec(name=name, kv_quota=kv_quota)\n"
            "def parse_tenants(args):\n"
            "    return {f.name for f in dataclass_fields(TenantSpec)}\n"
        ))
        symbols = {finding.symbol for finding in report.findings}
        assert not any("TenantSpec" in symbol for symbol in symbols)

    def test_wither_method_counts_as_plumbing(self, tmp_path):
        report = self.check(tmp_path, (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class DeploymentSpec:\n"
            "    system: str = 'x'\n"
            "    def with_system(self, name):\n"
            "        return DeploymentSpec(system=name)\n"
            "class DeploymentBuilder:\n"
            "    def system(self, name):\n"
            "        self._spec = self._spec.with_system(name)\n"
            "        return self\n"
        ))
        assert not any(
            finding.symbol == "DeploymentSpec.system"
            for finding in report.findings
        )


class TestFloatStabilityChecker:
    def check(self, tmp_path, source: str, name: str = "results.py"):
        write_tree(tmp_path, {name: source})
        return run_lint(tmp_path, [FloatStabilityChecker()])

    def test_sum_over_set_flagged(self, tmp_path):
        report = self.check(tmp_path, (
            "def total(values):\n"
            "    pending = set(values)\n"
            "    return sum(pending)\n"
        ))
        assert rules_of(report) == ["FLT001"]

    def test_sum_over_set_generator_flagged(self, tmp_path):
        report = self.check(tmp_path, (
            "def total(stats):\n"
            "    live = {s.weight for s in stats}\n"
            "    return sum(w * 2 for w in live)\n"
        ))
        assert rules_of(report) == ["FLT001"]

    def test_sum_over_sorted_clean(self, tmp_path):
        report = self.check(tmp_path, (
            "def total(values):\n"
            "    pending = set(values)\n"
            "    return sum(sorted(pending))\n"
        ))
        assert report.ok

    def test_out_of_scope_module_ignored(self, tmp_path):
        report = self.check(tmp_path, (
            "def total(values):\n"
            "    return sum(set(values))\n"
        ), name="sim/engine.py")
        assert report.ok


class TestBaseline:
    BAD = "import os\ndef knob():\n    return os.getenv('X')\n"

    def test_baseline_grandfathers_finding(self, tmp_path):
        write_tree(tmp_path, {"src/sim/mod.py": self.BAD})
        baseline = tmp_path / "baseline.json"
        key = "DET004:sim/mod.py:os.getenv"
        baseline.write_text(
            '{"findings": [{"key": "%s", "reason": "legacy knob"}]}' % key
        )
        report = run_lint(
            tmp_path / "src", [DeterminismChecker()], baseline_path=baseline
        )
        assert report.ok
        assert [reason for _, reason in report.baselined] == ["legacy knob"]
        assert report.stale_baseline_keys == []

    def test_stale_baseline_entry_reported(self, tmp_path):
        write_tree(tmp_path, {"src/sim/mod.py": "x = 1\n"})
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            '{"findings": [{"key": "DET004:sim/mod.py:os.getenv",'
            ' "reason": "gone"}]}'
        )
        report = run_lint(
            tmp_path / "src", [DeterminismChecker()], baseline_path=baseline
        )
        assert report.ok
        assert report.stale_baseline_keys == ["DET004:sim/mod.py:os.getenv"]

    def test_baseline_entry_requires_reason(self, tmp_path):
        write_tree(tmp_path, {"src/sim/mod.py": self.BAD})
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            '{"findings": [{"key": "DET004:sim/mod.py:os.getenv"}]}'
        )
        with pytest.raises(ConfigurationError):
            run_lint(
                tmp_path / "src", [DeterminismChecker()],
                baseline_path=baseline,
            )

    def test_missing_baseline_file_is_an_error(self, tmp_path):
        write_tree(tmp_path, {"src/sim/mod.py": "x = 1\n"})
        with pytest.raises(ConfigurationError):
            run_lint(
                tmp_path / "src", [DeterminismChecker()],
                baseline_path=tmp_path / "nope.json",
            )


class TestLintCli:
    def test_cli_exits_nonzero_on_finding(self, tmp_path, capsys):
        write_tree(tmp_path, {"sim/bad.py": (
            "import random\n"
            "def draw():\n"
            "    return random.random()\n"
        )})
        code = main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DET001" in out
        assert "sim/bad.py:3" in out

    def test_cli_json_output(self, tmp_path, capsys):
        import json

        write_tree(tmp_path, {"sim/bad.py": "import time\nt = time.time()\n"})
        code = main(["lint", str(tmp_path), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["ok"] is False
        assert data["findings"][0]["rule"] == "DET002"
        assert data["findings"][0]["key"]

    def test_cli_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"sim/good.py": "x = 1\n"})
        code = main(["lint", str(tmp_path)])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_cli_missing_root_is_usage_error(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path / "missing")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestRepositoryIsClean:
    """The self-gate: the shipped package must lint clean, no baseline."""

    def test_package_lints_clean(self):
        report = run_lint(PACKAGE_ROOT)
        assert report.findings == [], "\n" + report.format()

    def test_cli_lint_defaults_to_package_and_passes(self, capsys):
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out
