"""Open-loop (arrival-time-driven) serving: clock skipping, timestamps, latency.

The companion equivalence suite (:mod:`tests.test_engine_equivalence`) pins
the fast and scalar paths to each other; this file pins the *semantics*: the
clock jumps across idle gaps to the next arrival, completion and first-token
timestamps land at the end of the epoch that produced them, and the TTFT /
end-to-end latency distributions on :class:`RunResult` are built from them.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.workload.distributions import FixedLengthDistribution
from repro.workload.generator import TraceGenerator, WorkloadSpec

from .conftest import make_trace
from .test_engine_equivalence import build_engine
from repro.pipeline.tgp import TokenGrainedPipeline


def arrival_trace(arrivals, prefill=48, decode=16):
    """Fixed-length trace with explicit arrival times."""
    spec = WorkloadSpec(
        name="explicit-arrivals",
        distribution=FixedLengthDistribution(prefill_length=prefill, decode_length=decode),
        num_requests=len(arrivals),
        seed=0,
    )
    trace = TraceGenerator(spec).generate()
    trace.requests = [
        type(request)(
            request_id=request.request_id,
            prefill_length=request.prefill_length,
            decode_length=request.decode_length,
            arrival_time=arrival,
        )
        for request, arrival in zip(trace.requests, arrivals)
    ]
    return trace


class TestIdleGapSkipping:
    @pytest.mark.parametrize("runner", ["run", "run_scalar"])
    def test_clock_jumps_to_next_arrival(self, runner, tiny_arch, small_wafer_config):
        """A long gap between arrivals must not stall or inflate epoch count."""
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result = getattr(engine, runner)(arrival_trace([0.0, 100.0]))
        assert result.output_tokens == 2 * 16
        # The wall clock covers the gap, but no epochs were burned idling.
        assert result.total_time_s > 100.0
        assert result.extra["epochs"] < 20

    def test_late_sequence_admitted_at_its_arrival(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        engine.run(arrival_trace([0.0, 100.0]))
        late = engine.scheduler.completed[-1]
        assert late.request.arrival_time == 100.0
        assert late.admission_time >= 100.0
        assert late.completion_time > late.admission_time

    def test_capacity_stall_still_raises(self, tiny_arch, small_wafer_config):
        """A request that has arrived but cannot fit even alone is a real stall."""
        engine = build_engine(
            TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic",
            blocks_per_core=1, kv_cores=2, chunk=64,
        )
        with pytest.raises(SimulationError, match="cannot hold even a single"):
            engine.run(arrival_trace([5.0], prefill=5000, decode=4))

    def test_malformed_next_arrival_raises_typed_error(self, tiny_arch, small_wafer_config):
        """Regression: a scheduler reporting waiting work but no next arrival
        used to assign None into the clock; it must raise SimulationError."""
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        engine.scheduler.submit_all(arrival_trace([5.0]).requests)
        engine.scheduler.next_arrival_time = lambda: None
        with pytest.raises(SimulationError, match="no next arrival"):
            engine._admit_or_skip_idle(0.0)


class TestEpochGuards:
    def test_empty_epoch_close_raises_typed_error(self, tiny_arch, small_wafer_config):
        """Regression: _close_epoch divided by epoch_tokens unguarded, so an
        engine-invariant violation surfaced as a bare ZeroDivisionError."""
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        with pytest.raises(SimulationError, match="no tokens"):
            engine._close_epoch(0, 0.0, {}, [], 0, 0)


class TestSubEpochSplitting:
    """Epochs split at arrival boundaries instead of quantising admission."""

    def test_mid_epoch_arrival_splits_the_epoch(self, tiny_arch, small_wafer_config):
        # One long-prefill request keeps the wafer busy; measure its epoch
        # cadence, then land a second arrival far inside one of the epochs.
        probe = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        probe.run(arrival_trace([0.0], prefill=2000, decode=32))
        full_epoch = max(record.duration_s for record in probe.epochs)
        arrival = 2.5 * full_epoch

        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result = engine.run(arrival_trace([0.0, arrival], prefill=2000, decode=32))
        assert result.extra["split_epochs"] >= 1
        late = next(
            s for s in engine.scheduler.completed if s.request.arrival_time == arrival
        )
        # Admission happens at the epoch boundary the split created: within a
        # couple of tokens of the arrival, not a whole chunk later.
        delay = late.admission_time - arrival
        assert 0.0 <= delay < full_epoch / 4

    def test_batch_trace_never_splits(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result = engine.run(make_trace(num_requests=6, prefill=48, decode=16))
        assert result.extra["split_epochs"] == 0

    @pytest.mark.parametrize("runner", ["run", "run_scalar"])
    def test_progress_is_guaranteed_under_tiny_gaps(self, runner, tiny_arch, small_wafer_config):
        """Arrivals packed tighter than a single token's service time must not
        livelock the planner (every split epoch advances at least one token)."""
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        arrivals = [0.0] + [1e-12 * (i + 1) for i in range(5)]
        result = getattr(engine, runner)(arrival_trace(arrivals))
        assert result.output_tokens == len(arrivals) * 16
        assert len(engine.scheduler.completed) == len(arrivals)


class TestEpochEndTimestamps:
    def test_completion_is_stamped_at_epoch_end(self, tiny_arch, small_wafer_config):
        """Regression: completion used to carry the epoch-*start* clock, so a
        trace finishing in its first epoch reported completion_time == 0."""
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        engine.run(make_trace(num_requests=1, prefill=16, decode=8))
        sequence = engine.scheduler.completed[0]
        total_epoch_time = sum(record.duration_s for record in engine.epochs)
        assert sequence.completion_time == pytest.approx(total_epoch_time)
        assert sequence.completion_time > 0.0

    def test_first_token_before_completion(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        engine.run(make_trace(num_requests=4, prefill=48, decode=16))
        for sequence in engine.scheduler.completed:
            assert sequence.first_token_time is not None
            assert 0.0 < sequence.first_token_time <= sequence.completion_time
            assert sequence.ttft_s <= sequence.latency_s

    def test_prefill_only_sequences_have_no_first_token(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result = engine.run(make_trace(num_requests=2, prefill=16, decode=0))
        for sequence in engine.scheduler.completed:
            assert sequence.first_token_time is None
            assert sequence.ttft_s is None
        assert result.ttft.count == 0
        assert result.latency.count == 2


class TestLatencyMetrics:
    def test_batch_trace_populates_latency_stats(self, tiny_arch, small_wafer_config):
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result = engine.run(make_trace(num_requests=8, prefill=48, decode=16))
        assert result.latency.count == 8
        assert result.ttft.count == 8
        assert 0 < result.ttft.p50_s <= result.ttft.p95_s <= result.ttft.p99_s
        assert result.latency.p99_s <= result.latency.max_s
        assert result.ttft.mean_s <= result.latency.mean_s

    def test_latency_measured_from_arrival(self, tiny_arch, small_wafer_config):
        """The same service seen by a later-arriving request yields the same
        arrival-relative latency, not a larger absolute completion time."""
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        engine.run(arrival_trace([0.0, 1000.0]))
        first, second = engine.scheduler.completed
        assert second.completion_time > 1000.0
        assert second.latency_s == pytest.approx(first.latency_s, rel=0.5)
        assert second.latency_s < 100.0

    def test_queueing_increases_latency(self, tiny_arch, small_wafer_config):
        """With a single admission slot, later arrivals wait in queue and the
        tail of the latency distribution grows beyond TTFT of the head."""
        engine = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        engine.scheduler.max_active_sequences = 1
        result = engine.run(arrival_trace([0.0, 0.0, 0.0, 0.0]))
        assert result.latency.max_s > result.latency.p50_s
