"""Tests for ``scripts/check_bench_regression.py`` — the CI bench gate.

The script is not a package module, so it is loaded straight from its file
path.  Covered: bitwise drift detection on deterministic headline metrics,
the wall-clock tolerance gate, the directional streaming gates
(``stream_requests_per_s`` floor / ``stream_peak_rss_mb`` ceiling), the
warning for deterministic fresh-only keys, the ``num_requests`` and
``stream_requests`` mismatch errors, and ``main()``'s exit codes with
explicit ``--fresh``/``--baseline`` files.
"""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = (
    Path(__file__).resolve().parent.parent
    / "scripts"
    / "check_bench_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def report(headline=None, num_requests=150, total_s=10.0):
    return {
        "num_requests": num_requests,
        "total_s": total_s,
        "headline": headline or {},
    }


class TestCompare:
    def test_identical_reports_pass(self, gate):
        baseline = report({"average_speedup": 1.2345, "open_loop_ttft_p95": 0.6})
        assert gate.compare(baseline, baseline, 0.10) == []

    def test_deterministic_drift_fails_bitwise(self, gate):
        fresh = report({"average_speedup": 1.2345000000000001})
        baseline = report({"average_speedup": 1.2345})
        failures = gate.compare(fresh, baseline, 0.10)
        assert len(failures) == 1
        assert "average_speedup" in failures[0]
        assert "bitwise" in failures[0]

    def test_nondeterministic_keys_not_gated(self, gate):
        fresh = report({"build_s": 3.0})
        baseline = report({"build_s": 1.0})
        assert gate.compare(fresh, baseline, 0.10) == []

    def test_wallclock_regression_fails_past_tolerance(self, gate):
        fresh = report({"average_speedup": 1.0}, total_s=12.0)
        baseline = report({"average_speedup": 1.0}, total_s=10.0)
        failures = gate.compare(fresh, baseline, 0.10)
        assert len(failures) == 1
        assert "wall-clock" in failures[0]

    def test_wallclock_within_tolerance_passes(self, gate):
        fresh = report({"average_speedup": 1.0}, total_s=10.9)
        baseline = report({"average_speedup": 1.0}, total_s=10.0)
        assert gate.compare(fresh, baseline, 0.10) == []
        # A wider tolerance admits the 20% regression that 10% rejects.
        fresh = report({"average_speedup": 1.0}, total_s=12.0)
        assert gate.compare(fresh, baseline, 0.25) == []

    def test_missing_deterministic_fresh_key_warns(self, gate, capsys):
        fresh = report({"average_speedup": 1.0, "fault_goodput": 0.5})
        baseline = report({"average_speedup": 1.0})
        assert gate.compare(fresh, baseline, 0.10) == []
        out = capsys.readouterr().out
        assert "fault_goodput" in out
        assert "absent from the committed baseline" in out

    def test_missing_nondeterministic_fresh_key_silent(self, gate, capsys):
        fresh = report({"average_speedup": 1.0, "anneal_micro_s": 0.5})
        baseline = report({"average_speedup": 1.0})
        assert gate.compare(fresh, baseline, 0.10) == []
        assert "anneal_micro_s" not in capsys.readouterr().out

    def test_num_requests_mismatch_is_an_error(self, gate):
        fresh = report({"average_speedup": 1.0}, num_requests=50)
        baseline = report({"average_speedup": 1.0}, num_requests=150)
        failures = gate.compare(fresh, baseline, 0.10)
        assert len(failures) == 1
        assert "request-count mismatch" in failures[0]
        assert "REPRO_BENCH_REQUESTS=150" in failures[0]

    def test_no_shared_headline_fails(self, gate):
        failures = gate.compare(report({"a": 1}), report({"b": 2}), 0.10)
        assert any("no shared headline" in failure for failure in failures)

    def test_stream_request_count_mismatch_is_an_error(self, gate):
        fresh = report({"average_speedup": 1.0})
        fresh["meta"] = {"stream_requests": 5000}
        baseline = report({"average_speedup": 1.0})
        baseline["meta"] = {"stream_requests": 20000}
        failures = gate.compare(fresh, baseline, 0.10)
        assert len(failures) == 1
        assert "stream-request-count mismatch" in failures[0]
        assert "REPRO_BENCH_STREAM_REQUESTS=20000" in failures[0]

    def test_stream_count_ungated_when_baseline_predates_it(self, gate):
        fresh = report({"average_speedup": 1.0})
        fresh["meta"] = {"stream_requests": 5000}
        baseline = report({"average_speedup": 1.0})
        assert gate.compare(fresh, baseline, 0.10) == []


class TestDirectionalGates:
    def test_stream_sim_keys_are_bitwise(self, gate):
        fresh = report({"stream_sim_total_time_s": 217.5630001})
        baseline = report({"stream_sim_total_time_s": 217.563})
        failures = gate.compare(fresh, baseline, 0.10)
        assert len(failures) == 1
        assert "bitwise" in failures[0]

    def test_throughput_drop_past_tolerance_fails(self, gate):
        fresh = report({"stream_requests_per_s": 400.0})
        baseline = report({"stream_requests_per_s": 1000.0})
        failures = gate.compare(fresh, baseline, 0.50)
        assert len(failures) == 1
        assert "stream_requests_per_s" in failures[0]
        assert "fell below" in failures[0]

    def test_throughput_within_tolerance_passes(self, gate):
        fresh = report({"stream_requests_per_s": 600.0})
        baseline = report({"stream_requests_per_s": 1000.0})
        assert gate.compare(fresh, baseline, 0.50) == []

    def test_throughput_gain_never_fails(self, gate):
        fresh = report({"stream_requests_per_s": 5000.0})
        baseline = report({"stream_requests_per_s": 1000.0})
        assert gate.compare(fresh, baseline, 0.10) == []

    def test_rss_growth_past_tolerance_fails(self, gate):
        fresh = report({"stream_peak_rss_mb": 200.0})
        baseline = report({"stream_peak_rss_mb": 100.0})
        failures = gate.compare(fresh, baseline, 0.50)
        assert len(failures) == 1
        assert "stream_peak_rss_mb" in failures[0]
        assert "exceeded" in failures[0]

    def test_rss_shrink_never_fails(self, gate):
        fresh = report({"stream_peak_rss_mb": 50.0})
        baseline = report({"stream_peak_rss_mb": 100.0})
        assert gate.compare(fresh, baseline, 0.10) == []

    def test_directional_keys_skipped_when_absent(self, gate):
        fresh = report({"average_speedup": 1.0, "stream_peak_rss_mb": 500.0})
        baseline = report({"average_speedup": 1.0})
        assert gate.compare(fresh, baseline, 0.10) == []


class TestDeterministicPrefixes:
    def test_prefix_classification(self, gate):
        assert gate.is_deterministic("average_speedup")
        assert gate.is_deterministic("slo_goodput_interactive")
        assert gate.is_deterministic("open_loop_ttft_p95_s")
        assert gate.is_deterministic("fault_recovered_sequences")
        assert not gate.is_deterministic("build_s")
        assert not gate.is_deterministic("total_s")

    def test_pick_latest_selects_highest_pr(self, gate):
        names = ["BENCH_PR2.json", "BENCH_PR10.json", "BENCH_LATEST.json",
                 "notes.txt"]
        assert gate._pick_latest(names) == "BENCH_PR10.json"
        assert gate._pick_latest(["README.md"]) is None


class TestMain:
    def write(self, path, data):
        path.write_text(json.dumps(data))
        return str(path)

    def test_passing_gate_exits_zero(self, gate, tmp_path, capsys):
        fresh = self.write(tmp_path / "fresh.json",
                           report({"average_speedup": 1.5}))
        baseline = self.write(tmp_path / "base.json",
                              report({"average_speedup": 1.5}))
        code = gate.main(["--fresh", fresh, "--baseline", baseline])
        assert code == 0
        assert "passed" in capsys.readouterr().out

    def test_drift_exits_one(self, gate, tmp_path, capsys):
        fresh = self.write(tmp_path / "fresh.json",
                           report({"average_speedup": 1.5}))
        baseline = self.write(tmp_path / "base.json",
                              report({"average_speedup": 1.6}))
        code = gate.main(["--fresh", fresh, "--baseline", baseline])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_missing_fresh_report_exits_two(self, gate, tmp_path):
        baseline = self.write(tmp_path / "base.json", report())
        code = gate.main(["--fresh", str(tmp_path / "nope.json"),
                          "--baseline", baseline])
        assert code == 2

    def test_missing_baseline_report_exits_two(self, gate, tmp_path):
        fresh = self.write(tmp_path / "fresh.json", report())
        code = gate.main(["--fresh", fresh,
                          "--baseline", str(tmp_path / "nope.json")])
        assert code == 2

    def test_wallclock_tolerance_flag_respected(self, gate, tmp_path):
        fresh = self.write(tmp_path / "fresh.json",
                           report({"average_speedup": 1.0}, total_s=14.0))
        baseline = self.write(tmp_path / "base.json",
                              report({"average_speedup": 1.0}, total_s=10.0))
        assert gate.main(["--fresh", fresh, "--baseline", baseline]) == 1
        assert gate.main(["--fresh", fresh, "--baseline", baseline,
                          "--wallclock-tolerance", "0.5"]) == 0
