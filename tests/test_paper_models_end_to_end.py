"""End-to-end checks on the paper's actual models (small traces, full wafer).

These are the heaviest tests in the suite (each builds a full 13,923-core
wafer mapping); traces are kept small so the whole file stays under a minute.
"""

import pytest

from repro.core.system import OuroborosSystem
from repro.baselines.gpu import DGXA100System
from repro.experiments.common import ExperimentSettings
from repro.models.architectures import llama_13b, llama_32b
from repro.workload.generator import generate_trace

SETTINGS = ExperimentSettings(num_requests=30, anneal_iterations=0)


@pytest.fixture(scope="module")
def llama13b_system():
    return OuroborosSystem(llama_13b(), SETTINGS.system_config())


class TestLLaMA13B:
    def test_summary_matches_paper_scale(self, llama13b_system):
        summary = llama13b_system.summary()
        assert summary["total_cores"] == 13_923
        assert 3000 <= summary["weight_cores"] <= 3300
        assert summary["kv_cores"] > 10_000
        assert summary["pipeline_depth"] == 240
        assert 35 <= summary["kv_capacity_gib"] <= 46

    def test_defects_tolerated(self, llama13b_system):
        summary = llama13b_system.summary()
        assert summary["healthy_cores"] < summary["total_cores"]

    def test_serving_beats_dgx_on_decode_heavy_workload(self, llama13b_system):
        trace = generate_trace("lp128_ld2048", num_requests=30)
        ours = llama13b_system.serve(trace)
        dgx = DGXA100System(llama_13b()).serve(
            generate_trace("lp128_ld2048", num_requests=30)
        )
        assert ours.throughput_tokens_per_s > dgx.throughput_tokens_per_s
        assert ours.energy_per_output_token_j < dgx.energy_per_output_token_j

    def test_energy_is_compute_dominated(self, llama13b_system):
        trace = generate_trace("wikitext2", num_requests=30)
        result = llama13b_system.serve(trace)
        fractions = result.energy.fractions()
        assert fractions["off_chip_memory"] == 0.0
        assert fractions["compute"] > 0.5

    def test_all_requests_complete(self, llama13b_system):
        trace = generate_trace("wikitext2", num_requests=30)
        result = llama13b_system.serve(trace)
        assert result.output_tokens == trace.total_decode_tokens


class TestLLaMA32B:
    def test_fits_single_wafer_with_less_kv(self):
        system = OuroborosSystem(llama_32b(), SETTINGS.system_config())
        summary = system.summary()
        assert summary["wafers"] == 1
        small = OuroborosSystem(llama_13b(), SETTINGS.system_config()).summary()
        assert summary["kv_capacity_gib"] < small["kv_capacity_gib"]

    def test_32b_gains_less_than_13b(self):
        """The paper's 13B-vs-32B gap: KV capacity limits concurrency at 32B."""
        trace_13 = generate_trace("lp128_ld2048", num_requests=30)
        trace_32 = generate_trace("lp128_ld2048", num_requests=30)
        ours_13 = OuroborosSystem(llama_13b(), SETTINGS.system_config()).serve(trace_13)
        ours_32 = OuroborosSystem(llama_32b(), SETTINGS.system_config()).serve(trace_32)
        dgx_13 = DGXA100System(llama_13b()).serve(generate_trace("lp128_ld2048", num_requests=30))
        dgx_32 = DGXA100System(llama_32b()).serve(generate_trace("lp128_ld2048", num_requests=30))
        speedup_13 = ours_13.throughput_tokens_per_s / dgx_13.throughput_tokens_per_s
        speedup_32 = ours_32.throughput_tokens_per_s / dgx_32.throughput_tokens_per_s
        assert speedup_13 > speedup_32
