"""Tests for the replacement-chain fault-tolerance scheme."""

import pytest

from repro.errors import MappingError
from repro.kvcache.manager import DistributedKVCacheManager
from repro.mapping.fault_tolerance import FaultToleranceManager
from repro.mapping.intercore import map_model
from repro.workload.requests import Request, Sequence


@pytest.fixture
def mapped_system(tiny_arch, small_wafer):
    mapping = map_model(tiny_arch, small_wafer)
    kv_manager = DistributedKVCacheManager(
        tiny_arch, kv_core_ids=mapping.kv_core_ids, blocks_per_core=16
    )
    ft = FaultToleranceManager(small_wafer, mapping, kv_manager=kv_manager)
    return mapping, kv_manager, ft


def admit_one(kv_manager, seq_id=0):
    seq = Sequence(Request(request_id=seq_id, prefill_length=32, decode_length=8))
    seq.start()
    assert kv_manager.try_admit(seq)
    return seq


class TestRoles:
    def test_initial_roles(self, mapped_system):
        mapping, _, ft = mapped_system
        weight_core = mapping.weight_core_ids[0]
        kv_core = mapping.kv_core_ids[0]
        assert ft.role_of(weight_core) == "weight"
        assert ft.role_of(kv_core) == "kv"

    def test_weight_and_kv_sets_match_mapping(self, mapped_system):
        mapping, _, ft = mapped_system
        assert ft.weight_cores == set(mapping.weight_core_ids)
        assert ft.kv_cores == set(mapping.kv_core_ids)


class TestKVCoreFailure:
    def test_kv_core_failure_only_recomputes_local_sequences(self, mapped_system):
        mapping, kv_manager, ft = mapped_system
        seq = admit_one(kv_manager)
        used_cores = set()
        for table in kv_manager.page_tables:
            used_cores.update(table.cores_of(seq.sequence_id))
        failed = next(iter(used_cores))
        result = ft.fail_core(failed)
        assert result.failed_core == failed
        assert result.reclaimed_kv_core is None
        assert seq.sequence_id in result.affected_sequences
        assert ft.role_of(failed) == "failed"

    def test_unused_kv_core_failure_affects_nothing(self, mapped_system):
        mapping, kv_manager, ft = mapped_system
        admit_one(kv_manager)
        used = set()
        for table in kv_manager.page_tables:
            used.update(table.cores_of(0))
        unused = next(core for core in mapping.kv_core_ids if core not in used)
        result = ft.fail_core(unused)
        assert result.affected_sequences == []


class TestWeightCoreFailure:
    def test_replacement_chain_built(self, mapped_system):
        mapping, _, ft = mapped_system
        failed = mapping.weight_core_ids[0]
        result = ft.fail_core(failed)
        assert result.chain[0] == failed
        assert result.reclaimed_kv_core is not None
        assert result.chain[-1] == result.reclaimed_kv_core
        assert result.chain_length >= 1

    def test_chain_is_mesh_connected(self, mapped_system, small_wafer):
        mapping, _, ft = mapped_system
        result = ft.fail_core(mapping.weight_core_ids[0])
        for a, b in zip(result.chain, result.chain[1:]):
            assert small_wafer.manhattan(a, b) == 1

    def test_roles_updated_after_recovery(self, mapped_system):
        mapping, _, ft = mapped_system
        failed = mapping.weight_core_ids[0]
        result = ft.fail_core(failed)
        assert ft.role_of(failed) == "failed"
        assert ft.role_of(result.reclaimed_kv_core) == "weight"
        assert len(ft.weight_cores) == len(mapping.weight_core_ids)

    def test_recovery_latency_sub_millisecond(self, mapped_system):
        mapping, _, ft = mapped_system
        result = ft.fail_core(mapping.weight_core_ids[0])
        assert 0 < result.recovery_latency_s < 1e-3
        assert result.moved_weight_bytes > 0

    def test_double_failure_rejected(self, mapped_system):
        mapping, _, ft = mapped_system
        failed = mapping.weight_core_ids[0]
        ft.fail_core(failed)
        with pytest.raises(MappingError):
            ft.fail_core(failed)

    def test_multiple_failures_supported(self, mapped_system):
        mapping, _, ft = mapped_system
        for core in mapping.weight_core_ids[:3]:
            result = ft.fail_core(core)
            assert result.reclaimed_kv_core is not None
        assert len(ft.failed_cores) == 3

    def test_unassigned_core_failure_is_noop(self, small_wafer, tiny_arch):
        mapping = map_model(tiny_arch, small_wafer)
        ft = FaultToleranceManager(small_wafer, mapping)
        # Fabricate an unassigned core by removing it from the KV set.
        spare = mapping.kv_core_ids[-1]
        ft._kv_cores.discard(spare)
        result = ft.fail_core(spare)
        assert result.chain == []
        assert result.recovery_latency_s == 0.0
