"""Tests for the hardware configuration dataclasses and derived quantities."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.hardware.config import (
    CoreConfig,
    CrossbarConfig,
    DieConfig,
    WaferConfig,
    default_wafer_config,
    with_row_activation_ratio,
)
from repro.units import GB, MB


class TestCrossbarConfig:
    def test_default_sram_capacity_is_128kb(self):
        config = CrossbarConfig()
        assert config.sram_bytes == 128 * 1024

    def test_weight_capacity_equals_sram_capacity_for_8bit(self):
        config = CrossbarConfig()
        assert config.weight_capacity_bytes == config.sram_bytes

    def test_weight_matrix_shape(self):
        config = CrossbarConfig()
        assert config.weight_rows == 1024
        assert config.weight_columns == 128

    def test_rows_active_per_cycle_default(self):
        config = CrossbarConfig()
        assert config.rows_active_per_cycle == 32

    def test_gemv_cycles_default(self):
        config = CrossbarConfig()
        # 8 bit-serial passes over 1024/32 = 32 row groups.
        assert config.gemv_cycles == 8 * 32

    def test_macs_per_cycle(self):
        config = CrossbarConfig()
        assert config.macs_per_cycle == pytest.approx(1024 * 128 / 256)

    def test_peak_ops_scale_with_activation_ratio(self):
        low = CrossbarConfig(row_activation_ratio=1 / 64)
        high = CrossbarConfig(row_activation_ratio=1 / 16)
        assert high.peak_ops_per_second > low.peak_ops_per_second

    def test_invalid_activation_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossbarConfig(row_activation_ratio=0.0)
        with pytest.raises(ConfigurationError):
            CrossbarConfig(row_activation_ratio=1.5)

    def test_invalid_mac_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossbarConfig(mac_arrays=64)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossbarConfig(rows=0)
        with pytest.raises(ConfigurationError):
            CrossbarConfig(columns=1020)


class TestCoreConfig:
    def test_core_sram_is_4mb(self):
        assert CoreConfig().sram_bytes == 4 * MB

    def test_weight_capacity(self):
        assert CoreConfig().weight_capacity_bytes == 4 * MB

    def test_htree_levels(self):
        assert CoreConfig().htree_levels == 5

    def test_peak_ops_scale_with_crossbar_count(self):
        base = CoreConfig()
        double = CoreConfig(crossbars_per_core=64)
        assert double.peak_ops_per_second == pytest.approx(2 * base.peak_ops_per_second)

    def test_invalid_core_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(crossbars_per_core=0)
        with pytest.raises(ConfigurationError):
            CoreConfig(core_area_mm2=-1.0)


class TestDieConfig:
    def test_cores_per_die(self):
        assert DieConfig().cores_per_die == 13 * 17

    def test_die_sram(self):
        die = DieConfig()
        assert die.sram_bytes == die.cores_per_die * 4 * MB

    def test_invalid_die_rejected(self):
        with pytest.raises(ConfigurationError):
            DieConfig(rows=0)


class TestWaferConfig:
    def test_paper_geometry(self):
        wafer = default_wafer_config()
        assert wafer.dies_per_wafer == 63
        assert wafer.cores_per_wafer == 63 * 221
        assert wafer.core_rows == 9 * 13
        assert wafer.core_cols == 7 * 17

    def test_total_sram_close_to_54_gb(self):
        wafer = default_wafer_config()
        assert 52 * GB < wafer.sram_bytes < 56 * GB

    def test_inter_wafer_bandwidth(self):
        wafer = default_wafer_config()
        assert wafer.inter_wafer_bandwidth_bytes_per_s == pytest.approx(
            8 * 100e9 / 8
        )

    def test_invalid_wafer_rejected(self):
        with pytest.raises(ConfigurationError):
            WaferConfig(die_rows=0)
        with pytest.raises(ConfigurationError):
            WaferConfig(inter_die_cost_factor=0.5)

    def test_with_row_activation_ratio_changes_crossbar(self):
        wafer = with_row_activation_ratio(default_wafer_config(), 1 / 8)
        assert wafer.die.core.crossbar.row_activation_ratio == pytest.approx(1 / 8)
        # Capacity is unchanged (the area trade-off is modelled separately).
        assert wafer.sram_bytes == default_wafer_config().sram_bytes

    def test_peak_ops_positive(self):
        assert default_wafer_config().peak_ops_per_second > 1e15


def test_small_wafer_fixture(small_wafer_config):
    assert small_wafer_config.cores_per_wafer == 64
    assert small_wafer_config.core_rows == 8
    assert small_wafer_config.core_cols == 8


def test_gemv_cycles_scale_inverse_with_ratio():
    ratios = [1 / 8, 1 / 16, 1 / 32]
    cycles = [CrossbarConfig(row_activation_ratio=r).gemv_cycles for r in ratios]
    assert cycles == sorted(cycles)
    assert cycles[2] == pytest.approx(cycles[0] * 4, rel=0.01)


def test_cycle_time_matches_frequency():
    config = CrossbarConfig()
    assert config.cycle_time_s == pytest.approx(1.0 / (300e6))
    assert math.isclose(config.cycle_time_s * config.frequency_hz, 1.0)
