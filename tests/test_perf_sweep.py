"""Tests for the perf subsystem: SweepRunner, result cache and bench report."""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import OUROBOROS_NAME, ExperimentSettings
from repro.perf.bench import BenchReport
from repro.perf.sweep import SweepCell, SweepRunner, _cell_key

FAST = ExperimentSettings(num_requests=10, anneal_iterations=5)
CELLS = [SweepCell(model="llama-13b", workload="lp128_ld2048")]


class TestCellKey:
    def test_key_is_deterministic(self):
        assert _cell_key(CELLS[0], FAST) == _cell_key(CELLS[0], FAST)

    def test_key_depends_on_settings(self):
        other = ExperimentSettings(num_requests=11, anneal_iterations=5)
        assert _cell_key(CELLS[0], FAST) != _cell_key(CELLS[0], other)

    def test_key_depends_on_cell(self):
        other = SweepCell(model="llama-13b", workload="wikitext2")
        assert _cell_key(CELLS[0], FAST) != _cell_key(other, FAST)

    def test_key_depends_on_system_restriction(self):
        restricted = SweepCell(model="llama-13b", workload="lp128_ld2048", systems=())
        assert _cell_key(CELLS[0], FAST) != _cell_key(restricted, FAST)

    def test_key_depends_on_arrival_rate(self):
        open_loop = ExperimentSettings(
            num_requests=10, anneal_iterations=5, arrival_rate_per_s=20.0
        )
        assert _cell_key(CELLS[0], FAST) != _cell_key(CELLS[0], open_loop)


class TestSerialRunner:
    def test_grid_contains_all_systems(self):
        runner = SweepRunner(max_workers=1)
        grid = runner.run_grid(("llama-13b",), ("lp128_ld2048",), FAST)
        cell = grid[("llama-13b", "lp128_ld2048")]
        assert OUROBOROS_NAME in cell
        assert "DGX A100" in cell
        assert len(cell) == 5

    def test_serial_reuses_one_system_per_model(self):
        runner = SweepRunner(max_workers=1)
        grid = runner.run_grid(("llama-13b",), ("wikitext2", "lp128_ld2048"), FAST)
        assert len(grid) == 2
        for cell in grid.values():
            assert cell[OUROBOROS_NAME].total_tokens > 0

    def test_system_restriction_skips_baselines(self):
        runner = SweepRunner(max_workers=1)
        cell = SweepCell(model="llama-13b", workload="lp128_ld2048", systems=())
        results = runner.run_variants(cell, [FAST])[0]
        assert list(results) == [OUROBOROS_NAME]


class TestRunVariants:
    def test_variants_in_input_order(self):
        from dataclasses import replace

        runner = SweepRunner(max_workers=1)
        cell = SweepCell(model="llama-13b", workload="lp128_ld2048", systems=())
        rates = [0.0, 40.0]
        variants = [replace(FAST, arrival_rate_per_s=rate) for rate in rates]
        results = runner.run_variants(cell, variants)
        assert len(results) == 2
        batch, open_loop = (r[OUROBOROS_NAME] for r in results)
        assert batch.latency.count == FAST.num_requests
        # The open-loop variant really served a different trace: arrivals
        # spread the work out, so it cannot finish faster than the batch.
        assert open_loop.total_time_s > batch.total_time_s
        assert open_loop.ttft.p95_s > 0

    def test_variants_hit_the_cache(self, tmp_path):
        from dataclasses import replace

        cell = SweepCell(model="llama-13b", workload="lp128_ld2048", systems=())
        variants = [replace(FAST, arrival_rate_per_s=rate) for rate in (0.0, 40.0)]
        cold = SweepRunner(max_workers=1, cache_dir=tmp_path)
        cold.run_variants(cell, variants)
        assert cold.cache_misses == 2
        warm = SweepRunner(max_workers=1, cache_dir=tmp_path)
        results = warm.run_variants(cell, variants)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert results[0][OUROBOROS_NAME].total_tokens > 0


class TestResultCache:
    def test_cache_round_trip(self, tmp_path):
        cold = SweepRunner(max_workers=1, cache_dir=tmp_path)
        grid_cold = cold.run_grid(("llama-13b",), ("lp128_ld2048",), FAST)
        assert cold.cache_misses == 1 and cold.cache_hits == 0

        warm = SweepRunner(max_workers=1, cache_dir=tmp_path)
        grid_warm = warm.run_grid(("llama-13b",), ("lp128_ld2048",), FAST)
        assert warm.cache_hits == 1 and warm.cache_misses == 0

        a = grid_cold[("llama-13b", "lp128_ld2048")][OUROBOROS_NAME]
        b = grid_warm[("llama-13b", "lp128_ld2048")][OUROBOROS_NAME]
        assert a.total_time_s == b.total_time_s
        assert a.energy.total_j == b.energy.total_j

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        runner.run_grid(("llama-13b",), ("lp128_ld2048",), FAST)
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        rerun = SweepRunner(max_workers=1, cache_dir=tmp_path)
        grid = rerun.run_grid(("llama-13b",), ("lp128_ld2048",), FAST)
        assert rerun.cache_misses == 1
        assert grid[("llama-13b", "lp128_ld2048")][OUROBOROS_NAME].total_tokens > 0

    def test_no_cache_dir_means_no_files(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_CACHE_DIR", raising=False)
        runner = SweepRunner(max_workers=1)
        assert runner.cache_dir is None
        runner.run_grid(("llama-13b",), ("lp128_ld2048",), FAST)
        assert list(tmp_path.iterdir()) == []


@pytest.mark.slow
class TestParallelRunner:
    def test_process_pool_matches_serial(self):
        serial = SweepRunner(max_workers=1).run_grid(
            ("llama-13b",), ("wikitext2", "lp128_ld2048"), FAST
        )
        parallel = SweepRunner(max_workers=2).run_grid(
            ("llama-13b",), ("wikitext2", "lp128_ld2048"), FAST
        )
        for key, cell in serial.items():
            for system, result in cell.items():
                assert parallel[key][system].total_time_s == result.total_time_s
                assert parallel[key][system].energy.total_j == result.energy.total_j


class TestBenchReport:
    def test_report_round_trips_to_json(self, tmp_path):
        report = BenchReport(label="unit", num_requests=5)
        report.timings_s["build.x"] = 1.5
        report.timings_s["serve.x"] = 0.5
        path = report.write(tmp_path / "bench.json")
        payload = json.loads(path.read_text())
        assert payload["total_s"] == pytest.approx(2.0)
        assert payload["timings_s"]["build.x"] == 1.5
        assert "unit" in report.format_table()

    @pytest.mark.slow
    def test_run_bench_smoke(self, tmp_path):
        from repro.perf import run_bench

        report = run_bench(
            num_requests=5, models=("llama-13b",), anneal_iterations=10
        )
        assert "build.llama-13b" in report.timings_s
        assert "headline_grid" in report.timings_s
        assert report.headline["average_speedup"] > 0
        payload = json.loads(report.write(tmp_path / "b.json").read_text())
        assert payload["num_requests"] == 5


class TestCliBench:
    def test_parser_accepts_bench(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--requests", "7", "--output", "x.json"])
        assert args.command == "bench"
        assert args.requests == 7
        assert args.output == "x.json"
