"""Equivalence of the array-based epoch engine and the retained scalar loop.

The fast path (:meth:`PipelineEngine.run`) advances all active sequences per
epoch with flat numpy arrays and accumulates energy per quantized context bin;
the retained reference (:meth:`PipelineEngine.run_scalar`) walks one sequence
at a time.  Both share the epoch-closing arithmetic, so every ``RunResult``
field must match **bit for bit** -- across all three pipeline modes, both KV
policies, and under eviction pressure.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.kvcache.manager import DistributedKVCacheManager
from repro.kvcache.static import StaticKVCacheManager
from repro.pipeline.blocked import BlockedTokenGrainedPipeline
from repro.pipeline.engine import PipelineConfig
from repro.pipeline.sequence_grained import SequenceGrainedPipeline
from repro.pipeline.stages import TokenCostModel
from repro.pipeline.tgp import TokenGrainedPipeline
from repro.workload.distributions import UniformLengthDistribution
from repro.workload.generator import TraceGenerator, WorkloadSpec

from .conftest import make_trace

ENGINES = [TokenGrainedPipeline, SequenceGrainedPipeline, BlockedTokenGrainedPipeline]
KV_POLICIES = ["dynamic", "static"]


def build_engine(engine_cls, arch, wafer_config, kv_policy, *, blocks_per_core=256,
                 kv_cores=48, chunk=32, scheduling_policy="fcfs",
                 max_active=None, preemptive=False):
    cost_model = TokenCostModel(arch=arch, wafer_config=wafer_config)
    if kv_policy == "dynamic":
        kv_manager = DistributedKVCacheManager(
            arch, kv_core_ids=list(range(kv_cores)), blocks_per_core=blocks_per_core
        )
    else:
        kv_manager = StaticKVCacheManager(
            arch, kv_core_ids=kv_cores, blocks_per_core=blocks_per_core
        )
    config = PipelineConfig(
        chunk_tokens=chunk, context_quantum=32, scheduling_policy=scheduling_policy,
        max_active_sequences=max_active, preemptive=preemptive,
    )
    return engine_cls(arch, cost_model, kv_manager, config=config)


def assert_bitwise_equal(fast, scalar):
    assert fast.total_tokens == scalar.total_tokens
    assert fast.output_tokens == scalar.output_tokens
    assert fast.evictions == scalar.evictions
    assert fast.recomputed_tokens == scalar.recomputed_tokens
    # Floating-point fields must be *exactly* equal, not approximately.
    assert fast.total_time_s == scalar.total_time_s
    assert fast.utilization == scalar.utilization
    assert fast.energy.compute_j == scalar.energy.compute_j
    assert fast.energy.on_chip_memory_j == scalar.energy.on_chip_memory_j
    assert fast.energy.off_chip_memory_j == scalar.energy.off_chip_memory_j
    assert fast.energy.communication_j == scalar.energy.communication_j
    # Latency distributions are derived from the per-epoch timestamps, so
    # they expose any divergence in completion/first-token stamping.
    assert fast.ttft.as_dict() == scalar.ttft.as_dict()
    assert fast.latency.as_dict() == scalar.latency.as_dict()
    assert fast.extra["epochs"] == scalar.extra["epochs"]


def mixed_trace(num_requests=10, seed=3, arrival_rate_per_s=0.0):
    spec = WorkloadSpec(
        name="mixed",
        distribution=UniformLengthDistribution(
            prefill_low=8, prefill_high=96, decode_low=4, decode_high=32
        ),
        num_requests=num_requests,
        seed=seed,
        arrival_rate_per_s=arrival_rate_per_s,
    )
    return TraceGenerator(spec).generate()


class TestArrayEngineMatchesScalar:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("kv_policy", KV_POLICIES)
    def test_fixed_length_trace(self, engine_cls, kv_policy, tiny_arch, small_wafer_config):
        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        result_fast = fast.run(make_trace(num_requests=8, prefill=48, decode=16))
        result_scalar = scalar.run_scalar(make_trace(num_requests=8, prefill=48, decode=16))
        assert_bitwise_equal(result_fast, result_scalar)

    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("kv_policy", KV_POLICIES)
    def test_mixed_length_trace(self, engine_cls, kv_policy, tiny_arch, small_wafer_config):
        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        assert_bitwise_equal(fast.run(mixed_trace()), scalar.run_scalar(mixed_trace()))

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_under_eviction_pressure(self, engine_cls, tiny_arch, small_wafer_config):
        """An undersized cache exercises eviction + re-prefill in both paths."""
        kwargs = dict(blocks_per_core=2, kv_cores=24, chunk=64)
        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        trace_args = dict(num_requests=6, prefill=300, decode=64)
        result_fast = fast.run(make_trace(**trace_args))
        result_scalar = scalar.run_scalar(make_trace(**trace_args))
        assert result_fast.evictions > 0  # the scenario actually thrashes
        assert_bitwise_equal(result_fast, result_scalar)

    def test_epoch_records_match(self, tiny_arch, small_wafer_config):
        fast = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        scalar = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        fast.run(mixed_trace())
        scalar.run_scalar(mixed_trace())
        assert [dataclasses.astuple(r) for r in fast.epochs] == [
            dataclasses.astuple(r) for r in scalar.epochs
        ]

    def test_prefill_only_requests(self, tiny_arch, small_wafer_config):
        fast = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        scalar = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result_fast = fast.run(make_trace(num_requests=3, prefill=16, decode=0))
        result_scalar = scalar.run_scalar(make_trace(num_requests=3, prefill=16, decode=0))
        assert result_fast.output_tokens == 0
        assert result_fast.ttft.count == 0  # no output tokens -> no TTFT samples
        assert_bitwise_equal(result_fast, result_scalar)


class TestOpenLoopEquivalence:
    """Fast vs. scalar must stay bitwise-equal under nonzero arrival rates."""

    #: slow (idle gaps dominate) and bursty (nearly closed-batch)
    ARRIVAL_RATES = [0.5, 500.0]

    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("kv_policy", KV_POLICIES)
    @pytest.mark.parametrize("rate", ARRIVAL_RATES)
    def test_arrival_driven_trace(
        self, engine_cls, kv_policy, rate, tiny_arch, small_wafer_config
    ):
        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        result_fast = fast.run(mixed_trace(arrival_rate_per_s=rate))
        result_scalar = scalar.run_scalar(mixed_trace(arrival_rate_per_s=rate))
        assert result_fast.ttft.count > 0
        assert result_fast.latency.p99_s > 0
        assert_bitwise_equal(result_fast, result_scalar)

    def test_arrival_driven_under_eviction_pressure(self, tiny_arch, small_wafer_config):
        kwargs = dict(blocks_per_core=2, kv_cores=24, chunk=64)
        fast = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        scalar = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        spec = WorkloadSpec(
            name="pressure",
            distribution=UniformLengthDistribution(
                prefill_low=200, prefill_high=320, decode_low=32, decode_high=64
            ),
            num_requests=6,
            seed=7,
            # bursty: arrivals land faster than sequences drain, so the
            # undersized cache still thrashes
            arrival_rate_per_s=2000.0,
        )
        result_fast = fast.run(TraceGenerator(spec).generate())
        result_scalar = scalar.run_scalar(TraceGenerator(spec).generate())
        assert result_fast.evictions > 0  # the scenario actually thrashes
        assert_bitwise_equal(result_fast, result_scalar)

    def test_zero_rate_reduces_to_batch(self, tiny_arch, small_wafer_config):
        """arrival_rate_per_s == 0 is the regression anchor: identical to batch."""
        open_loop = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        batch = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result_open = open_loop.run(mixed_trace(arrival_rate_per_s=0.0))
        result_batch = batch.run(mixed_trace())
        assert result_open.extra["split_epochs"] == 0
        assert_bitwise_equal(result_open, result_batch)


class TestSubEpochSplitEquivalence:
    """Fast vs. scalar must stay bitwise-equal when epochs split at arrivals.

    The split boundary is the one place *planned* floating-point arithmetic
    feeds back into the simulation (truncated integer budgets), so these
    traces are tuned to actually split — asserted via ``split_epochs`` — and
    every RunResult field must still match bit for bit.
    """

    def _splitting_trace(self, arch, wafer_config):
        """Explicit arrivals landing mid-epoch, measured off a probe run.

        Request lengths stay within the tiny arch's max_context so the trace
        also fits the static KV manager's fixed per-sequence reservation.
        """
        from repro.workload.distributions import FixedLengthDistribution

        lengths = FixedLengthDistribution(180, 24)
        probe = build_engine(TokenGrainedPipeline, arch, wafer_config, "dynamic")
        probe.run(
            TraceGenerator(
                WorkloadSpec(name="probe", distribution=lengths, num_requests=1)
            ).generate()
        )
        full_epoch = max(record.duration_s for record in probe.epochs)
        arrivals = [0.0, 1.4 * full_epoch, 2.7 * full_epoch, 6.3 * full_epoch]
        spec = WorkloadSpec(
            name="mid-epoch",
            distribution=lengths,
            num_requests=len(arrivals),
        )
        trace = TraceGenerator(spec).generate()
        trace.requests = [
            type(request)(
                request_id=request.request_id,
                prefill_length=request.prefill_length,
                decode_length=request.decode_length,
                arrival_time=arrival,
            )
            for request, arrival in zip(trace.requests, arrivals)
        ]
        return trace

    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("kv_policy", KV_POLICIES)
    def test_mid_epoch_arrivals(self, engine_cls, kv_policy, tiny_arch, small_wafer_config):
        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        result_fast = fast.run(self._splitting_trace(tiny_arch, small_wafer_config))
        result_scalar = scalar.run_scalar(self._splitting_trace(tiny_arch, small_wafer_config))
        assert result_fast.extra["split_epochs"] > 0  # the scenario splits
        assert result_fast.extra["split_epochs"] == result_scalar.extra["split_epochs"]
        assert_bitwise_equal(result_fast, result_scalar)

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_mid_epoch_arrivals_under_eviction_pressure(
        self, engine_cls, tiny_arch, small_wafer_config
    ):
        kwargs = dict(blocks_per_core=2, kv_cores=24, chunk=64)

        def pressure_spec(rate: float) -> WorkloadSpec:
            return WorkloadSpec(
                name="split-pressure",
                distribution=UniformLengthDistribution(
                    prefill_low=200, prefill_high=320, decode_low=32, decode_high=64
                ),
                num_requests=8,
                seed=11,
                arrival_rate_per_s=rate,
            )

        # Probe the closed-batch service time of the same mix on the same
        # undersized cache, then offer the trace over half that window so
        # arrivals land inside busy (thrashing) epochs rather than all at
        # t=0 or in idle gaps.
        probe = build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        probe_result = probe.run(TraceGenerator(pressure_spec(0.0)).generate())
        rate = 2 * 8 / probe_result.total_time_s

        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        result_fast = fast.run(TraceGenerator(pressure_spec(rate)).generate())
        result_scalar = scalar.run_scalar(TraceGenerator(pressure_spec(rate)).generate())
        assert result_fast.evictions > 0  # the scenario actually thrashes
        assert result_fast.extra["split_epochs"] > 0  # and actually splits
        assert_bitwise_equal(result_fast, result_scalar)

    def test_multi_tenant_trace_equivalence(self, tiny_arch, small_wafer_config):
        """Per-tenant stats and goodput are part of the bitwise contract."""
        from repro.workload.generator import TenantSpec, generate_multi_tenant_trace
        from repro.workload.requests import SLOTarget

        tenants = (
            TenantSpec(name="a", workload="lp64_ld16", num_requests=6,
                       arrival_rate_per_s=50.0),
            TenantSpec(name="b", workload="lp96_ld8", num_requests=4,
                       arrival_rate_per_s=20.0),
        )
        slo = SLOTarget(ttft_s=0.5, latency_s=2.0)
        fast = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        scalar = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result_fast = fast.run(generate_multi_tenant_trace(tenants, seed=3, slo=slo))
        result_scalar = scalar.run_scalar(generate_multi_tenant_trace(tenants, seed=3, slo=slo))
        assert_bitwise_equal(result_fast, result_scalar)
        assert result_fast.goodput == result_scalar.goodput
        assert set(result_fast.tenants) == {"a", "b"}
        for name in result_fast.tenants:
            assert (
                result_fast.tenants[name].as_dict()
                == result_scalar.tenants[name].as_dict()
            )


class TestPolicyEquivalence:
    """Fast vs. scalar stay bitwise-equal under every scheduling policy.

    The policies reorder *admission* only; both engine paths drive the same
    shared scheduler, so reordering must never open a gap between them —
    including when arrivals land mid-epoch and the split boundary follows
    the policy's (not FCFS's) next-candidate arrival.
    """

    POLICIES = ["fcfs", "wfq", "priority"]

    def _policy_trace(self, seed=3):
        from repro.workload.generator import TenantSpec, generate_multi_tenant_trace
        from repro.workload.requests import SLOTarget

        tenants = (
            TenantSpec(name="chat", workload="lp64_ld16", num_requests=6,
                       arrival_rate_per_s=50.0, weight=2.0, priority=1),
            TenantSpec(name="batch", workload="lp96_ld8", num_requests=4,
                       arrival_rate_per_s=20.0),
        )
        return generate_multi_tenant_trace(
            tenants, seed=seed, slo=SLOTarget(ttft_s=0.5, latency_s=2.0)
        )

    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_multi_tenant_bitwise(self, engine_cls, policy, tiny_arch, small_wafer_config):
        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic",
                            scheduling_policy=policy)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic",
                              scheduling_policy=policy)
        result_fast = fast.run(self._policy_trace())
        result_scalar = scalar.run_scalar(self._policy_trace())
        assert_bitwise_equal(result_fast, result_scalar)
        assert result_fast.goodput == result_scalar.goodput
        for name in result_fast.tenants:
            assert (
                result_fast.tenants[name].as_dict()
                == result_scalar.tenants[name].as_dict()
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_under_eviction_pressure(self, policy, tiny_arch, small_wafer_config):
        """Policy-ordered admission composes with eviction + re-admission."""
        kwargs = dict(blocks_per_core=2, kv_cores=24, chunk=64,
                      scheduling_policy=policy)
        from repro.workload.generator import TenantSpec, generate_multi_tenant_trace

        # Arrival rates sized to the tiny system's service rate so arrivals
        # land inside busy (thrashing) epochs rather than in idle gaps.
        tenants = (
            TenantSpec(name="chat", workload="lp200_ld32", num_requests=4,
                       arrival_rate_per_s=2000.0, priority=1),
            TenantSpec(name="batch", workload="lp320_ld48", num_requests=3,
                       arrival_rate_per_s=800.0),
        )
        fast = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                            "dynamic", **kwargs)
        scalar = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                              "dynamic", **kwargs)
        result_fast = fast.run(generate_multi_tenant_trace(tenants, seed=11))
        result_scalar = scalar.run_scalar(generate_multi_tenant_trace(tenants, seed=11))
        assert result_fast.evictions > 0  # the scenario actually thrashes
        assert result_fast.extra["split_epochs"] > 0  # and actually splits
        assert_bitwise_equal(result_fast, result_scalar)

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("quota", [0.25, 0.5])
    def test_quota_bound_bitwise(self, policy, quota, tiny_arch, small_wafer_config):
        """Every policy x quota combination keeps fast and scalar bitwise.

        The undersized cache plus a tight batch-tenant quota makes the quota
        the binding constraint (not global pressure): admissions and growths
        fail quota-bound, evict-and-requeue churns, and both paths must agree.
        """
        from repro.workload.generator import TenantSpec, generate_multi_tenant_trace

        kwargs = dict(blocks_per_core=2, kv_cores=24, chunk=64,
                      scheduling_policy=policy)
        tenants = (
            TenantSpec(name="chat", workload="lp200_ld32", num_requests=4,
                       arrival_rate_per_s=2000.0, weight=2.0, priority=1),
            TenantSpec(name="batch", workload="lp320_ld48", num_requests=3,
                       arrival_rate_per_s=800.0, kv_quota=quota),
        )
        fast = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                            "dynamic", **kwargs)
        scalar = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                              "dynamic", **kwargs)
        result_fast = fast.run(generate_multi_tenant_trace(tenants, seed=11))
        result_scalar = scalar.run_scalar(generate_multi_tenant_trace(tenants, seed=11))
        # The quota actually bound: the manager attributed refusals to it.
        stats = fast.kv_manager.stats
        assert stats.quota_rejections + stats.quota_blocked_growths > 0
        assert (
            stats.quota_rejections
            == scalar.kv_manager.stats.quota_rejections
        )
        assert (
            stats.quota_blocked_growths
            == scalar.kv_manager.stats.quota_blocked_growths
        )
        assert_bitwise_equal(result_fast, result_scalar)
        for name in result_fast.tenants:
            assert (
                result_fast.tenants[name].as_dict()
                == result_scalar.tenants[name].as_dict()
            )

    def test_fcfs_policy_config_is_default(self, tiny_arch, small_wafer_config):
        """An explicit fcfs policy reproduces the default engine bit for bit
        (the FCFS anchor of the policy subsystem)."""
        default = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        explicit = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                                "dynamic", scheduling_policy="fcfs")
        assert_bitwise_equal(
            default.run(self._policy_trace()), explicit.run(self._policy_trace())
        )


def staggered_preemption_trace(seed=7, chat_quota=None, batch_quota=None):
    """Batch floods the concurrency cap first; weighted chat arrives mid-run.

    Rates are sized to the tiny system's millisecond-scale service times:
    the three long batch decodes monopolise the cap-2 active set while all
    four chat arrivals land mid-decode, so a preemptive policy must displace
    a resident batch sequence for every chat admission.
    """
    from repro.workload.generator import TenantSpec, generate_multi_tenant_trace
    from repro.workload.requests import SLOTarget

    tenants = (
        TenantSpec(name="chat", workload="lp64_ld16", num_requests=4,
                   arrival_rate_per_s=1500.0, weight=8.0, priority=1,
                   kv_quota=chat_quota),
        TenantSpec(name="batch", workload="lp96_ld512", num_requests=3,
                   arrival_rate_per_s=3000.0, kv_quota=batch_quota),
    )
    return generate_multi_tenant_trace(
        tenants, seed=seed, slo=SLOTarget(ttft_s=0.5, latency_s=2.0)
    )


class TestPreemptionEquivalence:
    """Preemptive scheduling keeps fast and scalar bitwise-equal.

    Preemption moves evictions from the admission path into the policy's
    ``select_victim`` hook: a high-ranked arrival displaces a resident
    low-ranked sequence (KV dropped, victim re-queued with its decoded
    tokens preserved as recompute debt).  Both engine paths drive the same
    scheduler, so the preempt-evict-requeue cycle must never open a gap.
    """

    def _staggered_trace(self, seed=7, chat_quota=None, batch_quota=None):
        return staggered_preemption_trace(
            seed=seed, chat_quota=chat_quota, batch_quota=batch_quota
        )

    @staticmethod
    def _preemptions(result):
        return sum(t.preemptions for t in result.tenants.values())

    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("policy", ["wfq", "priority"])
    def test_preemptive_bitwise(self, engine_cls, policy, tiny_arch, small_wafer_config):
        kwargs = dict(scheduling_policy=policy, max_active=2, preemptive=True)
        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        result_fast = fast.run(self._staggered_trace())
        result_scalar = scalar.run_scalar(self._staggered_trace())
        assert self._preemptions(result_fast) > 0  # the scenario actually preempts
        assert_bitwise_equal(result_fast, result_scalar)
        for name in result_fast.tenants:
            assert (
                result_fast.tenants[name].as_dict()
                == result_scalar.tenants[name].as_dict()
            )

    def test_preemptive_fcfs_is_inert(self, tiny_arch, small_wafer_config):
        """FCFS never selects a victim: the knob is bitwise-inert under it."""
        trace = self._staggered_trace

        def run(preemptive):
            engine = build_engine(
                TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic",
                scheduling_policy="fcfs", max_active=2, preemptive=preemptive,
            )
            return engine.run(trace())

        on, off = run(True), run(False)
        assert self._preemptions(on) == 0
        assert_bitwise_equal(on, off)

    @pytest.mark.parametrize("policy", ["wfq", "priority"])
    @pytest.mark.parametrize("quota", [None, 0.5])
    def test_preemption_composes_with_quota_bitwise(
        self, policy, quota, tiny_arch, small_wafer_config
    ):
        """Preemption + a batch quota: both pressure paths stay in lockstep."""
        kwargs = dict(scheduling_policy=policy, max_active=2, preemptive=True,
                      blocks_per_core=8, kv_cores=24, chunk=64)
        fast = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                            "dynamic", **kwargs)
        scalar = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                              "dynamic", **kwargs)
        result_fast = fast.run(self._staggered_trace(batch_quota=quota))
        result_scalar = scalar.run_scalar(self._staggered_trace(batch_quota=quota))
        assert self._preemptions(result_fast) > 0
        assert_bitwise_equal(result_fast, result_scalar)
        for name in result_fast.tenants:
            assert (
                result_fast.tenants[name].as_dict()
                == result_scalar.tenants[name].as_dict()
            )


class TestCheckpointResume:
    """Suspend-at-epoch + resume reproduces the uninterrupted run bit for bit.

    The checkpoint snapshots the full engine state (clock, energy, scheduler
    queues, KV residency); a resumed run must therefore be indistinguishable
    from one that never stopped -- across both engine paths, every scheduling
    policy, and under eviction pressure.  Checkpoints also survive a JSON
    round trip, which is what the CLI writes to disk.
    """

    POLICIES = ["fcfs", "wfq", "priority"]

    def _policy_trace(self, seed=3):
        from repro.workload.generator import TenantSpec, generate_multi_tenant_trace
        from repro.workload.requests import SLOTarget

        tenants = (
            TenantSpec(name="chat", workload="lp64_ld16", num_requests=6,
                       arrival_rate_per_s=50.0, weight=2.0, priority=1),
            TenantSpec(name="batch", workload="lp96_ld8", num_requests=4,
                       arrival_rate_per_s=20.0),
        )
        return generate_multi_tenant_trace(
            tenants, seed=seed, slo=SLOTarget(ttft_s=0.5, latency_s=2.0)
        )

    def _suspend_resume(self, build, method, trace_fn, suspend_at):
        import json

        from repro.pipeline.checkpoint import EngineCheckpoint

        baseline = getattr(build(), method)(trace_fn())
        checkpoint = getattr(build(), method)(
            trace_fn(), suspend_at_epoch=suspend_at
        )
        assert isinstance(checkpoint, EngineCheckpoint), (
            "run finished before the suspend epoch; the scenario is too short "
            "to exercise resume"
        )
        # The CLI persists checkpoints as JSON: the round trip must be exact.
        restored = EngineCheckpoint.from_dict(
            json.loads(json.dumps(checkpoint.as_dict()))
        )
        resumed = getattr(build(), method)(trace_fn(), resume_from=restored)
        assert_bitwise_equal(baseline, resumed)
        return baseline, resumed

    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("method", ["run", "run_scalar"])
    def test_engine_paths_bitwise(self, engine_cls, method, tiny_arch, small_wafer_config):
        def build():
            return build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic")

        self._suspend_resume(build, method, mixed_trace, suspend_at=2)

    @pytest.mark.parametrize("method", ["run", "run_scalar"])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_scheduling_policies_bitwise(self, method, policy, tiny_arch, small_wafer_config):
        def build():
            return build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                                "dynamic", scheduling_policy=policy)

        baseline, resumed = self._suspend_resume(
            build, method, self._policy_trace, suspend_at=2
        )
        assert baseline.goodput == resumed.goodput
        for name in baseline.tenants:
            assert (
                baseline.tenants[name].as_dict() == resumed.tenants[name].as_dict()
            )

    @pytest.mark.parametrize("method", ["run", "run_scalar"])
    def test_under_eviction_pressure(self, method, tiny_arch, small_wafer_config):
        """Resume restores KV residency exactly even while the cache thrashes."""
        kwargs = dict(blocks_per_core=2, kv_cores=24, chunk=64)

        def build():
            return build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                                "dynamic", **kwargs)

        def trace_fn():
            return make_trace(num_requests=6, prefill=300, decode=64)

        baseline, _ = self._suspend_resume(build, method, trace_fn, suspend_at=3)
        assert baseline.evictions > 0  # the scenario actually thrashes

    def test_static_kv_policy_bitwise(self, tiny_arch, small_wafer_config):
        def build():
            return build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                                "static")

        self._suspend_resume(build, "run", mixed_trace, suspend_at=2)

    @pytest.mark.parametrize("method", ["run", "run_scalar"])
    @pytest.mark.parametrize("policy", ["wfq", "priority"])
    def test_mid_preemption_bitwise(self, method, policy, tiny_arch, small_wafer_config):
        """Suspending inside the preemption churn window resumes bit for bit.

        The checkpoint must capture a preempted victim sitting back at the
        front of its tenant queue with recompute debt — state that only
        exists while preemptive scheduling is mid-flight.
        """
        def build():
            return build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                                "dynamic", scheduling_policy=policy,
                                max_active=2, preemptive=True)

        baseline, resumed = self._suspend_resume(
            build, method, staggered_preemption_trace, suspend_at=5
        )
        preempted = sum(t.preemptions for t in baseline.tenants.values())
        assert preempted > 0  # the scenario actually preempts
        for name in baseline.tenants:
            assert (
                baseline.tenants[name].as_dict() == resumed.tenants[name].as_dict()
            )

    @pytest.mark.parametrize("method", ["run", "run_scalar"])
    def test_mid_preemption_with_quota_bitwise(self, method, tiny_arch, small_wafer_config):
        """Tenant quota occupancy survives the checkpoint round trip."""
        def build():
            return build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                                "dynamic", scheduling_policy="wfq",
                                max_active=2, preemptive=True,
                                blocks_per_core=8, kv_cores=24, chunk=64)

        def trace_fn():
            return staggered_preemption_trace(batch_quota=0.5)

        baseline, _ = self._suspend_resume(build, method, trace_fn, suspend_at=5)
        assert sum(t.preemptions for t in baseline.tenants.values()) > 0

    def test_suspend_past_end_returns_result(self, tiny_arch, small_wafer_config):
        """A suspend epoch the run never reaches degrades to a normal run."""
        build = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config,
                             "dynamic")
        baseline = build_engine(
            TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic"
        ).run(mixed_trace())
        result = build.run(mixed_trace(), suspend_at_epoch=10_000)
        assert_bitwise_equal(baseline, result)
