"""Equivalence of the array-based epoch engine and the retained scalar loop.

The fast path (:meth:`PipelineEngine.run`) advances all active sequences per
epoch with flat numpy arrays and accumulates energy per quantized context bin;
the retained reference (:meth:`PipelineEngine.run_scalar`) walks one sequence
at a time.  Both share the epoch-closing arithmetic, so every ``RunResult``
field must match **bit for bit** -- across all three pipeline modes, both KV
policies, and under eviction pressure.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.kvcache.manager import DistributedKVCacheManager
from repro.kvcache.static import StaticKVCacheManager
from repro.pipeline.blocked import BlockedTokenGrainedPipeline
from repro.pipeline.engine import PipelineConfig
from repro.pipeline.sequence_grained import SequenceGrainedPipeline
from repro.pipeline.stages import TokenCostModel
from repro.pipeline.tgp import TokenGrainedPipeline
from repro.workload.distributions import UniformLengthDistribution
from repro.workload.generator import TraceGenerator, WorkloadSpec

from .conftest import make_trace

ENGINES = [TokenGrainedPipeline, SequenceGrainedPipeline, BlockedTokenGrainedPipeline]
KV_POLICIES = ["dynamic", "static"]


def build_engine(engine_cls, arch, wafer_config, kv_policy, *, blocks_per_core=256,
                 kv_cores=48, chunk=32):
    cost_model = TokenCostModel(arch=arch, wafer_config=wafer_config)
    if kv_policy == "dynamic":
        kv_manager = DistributedKVCacheManager(
            arch, kv_core_ids=list(range(kv_cores)), blocks_per_core=blocks_per_core
        )
    else:
        kv_manager = StaticKVCacheManager(
            arch, kv_core_ids=kv_cores, blocks_per_core=blocks_per_core
        )
    config = PipelineConfig(chunk_tokens=chunk, context_quantum=32)
    return engine_cls(arch, cost_model, kv_manager, config=config)


def assert_bitwise_equal(fast, scalar):
    assert fast.total_tokens == scalar.total_tokens
    assert fast.output_tokens == scalar.output_tokens
    assert fast.evictions == scalar.evictions
    assert fast.recomputed_tokens == scalar.recomputed_tokens
    # Floating-point fields must be *exactly* equal, not approximately.
    assert fast.total_time_s == scalar.total_time_s
    assert fast.utilization == scalar.utilization
    assert fast.energy.compute_j == scalar.energy.compute_j
    assert fast.energy.on_chip_memory_j == scalar.energy.on_chip_memory_j
    assert fast.energy.off_chip_memory_j == scalar.energy.off_chip_memory_j
    assert fast.energy.communication_j == scalar.energy.communication_j
    # Latency distributions are derived from the per-epoch timestamps, so
    # they expose any divergence in completion/first-token stamping.
    assert fast.ttft.as_dict() == scalar.ttft.as_dict()
    assert fast.latency.as_dict() == scalar.latency.as_dict()
    assert fast.extra["epochs"] == scalar.extra["epochs"]


def mixed_trace(num_requests=10, seed=3, arrival_rate_per_s=0.0):
    spec = WorkloadSpec(
        name="mixed",
        distribution=UniformLengthDistribution(
            prefill_low=8, prefill_high=96, decode_low=4, decode_high=32
        ),
        num_requests=num_requests,
        seed=seed,
        arrival_rate_per_s=arrival_rate_per_s,
    )
    return TraceGenerator(spec).generate()


class TestArrayEngineMatchesScalar:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("kv_policy", KV_POLICIES)
    def test_fixed_length_trace(self, engine_cls, kv_policy, tiny_arch, small_wafer_config):
        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        result_fast = fast.run(make_trace(num_requests=8, prefill=48, decode=16))
        result_scalar = scalar.run_scalar(make_trace(num_requests=8, prefill=48, decode=16))
        assert_bitwise_equal(result_fast, result_scalar)

    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("kv_policy", KV_POLICIES)
    def test_mixed_length_trace(self, engine_cls, kv_policy, tiny_arch, small_wafer_config):
        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        assert_bitwise_equal(fast.run(mixed_trace()), scalar.run_scalar(mixed_trace()))

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_under_eviction_pressure(self, engine_cls, tiny_arch, small_wafer_config):
        """An undersized cache exercises eviction + re-prefill in both paths."""
        kwargs = dict(blocks_per_core=2, kv_cores=24, chunk=64)
        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        trace_args = dict(num_requests=6, prefill=300, decode=64)
        result_fast = fast.run(make_trace(**trace_args))
        result_scalar = scalar.run_scalar(make_trace(**trace_args))
        assert result_fast.evictions > 0  # the scenario actually thrashes
        assert_bitwise_equal(result_fast, result_scalar)

    def test_epoch_records_match(self, tiny_arch, small_wafer_config):
        fast = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        scalar = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        fast.run(mixed_trace())
        scalar.run_scalar(mixed_trace())
        assert [dataclasses.astuple(r) for r in fast.epochs] == [
            dataclasses.astuple(r) for r in scalar.epochs
        ]

    def test_prefill_only_requests(self, tiny_arch, small_wafer_config):
        fast = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        scalar = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result_fast = fast.run(make_trace(num_requests=3, prefill=16, decode=0))
        result_scalar = scalar.run_scalar(make_trace(num_requests=3, prefill=16, decode=0))
        assert result_fast.output_tokens == 0
        assert result_fast.ttft.count == 0  # no output tokens -> no TTFT samples
        assert_bitwise_equal(result_fast, result_scalar)


class TestOpenLoopEquivalence:
    """Fast vs. scalar must stay bitwise-equal under nonzero arrival rates."""

    #: slow (idle gaps dominate) and bursty (nearly closed-batch)
    ARRIVAL_RATES = [0.5, 500.0]

    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("kv_policy", KV_POLICIES)
    @pytest.mark.parametrize("rate", ARRIVAL_RATES)
    def test_arrival_driven_trace(
        self, engine_cls, kv_policy, rate, tiny_arch, small_wafer_config
    ):
        fast = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        scalar = build_engine(engine_cls, tiny_arch, small_wafer_config, kv_policy)
        result_fast = fast.run(mixed_trace(arrival_rate_per_s=rate))
        result_scalar = scalar.run_scalar(mixed_trace(arrival_rate_per_s=rate))
        assert result_fast.ttft.count > 0
        assert result_fast.latency.p99_s > 0
        assert_bitwise_equal(result_fast, result_scalar)

    def test_arrival_driven_under_eviction_pressure(self, tiny_arch, small_wafer_config):
        kwargs = dict(blocks_per_core=2, kv_cores=24, chunk=64)
        fast = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        scalar = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic", **kwargs)
        spec = WorkloadSpec(
            name="pressure",
            distribution=UniformLengthDistribution(
                prefill_low=200, prefill_high=320, decode_low=32, decode_high=64
            ),
            num_requests=6,
            seed=7,
            # bursty: arrivals land faster than sequences drain, so the
            # undersized cache still thrashes
            arrival_rate_per_s=2000.0,
        )
        result_fast = fast.run(TraceGenerator(spec).generate())
        result_scalar = scalar.run_scalar(TraceGenerator(spec).generate())
        assert result_fast.evictions > 0  # the scenario actually thrashes
        assert_bitwise_equal(result_fast, result_scalar)

    def test_zero_rate_reduces_to_batch(self, tiny_arch, small_wafer_config):
        """arrival_rate_per_s == 0 is the regression anchor: identical to batch."""
        open_loop = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        batch = build_engine(TokenGrainedPipeline, tiny_arch, small_wafer_config, "dynamic")
        result_open = open_loop.run(mixed_trace(arrival_rate_per_s=0.0))
        result_batch = batch.run(mixed_trace())
        assert_bitwise_equal(result_open, result_batch)
