"""Tests for the intra-core H-tree cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.htree import (
    LeafAssignment,
    NodeOp,
    assignment_cost,
    build_tree,
    evaluate_tree,
)


def grouped(slices_per_part: int, parts: int) -> LeafAssignment:
    """Leaves grouped by output part (best layout)."""
    slices = [
        (i, o) for o in range(parts) for i in range(slices_per_part)
    ]
    return LeafAssignment(slices=slices)


def interleaved(slices_per_part: int, parts: int) -> LeafAssignment:
    """Leaves interleaving output parts (worst layout)."""
    slices = [
        (i, o) for i in range(slices_per_part) for o in range(parts)
    ]
    return LeafAssignment(slices=slices)


class TestLeafAssignment:
    def test_power_of_two_required(self):
        with pytest.raises(ConfigurationError):
            LeafAssignment(slices=[(0, 0), (0, 1), (1, 0)])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            LeafAssignment(slices=[])


class TestTreeStructure:
    def test_single_output_part_all_reductions(self):
        assignment = grouped(slices_per_part=4, parts=1)
        cost = assignment_cost(assignment)
        assert cost.concat_nodes == 0
        assert cost.reduction_nodes == 3
        assert cost.weighted_concat_depth == 0

    def test_all_distinct_parts_all_concats(self):
        assignment = LeafAssignment(slices=[(0, o) for o in range(4)])
        cost = assignment_cost(assignment)
        assert cost.reduction_nodes == 0
        assert cost.concat_nodes == 3

    def test_grouped_beats_interleaved(self):
        best = assignment_cost(grouped(2, 2))
        worst = assignment_cost(interleaved(2, 2))
        assert best.weighted_concat_depth < worst.weighted_concat_depth

    def test_grouped_beats_interleaved_larger(self):
        best = assignment_cost(grouped(4, 4))
        worst = assignment_cost(interleaved(4, 4))
        assert best.weighted_concat_depth < worst.weighted_concat_depth
        assert best.concat_nodes < worst.concat_nodes

    def test_tree_levels(self):
        assignment = grouped(4, 2)
        root = build_tree(assignment)
        assert root.depth == 3  # 8 leaves -> 3 levels

    def test_root_op_concatenation_for_two_parts(self):
        assignment = grouped(2, 2)
        root = build_tree(assignment)
        assert root.op is NodeOp.CONCATENATION

    def test_traffic_accounts_for_bytes(self):
        assignment = grouped(2, 2)
        cost = assignment_cost(assignment, output_bytes_per_part=100.0)
        assert cost.traffic_bytes > 0

    def test_concat_near_leaves_more_traffic(self):
        best = assignment_cost(grouped(4, 2), output_bytes_per_part=128.0)
        worst = assignment_cost(interleaved(4, 2), output_bytes_per_part=128.0)
        assert worst.traffic_bytes >= best.traffic_bytes

    def test_evaluate_tree_consistent_with_assignment_cost(self):
        assignment = grouped(4, 2)
        direct = evaluate_tree(build_tree(assignment))
        wrapped = assignment_cost(assignment)
        assert direct.weighted_concat_depth == wrapped.weighted_concat_depth

    def test_as_dict(self):
        cost = assignment_cost(grouped(2, 2))
        data = cost.as_dict()
        assert set(data) >= {"weighted_concat_depth", "concat_nodes", "reduction_nodes"}
