"""Tests for the per-token stage cost model."""

import pytest

from repro.models.pipeline_stages import StageKind
from repro.pipeline.stages import TokenCostModel


@pytest.fixture
def cost_model(tiny_arch, small_wafer_config):
    return TokenCostModel(arch=tiny_arch, wafer_config=small_wafer_config)


class TestLatency:
    def test_all_stage_latencies_positive(self, cost_model):
        for kind in StageKind:
            assert cost_model.stage_latency(kind, context=64) > 0

    def test_stage_interval_is_max(self, cost_model):
        interval = cost_model.stage_interval(context=64)
        latencies = [cost_model.stage_latency(kind, 64) for kind in StageKind]
        assert interval == pytest.approx(max(latencies))

    def test_ffn_is_bottleneck_for_weighted_stages(self, cost_model):
        ffn = cost_model.stage_latency(StageKind.FFN, 64)
        proj = cost_model.stage_latency(StageKind.PROJECTION, 64)
        assert ffn >= proj

    def test_context_stage_latency_grows_with_context(self, cost_model):
        short = cost_model.stage_latency(StageKind.CONTEXT, 16)
        long = cost_model.stage_latency(StageKind.CONTEXT, 1024)
        assert long >= short

    def test_weighted_stage_latency_context_independent(self, cost_model):
        assert cost_model.stage_latency(StageKind.FFN, 16) == pytest.approx(
            cost_model.stage_latency(StageKind.FFN, 2048)
        )

    def test_token_pipeline_latency_scales_with_blocks(self, cost_model, tiny_arch):
        per_block = sum(cost_model.stage_latency(kind, 64) for kind in StageKind)
        assert cost_model.token_pipeline_latency(64) == pytest.approx(
            per_block * tiny_arch.num_blocks
        )

    def test_non_cim_weighted_stage_slower(self, tiny_arch, small_wafer_config):
        cim = TokenCostModel(arch=tiny_arch, wafer_config=small_wafer_config)
        no_cim = TokenCostModel(
            arch=tiny_arch, wafer_config=small_wafer_config, cim_enabled=False
        )
        assert no_cim.stage_latency(StageKind.FFN, 64) >= cim.stage_latency(StageKind.FFN, 64)

    def test_weight_reuse_amortises_non_cim_reads(self, tiny_arch, small_wafer_config):
        per_token = TokenCostModel(
            arch=tiny_arch, wafer_config=small_wafer_config, cim_enabled=False,
            weight_reuse_tokens=1.0,
        )
        amortised = TokenCostModel(
            arch=tiny_arch, wafer_config=small_wafer_config, cim_enabled=False,
            weight_reuse_tokens=512.0,
        )
        assert amortised.stage_latency(StageKind.FFN, 64) <= per_token.stage_latency(
            StageKind.FFN, 64
        )

    def test_reduced_link_bandwidth_slows_transfers(self, tiny_arch, small_wafer_config):
        fast = TokenCostModel(arch=tiny_arch, wafer_config=small_wafer_config)
        slow = TokenCostModel(
            arch=tiny_arch, wafer_config=small_wafer_config, transfer_bandwidth_scale=0.01
        )
        assert slow.stage_interval(64) >= fast.stage_interval(64)

    def test_stage_report_covers_all_stages(self, cost_model):
        report = cost_model.stage_report(64)
        assert [entry.kind for entry in report] == list(StageKind)


class TestEnergy:
    def test_energy_breakdown_positive(self, cost_model):
        energy = cost_model.token_energy(128)
        assert energy.compute_j > 0
        assert energy.on_chip_memory_j > 0
        assert energy.communication_j > 0
        assert energy.off_chip_memory_j == 0.0

    def test_energy_grows_with_context(self, cost_model):
        assert cost_model.token_energy(2048).total_j > cost_model.token_energy(16).total_j

    def test_energy_scales_with_average_hops(self, tiny_arch, small_wafer_config):
        near = TokenCostModel(arch=tiny_arch, wafer_config=small_wafer_config, average_hops=1.0)
        far = TokenCostModel(arch=tiny_arch, wafer_config=small_wafer_config, average_hops=10.0)
        assert far.token_energy(64).communication_j > near.token_energy(64).communication_j
        assert far.token_energy(64).compute_j == pytest.approx(
            near.token_energy(64).compute_j
        )

    def test_non_cim_energy_much_higher(self, tiny_arch, small_wafer_config):
        cim = TokenCostModel(arch=tiny_arch, wafer_config=small_wafer_config)
        no_cim = TokenCostModel(
            arch=tiny_arch, wafer_config=small_wafer_config, cim_enabled=False
        )
        assert no_cim.token_energy(64).total_j > 2 * cim.token_energy(64).total_j

    def test_weight_reuse_reduces_non_cim_energy(self, tiny_arch, small_wafer_config):
        per_token = TokenCostModel(
            arch=tiny_arch, wafer_config=small_wafer_config, cim_enabled=False,
            weight_reuse_tokens=1.0,
        )
        amortised = TokenCostModel(
            arch=tiny_arch, wafer_config=small_wafer_config, cim_enabled=False,
            weight_reuse_tokens=512.0,
        )
        assert amortised.token_energy(64).on_chip_memory_j < per_token.token_energy(64).on_chip_memory_j

    def test_lut_optimisation_saves_compute_energy(self, tiny_arch, small_wafer_config):
        base = TokenCostModel(arch=tiny_arch, wafer_config=small_wafer_config)
        lut = TokenCostModel(
            arch=tiny_arch, wafer_config=small_wafer_config, lut_optimized=True
        )
        assert lut.token_energy(64).compute_j == pytest.approx(
            0.9 * base.token_energy(64).compute_j, rel=0.05
        )

    def test_energy_scales_with_blocks(self, tiny_arch, small_wafer_config):
        import dataclasses

        double = dataclasses.replace(tiny_arch, num_blocks=4)
        small = TokenCostModel(arch=tiny_arch, wafer_config=small_wafer_config)
        big = TokenCostModel(arch=double, wafer_config=small_wafer_config)
        assert big.token_energy(64).total_j == pytest.approx(
            2 * small.token_energy(64).total_j, rel=0.01
        )
