"""Test package marker.

Making ``tests`` a package lets test modules import shared helpers from the
sibling ``conftest`` (``from .conftest import make_trace``) without relying on
pytest's rootdir-relative sys.path insertion.
"""
