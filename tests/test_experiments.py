"""Tests for the experiment drivers (reduced settings; shape checks).

These tests assert the *qualitative* properties the paper's figures show
(orderings, peaks, trends) rather than absolute values, using small request
counts so the whole file runs in tens of seconds.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ExperimentSettings,
    fig01_scaling_tax,
    fig11_row_activation,
    fig13_throughput,
    fig14_energy,
    fig15_ablation,
    fig17_kv_threshold,
    fig18_mapping,
    fig21_cim_cores,
    headline,
)
from repro.experiments.common import (
    OUROBOROS_NAME,
    FigureResult,
    geometric_mean,
    normalized_energy,
    normalized_throughput,
    run_all_systems,
)

FAST = ExperimentSettings(num_requests=25, anneal_iterations=5)


@pytest.fixture(scope="module")
def small_grid():
    return fig13_throughput.main_comparison_grid(
        FAST, models=("llama-13b",), workloads=("lp128_ld2048",)
    )


class TestCommonHelpers:
    def test_run_all_systems_contains_everyone(self, small_grid):
        cell = small_grid[("llama-13b", "lp128_ld2048")]
        assert OUROBOROS_NAME in cell
        assert "DGX A100" in cell
        assert len(cell) == 5

    def test_normalization_reference_is_one(self, small_grid):
        cell = small_grid[("llama-13b", "lp128_ld2048")]
        assert normalized_throughput(cell)["DGX A100"] == pytest.approx(1.0)
        assert normalized_energy(cell)["DGX A100"] == pytest.approx(1.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_figure_result_table_formatting(self):
        result = FigureResult(figure="Fig. X", description="demo")
        result.rows_data.append({"a": 1, "b": 2.5})
        table = result.format_table()
        assert "Fig. X" in table
        assert "2.500" in table

    def test_grid_cache_reused(self):
        first = fig13_throughput.main_comparison_grid(
            FAST, models=("llama-13b",), workloads=("lp128_ld2048",)
        )
        second = fig13_throughput.main_comparison_grid(
            FAST, models=("llama-13b",), workloads=("lp128_ld2048",)
        )
        assert first is second

    def test_all_experiments_registered(self):
        assert len(ALL_EXPERIMENTS) == 16
        assert "fig22" in ALL_EXPERIMENTS
        assert "fig23" in ALL_EXPERIMENTS
        assert "fig24" in ALL_EXPERIMENTS
        assert "fig25" in ALL_EXPERIMENTS
        assert "fig26" in ALL_EXPERIMENTS


class TestFig01:
    def test_data_movement_dominates_and_grows(self):
        result = fig01_scaling_tax.run(FAST)
        fractions = [row["data_movement_fraction"] for row in result.rows()]
        assert all(f > 0.5 for f in fractions)
        totals = [row["total_energy_j"] for row in result.rows()]
        assert totals[-1] > totals[0]

    def test_gpu_count_grows_with_model(self):
        result = fig01_scaling_tax.run(FAST)
        gpus = [row["num_gpus"] for row in result.rows()]
        assert gpus == sorted(gpus)
        assert gpus[-1] == 8


class TestFig11:
    def test_peak_at_1_over_32(self):
        result = fig11_row_activation.run(FAST)
        assert result.best_ratio() == pytest.approx(1 / 32)

    def test_regimes_labelled(self):
        result = fig11_row_activation.run(FAST)
        bounds = {row["row_activation_ratio"]: row["bound_by"] for row in result.rows()}
        assert bounds["1/4"] == "sram_capacity"
        assert bounds["1/128"] == "compute"


class TestFig13And14:
    def test_ouroboros_wins_throughput(self, small_grid):
        result = fig13_throughput.run(
            FAST, models=("llama-13b",), workloads=("lp128_ld2048",)
        )
        cell = result.grid[("llama-13b", "lp128_ld2048")]
        assert cell[OUROBOROS_NAME] > max(
            value for name, value in cell.items() if name != OUROBOROS_NAME
        )

    def test_ouroboros_wins_energy(self, small_grid):
        result = fig14_energy.run(
            FAST, models=("llama-13b",), workloads=("lp128_ld2048",)
        )
        cell = result.grid[("llama-13b", "lp128_ld2048")]
        assert cell[OUROBOROS_NAME] < min(
            value for name, value in cell.items() if name != OUROBOROS_NAME
        )

    def test_energy_breakdown_rows(self):
        result = fig14_energy.run(
            FAST, models=("llama-13b",), workloads=("lp128_ld2048",)
        )
        ours_rows = [row for row in result.rows() if row["system"] == OUROBOROS_NAME]
        assert ours_rows[0]["off_chip_frac"] == 0.0
        dgx_rows = [row for row in result.rows() if row["system"] == "DGX A100"]
        assert dgx_rows[0]["off_chip_frac"] > 0.3

    def test_headline_summary(self):
        result = headline.run(FAST, models=("llama-13b",), workloads=("lp128_ld2048",))
        assert result.average_speedup > 1.0
        assert result.average_efficiency_gain > 1.0
        assert result.peak_speedup >= result.average_speedup


class TestFig15:
    @pytest.fixture(scope="class")
    def ablation(self):
        return fig15_ablation.run(FAST, models=("llama-13b",), workloads=("lp128_ld2048",))

    def test_full_system_beats_baseline(self, ablation):
        series = ablation.normalized_series("llama-13b", "lp128_ld2048")
        assert series["+KV Cache"]["throughput"] > 1.5
        assert series["+KV Cache"]["energy"] < 0.6

    def test_cim_step_cuts_energy(self, ablation):
        series = ablation.normalized_series("llama-13b", "lp128_ld2048")
        assert series["+CIM"]["energy"] < series["+Wafer"]["energy"] * 0.7

    def test_tgp_step_improves_throughput(self, ablation):
        series = ablation.normalized_series("llama-13b", "lp128_ld2048")
        assert series["+TGP"]["throughput"] >= series["+CIM"]["throughput"]

    def test_kv_step_improves_throughput(self, ablation):
        series = ablation.normalized_series("llama-13b", "lp128_ld2048")
        assert series["+KV Cache"]["throughput"] >= series["+Mapping"]["throughput"]

    def test_rows_cover_all_steps(self, ablation):
        steps = {row["step"] for row in ablation.rows()}
        assert steps == set(fig15_ablation.ABLATION_STEPS)


class TestFig17:
    def test_threshold_sweep_runs(self):
        result = fig17_kv_threshold.run(
            FAST, models=("llama-13b",), thresholds=(0.0, 0.2)
        )
        series = result.normalized_series("llama-13b")
        assert set(series) == {0.0, 0.2}
        assert series[0.0]["throughput"] == pytest.approx(1.0)


class TestFig18:
    def test_ordering_and_reduction(self):
        result = fig18_mapping.run(FAST, models=("llama-13b",))
        normalized = result.normalized("llama-13b")
        assert normalized["Cerebras"] == pytest.approx(1.0)
        assert normalized["Ours"] < normalized["Cerebras"]
        assert normalized["Ours"] <= normalized["WaferLLM"] * 1.001
        summary = fig18_mapping.mapping_quality_summary(result)
        assert 0.0 < summary["reduction_vs_cerebras"] < 1.0


class TestFig22:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.experiments import fig22_arrival_sweep
        from repro.perf.sweep import SweepRunner

        return fig22_arrival_sweep.run(
            FAST,
            model="llama-13b",
            workload="lp128_ld2048",
            load_fractions=(0.25, 2.0),
            runner=SweepRunner(max_workers=1),
        )

    def test_rows_cover_the_sweep(self, sweep):
        assert [row["load"] for row in sweep.rows()] == [0.25, 2.0]
        assert sweep.base_rate_per_s > 0
        assert "Fig. 22" in sweep.format_table()

    def test_latency_grows_with_load(self, sweep):
        low, high = sweep.rows()
        assert 0 < low["ttft_p50_s"]
        assert low["latency_p95_s"] <= high["latency_p95_s"]
        assert low["latency_p50_s"] <= low["latency_p95_s"] <= low["latency_p99_s"]

    def test_throughput_grows_toward_saturation(self, sweep):
        low, high = sweep.rows()
        assert 0 < low["throughput_tok_s"] < high["throughput_tok_s"]
        assert sweep.saturation_throughput_tok_s() == pytest.approx(
            high["throughput_tok_s"]
        )


class TestFig23:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.experiments import fig23_slo_goodput
        from repro.perf.sweep import SweepRunner

        return fig23_slo_goodput.run(
            FAST,
            model="llama-13b",
            load_fractions=(0.25, 8.0),
            runner=SweepRunner(max_workers=1),
        )

    def test_rows_cover_tenants_and_loads(self, sweep):
        rows = sweep.rows()
        assert [(row["load"], row["tenant"]) for row in rows] == [
            (0.25, "interactive"),
            (0.25, "batch"),
            (8.0, "interactive"),
            (8.0, "batch"),
        ]
        assert sweep.base_rate_per_s > 0
        assert "Fig. 23" in sweep.format_table()

    def test_slos_derive_per_tenant(self, sweep):
        assert set(sweep.tenant_slos) == {"interactive", "batch"}
        for slo in sweep.tenant_slos.values():
            assert slo.ttft_s > 0 and slo.latency_s > 0

    def test_goodput_degrades_past_saturation(self, sweep):
        by_key = {(row["load"], row["tenant"]): row for row in sweep.rows()}
        for tenant in ("interactive", "batch"):
            light = by_key[(0.25, tenant)]
            heavy = by_key[(8.0, tenant)]
            assert 0.0 <= heavy["goodput"] <= light["goodput"] <= 1.0
        # With a 25-request trace only the long-request tenant reliably
        # shows the overload signature; the full-size run is asserted by
        # benchmarks/test_fig23_slo.py.
        assert by_key[(8.0, "batch")]["goodput"] < by_key[(0.25, "batch")]["goodput"]
        assert not by_key[(8.0, "batch")]["meets_slo"]
        assert by_key[(8.0, "batch")]["ttft_p99_s"] > by_key[(0.25, "batch")]["ttft_p99_s"]

    def test_light_load_meets_slo(self, sweep):
        for row in sweep.rows():
            if row["load"] == 0.25:
                assert row["meets_slo"]

    def test_max_load_reflects_the_crossing(self, sweep):
        assert set(sweep.max_load) == {"interactive", "batch"}
        assert sweep.max_load_meeting_slo() == min(sweep.max_load.values())
        assert sweep.max_load_meeting_slo() >= 0.25


class TestFig21:
    def test_table2_entries(self):
        rows = fig21_cim_cores.table2()
        assert len(rows) == 3
        ours = next(row for row in rows if row["design"] == "This work")
        assert ours["wafer_capacity_gb"] == pytest.approx(54.0)

    def test_dense_designs_lose_at_system_level(self):
        result = fig21_cim_cores.run(
            FAST, models=("llama-13b",), workloads=("lp128_ld2048",)
        )
        throughput = result.normalized_throughput("llama-13b", "lp128_ld2048")
        assert throughput["VLSI'22"] < 1.0
        assert throughput["ISSCC'22"] < 1.0
        energy = result.normalized_energy("llama-13b", "lp128_ld2048")
        assert energy["This work + LUT"] < 1.0
        assert energy["VLSI'22"] > 1.0


class TestFig24:
    @pytest.fixture(scope="class")
    def comparison(self):
        from repro.experiments import fig24_policy_comparison
        from repro.perf.sweep import SweepRunner

        return fig24_policy_comparison.run(
            FAST,
            model="llama-13b",
            load_fractions=(0.25, 4.0),
            runner=SweepRunner(max_workers=1),
        )

    def test_rows_cover_policies_and_loads(self, comparison):
        rows = comparison.rows()
        assert [(row["policy"], row["load"]) for row in rows] == [
            ("fcfs", 0.25), ("fcfs", 4.0),
            ("wfq", 0.25), ("wfq", 4.0),
            ("priority", 0.25), ("priority", 4.0),
        ]
        assert "Fig. 24" in comparison.format_table()

    def test_anchors_shared_across_policies(self, comparison):
        """Every policy is swept at identical loads against identical SLOs:
        the base rate and per-tenant SLOs come from the FCFS anchor."""
        assert comparison.base_rate_per_s == comparison.results["fcfs"].base_rate_per_s
        for policy in ("wfq", "priority"):
            sweep = comparison.results[policy]
            assert sweep.base_rate_per_s == comparison.base_rate_per_s
            assert sweep.tenant_slos == comparison.tenant_slos

    def test_headline_read_at_heaviest_load(self, comparison):
        assert comparison.headline_load == 4.0
        for policy in ("fcfs", "wfq", "priority"):
            headline = comparison.headline[policy]
            assert 0.0 <= headline["goodput"] <= 1.0
            assert headline["interactive_ttft_p95_s"] >= 0.0

    def test_policies_never_hurt_interactive_ttft_at_light_load(self, comparison):
        """At light load the queue is short and every policy degenerates to
        (near-)FCFS order; the full-size overload contrast is asserted by
        benchmarks/test_fig24_policy.py."""
        by_key = {(row["policy"], row["load"]): row for row in comparison.rows()}
        for policy in ("wfq", "priority"):
            assert by_key[(policy, 0.25)]["interactive_ttft_p95_s"] == pytest.approx(
                by_key[("fcfs", 0.25)]["interactive_ttft_p95_s"]
            )


class TestFig26:
    @pytest.fixture(scope="class")
    def preemption(self):
        from repro.experiments import fig26_preemption
        from repro.perf.sweep import SweepRunner

        return fig26_preemption.run(
            FAST,
            model="llama-13b",
            load_fractions=(0.25, 4.0),
            max_active_caps=(4,),
            runner=SweepRunner(max_workers=1),
        )

    def test_rows_cover_the_co_sweep(self, preemption):
        rows = preemption.rows()
        keys = [
            (row["policy"], row["max_active"], row["preemptive"], row["load"])
            for row in rows
        ]
        assert keys == [
            ("wfq", 4, False, 0.25), ("wfq", 4, False, 4.0),
            ("wfq", 4, True, 0.25), ("wfq", 4, True, 4.0),
            ("priority", 4, False, 0.25), ("priority", 4, False, 4.0),
            ("priority", 4, True, 0.25), ("priority", 4, True, 4.0),
        ]
        assert "Fig. 26" in preemption.format_table()

    def test_anchors_shared_across_cells(self, preemption):
        """Every (policy, cap, preemptive) cell is swept at identical loads
        against identical SLOs from the FCFS anchor."""
        for sweep in preemption.results.values():
            assert sweep.base_rate_per_s == preemption.base_rate_per_s
            assert sweep.tenant_slos == preemption.tenant_slos

    def test_preemption_inert_at_light_load(self, preemption):
        """With no admission contention the knob never fires and the numbers
        reproduce the non-preemptive run exactly."""
        by_key = {
            (row["policy"], row["preemptive"], row["load"]): row
            for row in preemption.rows()
        }
        for policy in ("wfq", "priority"):
            on, off = by_key[(policy, True, 0.25)], by_key[(policy, False, 0.25)]
            assert on["preemptions"] == 0
            assert on["recomputed_tokens"] == 0
            assert on["interactive_ttft_p95_s"] == off["interactive_ttft_p95_s"]

    def test_headline_carries_cut_and_tax(self, preemption):
        assert preemption.headline_load == 4.0
        headline = preemption.headline
        assert headline["interactive_ttft_p95_s"] >= 0.0
        assert headline["baseline_interactive_ttft_p95_s"] >= 0.0
        assert headline["preemptions"] >= 0.0
        assert headline["recomputed_tokens"] >= 0.0
        assert 0.0 <= headline["goodput"] <= 1.0
