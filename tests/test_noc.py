"""Tests for the mesh network-on-wafer model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.noc import NoCConfig, NoCModel


@pytest.fixture
def noc(small_wafer):
    return NoCModel(small_wafer)


class TestRouting:
    def test_same_core_zero(self, noc):
        assert noc.route_hops(5, 5) == (0, 0)

    def test_xy_route_matches_manhattan(self, noc, small_wafer):
        a = small_wafer.core_id_at(0, 0)
        b = small_wafer.core_id_at(2, 5)
        hops, crossings = noc.route_hops(a, b)
        assert hops == 7
        assert crossings == 1

    def test_transfer_cost_zero_bytes(self, noc):
        cost = noc.transfer_cost(0, 1, 0)
        assert cost.latency_s == 0.0
        assert cost.energy_j == 0.0

    def test_transfer_latency_components(self, noc, small_wafer):
        a = small_wafer.core_id_at(0, 0)
        b = small_wafer.core_id_at(0, 2)
        config = NoCConfig()
        cost = noc.transfer_cost(a, b, 1024)
        expected = 2 * config.per_hop_latency_s + 1024 / config.link_bandwidth_bytes_per_s
        assert cost.latency_s == pytest.approx(expected)

    def test_transfer_energy_scales_with_bytes(self, noc):
        small = noc.transfer_cost(0, 3, 512)
        large = noc.transfer_cost(0, 3, 2048)
        assert large.energy_j == pytest.approx(4 * small.energy_j)

    def test_die_crossing_adds_latency_and_energy(self, noc, small_wafer):
        same_die = noc.transfer_cost(
            small_wafer.core_id_at(0, 0), small_wafer.core_id_at(0, 3), 1024
        )
        cross_die = noc.transfer_cost(
            small_wafer.core_id_at(0, 1), small_wafer.core_id_at(0, 4), 1024
        )
        assert cross_die.latency_s > same_die.latency_s
        assert cross_die.energy_j > same_die.energy_j


class TestLinkFaults:
    def test_reroute_around_faulty_link(self, noc, small_wafer):
        a = small_wafer.core_id_at(0, 0)
        b = small_wafer.core_id_at(0, 1)
        baseline_hops, _ = noc.route_hops(a, b)
        noc.mark_link_faulty(a, b)
        hops, _ = noc.route_hops(a, b)
        assert hops > baseline_hops

    def test_mark_non_adjacent_link_rejected(self, noc):
        with pytest.raises(ConfigurationError):
            noc.mark_link_faulty(0, 9)

    def test_clear_link_faults(self, noc, small_wafer):
        a, b = small_wafer.core_id_at(0, 0), small_wafer.core_id_at(0, 1)
        noc.mark_link_faulty(a, b)
        noc.clear_link_faults()
        assert noc.route_hops(a, b) == (1, 0)

    def test_faulty_links_reported(self, noc, small_wafer):
        a, b = small_wafer.core_id_at(1, 1), small_wafer.core_id_at(1, 2)
        noc.mark_link_faulty(a, b)
        assert frozenset((a, b)) in noc.faulty_links


class TestStatsAndMulticast:
    def test_record_transfer_accumulates(self, noc):
        noc.record_transfer(0, 5, 1000)
        noc.record_transfer(0, 5, 1000)
        assert noc.stats.total_transfers == 2
        assert noc.stats.total_bytes == 2000
        assert noc.stats.total_energy_j > 0

    def test_reset_stats(self, noc):
        noc.record_transfer(0, 5, 1000)
        noc.reset_stats()
        assert noc.stats.total_transfers == 0

    def test_multicast_empty(self, noc):
        cost = noc.multicast_cost(0, [], 1024)
        assert cost.latency_s == 0.0

    def test_multicast_latency_is_max_energy_is_sum(self, noc, small_wafer):
        dsts = [small_wafer.core_id_at(0, 1), small_wafer.core_id_at(0, 5)]
        single_far = noc.transfer_cost(0, dsts[1], 1024)
        multicast = noc.multicast_cost(0, dsts, 1024)
        assert multicast.latency_s == pytest.approx(single_far.latency_s)
        assert multicast.energy_j > single_far.energy_j
