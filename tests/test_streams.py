"""Lazy request streams: bitwise equivalence with the materialised path.

The load-bearing claims pinned here:

* :func:`multi_tenant_stream` / :func:`stream_from_spec` emit *bitwise* the
  requests the materialising generators produce — same ids, lengths,
  arrival times, tenant fields — including under heavy arrival-time
  collisions, where the heap tie-break must reproduce the materialised
  ``sort`` order exactly;
* serving a :class:`StreamingTrace` is bit-for-bit equal to serving the
  materialised trace, across scheduling policies, open-loop arrivals,
  evictions, shedding, and both the fast and scalar engine paths —
  streaming is an execution knob, never a semantics knob;
* suspend/resume captures the stream cursor and the accumulator state, so a
  streaming run survives a JSON checkpoint round trip bit for bit;
* resident memory really is O(active sequences): the tracemalloc peak of a
  4x longer streaming run stays within a constant factor (slow test).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import DeploymentSpec, serve, stream_for, trace_for
from repro.errors import ConfigurationError
from repro.pipeline.checkpoint import EngineCheckpoint
from repro.pipeline.tgp import TokenGrainedPipeline
from repro.workload.distributions import FixedLengthDistribution, get_distribution
from repro.workload.generator import (
    TenantSpec,
    TraceGenerator,
    WorkloadSpec,
    generate_multi_tenant_trace,
)
from repro.workload.requests import Request, SLOTarget
from repro.workload.streams import (
    StreamingTrace,
    multi_tenant_stream,
    stream_from_spec,
    workload_stream,
)

from .test_engine_equivalence import build_engine


def with_pipeline(spec, **overrides):
    """A spec with pipeline-config fields overridden (policy, shedding...)."""
    from dataclasses import replace

    pipeline = replace(spec.config.pipeline, **overrides)
    return replace(spec, config=replace(spec.config, pipeline=pipeline))


def materialised_oracle(tenants, seed=0):
    """The retired eager generator, inlined verbatim as the reference.

    ``generate_multi_tenant_trace`` is now a shim draining the stream, so it
    cannot serve as its own oracle; this reproduces the original
    draw-sort-enumerate algorithm request for request.
    """
    rows = []
    for index, tenant in enumerate(tenants):
        distribution = get_distribution(tenant.workload)
        length_rng = np.random.default_rng((seed, index))
        arrival_rng = np.random.default_rng((seed, index, 1))
        arrival = 0.0
        for order in range(tenant.num_requests):
            sample = distribution.sample(length_rng)
            if tenant.arrival_rate_per_s > 0:
                arrival += float(
                    arrival_rng.exponential(1.0 / tenant.arrival_rate_per_s)
                )
            rows.append(
                (arrival, index, order, sample.prefill_length, sample.decode_length)
            )
    rows.sort(key=lambda row: (row[0], row[1], row[2]))
    return [
        Request(
            request_id=request_id,
            prefill_length=prefill,
            decode_length=decode,
            arrival_time=arrival,
            tenant=tenants[index].name,
            weight=tenants[index].weight,
            priority=tenants[index].priority,
        )
        for request_id, (arrival, index, _, prefill, decode) in enumerate(rows)
    ]


TENANTS = (
    TenantSpec(name="interactive", workload="lp48_ld16", num_requests=40,
               arrival_rate_per_s=80.0, weight=3.0, priority=1),
    TenantSpec(name="batch", workload="lp96_ld32", num_requests=20,
               arrival_rate_per_s=20.0),
    TenantSpec(name="burst", workload="lp48_ld16", num_requests=15,
               arrival_rate_per_s=500.0),
)


class TestStreamBitwiseEquivalence:
    def test_multi_tenant_stream_matches_oracle(self):
        emitted = list(multi_tenant_stream(TENANTS, seed=7).stream)
        assert emitted == materialised_oracle(TENANTS, seed=7)

    def test_shim_trace_equals_oracle(self):
        trace = generate_multi_tenant_trace(TENANTS, seed=7)
        assert trace.requests == materialised_oracle(TENANTS, seed=7)

    def test_single_tenant_stream_matches_generator(self):
        spec = WorkloadSpec(
            name="wikitext2",
            distribution=get_distribution("wikitext2"),
            num_requests=64,
            seed=11,
            arrival_rate_per_s=40.0,
        )
        eager = TraceGenerator(spec).generate()
        lazy = stream_from_spec(spec).materialize()
        assert lazy.requests == eager.requests
        assert lazy.mean_prefill_length == eager.mean_prefill_length
        assert lazy.mean_decode_length == eager.mean_decode_length

    def test_collision_heavy_tie_break(self):
        """All-zero arrivals: every request ties, ids must follow sort order.

        Closed-loop tenants (rate 0) put every arrival at t=0.0, so the heap
        resolves *only* on the ``(tenant index, per-tenant order)`` tie-break
        — the regression this pins is a heap that breaks ties by insertion
        accident instead of the materialised sort key.
        """
        tenants = tuple(
            TenantSpec(name=f"t{i}", workload="lp48_ld16", num_requests=25)
            for i in range(6)
        )
        emitted = list(multi_tenant_stream(tenants, seed=3).stream)
        assert emitted == materialised_oracle(tenants, seed=3)
        # Explicitly: at a fully tied arrival time, pop order is tenant
        # index, then per-tenant order, and ids are assigned in that order.
        expected = [(f"t{i}", order) for i in range(6) for order in range(25)]
        assert [(r.tenant, r.request_id) for r in emitted] == [
            (name, rid) for rid, (name, _) in enumerate(expected)
        ]

    def test_mixed_collision_and_open_loop(self):
        tenants = (
            TenantSpec(name="closed_a", workload="lp48_ld16", num_requests=10),
            TenantSpec(name="open", workload="lp96_ld32", num_requests=30,
                       arrival_rate_per_s=200.0),
            TenantSpec(name="closed_b", workload="lp48_ld16", num_requests=10),
        )
        emitted = list(multi_tenant_stream(tenants, seed=5).stream)
        assert emitted == materialised_oracle(tenants, seed=5)

    def test_stream_state_accounting(self):
        streaming = multi_tenant_stream(TENANTS, seed=7)
        stream = streaming.stream
        assert stream.total == len(streaming) == 75
        assert not stream.exhausted
        first = stream.pop()
        assert stream.emitted == 1
        assert stream.prefill_tokens_emitted == first.prefill_length
        list(stream)
        assert stream.exhausted
        assert stream.emitted == 75
        assert stream.peek_arrival() is None
        with pytest.raises(ConfigurationError):
            stream.pop()

    def test_pending_arrivals_one_entry_per_tenant(self):
        stream = multi_tenant_stream(TENANTS, seed=7).stream
        pending = stream.pending_arrivals()
        assert sorted(name for name, _ in pending) == sorted(
            tenant.name for tenant in TENANTS
        )
        assert min(arrival for _, arrival in pending) == stream.peek_arrival()


class TestStreamingServeEquivalence:
    """api.serve(spec, streaming=True) == api.serve(spec), bit for bit."""

    def assert_serve_matches(self, spec):
        batch = serve(spec)
        streamed = serve(spec, streaming=True)
        assert streamed.as_dict() == batch.as_dict()

    def test_open_loop_fcfs(self):
        self.assert_serve_matches(DeploymentSpec(
            model="llama-13b", workload="lp128_ld512", num_requests=80,
            arrival_rate_per_s=50.0, seed=2,
        ))

    def test_multi_tenant_wfq_with_slo(self):
        spec = DeploymentSpec(
            model="llama-13b", workload="wikitext2", seed=4,
            tenants=(
                TenantSpec(name="interactive", workload="lp48_ld16",
                           num_requests=40, arrival_rate_per_s=60.0,
                           weight=4.0),
                TenantSpec(name="batch", workload="lp96_ld32",
                           num_requests=20, arrival_rate_per_s=15.0),
            ),
            slo=SLOTarget(ttft_s=0.5, latency_s=5.0, goodput_target=0.9),
        )
        spec = with_pipeline(spec, scheduling_policy="wfq")
        self.assert_serve_matches(spec)

    def test_multi_tenant_priority_policy(self):
        spec = DeploymentSpec(
            model="llama-13b", workload="wikitext2", seed=4,
            tenants=(
                TenantSpec(name="hi", workload="lp48_ld16", num_requests=30,
                           arrival_rate_per_s=80.0, priority=2),
                TenantSpec(name="lo", workload="lp48_ld16", num_requests=30,
                           arrival_rate_per_s=80.0),
            ),
        )
        spec = with_pipeline(spec, scheduling_policy="priority")
        self.assert_serve_matches(spec)

    def test_overload_with_shedding(self):
        spec = DeploymentSpec(
            model="llama-13b", workload="lp128_ld512", num_requests=80,
            arrival_rate_per_s=400.0, seed=6,
            slo=SLOTarget(ttft_s=0.4, latency_s=4.0, goodput_target=0.9),
        )
        spec = with_pipeline(spec, max_queue_depth=4)
        batch = serve(spec)
        assert batch.shed_requests > 0  # the scenario must actually shed
        self.assert_serve_matches(spec)

    def test_overload_with_retry_backoff(self):
        """Depth-shed candidates retrying with backoff pull identically."""
        spec = DeploymentSpec(
            model="llama-13b", workload="lp128_ld512", num_requests=80,
            arrival_rate_per_s=400.0, seed=6,
        )
        spec = with_pipeline(
            spec, max_queue_depth=8, shed_retries=2, shed_backoff_s=0.05
        )
        self.assert_serve_matches(spec)

    def test_fast_vs_scalar_parity_under_streaming(self, tiny_arch,
                                                   small_wafer_config):
        """Both engine paths consume the stream identically."""
        spec = WorkloadSpec(
            name="parity",
            distribution=FixedLengthDistribution(prefill_length=48,
                                                 decode_length=24),
            num_requests=40,
            seed=9,
            arrival_rate_per_s=120.0,
        )
        results = {}
        for runner in ("run", "run_scalar"):
            engine = build_engine(TokenGrainedPipeline, tiny_arch,
                                  small_wafer_config, "dynamic")
            results[runner] = getattr(engine, runner)(stream_from_spec(spec))
        fast, scalar = results["run"], results["run_scalar"]
        assert fast.as_dict() == scalar.as_dict()
        # ... and both equal the materialised run.
        engine = build_engine(TokenGrainedPipeline, tiny_arch,
                              small_wafer_config, "dynamic")
        batch = engine.run(TraceGenerator(spec).generate())
        assert fast.as_dict() == batch.as_dict()


class TestStreamingCheckpointResume:
    SPEC = DeploymentSpec(
        model="llama-13b", workload="lp128_ld512", num_requests=80,
        arrival_rate_per_s=50.0, seed=2,
    )

    def test_suspend_resume_bitwise(self, tmp_path):
        uninterrupted = serve(self.SPEC, streaming=True)
        checkpoint = serve(self.SPEC, streaming=True, suspend_at_epoch=30)
        assert isinstance(checkpoint, EngineCheckpoint)
        assert checkpoint.stream_cursor >= 0
        assert checkpoint.accumulator is not None
        # Full JSON round trip, like the CLI's checkpoint file.
        path = tmp_path / "ckpt.json"
        checkpoint.save(path)
        restored = EngineCheckpoint.load(path)
        resumed = serve(self.SPEC, streaming=True, resume_from=restored)
        assert resumed.as_dict() == uninterrupted.as_dict()

    def test_streaming_checkpoint_needs_streaming_resume(self):
        checkpoint = serve(self.SPEC, streaming=True, suspend_at_epoch=30)
        with pytest.raises(ConfigurationError):
            serve(self.SPEC, streaming=False, resume_from=checkpoint)

    def test_batch_checkpoint_resumes_under_streaming_auto(self):
        """A non-streaming checkpoint still resumes on the default path."""
        checkpoint = serve(self.SPEC, suspend_at_epoch=30)
        assert checkpoint.stream_cursor == -1
        resumed = serve(self.SPEC, resume_from=checkpoint)
        assert resumed.as_dict() == serve(self.SPEC).as_dict()


class TestApiSurface:
    def test_stream_for_materialises_to_trace_for(self):
        spec = DeploymentSpec(
            model="llama-13b", workload="wikitext2", num_requests=50,
            arrival_rate_per_s=30.0, seed=8,
        )
        assert stream_for(spec).materialize().requests == \
            trace_for(spec).requests

    def test_stream_for_multi_tenant(self):
        spec = DeploymentSpec(
            model="llama-13b", workload="wikitext2",
            tenants=TENANTS, slo=SLOTarget(ttft_s=1.0, latency_s=10.0),
        )
        streaming = stream_for(spec)
        assert isinstance(streaming, StreamingTrace)
        assert streaming.slo == spec.slo
        assert streaming.materialize().requests == trace_for(spec).requests

    def test_explicit_streaming_on_baseline_rejected(self):
        spec = DeploymentSpec(
            model="llama-13b", workload="wikitext2", num_requests=50,
            system="dgx-a100",
        )
        with pytest.raises(ConfigurationError):
            serve(spec, streaming=True)

    def test_workload_stream_iterates_lazily(self):
        streaming = workload_stream("wikitext2", num_requests=10, seed=1)
        first = next(iter(streaming))
        assert first.request_id == 0
        assert streaming.stream.emitted == 1


@pytest.mark.slow
class TestStreamingMemoryBudget:
    def test_peak_memory_is_o_active_not_o_trace(self, tiny_arch,
                                                 small_wafer_config):
        """4x the requests must not cost anywhere near 4x the peak memory.

        Runs the same open-loop fixed-length stream at N and 4N requests
        under tracemalloc and asserts the peak allocation grows by a small
        constant factor — the O(active sequences) claim.  A materialised
        trace (or any O(trace) bookkeeping, e.g. an unbounded epoch list or
        per-sequence stats samples) makes the 4N peak ~4x the N peak and
        fails loudly.
        """
        import tracemalloc

        def peak_for(num_requests: int) -> int:
            spec = WorkloadSpec(
                name="memory",
                distribution=FixedLengthDistribution(prefill_length=32,
                                                     decode_length=16),
                num_requests=num_requests,
                seed=0,
                arrival_rate_per_s=4000.0,
            )
            engine = build_engine(TokenGrainedPipeline, tiny_arch,
                                  small_wafer_config, "dynamic")
            tracemalloc.start()
            tracemalloc.reset_peak()
            engine.run(stream_from_spec(spec))
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        small = peak_for(25_000)
        large = peak_for(100_000)
        assert large < 2.0 * small, (
            f"peak grew {large / small:.2f}x for 4x the requests "
            f"({small} -> {large} bytes); the streaming path is holding "
            "O(trace) state"
        )
