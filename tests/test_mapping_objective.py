"""Tests for the mapping objective (tiles, volumes, placement cost)."""

import pytest

from repro.errors import MappingError
from repro.mapping.objective import MappingProblem, Placement, Tile, evaluate_placement
from repro.units import MB


@pytest.fixture
def problem(small_arch):
    return MappingProblem.from_arch(small_arch, core_weight_capacity_bytes=4 * MB)


@pytest.fixture
def tiny_problem(tiny_arch):
    return MappingProblem.from_arch(tiny_arch, core_weight_capacity_bytes=4 * MB)


class TestTiles:
    def test_tiny_model_one_tile_per_layer(self, tiny_problem):
        tiles = tiny_problem.tiles()
        assert len(tiles) == 4
        assert {tile.layer_index for tile in tiles} == {0, 1, 2, 3}

    def test_small_model_more_tiles(self, problem, small_arch):
        tiles = problem.tiles()
        assert len(tiles) == problem.num_cores_required()
        assert len(tiles) >= 4

    def test_tiles_of_layer(self, problem):
        layer0 = problem.tiles_of_layer(0)
        assert all(tile.layer_index == 0 for tile in layer0)

    def test_layer_lookup(self, problem):
        assert problem.layer(0).index == 0
        with pytest.raises(MappingError):
            problem.layer(99)

    def test_tile_weight_bytes_sum(self, tiny_problem, tiny_arch):
        total = sum(tiny_problem.tile_weight_bytes(tile) for tile in tiny_problem.tiles())
        assert total == pytest.approx(tiny_arch.block_weight_bytes, rel=0.01)


class TestVolumes:
    def test_inter_layer_bytes_split_across_parts(self, problem):
        for layer in problem.layers:
            per_tile = problem.inter_layer_bytes(layer)
            parts = layer.output_splits(problem.core_weight_capacity_bytes)
            assert per_tile * parts == pytest.approx(layer.output_volume_bytes())

    def test_gather_zero_for_single_part_layers(self, tiny_problem):
        for layer in tiny_problem.layers:
            assert tiny_problem.gather_bytes(layer) == 0


class TestPlacementCost:
    def place_linear(self, problem, wafer, order=None):
        tiles = problem.tiles()
        cores = order or wafer.s_shaped_order()
        return Placement({tile: cores[i] for i, tile in enumerate(tiles)})

    def test_compact_placement_cheaper_than_spread(self, tiny_problem, small_wafer):
        compact = self.place_linear(tiny_problem, small_wafer)
        spread_cores = [0, 15, 48, 63]
        tiles = tiny_problem.tiles()
        spread = Placement({tile: spread_cores[i] for i, tile in enumerate(tiles)})
        compact_cost = evaluate_placement(tiny_problem, compact, small_wafer)
        spread_cost = evaluate_placement(tiny_problem, spread, small_wafer)
        assert compact_cost.total < spread_cost.total

    def test_cost_components_non_negative(self, tiny_problem, small_wafer):
        cost = evaluate_placement(tiny_problem, self.place_linear(tiny_problem, small_wafer), small_wafer)
        assert cost.inter_layer >= 0
        assert cost.reduction >= 0
        assert cost.gather >= 0
        assert cost.total_bytes > 0

    def test_cost_addition(self, tiny_problem, small_wafer):
        cost = evaluate_placement(tiny_problem, self.place_linear(tiny_problem, small_wafer), small_wafer)
        doubled = cost + cost
        assert doubled.total == pytest.approx(2 * cost.total)

    def test_next_block_handoff_adds_cost(self, tiny_problem, small_wafer):
        placement = self.place_linear(tiny_problem, small_wafer)
        without = evaluate_placement(tiny_problem, placement, small_wafer)
        with_handoff = evaluate_placement(
            tiny_problem, placement, small_wafer, next_block_entry_core=63
        )
        assert with_handoff.total > without.total

    def test_die_crossing_penalised(self, tiny_problem, small_wafer):
        tiles = tiny_problem.tiles()
        same_die = Placement({tile: i for i, tile in enumerate(tiles)})
        # Spread across two dies at the same Manhattan spacing.
        row = small_wafer.core_id_at
        cross_die = Placement(
            {
                tiles[0]: row(0, 2),
                tiles[1]: row(0, 3),
                tiles[2]: row(0, 4),
                tiles[3]: row(0, 5),
            }
        )
        same_die_alt = Placement(
            {
                tiles[0]: row(0, 0),
                tiles[1]: row(0, 1),
                tiles[2]: row(0, 2),
                tiles[3]: row(0, 3),
            }
        )
        assert (
            evaluate_placement(tiny_problem, cross_die, small_wafer).total
            > evaluate_placement(tiny_problem, same_die_alt, small_wafer).total
        )


class TestPlacementValidation:
    def test_duplicate_core_rejected(self, tiny_problem, small_wafer):
        tiles = tiny_problem.tiles()
        placement = Placement({tile: 0 for tile in tiles})
        with pytest.raises(MappingError):
            placement.validate(small_wafer)

    def test_unplaced_tile_rejected(self, tiny_problem):
        placement = Placement({})
        with pytest.raises(MappingError):
            placement.core_of(tiny_problem.tiles()[0])

    def test_defective_core_rejected(self, tiny_problem, small_wafer_config):
        from repro.hardware.wafer import Wafer
        from repro.hardware.yieldmodel import DefectMap

        wafer = Wafer(
            small_wafer_config,
            defect_map=DefectMap(frozenset({0}), core_yield=0.99, total_cores=64),
        )
        tiles = tiny_problem.tiles()
        placement = Placement({tile: i for i, tile in enumerate(tiles)})
        with pytest.raises(MappingError):
            placement.validate(wafer)

    def test_valid_placement_passes(self, tiny_problem, small_wafer):
        tiles = tiny_problem.tiles()
        placement = Placement({tile: i for i, tile in enumerate(tiles)})
        placement.validate(small_wafer)
        assert sorted(placement.cores()) == list(range(len(tiles)))


def test_tile_str():
    assert str(Tile(1, 0, 2)) == "L1[i0,o2]"
