"""Tests for the CIM core behavioural model."""

import pytest

from repro.errors import CapacityError
from repro.hardware.core import CIMCore, CoreRole
from repro.units import MB


@pytest.fixture
def core():
    return CIMCore(core_id=0)


class TestRoles:
    def test_initial_role_unassigned(self, core):
        assert core.role is CoreRole.UNASSIGNED
        assert core.is_available

    def test_assign_weights(self, core):
        core.assign_weights(tile="qkv", weight_bytes=3 * MB)
        assert core.role is CoreRole.WEIGHT
        assert core.assigned_tile == "qkv"
        assert core.weight_bytes_used == 3 * MB
        assert core.weight_bytes_free == 1 * MB

    def test_assign_weights_overflow(self, core):
        with pytest.raises(CapacityError):
            core.assign_weights(tile="big", weight_bytes=5 * MB)

    def test_assign_kv_cache(self, core):
        core.assign_kv_cache()
        assert core.role is CoreRole.KV_CACHE
        assert core.free_logical_blocks == core.total_logical_blocks == 256

    def test_defective_core_rejects_assignment(self, core):
        core.mark_defective()
        assert core.is_defective
        with pytest.raises(CapacityError):
            core.assign_weights(tile="x", weight_bytes=1024)
        with pytest.raises(CapacityError):
            core.assign_kv_cache()

    def test_release_returns_to_pool(self, core):
        core.assign_weights(tile="x", weight_bytes=1 * MB)
        core.release()
        assert core.is_available
        assert core.weight_bytes_used == 0

    def test_release_keeps_defective(self, core):
        core.mark_defective()
        core.release()
        assert core.is_defective

    def test_free_logical_blocks_zero_unless_kv(self, core):
        assert core.free_logical_blocks == 0
        core.assign_weights(tile="x", weight_bytes=1024)
        assert core.free_logical_blocks == 0


class TestCompute:
    def test_gemv_cost_single_crossbar_tile(self, core):
        cost = core.gemv_cost(input_dim=1024, output_dim=128)
        assert cost.cycles == 256
        assert cost.macs == 1024 * 128

    def test_gemv_cost_parallel_tiles_same_latency(self, core):
        one_tile = core.gemv_cost(input_dim=1024, output_dim=128)
        many_tiles = core.gemv_cost(input_dim=1024, output_dim=128 * 16)
        # 16 tiles fit in 32 crossbars -> still one wave.
        assert many_tiles.latency_s == pytest.approx(one_tile.latency_s, rel=0.05)
        assert many_tiles.energy_j > one_tile.energy_j

    def test_gemv_cost_waves_when_oversubscribed(self, core):
        one_wave = core.gemv_cost(input_dim=1024, output_dim=128 * 32)
        two_waves = core.gemv_cost(input_dim=1024 * 2, output_dim=128 * 32)
        assert two_waves.latency_s > one_wave.latency_s

    def test_gemv_energy_scales_with_macs(self, core):
        small = core.gemv_cost(input_dim=512, output_dim=128)
        large = core.gemv_cost(input_dim=1024, output_dim=256)
        assert large.energy_j > small.energy_j

    def test_sfu_cost(self, core):
        cost = core.sfu_cost(elements=640)
        assert cost.latency_s == pytest.approx(10 / 1e9)
        assert cost.energy_j > 0

    def test_sfu_zero_elements(self, core):
        cost = core.sfu_cost(elements=0)
        assert cost.latency_s == 0.0

    def test_buffer_write_energy(self, core):
        assert core.buffer_write_cost(1024) > 0
        assert core.buffer_write_cost(2048) == pytest.approx(
            2 * core.buffer_write_cost(1024)
        )
