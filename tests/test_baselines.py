"""Tests for the analytical baseline systems (DGX, TPU, AttAcc, Cerebras)."""

import pytest

from repro.baselines.attacc import AttAccSystem
from repro.baselines.cerebras import CerebrasWSE2System
from repro.baselines.common import BaselineConfig, BaselineSystem
from repro.baselines.gpu import DGXA100System, dgx_a100_hardware
from repro.baselines.tpu import TPUv4System
from repro.errors import ConfigurationError
from repro.models.architectures import llama_13b, llama_32b, llama_65b
from repro.workload.generator import generate_trace

TRACE = generate_trace("lp128_ld2048", num_requests=20)
WIKITEXT = generate_trace("wikitext2", num_requests=20)


@pytest.fixture(scope="module")
def arch():
    return llama_13b()


class TestDGX:
    def test_serve_produces_results(self, arch):
        result = DGXA100System(arch).serve(TRACE)
        assert result.output_tokens == TRACE.total_decode_tokens
        assert result.total_time_s > 0
        assert result.throughput_tokens_per_s > 0

    def test_off_chip_memory_dominates_energy(self, arch):
        result = DGXA100System(arch).serve(TRACE)
        fractions = result.energy.fractions()
        assert fractions["off_chip_memory"] > 0.4
        assert fractions["off_chip_memory"] > fractions["compute"]

    def test_batch_size_limited_by_kv_capacity(self, arch):
        system = DGXA100System(arch)
        assert system.max_batch_size(context_length=100_000) < system.max_batch_size(
            context_length=1000
        )

    def test_larger_model_slower(self):
        small = DGXA100System(llama_13b()).serve(TRACE)
        large = DGXA100System(llama_32b()).serve(TRACE)
        assert large.throughput_tokens_per_s < small.throughput_tokens_per_s

    def test_more_gpus_help(self, arch):
        four = DGXA100System(arch, num_gpus=4).serve(TRACE)
        eight = DGXA100System(arch, num_gpus=8).serve(TRACE)
        assert eight.throughput_tokens_per_s > four.throughput_tokens_per_s

    def test_model_too_big_rejected(self):
        import dataclasses

        huge = dataclasses.replace(llama_65b(), num_blocks=400, name="Huge")
        with pytest.raises(ConfigurationError):
            DGXA100System(huge, num_gpus=1)

    def test_idle_power_adds_energy(self, arch):
        base = DGXA100System(arch).serve(TRACE)
        idle = DGXA100System(arch, config=BaselineConfig(idle_power_per_device_w=300)).serve(TRACE)
        assert idle.energy.total_j > base.energy.total_j


class TestTPU:
    def test_serve(self, arch):
        result = TPUv4System(arch).serve(TRACE)
        assert result.throughput_tokens_per_s > 0
        assert result.energy.off_chip_memory_j > 0

    def test_tpu_decode_slower_than_dgx(self, arch):
        tpu = TPUv4System(arch).serve(TRACE)
        dgx = DGXA100System(arch).serve(TRACE)
        assert tpu.throughput_tokens_per_s < dgx.throughput_tokens_per_s * 1.2


class TestAttAcc:
    def test_attacc_beats_dgx_on_decode_heavy(self, arch):
        attacc = AttAccSystem(arch).serve(TRACE)
        dgx = DGXA100System(arch).serve(TRACE)
        assert attacc.throughput_tokens_per_s > dgx.throughput_tokens_per_s

    def test_attacc_saves_kv_energy(self, arch):
        attacc = AttAccSystem(arch).serve(TRACE)
        dgx = DGXA100System(arch).serve(TRACE)
        assert attacc.energy_per_output_token_j < dgx.energy_per_output_token_j

    def test_energy_stays_positive(self, arch):
        result = AttAccSystem(arch).serve(WIKITEXT)
        assert result.energy.off_chip_memory_j > 0


class TestCerebras:
    def test_no_off_chip_energy(self, arch):
        result = CerebrasWSE2System(arch).serve(TRACE)
        assert result.energy.off_chip_memory_j == 0.0
        assert result.energy.on_chip_memory_j > 0

    def test_13b_fits_single_wafer(self, arch):
        system = CerebrasWSE2System(arch)
        assert system.hardware.num_devices == 1

    def test_65b_auto_scales_to_two_wafers(self):
        system = CerebrasWSE2System(llama_65b())
        assert system.hardware.num_devices == 2

    def test_explicit_insufficient_wafers_rejected(self):
        with pytest.raises(ConfigurationError):
            CerebrasWSE2System(llama_65b(), num_wafers=1)

    def test_energy_per_token_below_dgx(self, arch):
        cerebras = CerebrasWSE2System(arch).serve(TRACE)
        dgx = DGXA100System(arch).serve(TRACE)
        assert cerebras.energy_per_output_token_j < dgx.energy_per_output_token_j


class TestRooflineBehaviour:
    def test_prefill_heavy_vs_decode_heavy(self, arch):
        system = DGXA100System(arch)
        prefill_heavy = system.serve(generate_trace("lp2048_ld128", num_requests=20))
        decode_heavy = system.serve(generate_trace("lp128_ld2048", num_requests=20))
        # Tokens per second of *output* is much lower for decode-heavy traces,
        # but per processed token the prefill-heavy trace is faster.
        assert (
            prefill_heavy.total_throughput_tokens_per_s
            > decode_heavy.total_throughput_tokens_per_s
        )

    def test_utilization_bounded(self, arch):
        result = DGXA100System(arch).serve(TRACE)
        assert 0 <= result.utilization <= 1

    def test_interconnect_energy_present_with_tensor_parallel(self, arch):
        result = DGXA100System(arch).serve(TRACE)
        assert result.energy.communication_j > 0

    def test_baseline_system_generic_constructor(self, arch):
        hardware = dgx_a100_hardware(num_gpus=2)
        system = BaselineSystem(arch, hardware)
        assert system.weight_bytes() == pytest.approx(arch.total_weight_params * 2)
        assert system.kv_bytes_per_token() == pytest.approx(
            2 * arch.kv_dim * arch.num_blocks * 2
        )
