"""Shared fixtures: a small wafer and a tiny model so unit tests stay fast."""

from __future__ import annotations

import pytest

from repro.hardware.config import CoreConfig, CrossbarConfig, DieConfig, WaferConfig
from repro.hardware.energy import EnergyModel
from repro.hardware.wafer import Wafer
from repro.models.architectures import ModelArch
from repro.pipeline.engine import PipelineConfig
from repro.sim.engine import OuroborosSystemConfig
from repro.workload.distributions import FixedLengthDistribution
from repro.workload.generator import Trace, TraceGenerator, WorkloadSpec


@pytest.fixture
def small_wafer_config() -> WaferConfig:
    """A 2x2-die wafer with 4x4 cores per die (64 cores total)."""
    die = DieConfig(core=CoreConfig(), rows=4, cols=4, width_mm=10.0, height_mm=10.0)
    return WaferConfig(die=die, die_rows=2, die_cols=2, wafer_side_mm=30.0)


@pytest.fixture
def small_wafer(small_wafer_config) -> Wafer:
    return Wafer(small_wafer_config)


@pytest.fixture
def tiny_arch() -> ModelArch:
    """A 2-block toy transformer whose per-layer weights fit single cores."""
    return ModelArch(
        name="Tiny-0.01B",
        num_blocks=2,
        hidden_size=256,
        num_heads=4,
        ffn_hidden_size=512,
        vocab_size=1000,
        max_context=256,
    )


@pytest.fixture
def small_arch() -> ModelArch:
    """A slightly larger toy model that needs several cores per layer."""
    return ModelArch(
        name="Small-0.4B",
        num_blocks=4,
        hidden_size=2048,
        num_heads=16,
        ffn_hidden_size=8192,
        vocab_size=8000,
        max_context=1024,
    )


@pytest.fixture
def energy_model() -> EnergyModel:
    return EnergyModel()


@pytest.fixture
def crossbar_config() -> CrossbarConfig:
    return CrossbarConfig()


@pytest.fixture
def small_system_config(small_wafer_config) -> OuroborosSystemConfig:
    """System configuration bound to the small wafer, fast pipeline settings."""
    return OuroborosSystemConfig(
        wafer=small_wafer_config,
        anneal_iterations=0,
        model_defects=False,
        pipeline=PipelineConfig(chunk_tokens=64, context_quantum=64),
    )


def make_trace(
    num_requests: int = 8, prefill: int = 32, decode: int = 16, seed: int = 0
) -> Trace:
    """Deterministic fixed-length trace used across integration tests."""
    spec = WorkloadSpec(
        name=f"fixed-{prefill}-{decode}",
        distribution=FixedLengthDistribution(prefill_length=prefill, decode_length=decode),
        num_requests=num_requests,
        seed=seed,
    )
    return TraceGenerator(spec).generate()


@pytest.fixture
def small_trace() -> Trace:
    return make_trace()
