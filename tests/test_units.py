"""Tests for the unit helpers."""

import pytest

from repro import units


def test_data_size_constants():
    assert units.KB == 1024
    assert units.MB == 1024 * 1024
    assert units.GB == 1024 ** 3


def test_time_constants():
    assert units.US == 1e-6
    assert units.NS * 1000 == pytest.approx(units.US)
    assert units.MS == 1e-3


def test_energy_constants():
    assert units.PJ == 1e-12
    assert units.NJ == pytest.approx(1000 * units.PJ)
    assert units.UJ == pytest.approx(1000 * units.NJ)


def test_bytes_to_gb_roundtrip():
    assert units.bytes_to_gb(54 * units.GB) == 54


def test_bytes_to_mb():
    assert units.bytes_to_mb(4 * units.MB) == 4


def test_joules_to_pj():
    assert units.joules_to_pj(3e-12) == 3.0


def test_seconds_to_us():
    assert units.seconds_to_us(2e-6) == 2.0


def test_tops():
    assert units.tops(2e12) == 2.0


def test_frequency_constants():
    assert units.GHZ == 1000 * units.MHZ
