"""Tests for the KV-cache primitives: free-block table, bitmap, page table."""

import pytest

from repro.errors import KVCacheError
from repro.kvcache.bitmap import OccupancyBitmap
from repro.kvcache.blocks import FreeBlockTable, tokens_per_block
from repro.kvcache.pagetable import HeadPlacement, PageTable


class TestTokensPerBlock:
    def test_paper_head_dim(self):
        assert tokens_per_block(head_dim=128) == 128

    def test_small_head_dim_more_tokens(self):
        assert tokens_per_block(head_dim=64) == 256

    def test_fp16_halves_tokens(self):
        assert tokens_per_block(head_dim=128, element_bytes=2) == 64

    def test_invalid_inputs(self):
        with pytest.raises(KVCacheError):
            tokens_per_block(head_dim=0)


class TestFreeBlockTable:
    def test_allocate_and_release(self):
        table = FreeBlockTable()
        index = table.allocate(owner=1)
        assert table.owner_of(index) == 1
        assert table.free_blocks == 7
        table.release(index)
        assert table.free_blocks == 8

    def test_allocate_exhaustion(self):
        table = FreeBlockTable(num_blocks=2)
        table.allocate(owner=1)
        table.allocate(owner=1)
        with pytest.raises(KVCacheError):
            table.allocate(owner=2)

    def test_append_rows(self):
        table = FreeBlockTable(rows_per_block=128)
        index = table.allocate(owner=1)
        assert table.append_rows(index, 100) == 100
        assert table.append_rows(index, 100) == 28
        assert table.rows_free(index) == 0

    def test_append_to_unallocated_rejected(self):
        table = FreeBlockTable()
        with pytest.raises(KVCacheError):
            table.append_rows(0, 1)

    def test_release_owner(self):
        table = FreeBlockTable()
        table.allocate(owner=1)
        table.allocate(owner=2)
        table.allocate(owner=1)
        assert table.release_owner(1) == 2
        assert table.used_blocks == 1
        assert table.blocks_of(2) != []

    def test_reset(self):
        table = FreeBlockTable()
        table.allocate(owner=1)
        table.reset()
        assert table.free_blocks == table.num_blocks

    def test_invalid_construction(self):
        with pytest.raises(KVCacheError):
            FreeBlockTable(num_blocks=0)


class TestOccupancyBitmap:
    def test_set_and_query(self):
        bitmap = OccupancyBitmap()
        bitmap.set_block(sequence_id=7, block_index=3)
        assert bitmap.blocks_of(7) == [3]
        assert bitmap.owner_of(3) == 7
        assert bitmap.used_blocks == 1

    def test_block_conflict_rejected(self):
        bitmap = OccupancyBitmap()
        bitmap.set_block(1, 0)
        with pytest.raises(KVCacheError):
            bitmap.set_block(2, 0)

    def test_clear_block(self):
        bitmap = OccupancyBitmap()
        bitmap.set_block(1, 0)
        bitmap.clear_block(1, 0)
        assert bitmap.owner_of(0) is None

    def test_clear_unowned_rejected(self):
        bitmap = OccupancyBitmap()
        bitmap.set_block(1, 0)
        with pytest.raises(KVCacheError):
            bitmap.clear_block(1, 5)

    def test_release_sequence(self):
        bitmap = OccupancyBitmap()
        bitmap.set_block(1, 0)
        bitmap.set_block(1, 4)
        assert bitmap.release_sequence(1) == 2
        assert bitmap.free_blocks == bitmap.num_blocks
        assert bitmap.release_sequence(1) == 0

    def test_occupancy_fraction(self):
        bitmap = OccupancyBitmap(max_sequences=4, num_blocks=8)
        bitmap.set_block(1, 0)
        bitmap.set_block(1, 1)
        assert bitmap.occupancy() == pytest.approx(0.25)

    def test_slot_exhaustion(self):
        bitmap = OccupancyBitmap(max_sequences=2, num_blocks=8)
        bitmap.set_block(1, 0)
        bitmap.set_block(2, 1)
        with pytest.raises(KVCacheError):
            bitmap.set_block(3, 2)

    def test_out_of_range_block(self):
        bitmap = OccupancyBitmap(num_blocks=8)
        with pytest.raises(KVCacheError):
            bitmap.set_block(1, 9)

    def test_resident_sequences(self):
        bitmap = OccupancyBitmap()
        bitmap.set_block(5, 0)
        bitmap.set_block(3, 1)
        assert bitmap.resident_sequences == [3, 5]


class TestPageTable:
    def placements(self) -> list[HeadPlacement]:
        return [HeadPlacement(head=h, k_core=10 + h, v_core=20 + h) for h in range(4)]

    def test_register_and_lookup(self):
        table = PageTable(block_index=0)
        table.register(1, self.placements())
        assert len(table.lookup(1)) == 4
        assert table.contains(1)
        assert len(table) == 1

    def test_double_register_rejected(self):
        table = PageTable(block_index=0)
        table.register(1, self.placements())
        with pytest.raises(KVCacheError):
            table.register(1, self.placements())

    def test_lookup_missing_rejected(self):
        table = PageTable(block_index=0)
        with pytest.raises(KVCacheError):
            table.lookup(42)

    def test_cores_of(self):
        table = PageTable(block_index=0)
        table.register(1, self.placements())
        cores = table.cores_of(1)
        assert cores == sorted({10, 11, 12, 13, 20, 21, 22, 23})

    def test_remove_idempotent(self):
        table = PageTable(block_index=0)
        table.register(1, self.placements())
        table.remove(1)
        table.remove(1)
        assert not table.contains(1)
        assert table.resident_sequences == []
