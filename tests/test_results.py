"""Tests for the shared result dataclasses."""

import pytest

from repro.results import EnergyBreakdown, LatencyStats, RunResult


class TestLatencyStats:
    def test_empty_samples(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.mean_s == 0.0
        assert stats.p99_s == 0.0

    def test_single_sample(self):
        stats = LatencyStats.from_samples([0.25])
        assert stats.count == 1
        assert stats.mean_s == 0.25
        assert stats.p50_s == 0.25
        assert stats.p99_s == 0.25
        assert stats.max_s == 0.25

    def test_percentiles_are_ordered(self):
        stats = LatencyStats.from_samples([float(i) for i in range(1, 101)])
        assert stats.mean_s == pytest.approx(50.5)
        assert stats.p50_s <= stats.p95_s <= stats.p99_s <= stats.max_s
        assert stats.p50_s == pytest.approx(50.5)
        assert stats.max_s == 100.0

    def test_as_dict(self):
        data = LatencyStats.from_samples([1.0, 2.0, 3.0]).as_dict()
        assert data["count"] == 3
        assert data["mean_s"] == pytest.approx(2.0)
        assert set(data) == {"count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"}


class TestEnergyBreakdown:
    def test_total(self):
        energy = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert energy.total_j == 10.0

    def test_addition(self):
        a = EnergyBreakdown(1.0, 1.0, 1.0, 1.0)
        b = EnergyBreakdown(2.0, 0.0, 0.0, 0.0)
        total = a + b
        assert total.compute_j == 3.0
        assert total.total_j == 6.0

    def test_scaled(self):
        energy = EnergyBreakdown(1.0, 2.0, 3.0, 4.0).scaled(0.5)
        assert energy.total_j == 5.0

    def test_fractions_sum_to_one(self):
        energy = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert sum(energy.fractions().values()) == pytest.approx(1.0)

    def test_fractions_of_zero_energy(self):
        assert all(value == 0.0 for value in EnergyBreakdown().fractions().values())

    def test_as_dict(self):
        data = EnergyBreakdown(1.0, 0.0, 0.0, 0.0).as_dict()
        assert data["compute_j"] == 1.0
        assert data["total_j"] == 1.0


class TestRunResult:
    def make(self, time_s=2.0, output=100, total=200) -> RunResult:
        return RunResult(
            system="test",
            model="tiny",
            workload="unit",
            total_time_s=time_s,
            total_tokens=total,
            output_tokens=output,
            energy=EnergyBreakdown(compute_j=1.0),
        )

    def test_throughput(self):
        result = self.make()
        assert result.throughput_tokens_per_s == 50.0
        assert result.total_throughput_tokens_per_s == 100.0

    def test_zero_time_throughput(self):
        assert self.make(time_s=0.0).throughput_tokens_per_s == 0.0

    def test_energy_per_output_token(self):
        assert self.make().energy_per_output_token_j == pytest.approx(0.01)

    def test_zero_output_energy(self):
        assert self.make(output=0).energy_per_output_token_j == 0.0

    def test_as_dict_round_trip(self):
        data = self.make().as_dict()
        assert data["system"] == "test"
        assert data["throughput_tokens_per_s"] == 50.0
        assert "energy" in data
        assert data["ttft"]["count"] == 0
        assert data["latency"]["count"] == 0

    def test_default_latency_stats_are_empty(self):
        result = self.make()
        assert result.ttft.count == 0
        assert result.latency.count == 0

    def test_fault_and_shed_accounting_in_dict(self):
        from repro.results import FaultStats

        result = self.make()
        result.faults = FaultStats(injected=3, kv_block_losses=2, admission_stalls=1)
        result.shed_requests = 4
        data = result.as_dict()
        assert data["faults"]["injected"] == 3
        assert data["faults"]["kv_block_losses"] == 2
        assert data["shed_requests"] == 4
        # No fault plan -> the field stays None, not an all-zero dict.
        assert self.make().as_dict()["faults"] is None


class TestFaultStats:
    def test_dict_round_trip(self):
        import json

        from repro.results import FaultStats

        stats = FaultStats(
            injected=5,
            kv_core_failures=1,
            weight_core_failures=1,
            kv_block_losses=2,
            admission_stalls=1,
            recovered_sequences=4,
            recompute_tokens=128,
            recovery_latency_s=0.25,
            stall_time_s=0.05,
        )
        data = json.loads(json.dumps(stats.as_dict()))
        assert FaultStats(**data) == stats


class TestEngineCheckpointSnapshot:
    def make(self):
        from repro.pipeline.checkpoint import EngineCheckpoint

        return EngineCheckpoint(
            next_epoch_index=7,
            time_s=1.25,
            energy={"compute_j": 3.5, "communication_j": 0.125},
            processed_tokens=4096,
            utilization_time=1.0,
            stalled_epochs=1,
            split_epochs=2,
            epochs=[{"index": 0, "time_s": 0.5}],
            sequences={"0": {"phase": "decode"}},
            scheduler={"queue": [1, 2]},
            kv={"blocks": {"0": [1, 2, 3]}},
        )

    def test_dict_round_trip(self):
        from repro.pipeline.checkpoint import EngineCheckpoint

        checkpoint = self.make()
        assert EngineCheckpoint.from_dict(checkpoint.as_dict()) == checkpoint

    def test_json_round_trip_is_exact(self):
        """Floats survive the on-disk JSON encoding bit for bit."""
        import json

        from repro.pipeline.checkpoint import EngineCheckpoint

        checkpoint = self.make()
        restored = EngineCheckpoint.from_dict(
            json.loads(json.dumps(checkpoint.as_dict()))
        )
        assert restored == checkpoint
        assert restored.time_s == checkpoint.time_s
        assert restored.energy == checkpoint.energy

    def test_version_mismatch_rejected(self):
        from repro.errors import ConfigurationError
        from repro.pipeline.checkpoint import EngineCheckpoint

        data = self.make().as_dict()
        data["version"] = 999
        with pytest.raises(ConfigurationError):
            EngineCheckpoint.from_dict(data)
