"""Tests for the shared result dataclasses."""

import pytest

from repro.results import EnergyBreakdown, LatencyStats, RunResult


class TestLatencyStats:
    def test_empty_samples(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.mean_s == 0.0
        assert stats.p99_s == 0.0

    def test_single_sample(self):
        stats = LatencyStats.from_samples([0.25])
        assert stats.count == 1
        assert stats.mean_s == 0.25
        assert stats.p50_s == 0.25
        assert stats.p99_s == 0.25
        assert stats.max_s == 0.25

    def test_percentiles_are_ordered(self):
        stats = LatencyStats.from_samples([float(i) for i in range(1, 101)])
        assert stats.mean_s == pytest.approx(50.5)
        assert stats.p50_s <= stats.p95_s <= stats.p99_s <= stats.max_s
        assert stats.p50_s == pytest.approx(50.5)
        assert stats.max_s == 100.0

    def test_as_dict(self):
        data = LatencyStats.from_samples([1.0, 2.0, 3.0]).as_dict()
        assert data["count"] == 3
        assert data["mean_s"] == pytest.approx(2.0)
        assert set(data) == {"count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"}


class TestEnergyBreakdown:
    def test_total(self):
        energy = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert energy.total_j == 10.0

    def test_addition(self):
        a = EnergyBreakdown(1.0, 1.0, 1.0, 1.0)
        b = EnergyBreakdown(2.0, 0.0, 0.0, 0.0)
        total = a + b
        assert total.compute_j == 3.0
        assert total.total_j == 6.0

    def test_scaled(self):
        energy = EnergyBreakdown(1.0, 2.0, 3.0, 4.0).scaled(0.5)
        assert energy.total_j == 5.0

    def test_fractions_sum_to_one(self):
        energy = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert sum(energy.fractions().values()) == pytest.approx(1.0)

    def test_fractions_of_zero_energy(self):
        assert all(value == 0.0 for value in EnergyBreakdown().fractions().values())

    def test_as_dict(self):
        data = EnergyBreakdown(1.0, 0.0, 0.0, 0.0).as_dict()
        assert data["compute_j"] == 1.0
        assert data["total_j"] == 1.0


class TestRunResult:
    def make(self, time_s=2.0, output=100, total=200) -> RunResult:
        return RunResult(
            system="test",
            model="tiny",
            workload="unit",
            total_time_s=time_s,
            total_tokens=total,
            output_tokens=output,
            energy=EnergyBreakdown(compute_j=1.0),
        )

    def test_throughput(self):
        result = self.make()
        assert result.throughput_tokens_per_s == 50.0
        assert result.total_throughput_tokens_per_s == 100.0

    def test_zero_time_throughput(self):
        assert self.make(time_s=0.0).throughput_tokens_per_s == 0.0

    def test_energy_per_output_token(self):
        assert self.make().energy_per_output_token_j == pytest.approx(0.01)

    def test_zero_output_energy(self):
        assert self.make(output=0).energy_per_output_token_j == 0.0

    def test_as_dict_round_trip(self):
        data = self.make().as_dict()
        assert data["system"] == "test"
        assert data["throughput_tokens_per_s"] == 50.0
        assert "energy" in data
        assert data["ttft"]["count"] == 0
        assert data["latency"]["count"] == 0

    def test_default_latency_stats_are_empty(self):
        result = self.make()
        assert result.ttft.count == 0
        assert result.latency.count == 0
