"""Tests for the per-block layer decomposition and the 6-stage pipeline specs."""

import pytest

from repro.models.architectures import llama_13b, qwen_32b
from repro.models.layers import (
    LayerKind,
    block_weight_bytes,
    build_block_layers,
    cores_per_block,
)
from repro.models.pipeline_stages import (
    STAGES_PER_BLOCK,
    StageKind,
    block_macs_per_token,
    build_stage_specs,
    pipeline_depth,
)
from repro.units import MB


class TestBlockLayers:
    def test_four_weighted_layers(self, tiny_arch):
        layers = build_block_layers(tiny_arch)
        assert [layer.kind for layer in layers] == [
            LayerKind.QKV_PROJECTION,
            LayerKind.OUTPUT_PROJECTION,
            LayerKind.FFN_UP,
            LayerKind.FFN_DOWN,
        ]

    def test_layer_weights_sum_to_block_weights(self, tiny_arch):
        assert block_weight_bytes(tiny_arch) == tiny_arch.block_weight_bytes

    def test_layer_weights_sum_llama(self):
        arch = llama_13b()
        assert block_weight_bytes(arch) == arch.block_weight_bytes

    def test_num_cores_matches_capacity(self):
        arch = llama_13b()
        layers = build_block_layers(arch)
        qkv = layers[0]
        assert qkv.num_cores(4 * MB) == pytest.approx(
            -(-qkv.weight_bytes // (4 * MB))
        )

    def test_cores_per_block_reasonable_for_13b(self):
        assert 70 <= cores_per_block(llama_13b(), 4 * MB) <= 90

    def test_output_split_prioritised(self):
        arch = llama_13b()
        for layer in build_block_layers(arch):
            cores = layer.num_cores(4 * MB)
            assert layer.output_splits(4 * MB) * layer.input_splits(4 * MB) >= cores
            # Output-channel splitting is prioritised: with 4 MB cores the
            # input channels never need splitting for these dimensions.
            assert layer.input_splits(4 * MB) == 1

    def test_reduction_zero_when_no_input_split(self):
        arch = llama_13b()
        for layer in build_block_layers(arch):
            assert layer.reduction_volume_bytes(4 * MB) == 0

    def test_reduction_positive_when_input_split(self):
        arch = llama_13b()
        layer = build_block_layers(arch)[0]
        # A capacity small enough that output-channel splitting alone cannot
        # provide one tile per core forces input-channel splits too.
        tiny_capacity = 4 * 1024
        assert layer.input_splits(tiny_capacity) > 1
        assert layer.reduction_volume_bytes(tiny_capacity) > 0

    def test_gather_volume(self):
        arch = llama_13b()
        layer = build_block_layers(arch)[0]
        assert layer.gather_volume_bytes(4 * MB) == layer.output_dim

    def test_macs_per_token(self, tiny_arch):
        layers = build_block_layers(tiny_arch)
        assert layers[0].macs_per_token() == tiny_arch.hidden_size * (
            tiny_arch.q_dim + 2 * tiny_arch.kv_dim
        )

    def test_gqa_shrinks_qkv_layer(self):
        arch = qwen_32b()
        qkv = build_block_layers(arch)[0]
        assert qkv.output_dim == arch.q_dim + 2 * arch.kv_dim
        assert qkv.output_dim < 3 * arch.hidden_size


class TestStageSpecs:
    def test_six_stages(self, tiny_arch):
        specs = build_stage_specs(tiny_arch)
        assert len(specs) == STAGES_PER_BLOCK == 6
        assert [spec.kind for spec in specs] == list(StageKind)

    def test_pipeline_depth(self, tiny_arch):
        assert pipeline_depth(tiny_arch) == 6 * tiny_arch.num_blocks

    def test_weighted_stages(self, tiny_arch):
        specs = {spec.kind: spec for spec in build_stage_specs(tiny_arch)}
        assert specs[StageKind.QKV_GENERATION].is_weighted
        assert specs[StageKind.PROJECTION].is_weighted
        assert specs[StageKind.FFN].is_weighted
        assert not specs[StageKind.SCORE].is_weighted
        assert not specs[StageKind.SOFTMAX].is_weighted
        assert not specs[StageKind.CONTEXT].is_weighted

    def test_kv_stages(self, tiny_arch):
        specs = {spec.kind: spec for spec in build_stage_specs(tiny_arch)}
        assert specs[StageKind.SCORE].uses_kv_cache
        assert specs[StageKind.CONTEXT].uses_kv_cache
        assert not specs[StageKind.FFN].uses_kv_cache

    def test_stage_weights_sum_to_block(self, tiny_arch):
        specs = build_stage_specs(tiny_arch)
        assert sum(spec.weight_bytes for spec in specs) == tiny_arch.block_weight_bytes

    def test_attention_macs_scale_with_context(self, tiny_arch):
        specs = {spec.kind: spec for spec in build_stage_specs(tiny_arch)}
        score = specs[StageKind.SCORE]
        assert score.macs_per_token(200) == pytest.approx(2 * score.macs_per_token(100))

    def test_weighted_macs_independent_of_context(self, tiny_arch):
        specs = {spec.kind: spec for spec in build_stage_specs(tiny_arch)}
        ffn = specs[StageKind.FFN]
        assert ffn.macs_per_token(1) == ffn.macs_per_token(4096)

    def test_softmax_has_no_macs_but_sfu_work(self, tiny_arch):
        specs = {spec.kind: spec for spec in build_stage_specs(tiny_arch)}
        softmax = specs[StageKind.SOFTMAX]
        assert softmax.macs_per_token(128) == 0
        assert softmax.sfu_elements_per_token(128) == tiny_arch.num_heads * 128

    def test_kv_write_only_in_qkv_stage(self, tiny_arch):
        specs = {spec.kind: spec for spec in build_stage_specs(tiny_arch)}
        assert specs[StageKind.QKV_GENERATION].kv_write_bytes_per_token() == (
            tiny_arch.kv_bytes_per_token_per_block
        )
        assert specs[StageKind.FFN].kv_write_bytes_per_token() == 0

    def test_output_bytes_positive(self, tiny_arch):
        for spec in build_stage_specs(tiny_arch):
            assert spec.output_bytes_per_token(64) > 0

    def test_block_macs_match_flops_per_token(self):
        arch = llama_13b()
        context = 512
        per_block = block_macs_per_token(arch, context)
        assert per_block * arch.num_blocks == pytest.approx(
            arch.flops_per_token(context), rel=0.01
        )
