"""Integration tests: building and serving on the OuroborosSystem facade."""

import dataclasses

import pytest

from repro.core.system import OuroborosSystem
from repro.errors import MappingError
from repro.kvcache.manager import DistributedKVCacheManager
from repro.kvcache.static import StaticKVCacheManager
from repro.sim.engine import (
    KVPolicy,
    MappingStrategy,
    OuroborosSystemConfig,
    PipelineMode,
    build_system,
    required_wafers,
)

from .conftest import make_trace


@pytest.fixture
def system(tiny_arch, small_system_config):
    return OuroborosSystem(tiny_arch, small_system_config, auto_scale_wafers=False)


class TestBuild:
    def test_build_partitions_cores(self, tiny_arch, small_system_config):
        built = build_system(tiny_arch, small_system_config)
        assert built.num_weight_cores == 8
        assert built.num_kv_cores > 0
        assert built.num_weight_cores + built.num_kv_cores <= built.healthy_cores

    def test_summary_keys(self, system):
        summary = system.summary()
        assert summary["weight_cores"] == 8
        assert summary["pipeline_depth"] == 12
        assert summary["wafers"] == 1
        assert summary["kv_capacity_gib"] > 0

    def test_lazy_build_and_rebuild(self, system):
        first = system.built
        assert system.built is first
        second = system.rebuild()
        assert second is not first

    def test_static_kv_policy(self, tiny_arch, small_system_config):
        config = dataclasses.replace(small_system_config, kv_policy=KVPolicy.STATIC)
        built = build_system(tiny_arch, config)
        assert isinstance(built.kv_manager, StaticKVCacheManager)

    def test_dynamic_kv_policy_default(self, tiny_arch, small_system_config):
        built = build_system(tiny_arch, small_system_config)
        assert isinstance(built.kv_manager, DistributedKVCacheManager)

    def test_defect_modelling(self, tiny_arch, small_system_config):
        config = dataclasses.replace(small_system_config, model_defects=True, defect_seed=1)
        built = build_system(tiny_arch, config)
        assert built.defect_maps[0] is not None
        assert built.healthy_cores <= built.total_cores

    def test_naive_mapping_has_more_hops(self, tiny_arch, small_system_config):
        optimized = build_system(tiny_arch, small_system_config)
        naive = build_system(
            tiny_arch,
            dataclasses.replace(
                small_system_config, mapping_strategy=MappingStrategy.NAIVE
            ),
        )
        assert naive.cost_model.average_hops > optimized.cost_model.average_hops

    def test_required_wafers(self, tiny_arch):
        assert required_wafers(tiny_arch) == 1
        from repro.models.architectures import llama_65b, llama_13b

        assert required_wafers(llama_13b()) == 1
        assert required_wafers(llama_65b()) == 2

    def test_model_too_big_for_small_wafer_rejected(self, small_arch, small_system_config):
        with pytest.raises(MappingError):
            build_system(small_arch, small_system_config)


class TestServe:
    def test_serve_trace(self, system):
        trace = make_trace(num_requests=6, prefill=24, decode=8)
        result = system.serve(trace)
        assert result.system == "ouroboros-tgp"
        assert result.output_tokens == trace.total_decode_tokens
        assert result.total_time_s > 0
        assert result.energy.total_j > 0

    def test_serve_is_repeatable(self, system):
        a = system.serve(make_trace(num_requests=4))
        b = system.serve(make_trace(num_requests=4))
        assert a.total_time_s == pytest.approx(b.total_time_s)

    def test_pipeline_mode_selection(self, tiny_arch, small_system_config):
        system = OuroborosSystem(
            tiny_arch,
            dataclasses.replace(small_system_config, pipeline_mode=PipelineMode.SEQUENCE_GRAINED),
            auto_scale_wafers=False,
        )
        result = system.serve(make_trace(num_requests=4))
        assert result.system == "ouroboros-seq-grained"

    def test_auto_mode_picks_blocked_for_encoders(self, small_system_config):
        from repro.models.architectures import AttentionMask, ModelArch

        encoder = ModelArch(
            name="TinyEncoder",
            num_blocks=2,
            hidden_size=256,
            num_heads=4,
            ffn_hidden_size=512,
            ffn_matrices=2,
            attention_mask=AttentionMask.BIDIRECTIONAL,
            encoder_blocks=2,
            max_context=256,
        )
        system = OuroborosSystem(encoder, small_system_config, auto_scale_wafers=False)
        result = system.serve(make_trace(num_requests=4, prefill=32, decode=1))
        assert result.system == "ouroboros-tgp-blocked"

    def test_cim_disabled_increases_energy(self, tiny_arch, small_system_config):
        cim = OuroborosSystem(tiny_arch, small_system_config, auto_scale_wafers=False)
        no_cim = OuroborosSystem(
            tiny_arch,
            dataclasses.replace(small_system_config, cim_enabled=False),
            auto_scale_wafers=False,
        )
        trace = make_trace(num_requests=4)
        assert (
            no_cim.serve(make_trace(num_requests=4)).energy_per_output_token_j
            > cim.serve(trace).energy_per_output_token_j
        )

    def test_serve_workload_by_name(self, tiny_arch, small_system_config):
        system = OuroborosSystem(tiny_arch, small_system_config, auto_scale_wafers=False)
        result = system.serve_workload("lp128_ld2048", num_requests=2)
        assert result.workload == "lp128_ld2048"
        assert result.output_tokens == 2 * 2048


class TestMultiWafer:
    def test_two_wafer_build(self, tiny_arch, small_system_config):
        config = dataclasses.replace(small_system_config, num_wafers=2)
        built = build_system(tiny_arch, config)
        assert len(built.wafers) == 2
        assert len(built.mappings) == 2
        # One transformer block mapped per wafer.
        assert all(len(m.block_mappings) == 1 for m in built.mappings)

    def test_multi_wafer_adds_optical_energy(self, tiny_arch, small_system_config):
        single = OuroborosSystem(tiny_arch, small_system_config, auto_scale_wafers=False)
        double = OuroborosSystem(
            tiny_arch,
            dataclasses.replace(small_system_config, num_wafers=2),
            auto_scale_wafers=False,
        )
        trace = make_trace(num_requests=4)
        single_result = single.serve(make_trace(num_requests=4))
        double_result = double.serve(trace)
        assert (
            double_result.energy.communication_j > single_result.energy.communication_j
        )

    def test_auto_scale_to_required_wafers(self, small_system_config):
        from repro.models.architectures import llama_65b

        system = OuroborosSystem(llama_65b(), OuroborosSystemConfig(anneal_iterations=0))
        assert system.num_wafers == 2


class TestFaultInjection:
    def test_inject_weight_core_failure(self, system):
        mapping = system.built.mappings[0]
        failed = mapping.weight_core_ids[0]
        result = system.inject_core_failure(failed)
        assert result.failed_core == failed
        assert result.reclaimed_kv_core is not None

    def test_inject_kv_core_failure(self, system):
        mapping = system.built.mappings[0]
        failed = mapping.kv_core_ids[0]
        result = system.inject_core_failure(failed)
        assert result.reclaimed_kv_core is None
