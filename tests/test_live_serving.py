"""Tests for the live serving subsystem: feed, telemetry, daemon, client.

The load-bearing property under test: replaying a spec's trace into a live
daemon and draining reproduces the batch ``serve(spec)`` result **bit for
bit** — across both engine paths, every scheduling policy, a mid-run
checkpoint/restart, and concurrent multi-client ingestion.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import api
from repro.errors import ProtocolError
from repro.experiments.common import ExperimentSettings
from repro.results import TenantStats
from repro.serving import (
    PROTOCOL_VERSION,
    DaemonFleet,
    LiveArrivalFeed,
    decode_message,
    load_daemon_checkpoint,
    request_from_dict,
    request_to_dict,
    serve_via_daemon,
    start_daemon,
)
from repro.workload.requests import Request

POLICIES = ("fcfs", "wfq", "priority")


def make_request(request_id: int, arrival: float = 0.0) -> Request:
    return Request(
        request_id=request_id,
        prefill_length=8,
        decode_length=4,
        arrival_time=arrival,
    )


def spec_for(policy: str, requests: int = 8) -> api.DeploymentSpec:
    builder = (
        api.deployment("llama-13b")
        .workload("lp128_ld2048")
        .requests(requests)
        .arrival_rate(20.0)
    )
    if policy != "fcfs":
        builder = builder.scheduler(policy)
    return builder.build()


_BATCH: dict[str, dict] = {}


def batch_result(policy: str) -> dict:
    """The batch serve(spec) result dict, computed once per policy."""
    if policy not in _BATCH:
        _BATCH[policy] = api.serve(spec_for(policy)).as_dict()
    return _BATCH[policy]


def trace_requests(spec: api.DeploymentSpec) -> list[Request]:
    return sorted(
        api.trace_for(spec).requests,
        key=lambda r: (r.arrival_time, r.request_id),
    )


class TestLiveArrivalFeed:
    def test_watermark_is_min_over_open_streams(self):
        feed = LiveArrivalFeed()
        first = feed.open_stream()
        second = feed.open_stream()
        assert feed.submit(first, make_request(1, arrival=5.0))
        # the second stream has promised nothing yet: global watermark holds
        assert feed.watermark() == 0.0
        assert feed.take_released() == []
        assert feed.submit(second, make_request(2, arrival=3.0))
        assert feed.watermark() == 3.0
        assert [r.request_id for r in feed.take_released()] == [2]
        assert feed.submit(second, make_request(3, arrival=6.0))
        assert feed.watermark() == 5.0
        assert [r.request_id for r in feed.take_released()] == [1]

    def test_ending_a_lagging_stream_advances_the_watermark(self):
        feed = LiveArrivalFeed()
        ahead = feed.open_stream()
        behind = feed.open_stream()
        feed.submit(ahead, make_request(1, arrival=10.0))
        assert feed.watermark() == 0.0
        feed.end_stream(behind)
        assert feed.watermark() == 10.0
        assert [r.request_id for r in feed.take_released()] == [1]
        # monotone: a fresh stream opens at the current watermark, it cannot
        # drag the promise backwards
        feed.open_stream()
        assert feed.watermark() == 10.0

    def test_release_order_matches_the_batch_generator(self):
        feed = LiveArrivalFeed()
        fast = feed.open_stream()
        slow = feed.open_stream()  # holds the global watermark at 0
        # buffered out of id order behind the slow stream's missing promise
        feed.submit(fast, make_request(7, arrival=1.0))
        feed.submit(fast, make_request(3, arrival=2.0))
        feed.submit(fast, make_request(5, arrival=2.0))
        assert [r.request_id for r in feed.take_released()] == []
        feed.submit(slow, make_request(9, arrival=4.0))
        # coverage jumped to min(2.0, 4.0): released sorted by
        # (arrival_time, request_id) — the order a batch generator emits
        assert [r.request_id for r in feed.take_released()] == [7, 3, 5]

    def test_arrival_already_covered_releases_immediately(self):
        feed = LiveArrivalFeed(watermark=5.0)
        stream = feed.open_stream()
        feed.submit(stream, make_request(1, arrival=2.0))
        assert [r.request_id for r in feed.take_released()] == [1]

    def test_duplicate_request_ids_are_ignored(self):
        feed = LiveArrivalFeed()
        stream = feed.open_stream()
        assert feed.submit(stream, make_request(1)) is True
        assert feed.submit(stream, make_request(1)) is False
        feed.drain()
        assert [r.request_id for r in feed.take_released()] == [1]
        assert len(feed.known_requests()) == 1

    def test_drain_releases_everything_and_closes_submission(self):
        feed = LiveArrivalFeed()
        stream = feed.open_stream()
        feed.submit(stream, make_request(1, arrival=99.0))
        assert not feed.is_drained()
        feed.drain()
        assert feed.is_drained()
        assert [r.request_id for r in feed.take_released()] == [1]
        assert feed.is_finished()
        with pytest.raises(ValueError):
            feed.submit(stream, make_request(2))

    def test_wait_ready_is_interrupted_by_a_checkpoint_request(self):
        feed = LiveArrivalFeed()
        feed.open_stream()
        outcome: list[bool] = []
        waiter = threading.Thread(
            target=lambda: outcome.append(feed.wait_ready(None))
        )
        waiter.start()
        time.sleep(0.05)
        assert waiter.is_alive()  # blocked: nothing released, not drained
        request = feed.request_checkpoint()
        waiter.join(timeout=10.0)
        assert outcome == [False]
        assert feed.take_checkpoint_request() is request

    def test_failing_pending_checkpoints_unblocks_the_daemon_side(self):
        feed = LiveArrivalFeed()
        request = feed.request_checkpoint(stop=True)
        feed.fail_pending_checkpoints("engine exited")
        assert request.done.is_set()
        assert request.checkpoint is None
        assert request.error == "engine exited"


class TestProtocol:
    def test_request_round_trip(self):
        request = Request(
            request_id=7, prefill_length=128, decode_length=32,
            arrival_time=1.5, tenant="batchy", weight=2.0, priority=3,
        )
        assert request_from_dict(request_to_dict(request)) == request

    def test_minimal_payload_uses_request_defaults(self):
        rebuilt = request_from_dict(
            {"request_id": 1, "prefill_length": 8, "decode_length": 4}
        )
        assert rebuilt.arrival_time == 0.0
        assert rebuilt.weight == 1.0

    def test_invalid_payload_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            request_from_dict({"request_id": 1})  # missing lengths
        with pytest.raises(ProtocolError):
            decode_message(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2]\n")


class TestDaemonParity:
    @pytest.mark.parametrize("scalar", [False, True], ids=["fast", "scalar"])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_daemon_replay_matches_batch(self, policy, scalar):
        assert serve_via_daemon(spec_for(policy), scalar=scalar) == batch_result(policy)

    def test_concurrent_multi_client_ingestion_matches_batch(self):
        spec = spec_for("fcfs")
        requests = trace_requests(spec)
        num_clients = 3
        with start_daemon(spec) as handle:
            clients = [handle.client() for _ in range(num_clients)]
            # register every stream's promise before anyone can advance the
            # watermark — a late-opening stream could otherwise only promise
            # from the frontier its peers already reached
            for client in clients:
                client.begin_stream()
            barrier = threading.Barrier(num_clients)
            errors: list[BaseException] = []

            def pump(index: int) -> None:
                try:
                    barrier.wait()
                    # round-robin split; each stream submits in arrival order
                    for request in requests[index::num_clients]:
                        clients[index].submit(request)
                    clients[index].end_stream()
                except BaseException as exc:  # surfaced after the join
                    errors.append(exc)

            threads = [
                threading.Thread(target=pump, args=(index,))
                for index in range(num_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not errors
            with handle.client() as drainer:
                result = drainer.drain()
            for client in clients:
                client.close()
        assert result == batch_result("fcfs")

    def test_checkpoint_restart_drain_matches_batch(self, tmp_path):
        spec = spec_for("wfq")
        requests = trace_requests(spec)
        path = str(tmp_path / "daemon-ckpt.json")
        with start_daemon(spec, checkpoint_path=path) as handle:
            with handle.client() as client:
                for request in requests:
                    client.submit(request)
                # let the engine commit some epochs before interrupting it
                deadline = time.time() + 60.0
                while time.time() < deadline:
                    status = client.status()
                    if status["completed"] >= 1:
                        break
                info = client.checkpoint(stop=True)
                assert info["stop"] is True
                assert info["time_s"] > 0.0
            # a stop-checkpoint retires the daemon itself, not just the
            # engine: it must exit without an explicit shutdown op
            assert handle.daemon.finished.wait(timeout=60.0)
        payload = load_daemon_checkpoint(path)
        assert payload["requests"]  # ingestion state rides along
        with start_daemon(spec, resume_payload=payload) as resumed:
            with resumed.client() as client:
                result = client.drain()
        assert result == batch_result("wfq")

    def test_fleet_matches_batch_per_spec(self):
        specs = [spec_for("fcfs"), spec_for("priority")]
        results = DaemonFleet(specs).run()
        assert results == [batch_result("fcfs"), batch_result("priority")]

    def test_sweep_runner_daemon_mode(self):
        from repro.perf import SweepRunner

        runner = SweepRunner(max_workers=2)
        assert runner.run_specs_daemon([spec_for("fcfs")]) == [batch_result("fcfs")]


class TestDaemonProtocolSurface:
    def test_hello_status_duplicates_and_errors(self):
        spec = spec_for("fcfs")
        request = trace_requests(spec)[0]
        with start_daemon(spec) as handle:
            with handle.client() as client:
                hello = client.hello()
                assert hello["protocol"] == PROTOCOL_VERSION
                assert hello["model"] == spec.model
                first = client.submit(request)
                assert first["duplicate"] is False
                again = client.submit(request)
                assert again["duplicate"] is True
                status = client.status()
                assert status["state"] == "serving"
                assert status["ingested"] == 1
                with pytest.raises(ProtocolError, match="unknown op"):
                    client.call("frobnicate")
                with pytest.raises(ProtocolError, match="invalid request"):
                    client.submit({"request_id": 99})
                # a malformed line gets an error reply, not a dropped daemon
                client._file.write(b"not json\n")
                client._file.flush()
                reply = decode_message(client._file.readline())
                assert reply["ok"] is False
                assert client.status()["ingested"] == 1  # still alive

    def test_live_metrics_shape_matches_tenant_stats_and_events_stream(self):
        spec = spec_for("fcfs")
        with start_daemon(spec) as handle:
            subscriber = handle.client()
            subscriber.subscribe()
            events: list[dict] = []
            collector = threading.Thread(
                target=lambda: events.extend(subscriber.events())
            )
            collector.start()
            with handle.client() as client:
                for request in trace_requests(spec):
                    client.submit(request)
                client.end_stream()
                client.drain()
            collector.join(timeout=120.0)
            subscriber.close()
            with handle.client() as client:
                metrics = client.metrics()
                status = client.status()
        assert status["state"] == "finished"
        assert status["completed"] == spec.num_requests
        expected_keys = set(TenantStats().as_dict())
        assert set(metrics["aggregate"]) == expected_keys
        assert metrics["tenants"]
        for stats in metrics["tenants"].values():
            assert set(stats) == expected_keys
        completions = [e for e in events if e["event"] == "completion"]
        assert len(completions) == spec.num_requests
        assert events[-1]["event"] == "finished"
        assert events[-1]["drained"] is True

    def test_cli_client_replay_against_running_daemon(self, capsys):
        from repro.cli import main

        settings = ExperimentSettings(num_requests=6, arrival_rate_per_s=20.0)
        spec = settings.deployment("llama-13b", "lp128_ld2048")
        with start_daemon(spec) as handle:
            code = main([
                "client", "replay", "llama-13b",
                "--workload", "lp128_ld2048",
                "--requests", "6", "--arrival-rate", "20",
                "--connect", f"{handle.host}:{handle.port}",
            ])
        assert code == 0
        assert "tok/s" in capsys.readouterr().out


class TestSatellites:
    def test_batch_tenant_stats_carry_queue_depth_and_admission_wait(self):
        result = api.serve(spec_for("fcfs"))
        assert result.tenants
        for stats in result.tenants.values():
            assert stats.queue_depth == 0  # a drained run holds nothing back
            assert stats.admission_wait.count == stats.requests
        payload = next(iter(result.as_dict()["tenants"].values()))
        assert "queue_depth" in payload
        assert "admission_wait" in payload

    def test_build_deployment_memo_is_thread_safe(self):
        api.clear_system_cache()
        spec = spec_for("fcfs")
        workers = 8
        systems: list[object] = [None] * workers
        barrier = threading.Barrier(workers)

        def build(index: int) -> None:
            barrier.wait()
            systems[index] = api.build_deployment(spec)

        threads = [
            threading.Thread(target=build, args=(index,))
            for index in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        assert all(system is not None for system in systems)
        # the first finisher wins the memo slot; everyone else adopts it
        assert len({id(system) for system in systems}) == 1
        assert api.build_deployment(spec) is systems[0]
