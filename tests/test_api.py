"""Tests for the unified serving API: spec, registry, builder, serve()."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.api import (
    PRESETS,
    SYSTEM_REGISTRY,
    DeploymentSpec,
    ServingSystem,
    SystemEntry,
    build_deployment,
    comparison_grid_keys,
    deployment,
    get_system,
    preset,
    register_system,
    resolve_model,
    resolve_model_name,
    serve,
)
from repro.baselines.common import BaselineSystem
from repro.errors import ConfigurationError
from repro.experiments.common import BASELINE_SYSTEMS, OUROBOROS_NAME, ExperimentSettings
from repro.models.architectures import MODEL_REGISTRY
from repro.sim.engine import (
    KVPolicy,
    MappingStrategy,
    OuroborosSystemConfig,
    PipelineMode,
    build_system,
    default_system_config,
    required_wafers,
)

FAST = ExperimentSettings(num_requests=5, anneal_iterations=5)


class TestRegistry:
    def test_every_paper_baseline_is_registered(self):
        for display_name, system_cls in BASELINE_SYSTEMS.items():
            entry = get_system(display_name)
            assert entry.display_name == display_name
            assert entry.system_cls is system_cls

    def test_lookup_by_key_and_display_name(self):
        assert get_system("dgx-a100") is get_system("DGX A100")
        assert get_system("OURS").key == "ouroboros"

    def test_unknown_system_raises(self):
        with pytest.raises(ConfigurationError, match="unknown system"):
            get_system("abacus")

    def test_comparison_grid_matches_plot_order(self):
        displays = [get_system(k).display_name for k in comparison_grid_keys()]
        assert displays == ["DGX A100", "TPUv4", "AttAcc", "Cerebras"]

    def test_only_ouroboros_supports_arrival(self):
        arrival = {k for k, e in SYSTEM_REGISTRY.items() if e.supports_arrival}
        assert arrival == {"ouroboros"}

    def test_register_new_backend(self):
        entry = SystemEntry(
            key="pluto-lut-dram",
            display_name="pLUTo",
            factory=lambda arch, spec: get_system("dgx-a100").factory(arch, spec),
        )
        register_system(entry)
        try:
            assert get_system("pluto-lut-dram") is entry
            result = serve(FAST.deployment("llama-13b", "lp128_ld2048",
                                           system="pluto-lut-dram"))
            assert result.system == "pLUTo"
            assert result.total_tokens > 0
        finally:
            SYSTEM_REGISTRY.pop("pluto-lut-dram", None)

    def test_registered_systems_implement_protocol(self):
        spec = FAST.deployment("llama-13b", "wikitext2")
        for key in ("ouroboros", "dgx-a100", "cim-vlsi22"):
            system = build_deployment(spec.with_system(key), cache=False)
            assert isinstance(system, ServingSystem)
            assert isinstance(system.name, str)
            assert isinstance(system.summary(), dict)


class TestModelResolution:
    def test_registry_names(self):
        arch = resolve_model("llama-13b")
        assert arch.name == "LLaMA-13B"
        assert resolve_model_name(arch) == "llama-13b"

    def test_generic_models(self):
        arch = resolve_model("generic-19.5b")
        assert arch.num_blocks == 48
        assert resolve_model_name(arch) == "generic-19.5b"

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigurationError, match="unknown model"):
            resolve_model("gpt-5")


class TestDeploymentSpec:
    def test_round_trip_for_every_preset(self):
        for name, spec in PRESETS.items():
            data = spec.to_dict()
            json.dumps(data)  # must be JSON-serialisable as-is
            assert DeploymentSpec.from_dict(data) == spec, name

    def test_round_trip_for_every_registered_system(self):
        for key in SYSTEM_REGISTRY:
            spec = FAST.deployment("llama-13b", "wikitext2", system=key)
            assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_for_every_registered_model(self):
        for model in MODEL_REGISTRY:
            spec = FAST.deployment(model, "lp2048_ld128")
            assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_preserves_enums_and_nested_config(self):
        spec = (deployment("llama-13b")
                .pipeline("sequence").mapping("naive")
                .kv(policy="static", threshold=0.3)
                .defects(True, seed=7).build())
        back = DeploymentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back.config.pipeline_mode is PipelineMode.SEQUENCE_GRAINED
        assert back.config.mapping_strategy is MappingStrategy.NAIVE
        assert back.config.kv_policy is KVPolicy.STATIC
        assert back.config.defect_seed == 7
        assert back == spec

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            DeploymentSpec(model="gpt-5")
        with pytest.raises(ConfigurationError):
            DeploymentSpec(model="llama-13b", system="abacus")
        with pytest.raises(ConfigurationError):
            DeploymentSpec(model="llama-13b", workload="not-a-workload")
        with pytest.raises(ConfigurationError):
            DeploymentSpec(model="llama-13b", num_requests=0)

    def test_validator_rejects_open_loop_baselines(self):
        spec = DeploymentSpec(
            model="llama-13b", system="dgx-a100", arrival_rate_per_s=10.0
        )
        with pytest.raises(ConfigurationError, match="closed-batch"):
            spec.validate()
        with pytest.raises(ConfigurationError, match="closed-batch"):
            serve(spec)

    def test_quotas_summing_past_capacity_rejected(self):
        """kv_quota fractions reserving more than the whole cache fail validate."""
        builder = (deployment("llama-13b")
                   .tenant("chat", "wikitext2", 10, kv_quota=0.6)
                   .tenant("batch", "lp2048_ld128", 10, kv_quota=0.6))
        with pytest.raises(ConfigurationError, match="kv_quota"):
            builder.build()
        # Exactly the whole cache is allowed -- the cap is a budget, not a
        # reservation, so summing to 1.0 remains a valid partition.
        spec = (deployment("llama-13b")
                .tenant("chat", "wikitext2", 10, kv_quota=0.5)
                .tenant("batch", "lp2048_ld128", 10, kv_quota=0.5)
                .build())
        assert sum(t.kv_quota for t in spec.tenants) == 1.0

    def test_presets_cover_named_figures(self):
        assert preset("headline").num_requests == 1000
        assert preset("fig19-multiwafer").config.num_wafers == 2
        assert preset("fig21-lut").config.lut_optimized
        assert preset("fig22-open-loop").arrival_rate_per_s > 0
        with pytest.raises(ConfigurationError, match="unknown preset"):
            preset("fig99")


class TestBuilder:
    def test_issue_example_chain(self):
        spec = (deployment("llama-13b").system("ouroboros").wafers(2)
                .kv(policy="dynamic", threshold=0.1).pipeline("token")
                .arrival_rate(8.0).build())
        assert spec.system == "ouroboros"
        assert spec.config.num_wafers == 2
        assert spec.config.kv_policy is KVPolicy.DYNAMIC
        assert spec.config.kv_threshold == 0.1
        assert spec.config.pipeline_mode is PipelineMode.TOKEN_GRAINED
        assert spec.arrival_rate_per_s == 8.0

    def test_workload_and_options(self):
        spec = (deployment("llama-65b").system("cerebras-wse2")
                .options(num_wafers=2)
                .workload("lp128_ld2048", num_requests=17, seed=3).build())
        assert spec.options == {"num_wafers": 2}
        assert (spec.workload, spec.num_requests, spec.seed) == ("lp128_ld2048", 17, 3)

    def test_unknown_pipeline_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="pipeline mode"):
            deployment("llama-13b").pipeline("warp")

    def test_build_validates(self):
        builder = deployment("llama-13b").system("tpu-v4").arrival_rate(5.0)
        with pytest.raises(ConfigurationError, match="closed-batch"):
            builder.build()


class TestServe:
    def test_serve_ouroboros(self):
        result = serve(FAST.deployment("llama-13b", "lp128_ld2048"))
        assert result.system == OUROBOROS_NAME
        assert result.workload == "lp128_ld2048"
        assert result.output_tokens > 0

    def test_serve_baseline_labels_display_name(self):
        result = serve(FAST.deployment("llama-13b", "lp128_ld2048", system="tpu-v4"))
        assert result.system == "TPUv4"
        assert result.output_tokens > 0

    def test_serve_is_deterministic(self):
        spec = FAST.deployment("llama-13b", "wikitext2")
        first, second = serve(spec), serve(spec)
        assert first.as_dict() == second.as_dict()

    def test_build_is_memoised_per_config(self):
        spec = FAST.deployment("llama-13b", "wikitext2")
        assert build_deployment(spec) is build_deployment(
            spec.with_system("ouroboros")
        )
        # a different workload shares the same built system...
        other_workload = FAST.deployment("llama-13b", "lp2048_ld128")
        assert build_deployment(spec) is build_deployment(other_workload)
        # ...a different system config does not
        other_config = FAST.deployment("llama-13b", "wikitext2", kv_threshold=0.25)
        assert build_deployment(spec) is not build_deployment(other_config)
        assert build_deployment(spec, cache=False) is not build_deployment(spec)

    def test_run_all_systems_rejects_open_loop_baselines_loudly(self):
        from repro.experiments.common import run_all_systems

        open_loop = ExperimentSettings(
            num_requests=5, anneal_iterations=5, arrival_rate_per_s=10.0
        )
        with pytest.raises(ConfigurationError, match="closed-batch"):
            run_all_systems("llama-13b", "wikitext2", open_loop)
        # Ouroboros-only cells (the fig22 shape) still serve open-loop.
        only_ours = run_all_systems("llama-13b", "wikitext2", open_loop, systems=())
        assert list(only_ours) == [OUROBOROS_NAME]

    def test_build_cache_is_bounded(self):
        api.clear_system_cache()
        for threshold in range(api._SYSTEM_CACHE_MAX + 4):
            build_deployment(FAST.deployment(
                "llama-13b", "wikitext2", kv_threshold=threshold / 100.0
            ))
        assert len(api._SYSTEM_CACHE) == api._SYSTEM_CACHE_MAX

    def test_baseline_that_cannot_fit_raises(self):
        spec = FAST.deployment("llama-65b", "wikitext2", system="cerebras-wse2",
                               options={"num_wafers": 1})
        with pytest.raises(ConfigurationError):
            serve(spec)


class TestDeprecatedShims:
    def test_build_system_warns_and_matches_api(self):
        settings = FAST
        spec = settings.deployment("llama-13b", "lp128_ld2048")
        with pytest.warns(DeprecationWarning):
            built = build_system(resolve_model("llama-13b"), spec.config)
        old = built.serve(api.trace_for(spec), workload_name=spec.workload)
        new = serve(spec)
        old_dict, new_dict = old.as_dict(), new.as_dict()
        # The unified entry point relabels the system; every measured field
        # must stay bitwise-identical.
        old_dict.pop("system"), new_dict.pop("system")
        assert old_dict == new_dict

    def test_run_ouroboros_shim_matches_api(self):
        from repro.experiments.common import run_ouroboros

        with pytest.warns(DeprecationWarning):
            old = run_ouroboros("llama-13b", "lp128_ld2048", FAST)
        new = serve(FAST.deployment("llama-13b", "lp128_ld2048"))
        assert old.as_dict() == new.as_dict()

    def test_run_baseline_shim_matches_api(self):
        from repro.experiments.common import run_baseline

        with pytest.warns(DeprecationWarning):
            old = run_baseline("DGX A100", "llama-13b", "lp128_ld2048", FAST)
        new = serve(FAST.deployment("llama-13b", "lp128_ld2048", system="dgx-a100"))
        assert old.as_dict() == new.as_dict()

    def test_run_baseline_shim_returns_none_when_model_does_not_fit(self):
        from repro.experiments.common import run_baseline

        with pytest.warns(DeprecationWarning):
            missing = run_baseline("Cerebras", "llama-65b", "wikitext2", FAST)
        # LLaMA-65B needs two WSE-2 wafers; the shim mirrors the missing bar.
        assert missing is None or missing.total_tokens > 0

    def test_build_system_default_config_comes_from_one_place(self):
        arch = resolve_model("llama-13b")
        assert required_wafers(arch) == required_wafers(arch, default_system_config())
        assert default_system_config() == OuroborosSystemConfig()


class TestProtocolCompliance:
    def test_ouroboros_system_is_a_serving_system(self):
        system = build_deployment(FAST.deployment("llama-13b", "wikitext2"))
        assert isinstance(system, ServingSystem)
        assert system.name == "Ouroboros"

    def test_built_ouroboros_is_a_serving_system(self):
        system = build_deployment(FAST.deployment("llama-13b", "wikitext2"))
        assert isinstance(system.built, ServingSystem)

    def test_baseline_systems_expose_name_and_summary(self):
        for display in BASELINE_SYSTEMS:
            entry = get_system(display)
            system = build_deployment(
                FAST.deployment("llama-13b", "wikitext2", system=entry.key),
                cache=False,
            )
            assert isinstance(system, BaselineSystem)
            assert system.name == system.hardware.name
            summary = system.summary()
            assert summary["num_devices"] >= 1
