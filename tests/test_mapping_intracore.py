"""Tests for the intra-core DP mapper over the H-tree."""

import pytest

from repro.errors import MappingError
from repro.hardware.htree import assignment_cost
from repro.mapping.intracore import (
    IntraCoreMapper,
    IntraCoreProblem,
    grouped_assignment,
    naive_assignment,
)


class TestProblemValidation:
    def test_too_many_slices_rejected(self):
        with pytest.raises(MappingError):
            IntraCoreProblem(input_parts=8, output_parts=8, num_leaves=32)

    def test_non_power_of_two_leaves_rejected(self):
        with pytest.raises(MappingError):
            IntraCoreProblem(input_parts=2, output_parts=2, num_leaves=12)

    def test_non_positive_parts_rejected(self):
        with pytest.raises(MappingError):
            IntraCoreProblem(input_parts=0, output_parts=2)


class TestAssignments:
    def test_naive_and_grouped_cover_all_slices(self):
        problem = IntraCoreProblem(input_parts=4, output_parts=2, num_leaves=8)
        for builder in (naive_assignment, grouped_assignment):
            assignment = builder(problem)
            assert len(assignment.slices) == 8
            originals = {(i, o) for i in range(4) for o in range(2)}
            assert originals <= set(assignment.slices)

    def test_grouped_no_worse_than_naive(self):
        problem = IntraCoreProblem(input_parts=4, output_parts=4, num_leaves=16)
        grouped_cost = assignment_cost(grouped_assignment(problem))
        naive_cost = assignment_cost(naive_assignment(problem))
        assert grouped_cost.weighted_concat_depth <= naive_cost.weighted_concat_depth


class TestOptimizer:
    def test_single_output_part_needs_no_concat(self):
        problem = IntraCoreProblem(input_parts=8, output_parts=1, num_leaves=8)
        result = IntraCoreMapper(problem).optimize()
        assert result.objective == 0
        assert result.cost.concat_nodes == 0

    def test_optimizer_matches_grouped_structure(self):
        problem = IntraCoreProblem(input_parts=4, output_parts=2, num_leaves=8)
        result = IntraCoreMapper(problem).optimize()
        grouped_cost = assignment_cost(grouped_assignment(problem))
        assert result.cost.weighted_concat_depth <= grouped_cost.weighted_concat_depth

    def test_optimizer_beats_naive(self):
        problem = IntraCoreProblem(input_parts=4, output_parts=4, num_leaves=16)
        result = IntraCoreMapper(problem).optimize()
        assert result.objective <= result.naive_objective
        assert 0.0 <= result.improvement <= 1.0

    def test_objective_consistent_with_tree_evaluation(self):
        problem = IntraCoreProblem(input_parts=2, output_parts=4, num_leaves=8)
        result = IntraCoreMapper(problem).optimize()
        assert result.objective == result.cost.weighted_concat_depth

    def test_concatenations_pushed_to_root(self):
        problem = IntraCoreProblem(input_parts=4, output_parts=2, num_leaves=8)
        result = IntraCoreMapper(problem).optimize()
        # Two output parts need exactly one concatenation, at the root.
        assert result.cost.concat_nodes == 1
        assert result.objective == 1

    def test_paper_sized_instance(self):
        """A realistic 32-crossbar core with a 5x7-ish tile finishes quickly."""
        problem = IntraCoreProblem(input_parts=4, output_parts=8, num_leaves=32)
        result = IntraCoreMapper(problem).optimize()
        assert result.objective <= result.naive_objective
        assert len(result.assignment.slices) == 32

    def test_fallback_path_for_huge_state_space(self):
        problem = IntraCoreProblem(input_parts=2, output_parts=16, num_leaves=32)
        result = IntraCoreMapper(problem).optimize()
        assert result.objective <= result.naive_objective
