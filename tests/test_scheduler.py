"""Tests for the inter-sequence scheduler (FCFS, eviction, suspension)."""

import pytest

from repro.errors import SchedulingError
from repro.workload.requests import Request, Sequence, SequencePhase
from repro.workload.scheduler import InterSequenceScheduler


class FakeKVProvider:
    """KV manager stub with a fixed sequence-slot capacity."""

    def __init__(self, capacity: int, token_capacity: int | None = None) -> None:
        self.capacity = capacity
        self.token_capacity = token_capacity
        self.resident: dict[int, int] = {}

    def try_admit(self, sequence: Sequence) -> bool:
        if len(self.resident) >= self.capacity:
            return False
        self.resident[sequence.sequence_id] = 0
        return True

    def release(self, sequence: Sequence) -> None:
        self.resident.pop(sequence.sequence_id, None)

    def append_tokens(self, sequence: Sequence, count: int = 1) -> bool:
        if self.token_capacity is not None:
            total = sum(self.resident.values()) + count
            if total > self.token_capacity:
                return False
        self.resident[sequence.sequence_id] = self.resident.get(sequence.sequence_id, 0) + count
        return True


def requests(n: int, prefill: int = 8, decode: int = 4) -> list[Request]:
    return [
        Request(request_id=i, prefill_length=prefill, decode_length=decode)
        for i in range(n)
    ]


def arriving_requests(arrivals: list[float], prefill: int = 8, decode: int = 4) -> list[Request]:
    return [
        Request(request_id=i, prefill_length=prefill, decode_length=decode, arrival_time=t)
        for i, t in enumerate(arrivals)
    ]


class TestAdmission:
    def test_fcfs_admission_order(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=3))
        scheduler.submit_all(requests(5))
        admitted = scheduler.fill()
        assert [seq.sequence_id for seq in admitted] == [0, 1, 2]
        assert scheduler.num_active == 3
        assert len(scheduler.waiting) == 2

    def test_admission_limited_by_max_active(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=10), max_active_sequences=2)
        scheduler.submit_all(requests(5))
        scheduler.fill()
        assert scheduler.num_active == 2

    def test_admitted_sequences_enter_prefill(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=2))
        scheduler.submit_all(requests(2))
        for seq in scheduler.fill():
            assert seq.phase is SequencePhase.PREFILL

    def test_rejected_admission_counted(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=1))
        scheduler.submit_all(requests(3))
        scheduler.fill()
        assert scheduler.stats.rejected_admissions == 1

    def test_rejection_counted_once_per_request_not_per_epoch(self):
        """A request blocked at the head of the queue across many fill() calls
        (one per epoch) is one rejected admission, not one per epoch."""
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=1))
        scheduler.submit_all(requests(3))
        for epoch in range(5):
            scheduler.fill(time=float(epoch))
        assert scheduler.stats.rejected_admissions == 1

    def test_each_blocked_request_rejected_once(self):
        provider = FakeKVProvider(capacity=1)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(3))
        scheduler.fill()
        assert scheduler.stats.rejected_admissions == 1
        # Head completes; the next request admits, the one behind it rejects.
        scheduler.complete(scheduler.active[0])
        scheduler.fill()
        scheduler.fill()
        assert scheduler.stats.rejected_admissions == 2

    def test_all_done(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=2))
        assert scheduler.all_done
        scheduler.submit_all(requests(1))
        assert not scheduler.all_done


class TestCompletion:
    def test_complete_releases_and_readmits(self):
        provider = FakeKVProvider(capacity=2)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(3))
        scheduler.fill()
        first = scheduler.active[0]
        scheduler.complete(first, time=1.0)
        assert first.is_complete
        assert first.completion_time == 1.0
        assert first.sequence_id not in provider.resident
        scheduler.fill()
        assert scheduler.num_active == 2

    def test_complete_unknown_sequence_rejected(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=2))
        scheduler.submit_all(requests(1))
        orphan = Sequence(Request(request_id=99, prefill_length=4, decode_length=1))
        with pytest.raises(SchedulingError):
            scheduler.complete(orphan)

    def test_stats_track_completions(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(requests(2))
        scheduler.fill()
        for seq in list(scheduler.active):
            scheduler.complete(seq)
        assert scheduler.stats.completed == 2
        assert scheduler.all_done


class TestEviction:
    def test_evict_most_recent(self):
        provider = FakeKVProvider(capacity=3)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(3))
        scheduler.fill()
        for seq in scheduler.active:
            seq.advance_tokens(4)
        victim = scheduler.evict_most_recent()
        assert victim.sequence_id == 2
        assert victim.phase is SequencePhase.EVICTED
        assert scheduler.waiting[0] is victim
        assert scheduler.stats.evictions == 1

    def test_admission_suspended_after_eviction(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=3))
        scheduler.submit_all(requests(4))
        scheduler.fill()
        for seq in scheduler.active:
            seq.advance_tokens(2)
        scheduler.evict_most_recent()
        assert scheduler.fill() == []
        # Completing a request resumes admission.
        scheduler.complete(scheduler.active[0])
        assert scheduler.fill() != []

    def test_admission_resumes_when_nothing_active(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=2))
        scheduler.submit_all(requests(2))
        scheduler.fill()
        for seq in scheduler.active:
            seq.advance_tokens(2)
        scheduler.evict_most_recent()
        scheduler.evict_most_recent()
        assert scheduler.num_active == 0
        # Nothing active -> suspension lifts so the system cannot deadlock.
        assert scheduler.fill() != []

    def test_evict_with_no_active_returns_none(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=2))
        assert scheduler.evict_most_recent() is None

    def test_eviction_resets_rejection_dedup(self):
        """Regression: an evicted-and-requeued sequence keeps its id, so a
        post-eviction capacity rejection is a new blocked stint and must be
        counted again (the once-per-request dedup used to swallow it)."""
        provider = FakeKVProvider(capacity=0)
        scheduler = InterSequenceScheduler(provider)
        (sequence,) = scheduler.submit_all(requests(1))
        scheduler.fill()
        assert scheduler.stats.rejected_admissions == 1
        # Capacity appears; the request admits and makes some progress.
        provider.capacity = 1
        scheduler.fill()
        assert scheduler.is_active(sequence)
        sequence.advance_tokens(2)
        scheduler.evict_most_recent()
        # Capacity vanishes again (e.g. a failed KV core): the re-queued
        # victim's rejection is a fresh one and must show up in the stats.
        provider.capacity = 0
        scheduler.fill()
        assert scheduler.stats.rejected_admissions == 2


class TestGrowth:
    def test_growth_without_pressure(self):
        provider = FakeKVProvider(capacity=2, token_capacity=100)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(2))
        scheduler.fill()
        assert scheduler.grow_sequence(scheduler.active[0], 10)

    def test_growth_evicts_most_recent_under_pressure(self):
        provider = FakeKVProvider(capacity=3, token_capacity=10)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(3))
        scheduler.fill()
        for seq in scheduler.active:
            assert scheduler.grow_sequence(seq, 1)
            seq.advance_tokens(1)
        first = scheduler.active[0]
        # Needs 8 more tokens; capacity 10 already holds 3 -> evictions.
        assert scheduler.grow_sequence(first, 8)
        assert scheduler.stats.evictions >= 1
        assert first in scheduler.active

    def test_growth_fails_when_alone_and_oversized(self):
        provider = FakeKVProvider(capacity=1, token_capacity=4)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(1))
        scheduler.fill()
        assert not scheduler.grow_sequence(scheduler.active[0], 100)

    def test_growing_tail_sequence_evicts_second_most_recent(self):
        """Regression: growing the most recently admitted (tail) sequence while
        the cache is full must evict the one admitted just before it — with the
        full eviction bookkeeping — and never the growing sequence itself."""
        provider = FakeKVProvider(capacity=3, token_capacity=10)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(3))
        scheduler.fill()
        for seq in scheduler.active:
            assert scheduler.grow_sequence(seq, 3)
            seq.advance_tokens(3)
        tail = scheduler.active[-1]
        middle = scheduler.active[-2]
        assert scheduler.grow_sequence(tail, 3)
        assert scheduler.is_active(tail)
        assert not scheduler.is_active(middle)
        assert middle.phase is SequencePhase.EVICTED
        assert scheduler.waiting[0] is middle
        assert middle.sequence_id not in provider.resident
        assert scheduler.stats.evictions == 1
        assert scheduler.stats.recomputed_tokens == 3
        # Admission is suspended by the eviction, exactly like evict_most_recent.
        scheduler.submit_all(requests(1))
        assert scheduler.fill() == []


class TestArrivalGating:
    def test_future_requests_not_admitted(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(arriving_requests([0.0, 1.0, 2.0]))
        admitted = scheduler.fill(time=0.5)
        assert [seq.sequence_id for seq in admitted] == [0]
        assert scheduler.stats.rejected_admissions == 0  # blocked, not rejected

    def test_admission_follows_the_clock(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(arriving_requests([0.0, 1.0, 2.0]))
        scheduler.fill(time=0.0)
        assert scheduler.num_active == 1
        scheduler.fill(time=1.5)
        assert scheduler.num_active == 2
        scheduler.fill(time=10.0)
        assert scheduler.num_active == 3

    def test_arrival_exactly_at_clock_admits(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(arriving_requests([1.0]))
        assert scheduler.fill(time=1.0) != []

    def test_admitted_at_arrival_records_admission_time(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(arriving_requests([0.0, 3.0]))
        scheduler.fill(time=3.5)
        assert scheduler.active[1].admission_time == 3.5

    def test_next_arrival_time(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        assert scheduler.next_arrival_time() is None
        scheduler.submit_all(arriving_requests([2.0, 5.0]))
        assert scheduler.next_arrival_time() == 2.0
        scheduler.fill(time=2.0)
        assert scheduler.next_arrival_time() == 5.0

    def test_next_arrival_follows_fcfs_head_not_earliest_arrival(self):
        """A later-submitted request that arrives earlier still waits behind
        the FCFS head, so the head's arrival is when admission can resume."""
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(arriving_requests([10.0, 2.0]))
        assert scheduler.next_arrival_time() == 10.0
        assert not scheduler.has_arrived_waiting(5.0)
        # Jumping to the head's arrival really unblocks admission (the
        # engine relies on this to avoid a spurious capacity-stall error).
        assert len(scheduler.fill(time=10.0)) == 2

    def test_has_arrived_waiting_distinguishes_stall_kinds(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=0))
        scheduler.submit_all(arriving_requests([1.0]))
        assert not scheduler.has_arrived_waiting(0.5)  # not yet arrived
        assert scheduler.has_arrived_waiting(1.0)  # arrived but won't fit


# ---------------------------------------------------------------------------
# Pluggable scheduling policies (fcfs / wfq / priority)
# ---------------------------------------------------------------------------


from repro.errors import ConfigurationError  # noqa: E402
from repro.workload.policies import (  # noqa: E402
    FCFSPolicy,
    PriorityAgingPolicy,
    WFQPolicy,
    make_policy,
    validate_policy_name,
)


def tenant_requests(specs, prefill: int = 8, decode: int = 4) -> list[Request]:
    """Requests from (tenant, arrival[, weight[, priority]]) tuples, in order."""
    out = []
    for i, spec in enumerate(specs):
        tenant, arrival = spec[0], spec[1]
        weight = spec[2] if len(spec) > 2 else 1.0
        priority = spec[3] if len(spec) > 3 else 0
        out.append(
            Request(
                request_id=i,
                prefill_length=prefill,
                decode_length=decode,
                arrival_time=arrival,
                tenant=tenant,
                weight=weight,
                priority=priority,
            )
        )
    return out


class TestPolicyRegistry:
    def test_known_names(self):
        assert isinstance(make_policy("fcfs"), FCFSPolicy)
        assert isinstance(make_policy("wfq"), WFQPolicy)
        assert isinstance(make_policy("priority"), PriorityAgingPolicy)
        assert validate_policy_name("WFQ") == "wfq"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheduling policy"):
            make_policy("lifo")

    def test_negative_aging_rejected(self):
        with pytest.raises(ConfigurationError, match="aging"):
            PriorityAgingPolicy(aging_rate=-1.0)


class TestFCFSPolicyParity:
    """The explicit fcfs policy is bit-for-bit the historical scheduler."""

    def test_explicit_fcfs_matches_default(self):
        default = InterSequenceScheduler(FakeKVProvider(capacity=3))
        explicit = InterSequenceScheduler(FakeKVProvider(capacity=3), policy="fcfs")
        default.submit_all(requests(5))
        explicit.submit_all(requests(5))
        assert [s.sequence_id for s in default.fill()] == [
            s.sequence_id for s in explicit.fill()
        ]
        assert default.stats.rejected_admissions == explicit.stats.rejected_admissions

    def test_fcfs_head_blocks_arrived_later_request(self):
        """The defining FCFS behaviour the tenant-aware policies relax: an
        unarrived head gates an arrived request behind it."""
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4), policy="fcfs")
        scheduler.submit_all(
            tenant_requests([("a", 10.0), ("b", 0.0)])
        )
        assert scheduler.fill(time=0.0) == []
        assert scheduler.next_arrival_time() == 10.0


class TestWFQPolicy:
    def test_work_conserving_across_tenants(self):
        """WFQ admits any arrived tenant head: an unarrived head of one
        tenant no longer head-of-line-blocks another tenant's arrived work."""
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4), policy="wfq")
        scheduler.submit_all(tenant_requests([("a", 10.0), ("b", 0.0)]))
        admitted = scheduler.fill(time=0.0)
        assert [seq.request.tenant for seq in admitted] == ["b"]
        assert scheduler.next_arrival_time() == 10.0  # a's head remains

    def test_select_never_idles_while_arrived_work_exists(self):
        """Work conservation at the policy level: whenever any waiting
        request has arrived, select() proposes one."""
        policy = WFQPolicy()
        sequences = [
            Sequence(request)
            for request in tenant_requests(
                [("a", 0.0), ("a", 5.0), ("b", 1.0), ("c", 2.0)]
            )
        ]
        for sequence in sequences:
            policy.push(sequence)
        for time in (0.0, 0.5, 1.0, 2.0, 5.0, 100.0):
            arrived = [
                s for s in policy.waiting() if s.request.arrival_time <= time
            ]
            assert (policy.select(time) is not None) == bool(arrived)

    def test_token_cost_fairness_interleaves_tenants(self):
        """A tenant of expensive requests is admitted less often: admission
        virtual time advances by total_tokens / weight."""
        cheap = [("a", 0.0)] * 5  # 12 tokens each
        policy = WFQPolicy()
        sequences = [
            Sequence(request)
            for request in tenant_requests(cheap, prefill=8, decode=4)
        ] + [
            Sequence(request)
            for request in tenant_requests(
                [("b", 0.0)] * 3, prefill=96, decode=24
            )
        ]
        # Re-id so ids are unique across the two batches (submission order).
        sequences = [
            Sequence(
                Request(
                    request_id=i,
                    prefill_length=s.request.prefill_length,
                    decode_length=s.request.decode_length,
                    tenant=s.request.tenant,
                )
            )
            for i, s in enumerate(sequences)
        ]
        for sequence in sequences:
            policy.push(sequence)
        order = []
        while len(policy):
            candidate = policy.select(0.0)
            policy.pop(candidate, 0.0)
            order.append(candidate.request.tenant)
        # a admits 12-token requests until its virtual finish catches b's
        # single 120-token admission: one b early, the rest of a, then b.
        assert order == ["a", "b", "a", "a", "a", "a", "b", "b"]

    def test_weight_scales_share(self):
        """Doubling a tenant's weight halves its virtual cost: with weight
        2.0 the expensive tenant keeps pace with the cheap one."""
        policy = WFQPolicy()
        reqs = tenant_requests(
            [("a", 0.0), ("a", 0.0), ("a", 0.0), ("b", 0.0, 10.0), ("b", 0.0, 10.0)],
            prefill=8,
            decode=4,
        )
        # b's requests cost 12 / 10 = 1.2 virtual units vs a's 12.
        for request in reqs:
            policy.push(Sequence(request))
        order = []
        while len(policy):
            candidate = policy.select(0.0)
            policy.pop(candidate, 0.0)
            order.append(candidate.request.tenant)
        assert order == ["a", "b", "b", "a", "a"]

    def test_eviction_requeues_at_front_of_own_tenant(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4), policy="wfq")
        scheduler.submit_all(
            tenant_requests([("a", 0.0), ("a", 0.0), ("b", 0.0)])
        )
        scheduler.fill(time=0.0)
        victim = scheduler.active[-1]
        for seq in scheduler.active:
            seq.advance_tokens(2)
        scheduler.evict_most_recent()
        assert victim in scheduler.waiting
        # The victim leads its own tenant's queue: once admission resumes it
        # is that tenant's next candidate.
        scheduler.complete(scheduler.active[0])
        readmitted = scheduler.fill(time=0.0)
        assert victim in readmitted

    def test_single_tenant_degenerates_to_fcfs(self):
        fcfs = InterSequenceScheduler(FakeKVProvider(capacity=3), policy="fcfs")
        wfq = InterSequenceScheduler(FakeKVProvider(capacity=3), policy="wfq")
        for scheduler in (fcfs, wfq):
            scheduler.submit_all(requests(5))
        assert [s.sequence_id for s in fcfs.fill()] == [
            s.sequence_id for s in wfq.fill()
        ]


class TestPriorityAgingPolicy:
    def test_higher_priority_admitted_first(self):
        scheduler = InterSequenceScheduler(
            FakeKVProvider(capacity=4), policy="priority"
        )
        scheduler.submit_all(
            tenant_requests([("lo", 0.0, 1.0, 0), ("hi", 0.0, 1.0, 5)])
        )
        admitted = scheduler.fill(time=0.0)
        assert [seq.request.tenant for seq in admitted] == ["hi", "lo"]

    def test_aging_bounds_starvation(self):
        """A low-priority request overtakes any higher-priority request that
        arrives more than priority_gap / aging_rate seconds after it."""
        policy = PriorityAgingPolicy(aging_rate=1.0)
        lo, hi_early, hi_late = (
            Sequence(request)
            for request in tenant_requests(
                [("lo", 0.0, 1.0, 0), ("hi", 2.0, 1.0, 5), ("hi", 6.0, 1.0, 5)]
            )
        )
        policy.push(lo)
        policy.push(hi_early)
        # hi_early arrived only 2 s after lo (< the gap of 5): it wins at any
        # time, because both age at the same rate afterwards.
        assert policy.select(10.0) is hi_early
        policy.pop(hi_early, 10.0)
        policy.push(hi_late)
        # hi_late arrived 6 s after lo (> the gap of 5): lo has aged past its
        # effective priority and is served first -- bounded starvation.
        assert policy.select(10.0) is lo

    def test_zero_aging_is_strict_priority(self):
        policy = PriorityAgingPolicy(aging_rate=0.0)
        lo, hi = (
            Sequence(request)
            for request in tenant_requests(
                [("lo", 0.0, 1.0, 0), ("hi", 1000.0, 1.0, 5)]
            )
        )
        policy.push(lo)
        policy.push(hi)
        assert policy.select(2000.0) is hi  # lo starves, however long it waits

    def test_fifo_within_tenant(self):
        policy = PriorityAgingPolicy(aging_rate=1.0)
        first, second = (
            Sequence(request)
            for request in tenant_requests([("t", 0.0, 1.0, 3), ("t", 0.0, 1.0, 3)])
        )
        policy.push(first)
        policy.push(second)
        assert policy.select(5.0) is first


class TestPolicySchedulerIntegration:
    """The scheduler invariants hold under every policy."""

    @pytest.mark.parametrize("policy", ["fcfs", "wfq", "priority"])
    def test_admission_suspension_applies(self, policy):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=3), policy=policy)
        scheduler.submit_all(requests(4))
        scheduler.fill()
        for seq in scheduler.active:
            seq.advance_tokens(2)
        scheduler.evict_most_recent()
        assert scheduler.fill() == []
        scheduler.complete(scheduler.active[0])
        assert scheduler.fill() != []

    @pytest.mark.parametrize("policy", ["fcfs", "wfq", "priority"])
    def test_max_active_cap_applies(self, policy):
        scheduler = InterSequenceScheduler(
            FakeKVProvider(capacity=10), max_active_sequences=2, policy=policy
        )
        scheduler.submit_all(requests(5))
        scheduler.fill()
        assert scheduler.num_active == 2

    @pytest.mark.parametrize("policy", ["fcfs", "wfq", "priority"])
    def test_rejection_counted_once_per_stint(self, policy):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=1), policy=policy)
        scheduler.submit_all(requests(3))
        for epoch in range(5):
            scheduler.fill(time=float(epoch))
        assert scheduler.stats.rejected_admissions == 1

    @pytest.mark.parametrize("policy", ["fcfs", "wfq", "priority"])
    def test_all_submitted_eventually_complete(self, policy):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=2), policy=policy)
        scheduler.submit_all(
            tenant_requests(
                [("a", 0.0, 1.0, 1), ("b", 0.0, 2.0, 0), ("a", 0.0, 1.0, 1),
                 ("b", 0.0, 2.0, 0), ("a", 0.0, 1.0, 1)]
            )
        )
        completed = 0
        for _ in range(20):
            scheduler.fill(time=0.0)
            for seq in scheduler.active:
                scheduler.complete(seq)
                completed += 1
            if scheduler.all_done:
                break
        assert completed == 5 and scheduler.all_done


class SelectiveKVProvider(FakeKVProvider):
    """Rejects admission of requests longer than ``max_prefill`` (a stand-in
    for 'this request does not fit the remaining KV space')."""

    def __init__(self, capacity: int, max_prefill: int) -> None:
        super().__init__(capacity)
        self.max_prefill = max_prefill

    def try_admit(self, sequence: Sequence) -> bool:
        if sequence.request.prefill_length > self.max_prefill:
            return False
        return super().try_admit(sequence)


class TestCapacityBlockedCandidates:
    """A capacity-blocked candidate must not gate other tenants under the
    tenant-aware policies (it still gates everything under FCFS)."""

    def _two_tenant_scheduler(self, policy):
        provider = SelectiveKVProvider(capacity=4, max_prefill=50)
        scheduler = InterSequenceScheduler(provider, policy=policy)
        # The batch tenant's 200-token head is submitted first and does not
        # fit; the interactive tenant's 8-token request fits fine.
        big, small = tenant_requests([("batch", 0.0), ("chat", 0.0)])
        big = Request(request_id=0, prefill_length=200, decode_length=4,
                      tenant="batch")
        scheduler.submit(big)
        scheduler.submit(small)
        return scheduler

    def test_fcfs_blocked_head_gates_everything(self):
        scheduler = self._two_tenant_scheduler("fcfs")
        assert scheduler.fill(time=0.0) == []
        assert scheduler.stats.rejected_admissions == 1

    @pytest.mark.parametrize("policy", ["wfq", "priority"])
    def test_tenant_policies_skip_blocked_head(self, policy):
        scheduler = self._two_tenant_scheduler(policy)
        admitted = scheduler.fill(time=0.0)
        assert [seq.request.tenant for seq in admitted] == ["chat"]
        # The blocked batch head is still counted rejected (once).
        assert scheduler.stats.rejected_admissions == 1
        scheduler.fill(time=0.0)
        assert scheduler.stats.rejected_admissions == 1  # same stint, no recount


class TestNextFutureArrival:
    def test_fcfs_head_gates_future_arrivals(self):
        policy = FCFSPolicy()
        for request in tenant_requests([("a", 5.0), ("a", 1.0)]):
            policy.push(Sequence(request))
        assert policy.next_future_arrival(0.0) == 5.0  # head's arrival only
        assert policy.next_future_arrival(5.0) is None  # head arrived: no gate

    def test_tenant_policies_see_future_heads_past_blocked_ones(self):
        """An arrived (possibly capacity-blocked) head does not hide another
        tenant's future arrival: the engines must still split there."""
        for policy in (WFQPolicy(), PriorityAgingPolicy()):
            for request in tenant_requests([("a", 0.0), ("b", 3.0)]):
                policy.push(Sequence(request))
            assert policy.next_future_arrival(1.0) == 3.0
            assert policy.next_future_arrival(3.0) is None

    def test_scheduler_delegates(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4), policy="wfq")
        scheduler.submit_all(tenant_requests([("a", 0.0), ("b", 2.0)]))
        scheduler.fill(time=0.0)
        assert scheduler.next_future_arrival(0.0) == 2.0


class TestPolicyNameNormalisation:
    def test_pipeline_config_normalises_case(self):
        from repro.pipeline.engine import PipelineConfig

        config = PipelineConfig(scheduling_policy="WFQ")
        assert config.scheduling_policy == "wfq"
        assert PipelineConfig(scheduling_policy="WFQ") == PipelineConfig(
            scheduling_policy="wfq"
        )
