"""Tests for the inter-sequence scheduler (FCFS, eviction, suspension)."""

import pytest

from repro.errors import SchedulingError
from repro.workload.requests import Request, Sequence, SequencePhase
from repro.workload.scheduler import InterSequenceScheduler


class FakeKVProvider:
    """KV manager stub with a fixed sequence-slot capacity."""

    def __init__(self, capacity: int, token_capacity: int | None = None) -> None:
        self.capacity = capacity
        self.token_capacity = token_capacity
        self.resident: dict[int, int] = {}

    def try_admit(self, sequence: Sequence) -> bool:
        if len(self.resident) >= self.capacity:
            return False
        self.resident[sequence.sequence_id] = 0
        return True

    def release(self, sequence: Sequence) -> None:
        self.resident.pop(sequence.sequence_id, None)

    def append_tokens(self, sequence: Sequence, count: int = 1) -> bool:
        if self.token_capacity is not None:
            total = sum(self.resident.values()) + count
            if total > self.token_capacity:
                return False
        self.resident[sequence.sequence_id] = self.resident.get(sequence.sequence_id, 0) + count
        return True


def requests(n: int, prefill: int = 8, decode: int = 4) -> list[Request]:
    return [
        Request(request_id=i, prefill_length=prefill, decode_length=decode)
        for i in range(n)
    ]


def arriving_requests(arrivals: list[float], prefill: int = 8, decode: int = 4) -> list[Request]:
    return [
        Request(request_id=i, prefill_length=prefill, decode_length=decode, arrival_time=t)
        for i, t in enumerate(arrivals)
    ]


class TestAdmission:
    def test_fcfs_admission_order(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=3))
        scheduler.submit_all(requests(5))
        admitted = scheduler.fill()
        assert [seq.sequence_id for seq in admitted] == [0, 1, 2]
        assert scheduler.num_active == 3
        assert len(scheduler.waiting) == 2

    def test_admission_limited_by_max_active(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=10), max_active_sequences=2)
        scheduler.submit_all(requests(5))
        scheduler.fill()
        assert scheduler.num_active == 2

    def test_admitted_sequences_enter_prefill(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=2))
        scheduler.submit_all(requests(2))
        for seq in scheduler.fill():
            assert seq.phase is SequencePhase.PREFILL

    def test_rejected_admission_counted(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=1))
        scheduler.submit_all(requests(3))
        scheduler.fill()
        assert scheduler.stats.rejected_admissions == 1

    def test_rejection_counted_once_per_request_not_per_epoch(self):
        """A request blocked at the head of the queue across many fill() calls
        (one per epoch) is one rejected admission, not one per epoch."""
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=1))
        scheduler.submit_all(requests(3))
        for epoch in range(5):
            scheduler.fill(time=float(epoch))
        assert scheduler.stats.rejected_admissions == 1

    def test_each_blocked_request_rejected_once(self):
        provider = FakeKVProvider(capacity=1)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(3))
        scheduler.fill()
        assert scheduler.stats.rejected_admissions == 1
        # Head completes; the next request admits, the one behind it rejects.
        scheduler.complete(scheduler.active[0])
        scheduler.fill()
        scheduler.fill()
        assert scheduler.stats.rejected_admissions == 2

    def test_all_done(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=2))
        assert scheduler.all_done
        scheduler.submit_all(requests(1))
        assert not scheduler.all_done


class TestCompletion:
    def test_complete_releases_and_readmits(self):
        provider = FakeKVProvider(capacity=2)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(3))
        scheduler.fill()
        first = scheduler.active[0]
        scheduler.complete(first, time=1.0)
        assert first.is_complete
        assert first.completion_time == 1.0
        assert first.sequence_id not in provider.resident
        scheduler.fill()
        assert scheduler.num_active == 2

    def test_complete_unknown_sequence_rejected(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=2))
        scheduler.submit_all(requests(1))
        orphan = Sequence(Request(request_id=99, prefill_length=4, decode_length=1))
        with pytest.raises(SchedulingError):
            scheduler.complete(orphan)

    def test_stats_track_completions(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(requests(2))
        scheduler.fill()
        for seq in list(scheduler.active):
            scheduler.complete(seq)
        assert scheduler.stats.completed == 2
        assert scheduler.all_done


class TestEviction:
    def test_evict_most_recent(self):
        provider = FakeKVProvider(capacity=3)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(3))
        scheduler.fill()
        for seq in scheduler.active:
            seq.advance_tokens(4)
        victim = scheduler.evict_most_recent()
        assert victim.sequence_id == 2
        assert victim.phase is SequencePhase.EVICTED
        assert scheduler.waiting[0] is victim
        assert scheduler.stats.evictions == 1

    def test_admission_suspended_after_eviction(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=3))
        scheduler.submit_all(requests(4))
        scheduler.fill()
        for seq in scheduler.active:
            seq.advance_tokens(2)
        scheduler.evict_most_recent()
        assert scheduler.fill() == []
        # Completing a request resumes admission.
        scheduler.complete(scheduler.active[0])
        assert scheduler.fill() != []

    def test_admission_resumes_when_nothing_active(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=2))
        scheduler.submit_all(requests(2))
        scheduler.fill()
        for seq in scheduler.active:
            seq.advance_tokens(2)
        scheduler.evict_most_recent()
        scheduler.evict_most_recent()
        assert scheduler.num_active == 0
        # Nothing active -> suspension lifts so the system cannot deadlock.
        assert scheduler.fill() != []

    def test_evict_with_no_active_returns_none(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=2))
        assert scheduler.evict_most_recent() is None

    def test_eviction_resets_rejection_dedup(self):
        """Regression: an evicted-and-requeued sequence keeps its id, so a
        post-eviction capacity rejection is a new blocked stint and must be
        counted again (the once-per-request dedup used to swallow it)."""
        provider = FakeKVProvider(capacity=0)
        scheduler = InterSequenceScheduler(provider)
        (sequence,) = scheduler.submit_all(requests(1))
        scheduler.fill()
        assert scheduler.stats.rejected_admissions == 1
        # Capacity appears; the request admits and makes some progress.
        provider.capacity = 1
        scheduler.fill()
        assert scheduler.is_active(sequence)
        sequence.advance_tokens(2)
        scheduler.evict_most_recent()
        # Capacity vanishes again (e.g. a failed KV core): the re-queued
        # victim's rejection is a fresh one and must show up in the stats.
        provider.capacity = 0
        scheduler.fill()
        assert scheduler.stats.rejected_admissions == 2


class TestGrowth:
    def test_growth_without_pressure(self):
        provider = FakeKVProvider(capacity=2, token_capacity=100)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(2))
        scheduler.fill()
        assert scheduler.grow_sequence(scheduler.active[0], 10)

    def test_growth_evicts_most_recent_under_pressure(self):
        provider = FakeKVProvider(capacity=3, token_capacity=10)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(3))
        scheduler.fill()
        for seq in scheduler.active:
            assert scheduler.grow_sequence(seq, 1)
            seq.advance_tokens(1)
        first = scheduler.active[0]
        # Needs 8 more tokens; capacity 10 already holds 3 -> evictions.
        assert scheduler.grow_sequence(first, 8)
        assert scheduler.stats.evictions >= 1
        assert first in scheduler.active

    def test_growth_fails_when_alone_and_oversized(self):
        provider = FakeKVProvider(capacity=1, token_capacity=4)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(1))
        scheduler.fill()
        assert not scheduler.grow_sequence(scheduler.active[0], 100)

    def test_growing_tail_sequence_evicts_second_most_recent(self):
        """Regression: growing the most recently admitted (tail) sequence while
        the cache is full must evict the one admitted just before it — with the
        full eviction bookkeeping — and never the growing sequence itself."""
        provider = FakeKVProvider(capacity=3, token_capacity=10)
        scheduler = InterSequenceScheduler(provider)
        scheduler.submit_all(requests(3))
        scheduler.fill()
        for seq in scheduler.active:
            assert scheduler.grow_sequence(seq, 3)
            seq.advance_tokens(3)
        tail = scheduler.active[-1]
        middle = scheduler.active[-2]
        assert scheduler.grow_sequence(tail, 3)
        assert scheduler.is_active(tail)
        assert not scheduler.is_active(middle)
        assert middle.phase is SequencePhase.EVICTED
        assert scheduler.waiting[0] is middle
        assert middle.sequence_id not in provider.resident
        assert scheduler.stats.evictions == 1
        assert scheduler.stats.recomputed_tokens == 3
        # Admission is suspended by the eviction, exactly like evict_most_recent.
        scheduler.submit_all(requests(1))
        assert scheduler.fill() == []


class TestArrivalGating:
    def test_future_requests_not_admitted(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(arriving_requests([0.0, 1.0, 2.0]))
        admitted = scheduler.fill(time=0.5)
        assert [seq.sequence_id for seq in admitted] == [0]
        assert scheduler.stats.rejected_admissions == 0  # blocked, not rejected

    def test_admission_follows_the_clock(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(arriving_requests([0.0, 1.0, 2.0]))
        scheduler.fill(time=0.0)
        assert scheduler.num_active == 1
        scheduler.fill(time=1.5)
        assert scheduler.num_active == 2
        scheduler.fill(time=10.0)
        assert scheduler.num_active == 3

    def test_arrival_exactly_at_clock_admits(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(arriving_requests([1.0]))
        assert scheduler.fill(time=1.0) != []

    def test_admitted_at_arrival_records_admission_time(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(arriving_requests([0.0, 3.0]))
        scheduler.fill(time=3.5)
        assert scheduler.active[1].admission_time == 3.5

    def test_next_arrival_time(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        assert scheduler.next_arrival_time() is None
        scheduler.submit_all(arriving_requests([2.0, 5.0]))
        assert scheduler.next_arrival_time() == 2.0
        scheduler.fill(time=2.0)
        assert scheduler.next_arrival_time() == 5.0

    def test_next_arrival_follows_fcfs_head_not_earliest_arrival(self):
        """A later-submitted request that arrives earlier still waits behind
        the FCFS head, so the head's arrival is when admission can resume."""
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=4))
        scheduler.submit_all(arriving_requests([10.0, 2.0]))
        assert scheduler.next_arrival_time() == 10.0
        assert not scheduler.has_arrived_waiting(5.0)
        # Jumping to the head's arrival really unblocks admission (the
        # engine relies on this to avoid a spurious capacity-stall error).
        assert len(scheduler.fill(time=10.0)) == 2

    def test_has_arrived_waiting_distinguishes_stall_kinds(self):
        scheduler = InterSequenceScheduler(FakeKVProvider(capacity=0))
        scheduler.submit_all(arriving_requests([1.0]))
        assert not scheduler.has_arrived_waiting(0.5)  # not yet arrived
        assert scheduler.has_arrived_waiting(1.0)  # arrived but won't fit
