"""Tests for the distributed dynamic KV-cache manager and its static baseline."""

import pytest

from repro.errors import ConfigurationError, KVCacheError
from repro.kvcache.manager import DistributedKVCacheManager
from repro.kvcache.static import StaticKVCacheManager
from repro.workload.requests import Request, Sequence


def make_sequence(
    seq_id: int, prefill: int = 64, decode: int = 64, tenant: str | None = None
) -> Sequence:
    kwargs = {"tenant": tenant} if tenant is not None else {}
    seq = Sequence(Request(
        request_id=seq_id, prefill_length=prefill, decode_length=decode, **kwargs
    ))
    seq.start()
    return seq


@pytest.fixture
def manager(tiny_arch):
    # 2 blocks x 2 groups -> 4 groups over 32 KV cores, 16 blocks per core.
    return DistributedKVCacheManager(
        tiny_arch, kv_core_ids=list(range(32)), blocks_per_core=16, threshold=0.0
    )


class TestConstruction:
    def test_requires_cores(self, tiny_arch):
        with pytest.raises(ConfigurationError):
            DistributedKVCacheManager(tiny_arch, kv_core_ids=[])

    def test_invalid_threshold(self, tiny_arch):
        with pytest.raises(ConfigurationError):
            DistributedKVCacheManager(tiny_arch, kv_core_ids=[0, 1], threshold=1.5)

    def test_tokens_per_block_from_head_dim(self, manager, tiny_arch):
        assert manager.tokens_per_block == 16384 // tiny_arch.head_dim

    def test_total_blocks(self, manager):
        assert manager.total_blocks == 32 * 16

    def test_page_tables_per_block(self, manager, tiny_arch):
        assert len(manager.page_tables) == tiny_arch.num_blocks


class TestAdmission:
    def test_admit_reserves_blocks(self, manager, tiny_arch):
        seq = make_sequence(0)
        assert manager.try_admit(seq)
        slots = 2 * tiny_arch.num_blocks * tiny_arch.kv_heads
        assert manager.used_blocks == slots
        assert manager.blocks_held(0) == slots
        assert 0 in manager.resident_sequences

    def test_admit_registers_page_tables(self, manager, tiny_arch):
        seq = make_sequence(0)
        manager.try_admit(seq)
        for table in manager.page_tables:
            placements = table.lookup(0)
            assert len(placements) == tiny_arch.kv_heads

    def test_double_admit_rejected(self, manager):
        seq = make_sequence(0)
        manager.try_admit(seq)
        with pytest.raises(KVCacheError):
            manager.try_admit(seq)

    def test_admission_fails_when_full(self, manager):
        admitted = 0
        while manager.try_admit(make_sequence(admitted)):
            admitted += 1
            if admitted > 1000:
                pytest.fail("manager never filled up")
        assert admitted == manager.max_concurrent_sequences(1)
        assert manager.stats.failed_admissions >= 1

    def test_consecutive_sequences_use_different_cores(self, manager):
        manager.try_admit(make_sequence(0))
        manager.try_admit(make_sequence(1))
        table = manager.page_tables[0]
        cores_a = set(table.cores_of(0))
        cores_b = set(table.cores_of(1))
        assert cores_a != cores_b

    def test_heads_spread_across_cores(self, manager, tiny_arch):
        manager.try_admit(make_sequence(0))
        placements = manager.page_tables[0].lookup(0)
        k_cores = [p.k_core for p in placements]
        assert len(set(k_cores)) == tiny_arch.kv_heads


class TestGrowthAndRelease:
    def test_growth_within_first_block_free(self, manager):
        seq = make_sequence(0)
        manager.try_admit(seq)
        before = manager.used_blocks
        assert manager.append_tokens(seq, manager.tokens_per_block)
        assert manager.used_blocks == before

    def test_growth_allocates_new_blocks(self, manager, tiny_arch):
        seq = make_sequence(0)
        manager.try_admit(seq)
        before = manager.used_blocks
        assert manager.append_tokens(seq, manager.tokens_per_block + 1)
        slots = 2 * tiny_arch.num_blocks * tiny_arch.kv_heads
        assert manager.used_blocks == before + slots

    def test_growth_tracks_tokens(self, manager):
        seq = make_sequence(0)
        manager.try_admit(seq)
        manager.append_tokens(seq, 10)
        manager.append_token(seq)
        assert manager.tokens_cached(0) == 11

    def test_growth_of_unknown_sequence_rejected(self, manager):
        with pytest.raises(KVCacheError):
            manager.append_tokens(make_sequence(5), 1)

    def test_growth_fails_when_exhausted(self, tiny_arch):
        manager = DistributedKVCacheManager(
            tiny_arch, kv_core_ids=list(range(32)), blocks_per_core=2
        )
        seq = make_sequence(0)
        assert manager.try_admit(seq)
        huge = manager.tokens_per_block * 10
        assert not manager.append_tokens(seq, huge)
        assert manager.stats.failed_growths == 1

    def test_release_returns_blocks(self, manager):
        seq = make_sequence(0)
        manager.try_admit(seq)
        manager.append_tokens(seq, manager.tokens_per_block * 3)
        manager.release(seq)
        assert manager.used_blocks == 0
        assert manager.resident_sequences == []

    def test_release_unknown_is_noop(self, manager):
        manager.release(make_sequence(9))
        assert manager.used_blocks == 0

    def test_utilization_and_peak(self, manager):
        seq = make_sequence(0)
        manager.try_admit(seq)
        assert 0 < manager.utilization <= 1
        assert manager.stats.peak_used_blocks == manager.used_blocks


class TestSizingEdgeCases:
    def test_capacity_bytes_matches_block_geometry(self, manager, tiny_arch):
        expected = (
            manager.total_blocks
            * manager.tokens_per_block
            * tiny_arch.head_dim
            * manager.element_bytes
        )
        assert manager.capacity_bytes == expected

    def test_capacity_bytes_shrinks_with_failed_cores(self, manager):
        before = manager.capacity_bytes
        manager.fail_core(manager.kv_core_ids[0])
        per_core = manager.blocks_per_core * manager.tokens_per_block * \
            manager.arch.head_dim * manager.element_bytes
        assert manager.capacity_bytes == before - per_core

    def test_max_concurrent_zero_when_all_cores_failed(self, tiny_arch):
        manager = DistributedKVCacheManager(
            tiny_arch, kv_core_ids=list(range(4)), blocks_per_core=16
        )
        for core in list(manager.kv_core_ids):
            manager.fail_core(core)
        assert manager.total_blocks == 0
        assert manager.max_concurrent_sequences(1) == 0
        assert manager.capacity_bytes == 0
        assert manager.utilization == 0.0

    def test_max_concurrent_zero_when_context_exceeds_capacity(self, tiny_arch):
        manager = DistributedKVCacheManager(
            tiny_arch, kv_core_ids=list(range(4)), blocks_per_core=2
        )
        huge_context = manager.tokens_per_block * manager.total_blocks * 10
        assert manager.max_concurrent_sequences(huge_context) == 0

    def test_max_concurrent_handles_non_positive_context(self, manager):
        # Degenerate context lengths behave like a single-block reservation.
        assert manager.max_concurrent_sequences(0) == manager.max_concurrent_sequences(1)
        assert manager.max_concurrent_sequences(-5) == manager.max_concurrent_sequences(1)

    def test_admission_rejected_when_all_cores_failed(self, tiny_arch):
        manager = DistributedKVCacheManager(
            tiny_arch, kv_core_ids=list(range(4)), blocks_per_core=16
        )
        for core in list(manager.kv_core_ids):
            manager.fail_core(core)
        assert not manager.try_admit(make_sequence(0))
        assert manager.stats.failed_admissions == 1

    def test_used_blocks_consistent_after_growth_and_failure(self, manager):
        seq = make_sequence(0)
        manager.try_admit(seq)
        manager.append_tokens(seq, manager.tokens_per_block + 1)
        used_before = manager.used_blocks
        victim = manager.page_tables[0].cores_of(0)[0]
        manager.fail_core(victim)
        # The failed core's blocks leave both the total and the free pool.
        assert manager.total_blocks == (manager.num_kv_cores - 1) * manager.blocks_per_core
        assert 0 < manager.used_blocks <= used_before
        manager.release(seq)
        assert manager.used_blocks == 0

    def test_static_max_concurrent_zero_when_sequence_oversized(self, tiny_arch):
        manager = StaticKVCacheManager(
            tiny_arch, kv_core_ids=2, blocks_per_core=1,
            reserved_context=tiny_arch.max_context,
        )
        assert manager.blocks_per_sequence() > manager.total_blocks
        assert manager.max_concurrent_sequences() == 0

    def test_static_capacity_bytes(self, tiny_arch):
        manager = StaticKVCacheManager(tiny_arch, kv_core_ids=32, blocks_per_core=16)
        expected = (
            manager.total_blocks
            * manager.tokens_per_block
            * tiny_arch.head_dim
            * manager.element_bytes
        )
        assert manager.capacity_bytes == expected


class TestRingSelectionEquivalence:
    def test_fast_selection_matches_walk_when_heads_exceed_group(self, tiny_arch):
        # 8 cores / 4 groups -> group size 2 < kv_heads: the fast path must
        # reproduce the walk's pad-with-first-usable behaviour exactly.
        manager = DistributedKVCacheManager(
            tiny_arch, kv_core_ids=list(range(8)), blocks_per_core=16
        )
        heads = tiny_arch.kv_heads
        assert heads > len(manager._k_groups[0])
        fast = manager._select_all_blocks_fast()
        for block in range(tiny_arch.num_blocks):
            pointer = manager._ring_pointers[block]
            walk_k = manager._select_cores(manager._k_groups[block], pointer, heads)
            walk_v = manager._select_cores(manager._v_groups[block], pointer, heads)
            assert fast[2 * block].tolist() == walk_k
            assert fast[2 * block + 1].tolist() == walk_v

    def test_fast_selection_matches_walk_after_pointer_advance(self, manager, tiny_arch):
        manager.try_admit(make_sequence(0))  # advances every ring pointer
        heads = tiny_arch.kv_heads
        fast = manager._select_all_blocks_fast()
        for block in range(tiny_arch.num_blocks):
            pointer = manager._ring_pointers[block]
            walk_k = manager._select_cores(manager._k_groups[block], pointer, heads)
            assert fast[2 * block].tolist() == walk_k


class TestThreshold:
    def test_threshold_reserves_headroom(self, tiny_arch):
        no_reserve = DistributedKVCacheManager(
            tiny_arch, kv_core_ids=list(range(32)), blocks_per_core=16, threshold=0.0
        )
        reserve = DistributedKVCacheManager(
            tiny_arch, kv_core_ids=list(range(32)), blocks_per_core=16, threshold=0.5
        )

        def fill(manager):
            count = 0
            while manager.try_admit(make_sequence(count)):
                count += 1
                if count > 500:
                    break
            return count

        assert fill(reserve) < fill(no_reserve)


class TestFailures:
    def test_fail_core_reports_affected_sequences(self, manager):
        seq = make_sequence(0)
        manager.try_admit(seq)
        cores = manager.page_tables[0].cores_of(0)
        affected = manager.fail_core(cores[0])
        assert 0 in affected
        assert cores[0] in manager.failed_cores

    def test_fail_unknown_core_rejected(self, manager):
        with pytest.raises(KVCacheError):
            manager.fail_core(10_000)

    def test_failed_core_reduces_capacity(self, manager):
        before = manager.total_blocks
        manager.fail_core(manager.kv_core_ids[0])
        assert manager.total_blocks == before - manager.blocks_per_core

    def test_failed_core_not_used_for_new_sequences(self, manager):
        failed = manager.kv_core_ids[0]
        manager.fail_core(failed)
        manager.try_admit(make_sequence(0))
        for table in manager.page_tables:
            if table.contains(0):
                assert failed not in table.cores_of(0)


class TestStaticManager:
    def test_blocks_per_sequence_worst_case(self, tiny_arch):
        manager = StaticKVCacheManager(tiny_arch, kv_core_ids=32, blocks_per_core=64)
        expected_slots = 2 * tiny_arch.num_blocks * tiny_arch.kv_heads
        per_slot = -(-tiny_arch.max_context // manager.tokens_per_block)
        assert manager.blocks_per_sequence() == expected_slots * per_slot

    def test_static_admits_fewer_than_dynamic(self, tiny_arch):
        static = StaticKVCacheManager(tiny_arch, kv_core_ids=32, blocks_per_core=16)
        dynamic = DistributedKVCacheManager(
            tiny_arch, kv_core_ids=list(range(32)), blocks_per_core=16
        )
        assert static.max_concurrent_sequences() <= dynamic.max_concurrent_sequences(1)

    def test_static_growth_bounded_by_reserved_context(self, tiny_arch):
        manager = StaticKVCacheManager(
            tiny_arch, kv_core_ids=32, blocks_per_core=1024, reserved_context=32
        )
        seq = make_sequence(0, prefill=16, decode=32)
        assert manager.try_admit(seq)
        seq.advance_tokens(16)
        assert manager.append_tokens(seq, 16)
        assert not manager.append_tokens(seq, 64)

    def test_static_release(self, tiny_arch):
        manager = StaticKVCacheManager(tiny_arch, kv_core_ids=32, blocks_per_core=1024)
        seq = make_sequence(0)
        manager.try_admit(seq)
        manager.release(seq)
        assert manager.used_blocks == 0

    def test_static_double_admit_rejected(self, tiny_arch):
        manager = StaticKVCacheManager(tiny_arch, kv_core_ids=32, blocks_per_core=1024)
        seq = make_sequence(0)
        manager.try_admit(seq)
        with pytest.raises(KVCacheError):
            manager.try_admit(seq)

    def test_static_requires_cores(self, tiny_arch):
        with pytest.raises(ConfigurationError):
            StaticKVCacheManager(tiny_arch, kv_core_ids=0)


class TestTenantQuotas:
    """Per-tenant KV block caps: exact fits, zero quotas, checkpoint survival.

    The fixture manager has 32 cores x 16 blocks = 512 configured blocks and
    the tiny arch reserves 2 blocks x 4 heads x 2 (K/V) = 16 block slots per
    admission, so a quota of 16/512 is the exact working set of one
    single-block-per-slot sequence.
    """

    RESERVE = 16  # 2 transformer blocks x 4 KV heads x 2 (K and V)
    CAPACITY = 512

    def test_quota_zero_rejects_every_admission(self, manager):
        manager.set_tenant_quotas({"batch": 0.0})
        seq = make_sequence(0, tenant="batch")
        assert not manager.try_admit(seq)
        assert manager.stats.quota_rejections == 1
        assert manager.last_failure_quota_bound
        assert manager.tenant_used_blocks("batch") == 0
        assert manager.used_blocks == 0

    def test_unlisted_tenant_is_uncapped(self, manager):
        manager.set_tenant_quotas({"batch": 0.0})
        assert manager.try_admit(make_sequence(1, tenant="chat"))
        assert manager.tenant_quota_blocks("chat") is None
        assert manager.tenant_used_blocks("chat") == 0  # uncapped: not tracked

    def test_quota_equal_to_working_set_admits_exactly(self, manager):
        """A cap of exactly one sequence's reserve admits it -- and nothing more."""
        manager.set_tenant_quotas({"batch": self.RESERVE / self.CAPACITY})
        assert manager.tenant_quota_blocks("batch") == self.RESERVE
        assert manager.try_admit(make_sequence(0, tenant="batch"))
        assert manager.tenant_used_blocks("batch") == self.RESERVE
        # The tenant sits exactly at its cap: a second admission is
        # quota-bound even though the cache itself has plenty of room.
        assert not manager.try_admit(make_sequence(1, tenant="batch"))
        assert manager.stats.quota_rejections == 1
        assert manager.last_failure_quota_bound
        assert manager.total_blocks - manager.used_blocks >= self.RESERVE

    def test_growth_past_quota_is_blocked_and_attributed(self, manager):
        manager.set_tenant_quotas({"batch": self.RESERVE / self.CAPACITY})
        seq = make_sequence(0, prefill=16, decode=16, tenant="batch")
        assert manager.try_admit(seq)
        # Growth inside the first block per slot allocates nothing new.
        assert manager.append_tokens(seq, manager.tokens_per_block)
        assert manager.tenant_used_blocks("batch") == self.RESERVE
        # Crossing the block boundary needs another 16 blocks: quota-bound.
        assert not manager.append_tokens(seq, 1)
        assert manager.stats.quota_blocked_growths == 1
        assert manager.last_failure_quota_bound
        assert manager.tenant_used_blocks("batch") == self.RESERVE

    def test_release_returns_quota_headroom(self, manager):
        manager.set_tenant_quotas({"batch": self.RESERVE / self.CAPACITY})
        seq = make_sequence(0, tenant="batch")
        assert manager.try_admit(seq)
        manager.release(seq)
        assert manager.tenant_used_blocks("batch") == 0
        assert manager.try_admit(make_sequence(1, tenant="batch"))

    def test_quota_fraction_out_of_range_rejected(self, manager):
        with pytest.raises(ConfigurationError):
            manager.set_tenant_quotas({"batch": 1.5})
        with pytest.raises(ConfigurationError):
            manager.set_tenant_quotas({"batch": -0.1})

    def test_quota_against_configured_not_healthy_capacity(self, manager):
        """Core failures must not silently shrink a tenant's entitlement."""
        manager.set_tenant_quotas({"batch": self.RESERVE / self.CAPACITY})
        manager.fail_core(manager.kv_core_ids[0])
        assert manager.tenant_quota_blocks("batch") == self.RESERVE

    def test_quota_state_survives_snapshot_restore(self, manager, tiny_arch):
        manager.set_tenant_quotas({"batch": 0.5, "chat": 0.0})
        seq = make_sequence(0, tenant="batch")
        assert manager.try_admit(seq)
        state = manager.snapshot_state()
        restored = DistributedKVCacheManager(
            tiny_arch, kv_core_ids=list(range(32)), blocks_per_core=16, threshold=0.0
        )
        restored.restore_state(state)
        assert restored.tenant_quota_blocks("batch") == manager.tenant_quota_blocks("batch")
        assert restored.tenant_used_blocks("batch") == self.RESERVE
        assert not restored.try_admit(make_sequence(1, tenant="chat"))
        assert restored.last_failure_quota_bound

    def test_static_quota_zero_rejects(self, tiny_arch):
        manager = StaticKVCacheManager(tiny_arch, kv_core_ids=32, blocks_per_core=64)
        manager.set_tenant_quotas({"batch": 0.0})
        assert not manager.try_admit(make_sequence(0, tenant="batch"))
        assert manager.stats.quota_rejections == 1
        assert manager.last_failure_quota_bound
        assert manager.try_admit(make_sequence(1, tenant="chat"))

    def test_static_quota_equal_to_working_set(self, tiny_arch):
        manager = StaticKVCacheManager(tiny_arch, kv_core_ids=32, blocks_per_core=64)
        per_sequence = manager.blocks_per_sequence()
        manager.set_tenant_quotas({"batch": per_sequence / manager.total_blocks})
        assert manager.tenant_quota_blocks("batch") == per_sequence
        seq = make_sequence(0, tenant="batch")
        assert manager.try_admit(seq)
        assert manager.tenant_used_blocks("batch") == per_sequence
        assert not manager.try_admit(make_sequence(1, tenant="batch"))
        assert manager.last_failure_quota_bound
        manager.release(seq)
        assert manager.tenant_used_blocks("batch") == 0
        assert manager.try_admit(make_sequence(2, tenant="batch"))
