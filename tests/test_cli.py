"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_summary_args(self):
        args = build_parser().parse_args(["summary", "llama-13b"])
        assert args.command == "summary"
        assert args.model == "llama-13b"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "llama-13b"])
        assert args.workload == "wikitext2"
        assert args.requests == 200
        assert args.arrival_rate == 0.0
        assert not args.baselines

    def test_serve_arrival_rate(self):
        args = build_parser().parse_args(["serve", "llama-13b", "--arrival-rate", "25"])
        assert args.arrival_rate == 25.0

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig11"])
        assert args.figure == "fig11"
        assert build_parser().parse_args(["experiment", "fig22"]).figure == "fig22"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_bench_default_output_tracks_pr(self):
        args = build_parser().parse_args(["bench"])
        assert args.output == "BENCH_PR10.json"

    def test_serve_policy_choice(self):
        args = build_parser().parse_args(["serve", "llama-13b", "--policy", "wfq"])
        assert args.policy == "wfq"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "llama-13b", "--policy", "lifo"])

    def test_experiment_fig24_registered(self):
        assert build_parser().parse_args(["experiment", "fig24"]).figure == "fig24"

    def test_serve_system_choice(self):
        args = build_parser().parse_args(["serve", "llama-13b", "--system", "tpu-v4"])
        assert args.system == "tpu-v4"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "llama-13b", "--system", "gpu-9000"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "gpt-5"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_summary_command(self, capsys):
        code = main(["summary", "llama-13b", "--anneal", "0"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "weight_cores" in captured
        assert "13,923" in captured or "13923" in captured

    def test_serve_command_small(self, capsys):
        code = main([
            "serve", "llama-13b", "--workload", "lp128_ld2048", "--requests", "5",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "tok/s" in captured
        assert "energy breakdown" in captured

    def test_serve_rejects_baselines_with_arrival_rate(self, capsys):
        code = main([
            "serve", "llama-13b", "--requests", "5",
            "--arrival-rate", "10", "--baselines",
        ])
        assert code == 2
        assert "closed-batch comparison" in capsys.readouterr().err

    def test_serve_command_open_loop(self, capsys):
        code = main([
            "serve", "llama-13b", "--requests", "5", "--arrival-rate", "10",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "open-loop at 10 req/s" in captured
        assert "TTFT" in captured

    def test_experiment_fig11(self, capsys):
        code = main(["experiment", "fig11", "--requests", "5", "--anneal", "0"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Fig. 11" in captured
        assert "1/32" in captured

    def test_serve_on_registered_baseline(self, capsys):
        code = main([
            "serve", "llama-13b", "--requests", "5", "--system", "dgx-a100",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "DGX A100" in captured

    def test_experiment_fig18_with_model_restriction(self, capsys):
        code = main([
            "experiment", "fig18", "--requests", "5", "--anneal", "0",
            "--models", "llama-13b",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Fig. 18" in captured
        assert "llama-13b" in captured
