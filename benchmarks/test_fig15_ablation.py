"""Benchmark: regenerate Fig. 15 (ablation of Wafer / CIM / TGP / Mapping / KV)."""

from repro.experiments import fig15_ablation

from .conftest import bench_settings, record_figure


def test_fig15_ablation(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(
        fig15_ablation.run, args=(settings,), rounds=1, iterations=1
    )
    record_figure(results_dir, "fig15_ablation", result)

    for model in fig15_ablation.ABLATION_MODELS:
        for workload in fig15_ablation.ABLATION_WORKLOADS:
            series = result.normalized_series(model, workload)
            # Paper shape: each added feature never hurts throughput much and
            # the fully enabled system is a clear multiple of the baseline,
            # at a fraction of its energy.
            assert series["+Wafer"]["throughput"] >= 1.0
            assert series["+CIM"]["energy"] < series["+Wafer"]["energy"]
            assert series["+TGP"]["throughput"] >= series["+CIM"]["throughput"]
            assert series["+KV Cache"]["throughput"] > 1.5
            assert series["+KV Cache"]["energy"] < 0.7
            # The KV-management step matters most when the KV cache is the
            # bottleneck (decode-heavy LP=128/LD=2048 setting).
            if workload == "lp128_ld2048":
                assert (
                    series["+KV Cache"]["throughput"]
                    >= series["+Mapping"]["throughput"]
                )


def test_fig15_tgp_without_cim_energy_blowup(benchmark, results_dir):
    """The red hatched bars: TGP without CIM destroys weight reuse."""
    settings = bench_settings(num_requests=80)
    factor = benchmark.pedantic(
        fig15_ablation.tgp_without_cim_energy_factor,
        args=(settings,),
        rounds=1,
        iterations=1,
    )
    (results_dir / "fig15_tgp_without_cim.txt").write_text(
        f"energy factor of TGP without CIM vs sequence-grained non-CIM baseline: {factor:.2f}x\n"
    )
    assert factor > 1.5
