"""Benchmark: the paper's headline claims (abstract / Section 6.2-6.3).

4.1x average throughput and 4.2x average energy efficiency over the
state-of-the-art baselines, peaking at 9.1x / 17x for the 13B models.  The
reproduction asserts the qualitative claim -- a multi-x average advantage over
the *best* baseline per cell with markedly higher peaks for the 13B models --
rather than the exact constants (our baselines are analytical models, not the
authors' measured systems).
"""

from repro.experiments import headline

from .conftest import bench_settings, record_figure


def test_headline_speedup_and_efficiency(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(headline.run, args=(settings,), rounds=1, iterations=1)
    record_figure(results_dir, "headline", result)

    summary = (
        f"average speedup vs best baseline:        {result.average_speedup:.2f}x\n"
        f"peak speedup vs best baseline:           {result.peak_speedup:.2f}x\n"
        f"peak speedup among 13B models:           {result.peak_speedup_13b():.2f}x\n"
        f"average efficiency gain vs best baseline:{result.average_efficiency_gain:.2f}x\n"
        f"peak efficiency gain vs best baseline:   {result.peak_efficiency_gain:.2f}x\n"
    )
    (results_dir / "headline_summary.txt").write_text(summary)

    assert result.average_speedup > 1.5
    assert result.average_efficiency_gain > 2.0
    assert result.peak_speedup > 3.0
    assert result.peak_efficiency_gain > 3.0
    # The 13B models benefit more than the grid average (paper: peaks of 9.1x
    # throughput / 17x efficiency are reached on the 13B models).
    assert result.peak_speedup_13b() > result.average_speedup
