"""Benchmark: regenerate Fig. 17 (throughput/energy vs. KV admission threshold)."""

from repro.experiments import fig17_kv_threshold

from .conftest import bench_settings, record_figure


def test_fig17_kv_threshold(benchmark, results_dir):
    # The threshold only matters when the KV cache is under pressure, which
    # needs a larger trace than the other figures.
    settings = bench_settings(num_requests=350)
    result = benchmark.pedantic(
        fig17_kv_threshold.run,
        args=(settings,),
        kwargs={"models": ("llama-13b",)},
        rounds=1,
        iterations=1,
    )
    record_figure(results_dir, "fig17_kv_threshold", result)

    series = result.normalized_series("llama-13b")
    thresholds = sorted(series)
    # Paper shape: the best operating point is a small threshold, and pushing
    # the threshold to 0.5 costs throughput.  (With the serving loop's
    # admission control, small thresholds already avoid thrashing, so the
    # degradation appears only on the over-reserving side of the sweep.)
    throughputs = [series[t]["throughput"] for t in thresholds]
    best = thresholds[max(range(len(thresholds)), key=lambda i: throughputs[i])]
    assert best <= 0.3
    assert throughputs[-1] < max(throughputs)
    assert max(throughputs) >= 1.0
    # Energy per output token does not improve by over-reserving capacity.
    energies = [series[t]["energy"] for t in thresholds]
    assert energies[-1] >= min(energies)
