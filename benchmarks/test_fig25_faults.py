"""Benchmark: regenerate Fig. 25 (fault recovery + overload shedding vs. load).

Not a figure of the paper: the sweep serves the fig23 tenant mix at
increasing offered load while a deterministic fault plan fails cores,
destroys KV blocks and stalls admission, with and without deadline-aware
overload shedding.  The qualitative robustness claims are asserted: the
planned faults inject and recover, shedding changes nothing below
saturation, and past saturation the shedding run's aggregate SLO goodput is
strictly higher than the non-shedding run's.
"""

from repro.experiments import fig25_fault_recovery

from .conftest import bench_settings, record_figure

LOAD_FRACTIONS = (0.5, 1.0, 4.0)
FAULT_COUNTS = (0, 4)


def test_fig25_fault_recovery(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(
        fig25_fault_recovery.run,
        args=(settings,),
        kwargs={"load_fractions": LOAD_FRACTIONS, "fault_counts": FAULT_COUNTS},
        rounds=1,
        iterations=1,
    )
    record_figure(results_dir, "fig25_fault_recovery", result)

    rows = {(row["faults"], row["load"], row["shed"]): row for row in result.rows()}
    assert len(rows) == len(FAULT_COUNTS) * len(LOAD_FRACTIONS) * 2
    assert result.base_rate_per_s > 0
    assert 0 < result.shed_headroom_s < min(
        target.ttft_s for target in result.tenant_slos.values()
    )

    heavy_faults, heavy_load = FAULT_COUNTS[-1], LOAD_FRACTIONS[-1]
    for load in LOAD_FRACTIONS:
        # The planned events all fire and flow through the recovery model.
        faulty = rows[(heavy_faults, load, False)]
        assert faulty["injected"] == heavy_faults
        assert faulty["stall_time_s"] > 0
        # Fault-free runs carry no fault accounting.
        assert rows[(0, load, False)]["injected"] == 0

    # Below saturation shedding is a no-op: nothing is dropped and the
    # numbers are identical to the non-shedding run.
    light = LOAD_FRACTIONS[0]
    for count in FAULT_COUNTS:
        assert rows[(count, light, True)]["shed_requests"] == 0
        assert rows[(count, light, True)]["goodput"] == rows[(count, light, False)]["goodput"]

    # The headline claim: past saturation, deadline-aware shedding trades
    # hopeless requests for strictly higher aggregate SLO goodput, under
    # faults and fault-free alike.
    for count in FAULT_COUNTS:
        shed = rows[(count, heavy_load, True)]
        no_shed = rows[(count, heavy_load, False)]
        assert shed["shed_requests"] > 0
        assert no_shed["shed_requests"] == 0
        assert shed["goodput"] > no_shed["goodput"]

    # Faults cost goodput below saturation (recompute + stalls burn
    # capacity).  Not asserted at overload: there an injected stall can act
    # as accidental admission control and nudge goodput either way.
    assert (
        rows[(heavy_faults, light, False)]["goodput"]
        <= rows[(0, light, False)]["goodput"]
    )

    headline = result.headline()
    assert headline["fault_goodput_shed"] > headline["fault_goodput_no_shed"]
    assert headline["fault_injected"] == heavy_faults
