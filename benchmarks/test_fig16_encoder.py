"""Benchmark: regenerate Fig. 16 (encoder-based models: BERT-Large, T5-11B)."""

from repro.experiments import fig16_encoder
from repro.experiments.common import OUROBOROS_NAME

from .conftest import bench_settings, record_figure


def test_fig16_encoder(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(
        fig16_encoder.run, args=(settings,), rounds=1, iterations=1
    )
    record_figure(results_dir, "fig16_encoder", result)

    for model in fig16_encoder.ENCODER_MODELS:
        energy = result.normalized_energy(model)
        # Paper shape: Ouroboros keeps a large energy advantage on encoder
        # models (59% average reduction) even where its throughput advantage
        # shrinks (encoders are GEMM-friendly for the baselines).
        assert energy[OUROBOROS_NAME] < 0.8
        # Blocked TGP beats falling back to sequence granularity (the paper
        # reports ~25x on its mixed-length traces; on the fixed-length encoder
        # traces used here the gap is smaller but always in TGP's favour).
        assert result.blocking_speedup[model] > 1.2


def test_fig16_decoder_blocking_penalty(benchmark, results_dir):
    """Blocking costs only a few percent on decoder-only models (paper: ~5%)."""
    settings = bench_settings(num_requests=80)
    penalty = benchmark.pedantic(
        fig16_encoder.decoder_blocking_penalty, args=(settings,), rounds=1, iterations=1
    )
    (results_dir / "fig16_decoder_blocking_penalty.txt").write_text(
        f"decoder-only blocking penalty: {penalty:.3f}\n"
    )
    assert -0.02 <= penalty <= 0.25
