"""Figure-regeneration benchmarks (pytest-benchmark)."""
