"""Shared configuration for the figure-regeneration benchmarks.

Every benchmark regenerates one table or figure of the paper via the
corresponding :mod:`repro.experiments` driver, asserts the qualitative shape
the paper reports, and appends the regenerated rows to
``benchmarks/results/<figure>.txt`` so the series can be inspected after a
run.

Environment knobs:

* ``REPRO_BENCH_REQUESTS``   -- requests per workload (default 150; the paper
  uses 1000, which takes proportionally longer).
* ``REPRO_BENCH_ANNEAL``     -- annealing iterations for the mapper (default 50).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentSettings

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Mark every figure benchmark ``slow`` so ``-m "not slow"`` is a fast smoke run."""
    bench_dir = Path(__file__).parent
    for item in items:
        if bench_dir in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


def bench_settings(num_requests: int | None = None) -> ExperimentSettings:
    if num_requests is None:
        # The session-wide default can be scaled via the environment; figures
        # that need a specific trace size (e.g. the KV-pressure sweep) pass an
        # explicit request count that is not overridden.
        num_requests = int(os.environ.get("REPRO_BENCH_REQUESTS", 150))
    anneal = int(os.environ.get("REPRO_BENCH_ANNEAL", 50))
    return ExperimentSettings(num_requests=num_requests, anneal_iterations=anneal)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record_figure(results_dir: Path, name: str, figure_result) -> None:
    """Write one regenerated figure's rows to the results directory."""
    path = results_dir / f"{name}.txt"
    path.write_text(figure_result.format_table() + "\n")
