"""Benchmark: regenerate Fig. 23 (multi-tenant SLO goodput vs. offered load).

Not a figure of the paper: the sweep answers the capacity-planning question
the closed-batch evaluation cannot — how much offered load the deployment
carries per tenant while honouring a TTFT / end-to-end SLO.  Two tenants with
different request mixes share the wafer under a continuous-batching limit;
the qualitative queueing shape is asserted: every tenant meets its SLO at
light load, goodput is non-increasing-ish toward overload, and far past
saturation the SLO is lost while the TTFT tail grows.
"""

from repro.experiments import fig23_slo_goodput

from .conftest import bench_settings, record_figure

LOAD_FRACTIONS = (0.25, 0.5, 1.0, 2.0, 4.0)


def test_fig23_slo_goodput(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(
        fig23_slo_goodput.run,
        args=(settings,),
        kwargs={"load_fractions": LOAD_FRACTIONS},
        rounds=1,
        iterations=1,
    )
    record_figure(results_dir, "fig23_slo_goodput", result)

    rows = result.rows()
    assert [row["load"] for row in rows[::2]] == list(LOAD_FRACTIONS)
    assert result.base_rate_per_s > 0
    assert set(result.tenant_slos) == {"interactive", "batch"}

    by_key = {(row["load"], row["tenant"]): row for row in rows}
    for tenant in ("interactive", "batch"):
        # Light load honours the SLO; far past saturation loses it.
        assert by_key[(LOAD_FRACTIONS[0], tenant)]["meets_slo"]
        assert not by_key[(LOAD_FRACTIONS[-1], tenant)]["meets_slo"]
        # Goodput degrades toward overload and the TTFT tail grows.
        light = by_key[(LOAD_FRACTIONS[0], tenant)]
        heavy = by_key[(LOAD_FRACTIONS[-1], tenant)]
        assert heavy["goodput"] < light["goodput"]
        assert heavy["ttft_p99_s"] > light["ttft_p99_s"]

    # The headline capacity number sits inside the swept range: some load
    # meets the SLO for every tenant, the extremes bracket the crossing.
    assert LOAD_FRACTIONS[0] <= result.max_load_meeting_slo() < LOAD_FRACTIONS[-1]
