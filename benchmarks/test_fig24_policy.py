"""Benchmark: regenerate Fig. 24 (scheduling-policy comparison, fcfs/wfq/priority).

Not a figure of the paper: the fig23 multi-tenant SLO sweep is re-run under
all three admission policies at identical offered loads and SLOs (both
derived once, from the FCFS anchor).  The PR 4 head-of-line-blocking
observation becomes a tunable serving knob, and the qualitative claim is
asserted: past saturation, weighted fair queueing improves the interactive
tenant's TTFT p95 over FCFS without collapsing aggregate goodput, and
priority admission (interactive tenant prioritised, aging keeps the batch
tenant alive) improves the interactive tenant's goodput as well.
"""

from repro.experiments import fig24_policy_comparison

from .conftest import bench_settings, record_figure

LOAD_FRACTIONS = (0.25, 0.5, 1.0, 2.0, 4.0)


def test_fig24_policy_comparison(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(
        fig24_policy_comparison.run,
        args=(settings,),
        kwargs={"load_fractions": LOAD_FRACTIONS},
        rounds=1,
        iterations=1,
    )
    record_figure(results_dir, "fig24_policy_comparison", result)

    rows = result.rows()
    assert [row["policy"] for row in rows[:: len(LOAD_FRACTIONS)]] == [
        "fcfs", "wfq", "priority",
    ]
    assert result.headline_load == LOAD_FRACTIONS[-1]
    by_key = {(row["policy"], row["load"]): row for row in rows}

    # At light load the queue is short: admission order is irrelevant and
    # every policy reproduces the FCFS numbers (no regression below
    # saturation is part of the acceptance bar).
    light = LOAD_FRACTIONS[0]
    for policy in ("wfq", "priority"):
        assert by_key[(policy, light)]["interactive_ttft_p95_s"] == (
            by_key[("fcfs", light)]["interactive_ttft_p95_s"]
        )
        assert by_key[(policy, light)]["goodput"] == by_key[("fcfs", light)]["goodput"]

    # Past saturation, head-of-line blocking dominates FCFS's interactive
    # TTFT tail; wfq and priority both cut it...
    fcfs = result.headline["fcfs"]
    wfq = result.headline["wfq"]
    priority = result.headline["priority"]
    assert wfq["interactive_ttft_p95_s"] < fcfs["interactive_ttft_p95_s"]
    assert priority["interactive_ttft_p95_s"] < fcfs["interactive_ttft_p95_s"]
    # ...without collapsing aggregate goodput (>= 90% of FCFS's; empirically
    # both *improve* it, because small interactive requests stop queueing
    # behind 4k-token batch requests).
    assert wfq["goodput"] >= 0.9 * fcfs["goodput"]
    assert priority["goodput"] >= 0.9 * fcfs["goodput"]
    # The prioritised tenant's goodput improves under priority admission.
    assert priority["interactive_goodput"] >= fcfs["interactive_goodput"]
