"""Benchmark: regenerate Fig. 22 (open-loop arrival-rate sweep).

Not a figure of the paper: the sweep opens the arrival-time-driven serving
workload on top of the closed-batch evaluation.  One (model, workload) cell is
served at increasing Poisson arrival rates — fractions of the measured
closed-batch service rate — and the qualitative queueing-theory shape is
asserted: throughput tracks the offered load below saturation and plateaus
above it, while the latency percentiles grow monotonically with load.
"""

from repro.experiments import fig22_arrival_sweep

from .conftest import bench_settings, record_figure

LOAD_FRACTIONS = (0.25, 0.5, 1.0, 2.0)


def test_fig22_arrival_sweep(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(
        fig22_arrival_sweep.run,
        args=(settings,),
        kwargs={"load_fractions": LOAD_FRACTIONS},
        rounds=1,
        iterations=1,
    )
    record_figure(results_dir, "fig22_arrival_sweep", result)

    rows = result.rows()
    assert [row["load"] for row in rows] == list(LOAD_FRACTIONS)
    assert result.base_rate_per_s > 0

    # Below saturation throughput tracks the offered load: each doubling of
    # the arrival rate raises served throughput substantially.
    throughputs = [row["throughput_tok_s"] for row in rows]
    assert throughputs == sorted(throughputs)
    assert throughputs[1] > throughputs[0] * 1.5

    # Past saturation the gain flattens out: the 1.0 -> 2.0 load step gains
    # far less than the sub-saturation doublings.
    subsaturation_gain = throughputs[1] / throughputs[0]
    saturated_gain = throughputs[3] / throughputs[2]
    assert saturated_gain < subsaturation_gain

    # Latency percentiles are populated, internally ordered, and the tail
    # grows with offered load.
    for row in rows:
        assert 0 < row["ttft_p50_s"] <= row["ttft_p95_s"]
        assert 0 < row["latency_p50_s"] <= row["latency_p95_s"] <= row["latency_p99_s"]
    p95s = [row["latency_p95_s"] for row in rows]
    assert p95s[-1] > p95s[0]
