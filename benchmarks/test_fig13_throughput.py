"""Benchmark: regenerate Fig. 13 (normalized throughput vs. baselines).

Covers the full 4-model x 4-workload grid.  The raw runs are shared with the
Fig. 14 energy benchmark through the grid cache, so the expensive Ouroboros
simulations execute only once per session.
"""

from repro.experiments import fig13_throughput
from repro.experiments.common import OUROBOROS_NAME

from .conftest import bench_settings, record_figure


def test_fig13_throughput(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(
        fig13_throughput.run, args=(settings,), rounds=1, iterations=1
    )
    record_figure(results_dir, "fig13_throughput", result)

    # Paper shape: Ouroboros achieves the highest normalized throughput in
    # (nearly) every (model, workload) cell -- always on the 13B models -- and
    # the average advantage is a multiple (paper: 4.1x average over SOTA,
    # peaking ~9x).  A single 32B cell may go to Cerebras in this reproduction
    # because the 32B KV capacity limits decode concurrency (Section 6.2).
    losses = 0
    for (model, workload), cell in result.grid.items():
        best_baseline = max(
            value for name, value in cell.items() if name != OUROBOROS_NAME
        )
        if cell[OUROBOROS_NAME] <= best_baseline:
            losses += 1
            assert "13b" not in model.lower(), (model, workload)
    assert losses <= 2
    assert result.average_speedup() > 2.0       # vs. the DGX A100 reference
    assert result.peak_speedup() > 4.0

    # The 13B models benefit more than the 32B models (KV capacity limits the
    # number of concurrent sequences for the larger models).
    speedups_13b = [
        value[OUROBOROS_NAME]
        for (model, _), value in result.grid.items()
        if "13b" in model.lower()
    ]
    speedups_32b = [
        value[OUROBOROS_NAME]
        for (model, _), value in result.grid.items()
        if "32b" in model.lower()
    ]
    assert sum(speedups_13b) / len(speedups_13b) > sum(speedups_32b) / len(speedups_32b)
