"""Benchmark: regenerate Fig. 11 (throughput vs. crossbar row-activation ratio)."""

import pytest

from repro.experiments import fig11_row_activation

from .conftest import bench_settings, record_figure


def test_fig11_row_activation(benchmark, results_dir):
    result = benchmark.pedantic(
        fig11_row_activation.run, args=(bench_settings(),), rounds=1, iterations=1
    )
    record_figure(results_dir, "fig11_row_activation", result)

    # Paper shape: the curve peaks at the 1/32 activation ratio, is
    # SRAM-capacity bound to the left and compute bound to the right.
    assert result.best_ratio() == pytest.approx(1 / 32)
    rows = {row["row_activation_ratio"]: row for row in result.rows()}
    assert rows["1/4"]["bound_by"] == "sram_capacity"
    assert rows["1/256"]["bound_by"] == "compute"
    assert rows["1/32"]["normalized_throughput"] == pytest.approx(1.0)
