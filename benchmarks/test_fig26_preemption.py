"""Benchmark: regenerate Fig. 26 (preemptive scheduling + recompute tax).

Not a figure of the paper: the fig24 tenant mix is re-served at the
saturated 4x load under wfq and priority admission, co-sweeping the
continuous-batching cap with the scheduler's preemption knob off and on.
The qualitative claims are asserted: preemption is bit-for-bit inert at
light load (no contention, no victims), and past saturation it cuts the
interactive tenant's TTFT p95 strictly below the non-preemptive run of the
same policy/cap cell -- the fig24 wfq anchor -- while the recompute tax it
pays (preemptions, recomputed tokens) is visible in the rows.
"""

from repro.experiments import fig26_preemption

from .conftest import bench_settings, record_figure

LOAD_FRACTIONS = (0.25, 4.0)
MAX_ACTIVE_CAPS = (8, 16)


def test_fig26_preemption(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(
        fig26_preemption.run,
        args=(settings,),
        kwargs={
            "load_fractions": LOAD_FRACTIONS,
            "max_active_caps": MAX_ACTIVE_CAPS,
        },
        rounds=1,
        iterations=1,
    )
    record_figure(results_dir, "fig26_preemption", result)

    rows = {
        (row["policy"], row["max_active"], row["preemptive"], row["load"]): row
        for row in result.rows()
    }
    assert len(rows) == 2 * len(MAX_ACTIVE_CAPS) * 2 * len(LOAD_FRACTIONS)
    assert result.base_rate_per_s > 0
    assert result.headline_load == LOAD_FRACTIONS[-1]

    light, heavy = LOAD_FRACTIONS
    for policy in ("wfq", "priority"):
        for cap in MAX_ACTIVE_CAPS:
            # At light load nothing contends for admission, so the knob is
            # inert: no victims, and numbers identical to the off run.
            on, off = rows[(policy, cap, True, light)], rows[(policy, cap, False, light)]
            assert on["preemptions"] == 0
            assert on["recomputed_tokens"] == 0
            assert on["interactive_ttft_p95_s"] == off["interactive_ttft_p95_s"]
            assert on["goodput"] == off["goodput"]

    # Past saturation at the contended cap, preemption evicts batch prefills
    # for interactive arrivals: the interactive TTFT p95 drops strictly below
    # the non-preemptive run of the same cell (for wfq, the fig24 anchor:
    # 2.64 s at the default 150-request size), and the recompute tax is paid.
    contended = MAX_ACTIVE_CAPS[0]
    for policy in ("wfq", "priority"):
        on = rows[(policy, contended, True, heavy)]
        off = rows[(policy, contended, False, heavy)]
        assert on["interactive_ttft_p95_s"] < off["interactive_ttft_p95_s"]
        assert on["preemptions"] > 0
        assert on["recomputed_tokens"] > 0

    headline = result.headline
    assert headline["interactive_ttft_p95_s"] < headline["baseline_interactive_ttft_p95_s"]
    assert headline["preemptions"] > 0
    assert headline["recomputed_tokens"] > 0
