"""Benchmark: regenerate Table 2 / Fig. 21 (impact of the CIM-core circuit design)."""

from repro.experiments import fig21_cim_cores

from .conftest import bench_settings, record_figure


def test_table2_static_comparison(results_dir):
    rows = fig21_cim_cores.table2()
    lines = ["design | TOPS/W | TOPS/mm2 | wafer capacity (GB)"]
    for row in rows:
        lines.append(
            f"{row['design']} | {row['tops_per_w']:.2f} | {row['tops_per_mm2']:.2f} | "
            f"{row['wafer_capacity_gb']:.2f}"
        )
    (results_dir / "table2_cim_cores.txt").write_text("\n".join(lines) + "\n")
    ours = next(row for row in rows if row["design"] == "This work")
    dense = [row for row in rows if row["design"] != "This work"]
    # Table 2 shape: the dense macros win on TOPS/W and TOPS/mm^2, this work
    # wins on wafer capacity by 5-20x.
    assert all(row["tops_per_w"] > ours["tops_per_w"] for row in dense)
    assert all(ours["wafer_capacity_gb"] > 4 * row["wafer_capacity_gb"] for row in dense)


def test_fig21_system_level_impact(benchmark, results_dir):
    settings = bench_settings(num_requests=100)
    result = benchmark.pedantic(
        fig21_cim_cores.run,
        args=(settings,),
        kwargs={"models": ("llama-13b", "llama-32b")},
        rounds=1,
        iterations=1,
    )
    record_figure(results_dir, "fig21_cim_cores", result)

    # Paper shape: despite their better macro-level efficiency, the dense CIM
    # designs lose end-to-end because the model no longer fits on-wafer
    # (paper: 5.18x average throughput advantage, 64% energy reduction), and
    # LUT-based crossbars shave ~10% off the compute energy.  The energy
    # advantage is largest on decode-heavy settings (memory-bound phase);
    # prefill-heavy cells may come out near parity, so the per-cell assertion
    # is made on the decode-heavy workload and the rest via the average.
    assert result.average_speedup_vs_dense() > 2.0
    energy_ratios = []
    for (model, workload, design), _ in result.raw.items():
        if design != "This work":
            continue
        energy = result.normalized_energy(model, workload)
        throughput = result.normalized_throughput(model, workload)
        energy_ratios.append(energy["VLSI'22"])
        energy_ratios.append(energy["ISSCC'22"])
        assert energy["This work + LUT"] <= 1.0
        assert throughput["VLSI'22"] < 1.0
        if workload == "lp128_ld2048":
            assert energy["VLSI'22"] > 1.0
            assert energy["ISSCC'22"] > 1.0
    assert sum(energy_ratios) / len(energy_ratios) > 1.0
