"""Benchmark: regenerate Fig. 19/20 (multi-wafer scaling on LLaMA-65B)."""

from repro.experiments import fig19_20_multiwafer
from repro.experiments.common import OUROBOROS_NAME, PAPER_WORKLOAD_ORDER

from .conftest import bench_settings, record_figure


def test_fig19_20_multiwafer(benchmark, results_dir):
    settings = bench_settings(num_requests=100)
    result = benchmark.pedantic(
        fig19_20_multiwafer.run, args=(settings,), rounds=1, iterations=1
    )
    record_figure(results_dir, "fig19_20_multiwafer", result)

    assert result.num_wafers == 2
    # Paper shape: two-wafer Ouroboros keeps a clear throughput and energy
    # advantage on the 65B model (paper: 5.4x throughput, 79% energy reduction
    # on average).  As in Fig. 13, a single long-prefill/long-decode cell may
    # go to the (favourably modelled) Cerebras baseline.
    losses = 0
    for workload in PAPER_WORKLOAD_ORDER:
        throughput = result.normalized_throughput(workload)
        energy = result.normalized_energy(workload)
        best_baseline = max(v for k, v in throughput.items() if k != OUROBOROS_NAME)
        if throughput[OUROBOROS_NAME] <= best_baseline:
            losses += 1
        assert energy[OUROBOROS_NAME] < 0.6
    assert losses <= 1
    assert result.average_speedup() > 2.0
