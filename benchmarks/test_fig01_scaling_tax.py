"""Benchmark: regenerate Fig. 1 (hardware scaling tax on GPU deployments)."""

from repro.experiments import fig01_scaling_tax

from .conftest import bench_settings, record_figure


def test_fig01_scaling_tax(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(
        fig01_scaling_tax.run, args=(settings,), rounds=1, iterations=1
    )
    record_figure(results_dir, "fig01_scaling_tax", result)

    rows = result.rows()
    # Paper shape: data movement dominates at every size and total energy
    # grows monotonically with model size despite adding GPUs.
    assert all(row["data_movement_fraction"] > 0.5 for row in rows)
    totals = [row["total_energy_j"] for row in rows]
    assert totals == sorted(totals) or totals[-1] > totals[0]
    computes = [row["compute_energy_j"] for row in rows]
    assert all(total > 2 * compute for total, compute in zip(totals, computes))
