"""Benchmark: regenerate Fig. 14 (normalized energy per output token)."""

from repro.experiments import fig14_energy
from repro.experiments.common import OUROBOROS_NAME

from .conftest import bench_settings, record_figure


def test_fig14_energy(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(
        fig14_energy.run, args=(settings,), rounds=1, iterations=1
    )
    record_figure(results_dir, "fig14_energy", result)

    # Paper shape: Ouroboros consumes the least energy per output token in
    # every cell; reductions vs. DGX A100 / TPUv4 / AttAcc / Cerebras are all
    # substantial (paper: 84% / 82% / 78% / 66%).
    for (model, workload), cell in result.grid.items():
        best_baseline = min(
            value for name, value in cell.items() if name != OUROBOROS_NAME
        )
        assert cell[OUROBOROS_NAME] < best_baseline, (model, workload)
    assert result.average_reduction_vs("DGX A100") > 0.60
    assert result.average_reduction_vs("Cerebras") > 0.15

    # Breakdown shape: the GPU baseline spends a large share of its energy on
    # off-chip memory traffic (dominant on decode-heavy settings), while
    # Ouroboros spends nothing off-chip.
    for row in result.rows():
        if row["system"] == OUROBOROS_NAME:
            assert row["off_chip_frac"] == 0.0
        if row["system"] == "DGX A100":
            assert row["off_chip_frac"] > 0.15
            if row["workload"] == "lp128_ld2048":
                assert row["off_chip_frac"] > 0.3
