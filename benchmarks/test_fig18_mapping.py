"""Benchmark: regenerate Fig. 18 (transmission volume of mapping schemes).

Also covers the Section 6.7 headline numbers (45% reduction vs. Cerebras,
18% vs. WaferLLM on average).
"""

from repro.experiments import fig18_mapping

from .conftest import bench_settings, record_figure


def test_fig18_mapping_transmission_volume(benchmark, results_dir):
    settings = bench_settings()
    result = benchmark.pedantic(
        fig18_mapping.run, args=(settings,), rounds=1, iterations=1
    )
    record_figure(results_dir, "fig18_mapping", result)

    summary = fig18_mapping.mapping_quality_summary(result)
    (results_dir / "fig18_summary.txt").write_text(
        f"average reduction vs Cerebras: {summary['reduction_vs_cerebras']:.1%}\n"
        f"average reduction vs WaferLLM: {summary['reduction_vs_waferllm']:.1%}\n"
    )

    # Paper shape: for every model the ordering is Ours < WaferLLM-ish < Cerebras,
    # and the average reductions are substantial.
    for model in fig18_mapping.MAPPING_MODELS:
        normalized = result.normalized(model)
        assert normalized["Ours"] < normalized["Cerebras"]
        assert normalized["Ours"] <= normalized["WaferLLM"] * 1.05
    assert 0.20 < summary["reduction_vs_cerebras"] < 0.80
    assert summary["reduction_vs_waferllm"] > 0.05
