#!/usr/bin/env python3
"""Preemption and tenant KV quotas: isolating an interactive tenant.

Two tenants share one wafer: a latency-sensitive interactive tenant (small
WikiText-like requests, high wfq weight) and a throughput-oriented batch
tenant (4k-token prefill/decode requests).  Offered past saturation under a
continuous-batching cap, the batch tenant's long prefills monopolise the
batch slots and the KV cache, and the interactive TTFT tail grows.

The same overloaded trace is served three ways:

1. **baseline**  -- wfq admission ordering alone (the PR 4 behaviour),
2. **preemption** -- the scheduler may evict an active batch sequence
   (dropping its prefix KV, re-queueing it for recompute) to admit an
   interactive arrival immediately,
3. **preemption + quota** -- the batch tenant is additionally capped to a
   fraction of the KV cache's blocks: its sequences now thrash against
   *their own* cap (eviction pressure stays intra-tenant), and the rest of
   the cache is guaranteed headroom for interactive admissions no matter
   how much the batch tenant offers.

The report shows preemption cutting the interactive TTFT p95, and the quota
confining the KV pressure to the batch tenant -- whose recompute tax and
completion tail grow, which is exactly the isolation being bought.

Run:  python examples/tenant_quotas.py [requests_per_tenant]
"""

from __future__ import annotations

import sys

from repro import api, deployment

#: offered load multiple of the measured closed-batch service rate; past
#: saturation is where admission order, preemption and quotas matter
OVERLOAD = 4.0


def build_spec(requests: int, rate_per_s: float, *, preemptive: bool,
               batch_quota: float | None):
    builder = (
        deployment("llama-13b")
        .scheduler("wfq")
        .concurrency(8)
        .tenant("interactive", "wikitext2", 2 * requests,
                arrival_rate_per_s=2 * rate_per_s, weight=8.0)
        .tenant("batch", "lp2048_ld2048", requests,
                arrival_rate_per_s=rate_per_s, weight=1.0,
                kv_quota=batch_quota)
    )
    if preemptive:
        builder = builder.preemption()
    return builder.build()


def serve(spec):
    system = api.build_deployment(spec)
    return system.serve(api.trace_for(spec), workload_name=spec.label())


def main(requests: int = 60) -> None:
    # Closed-batch anchor: the combined service rate of the mix, which the
    # overloaded open-loop runs are scaled from.
    anchor_spec = build_spec(requests, 0.0, preemptive=False, batch_quota=None)
    anchor = serve(anchor_spec)
    rate = (3 * requests) / anchor.total_time_s / 3  # per-tenant-unit rate
    print(f"closed-batch anchor: {3 * requests} requests in "
          f"{anchor.total_time_s:.1f}s -> offering {OVERLOAD:g}x that rate\n")

    variants = (
        ("wfq baseline", False, None),
        ("wfq + preemption", True, None),
        ("wfq + preemption + batch kv_quota=0.1", True, 0.1),
    )
    for label, preemptive, quota in variants:
        spec = build_spec(requests, OVERLOAD * rate, preemptive=preemptive,
                          batch_quota=quota)
        result = serve(spec)
        interactive = result.tenants["interactive"]
        batch = result.tenants["batch"]
        print(f"{label}:")
        print(f"  interactive: TTFT p95 {interactive.ttft.p95_s:.3f}s "
              f"(admission wait p95 {interactive.admission_wait.p95_s:.3f}s)")
        print(f"  batch:       TTFT p95 {batch.ttft.p95_s:.3f}s, "
              f"{batch.preemptions} preemptions, "
              f"{batch.recomputed_tokens} recomputed tokens, "
              f"{batch.shed} shed")
        print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
