#!/usr/bin/env python3
"""Quickstart: the unified serving API in one file.

Describes a deployment with the fluent builder (`repro.deployment(...)`),
serves it through the single `repro.serve(...)` entry point, swaps the system
string to compare against a baseline from the registry, and re-serves the same
spec open-loop for latency percentiles.

Run:  python examples/quickstart.py [num_requests]

Going further:

* Every registered system is one string away::

      from repro import SYSTEM_REGISTRY, serve
      print(sorted(SYSTEM_REGISTRY))   # ouroboros, dgx-a100, tpu-v4, ...

* Specs serialize losslessly -- store them, diff them, use them as cache
  keys::

      spec.to_dict()                       # JSON-ready dict
      DeploymentSpec.from_dict(d) == spec  # True

* Named presets reproduce the paper's figure configurations::

      from repro import preset, serve
      result = serve(preset("fig22-open-loop"))

* Sweep a whole model x workload grid in one call -- fanned across a process
  pool on multi-core machines, optionally cached on disk::

      from repro.experiments import ExperimentSettings, run_grid
      grid = run_grid(("llama-13b", "llama-32b"), ("wikitext2", "lp2048_ld2048"),
                      ExperimentSettings(num_requests=200))
      print(grid[("llama-13b", "wikitext2")]["Ours"].throughput_tokens_per_s)

  (`REPRO_SWEEP_PROCS` caps the workers; `REPRO_RESULT_CACHE_DIR` enables the
  on-disk result cache keyed by the canonical deployment-spec dicts.)

* Benchmark the simulator itself and keep the numbers::

      python -m repro bench --output BENCH_PR4.json     # or scripts/bench.sh
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import deployment, get_model, serve


def main(num_requests: int = 200) -> None:
    model = get_model("llama-13b")
    print(f"Model: {model}")

    # One spec describes the whole run: model, system, knobs, workload.
    spec = (
        deployment("llama-13b")
        .system("ouroboros")
        .anneal(50)
        .chunk(256)
        .kv(policy="dynamic", threshold=0.1)
        .workload("wikitext2", num_requests=num_requests)
        .build()
    )

    from repro import build_deployment

    system = build_deployment(spec)
    summary = system.summary()
    print("\nOuroboros deployment")
    for key in ("wafers", "total_cores", "healthy_cores", "weight_cores", "kv_cores",
                "pipeline_depth", "kv_capacity_gib", "average_hops"):
        print(f"  {key:>16}: {summary[key]:.2f}" if isinstance(summary[key], float)
              else f"  {key:>16}: {summary[key]}")

    print(f"\nServing {num_requests} 'wikitext2' requests")
    ours = serve(spec)
    # The same run on a baseline is a one-string change.
    dgx = serve(spec.with_system("dgx-a100"))

    print("\n{:<14} {:>14} {:>16} {:>10}".format(
        "system", "tokens/s", "energy/token (mJ)", "speedup"))
    for result in (dgx, ours):
        speedup = result.throughput_tokens_per_s / dgx.throughput_tokens_per_s
        print("{:<14} {:>14,.0f} {:>16.3f} {:>9.2f}x".format(
            result.system,
            result.throughput_tokens_per_s,
            result.energy_per_output_token_j * 1e3,
            speedup,
        ))

    print("\nOuroboros energy breakdown:")
    for category, fraction in ours.energy.fractions().items():
        print(f"  {category:>16}: {fraction:6.1%}")
    print(f"\nPipeline utilization: {ours.utilization:.1%}; "
          f"KV evictions: {ours.evictions}; recomputed tokens: {ours.recomputed_tokens}")

    # Open-loop serving: the same spec with a Poisson arrival rate at the
    # closed-batch service rate (saturation).  Admission is gated on arrival
    # times and the result carries per-request latency percentiles.
    arrival_rate = num_requests / ours.total_time_s
    open_loop = serve(replace(spec, arrival_rate_per_s=arrival_rate))
    print(f"\nOpen-loop at {arrival_rate:,.1f} req/s (saturation): "
          f"{open_loop.throughput_tokens_per_s:,.0f} tok/s")
    print(f"  TTFT p50/p95:        {open_loop.ttft.p50_s * 1e3:7.1f} / "
          f"{open_loop.ttft.p95_s * 1e3:7.1f} ms")
    print(f"  latency p50/p95/p99: {open_loop.latency.p50_s * 1e3:7.1f} / "
          f"{open_loop.latency.p95_s * 1e3:7.1f} / "
          f"{open_loop.latency.p99_s * 1e3:7.1f} ms")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    main(count)
