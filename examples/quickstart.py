#!/usr/bin/env python3
"""Quickstart: serve a WikiText-like trace of LLaMA-13B requests on Ouroboros.

Builds a single-wafer Ouroboros deployment (defect sampling, inter-core
mapping, distributed KV-cache manager), serves a batch of requests with
token-grained pipelining, and prints throughput, energy per output token and
the energy breakdown alongside a DGX A100 baseline.

Run:  python examples/quickstart.py [num_requests]

Going further:

* Serve open-loop instead of closed-batch: give the workload a Poisson
  arrival rate and the engine gates admission on arrival times, skips idle
  gaps, and reports TTFT / end-to-end latency percentiles (this script's
  second serving run, or ``python -m repro serve llama-13b --arrival-rate 25``).
  ``python -m repro experiment fig22`` sweeps arrival rate vs. throughput and
  tail latency.

* Sweep a whole model x workload grid in one call -- fanned across a process
  pool on multi-core machines, optionally cached on disk::

      from repro.experiments import ExperimentSettings, run_grid
      grid = run_grid(("llama-13b", "llama-32b"), ("wikitext2", "lp2048_ld2048"),
                      ExperimentSettings(num_requests=200))
      print(grid[("llama-13b", "wikitext2")]["Ours"].throughput_tokens_per_s)

  (`REPRO_SWEEP_PROCS` caps the workers; `REPRO_RESULT_CACHE_DIR` enables the
  on-disk result cache keyed by model/workload/settings.)

* Benchmark the simulator itself and keep the numbers::

      python -m repro bench --output BENCH_PR2.json     # or scripts/bench.sh

  The JSON report breaks the wall-clock into build / serve (closed-batch and
  open-loop) / grid / annealer stages so perf regressions are visible across
  PRs.
"""

from __future__ import annotations

import sys

from repro import OuroborosSystem, OuroborosSystemConfig, generate_trace, get_model
from repro.baselines import DGXA100System
from repro.pipeline.engine import PipelineConfig


def main(num_requests: int = 200) -> None:
    model = get_model("llama-13b")
    print(f"Model: {model}")

    config = OuroborosSystemConfig(
        anneal_iterations=50,
        pipeline=PipelineConfig(chunk_tokens=256),
    )
    system = OuroborosSystem(model, config)
    summary = system.summary()
    print("\nOuroboros deployment")
    for key in ("wafers", "total_cores", "healthy_cores", "weight_cores", "kv_cores",
                "pipeline_depth", "kv_capacity_gib", "average_hops"):
        print(f"  {key:>16}: {summary[key]:.2f}" if isinstance(summary[key], float)
              else f"  {key:>16}: {summary[key]}")

    trace = generate_trace("wikitext2", num_requests=num_requests)
    print(f"\nServing {len(trace)} requests "
          f"({trace.total_prefill_tokens} prefill + {trace.total_decode_tokens} decode tokens)")

    ours = system.serve(trace)
    dgx = DGXA100System(model).serve(generate_trace("wikitext2", num_requests=num_requests))

    print("\n{:<14} {:>14} {:>16} {:>10}".format(
        "system", "tokens/s", "energy/token (mJ)", "speedup"))
    for result in (dgx, ours):
        speedup = result.throughput_tokens_per_s / dgx.throughput_tokens_per_s
        print("{:<14} {:>14,.0f} {:>16.3f} {:>9.2f}x".format(
            result.system,
            result.throughput_tokens_per_s,
            result.energy_per_output_token_j * 1e3,
            speedup,
        ))

    print("\nOuroboros energy breakdown:")
    for category, fraction in ours.energy.fractions().items():
        print(f"  {category:>16}: {fraction:6.1%}")
    print(f"\nPipeline utilization: {ours.utilization:.1%}; "
          f"KV evictions: {ours.evictions}; recomputed tokens: {ours.recomputed_tokens}")

    # Open-loop serving: the same request mix arriving as a Poisson process at
    # the closed-batch service rate (saturation).  Admission is gated on the
    # arrival times and the result carries per-request latency percentiles.
    arrival_rate = num_requests / ours.total_time_s
    open_trace = generate_trace(
        "wikitext2", num_requests=num_requests, arrival_rate_per_s=arrival_rate
    )
    open_loop = system.serve(open_trace)
    print(f"\nOpen-loop at {arrival_rate:,.1f} req/s (saturation): "
          f"{open_loop.throughput_tokens_per_s:,.0f} tok/s")
    print(f"  TTFT p50/p95:        {open_loop.ttft.p50_s * 1e3:7.1f} / "
          f"{open_loop.ttft.p95_s * 1e3:7.1f} ms")
    print(f"  latency p50/p95/p99: {open_loop.latency.p50_s * 1e3:7.1f} / "
          f"{open_loop.latency.p95_s * 1e3:7.1f} / "
          f"{open_loop.latency.p99_s * 1e3:7.1f} ms")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    main(count)
