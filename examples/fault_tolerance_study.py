#!/usr/bin/env python3
"""Fault-tolerance study: inject core failures and observe the recovery.

Builds an Ouroboros deployment of LLaMA-13B through the fluent spec API, then
injects a series of runtime core failures.  For weight-core failures the
replacement-chain remapping is reported (chain length, reclaimed KV core,
recovery latency); for KV-core failures the set of sequences needing
recomputation is reported.  Finally the script compares serving throughput
before and after the failures to show that the degradation is bounded by the
lost KV capacity rather than by a remap of the whole wafer.

Run:  python examples/fault_tolerance_study.py [num_failures]
"""

from __future__ import annotations

import dataclasses
import random
import sys

from repro import api, deployment
from repro.kvcache.manager import DistributedKVCacheManager
from repro.mapping.fault_tolerance import FaultToleranceManager
from repro.workload.requests import Request, Sequence


def main(num_failures: int = 6) -> None:
    spec = (
        deployment("llama-13b")
        .anneal(20)
        .workload("lp128_ld2048", num_requests=60)
        .build()
    )
    system = api.build_deployment(spec)
    built = system.built
    mapping = built.mappings[0]
    wafer = built.wafers[0]
    print(f"Deployment: {built.num_weight_cores} weight cores, "
          f"{built.num_kv_cores} KV cores on {wafer.num_healthy_cores} healthy cores\n")

    model = api.resolve_model(spec.model)
    kv_manager = DistributedKVCacheManager(model, mapping.kv_core_ids, threshold=0.1)
    # Put a few sequences in the cache so KV-core failures have victims.
    for seq_id in range(8):
        sequence = Sequence(Request(request_id=seq_id, prefill_length=512, decode_length=128))
        sequence.start()
        kv_manager.try_admit(sequence)
        kv_manager.append_tokens(sequence, 512)

    ft = FaultToleranceManager(wafer, mapping, kv_manager=kv_manager)
    rng = random.Random(0)
    weight_cores = sorted(ft.weight_cores)
    kv_cores = sorted(ft.kv_cores)

    print(f"Injecting {num_failures} runtime core failures:")
    for i in range(num_failures):
        if i % 2 == 0:
            core = rng.choice(weight_cores)
            weight_cores.remove(core)
        else:
            core = rng.choice(kv_cores)
            kv_cores.remove(core)
        result = ft.fail_core(core)
        kind = "weight" if result.reclaimed_kv_core is not None else "kv"
        print(f"  core {core:>5} ({kind:>6}): chain length {result.chain_length}, "
              f"reclaimed KV core {result.reclaimed_kv_core}, "
              f"{len(result.affected_sequences)} sequences to recompute, "
              f"recovery {result.recovery_latency_s * 1e6:.1f} us")

    print("\nServing impact (same trace before/after failures):")
    trace = api.trace_for(spec)
    healthy_result = system.serve(api.trace_for(spec), workload_name=spec.label())

    # Rebuild the system with the failed cores marked defective to measure the
    # post-recovery steady state.  The degraded wafer is swapped in by hand
    # because runtime failures are not a spec-addressable configuration.
    from repro.hardware.wafer import Wafer as WaferClass
    from repro.hardware.yieldmodel import DefectMap

    failed = frozenset(ft.failed_cores)
    base_map = built.defect_maps[0]
    combined = failed | (base_map.defective_cores if base_map else frozenset())
    degraded_map = DefectMap(
        defective_cores=combined,
        core_yield=base_map.core_yield if base_map else 1.0,
        total_cores=wafer.num_cores,
    )
    degraded_config = dataclasses.replace(spec.config, model_defects=False)
    degraded_spec = dataclasses.replace(spec, config=degraded_config)
    degraded_built = api.build_deployment(degraded_spec, cache=False).built
    degraded_built.wafers[0] = WaferClass(spec.config.wafer, defect_map=degraded_map)
    degraded_result = degraded_built.serve(trace)

    print(f"  before failures: {healthy_result.throughput_tokens_per_s:,.0f} tokens/s")
    print(f"  after  failures: {degraded_result.throughput_tokens_per_s:,.0f} tokens/s "
          f"({degraded_result.throughput_tokens_per_s / healthy_result.throughput_tokens_per_s:.1%} of healthy)")


if __name__ == "__main__":
    failures = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    main(failures)
