#!/usr/bin/env python3
"""Million-request scale: streaming serve in O(active) memory.

Serves a large open-loop trace through the pull-based streaming path and
shows that it is (a) bit-for-bit identical to the materialised path and
(b) bounded in resident memory, then prints the wall-clock serving rate —
the `stream_requests_per_s` headline the benchmark gates.

The streaming path holds one pending request per tenant (the heap-merged
arrival generators in `repro.workload.streams`), folds completed sequences
into an O(1) accumulator at each epoch end, and estimates latency/TTFT
percentiles with P^2 quantile estimators above 4096 samples.  `serve()`
selects it automatically at 100k+ requests; `streaming=True` forces it.

Run:  python examples/million_request_scale.py [num_requests] [arrival_rate]

The default (2000 requests) finishes in seconds and demonstrates the
bitwise equivalence.  The headline run is::

    python examples/million_request_scale.py 1000000 90

which serves one million requests in a flat memory footprint (~20 min).
Keep the arrival rate at or below saturation (~93 req/s for wikitext2 on
llama-13b): above saturation the admission queue itself must grow with
the trace, which is a property of the workload, not the engine.
"""

from __future__ import annotations

import resource
import sys
import time

from repro import deployment, serve


def main(num_requests: int = 2000, arrival_rate: float = 90.0) -> None:
    spec = (
        deployment("llama-13b")
        .system("ouroboros")
        .workload("wikitext2", num_requests=num_requests)
        .arrival_rate(arrival_rate)
        .build()
    )

    print(f"Serving {num_requests:,} requests at {arrival_rate:g} req/s "
          f"(streaming path)")
    start = time.perf_counter()
    streamed = serve(spec, streaming=True)
    elapsed = time.perf_counter() - start
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    print(f"  wall clock:          {elapsed:8.2f} s "
          f"({num_requests / elapsed:,.0f} simulated req/s)")
    print(f"  peak RSS:            {peak_rss_mb:8.1f} MB (process-wide bound)")
    print(f"  simulated time:      {streamed.total_time_s:8.2f} s")
    print(f"  throughput:          {streamed.throughput_tokens_per_s:,.0f} tok/s")
    print(f"  TTFT p50/p95:        {streamed.ttft.p50_s * 1e3:7.1f} / "
          f"{streamed.ttft.p95_s * 1e3:7.1f} ms")
    print(f"  latency p50/p95/p99: {streamed.latency.p50_s * 1e3:7.1f} / "
          f"{streamed.latency.p95_s * 1e3:7.1f} / "
          f"{streamed.latency.p99_s * 1e3:7.1f} ms")

    # At demo sizes, re-serve through the materialised path and check the
    # promise that streaming is an execution knob, not a semantics knob.
    # (Skipped at headline sizes — materialising 1M requests is the very
    # thing the streaming path exists to avoid.)
    if num_requests <= 20_000:
        materialised = serve(spec, streaming=False)
        match = materialised.as_dict() == streamed.as_dict()
        print(f"\n  materialised path == streaming path: {match}")
        if not match:
            raise SystemExit("streaming result diverged from materialised run")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 90.0
    main(count, rate)
