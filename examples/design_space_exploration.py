#!/usr/bin/env python3
"""Design-space exploration: row-activation ratio and mapping strategy.

Two of the paper's design decisions are swept here:

1. the crossbar row-activation ratio (Fig. 11) -- the balance between MAC
   throughput and the SRAM area left for the KV cache, and
2. the inter-core mapping strategy (Section 4.3) -- naive, greedy and
   annealed placements and their effect on per-token hop distance, serving
   energy and the Fig. 18 transmission-volume comparison.

The mapping sweep describes each run as a fluent `DeploymentSpec`
(`deployment(...).mapping(strategy)`) served through `repro.serve(...)`.

Run:  python examples/design_space_exploration.py [--fast]
      --fast shrinks the trace and annealing budget (CI smoke)
"""

from __future__ import annotations

import sys

from repro import api, deployment, serve
from repro.hardware.crossbar import throughput_vs_activation_ratio
from repro.hardware.wafer import Wafer
from repro.mapping.baselines import compare_mapping_schemes
from repro.models.architectures import get_model
from repro.sim.engine import MappingStrategy


def sweep_row_activation() -> None:
    print("Row-activation ratio sweep (normalized system throughput, Fig. 11)")
    ratios = [1 / 4, 1 / 8, 1 / 16, 1 / 32, 1 / 64, 1 / 128]
    curve = throughput_vs_activation_ratio(ratios)
    for ratio in ratios:
        bar = "#" * int(round(curve[ratio] * 40))
        print(f"  1/{int(1 / ratio):<4} {curve[ratio]:5.2f}  {bar}")
    best = max(curve, key=curve.get)
    print(f"  -> best ratio: 1/{int(1 / best)} (the paper's choice)\n")


def sweep_mapping_strategy(num_requests: int, anneal: int) -> None:
    print(f"Mapping strategy sweep on LLaMA-13B ({num_requests} requests, lp128_ld2048)")
    print("{:>12} {:>14} {:>14} {:>16}".format(
        "strategy", "avg hops", "tokens/s", "energy/token mJ"))
    for strategy in (MappingStrategy.NAIVE, MappingStrategy.GREEDY, MappingStrategy.OPTIMIZED):
        spec = (
            deployment("llama-13b")
            .mapping(strategy)
            .anneal(anneal)
            .workload("lp128_ld2048", num_requests=num_requests)
            .build()
        )
        result = serve(spec)
        summary = api.build_deployment(spec).summary()
        print("{:>12} {:>14.1f} {:>14,.0f} {:>16.3f}".format(
            strategy.value,
            summary["average_hops"],
            result.throughput_tokens_per_s,
            result.energy_per_output_token_j * 1e3,
        ))
    print()


def compare_transmission_volume(anneal: int) -> None:
    print("Per-token transmission volume vs. other wafer-scale schemes (Fig. 18)")
    wafer = Wafer()
    model = get_model("llama-13b")
    volumes = compare_mapping_schemes(model, wafer, anneal_iterations=anneal)
    reference = volumes["Cerebras"].byte_hops_per_token
    for scheme in ("Cerebras", "WaferLLM", "Ours"):
        value = volumes[scheme].byte_hops_per_token / reference
        print(f"  {scheme:<10} {value:5.2f}  {'#' * int(round(value * 40))}")


if __name__ == "__main__":
    fast = "--fast" in sys.argv[1:]
    requests = 40 if fast else 120
    anneal = 20 if fast else 80
    sweep_row_activation()
    sweep_mapping_strategy(requests, anneal)
    compare_transmission_volume(anneal)
