#!/usr/bin/env python3
"""KV-cache tuning: sweep the admission threshold and watch thrashing disappear.

Reproduces the Fig. 17 study on a decode-heavy workload: with a zero
threshold, admissions pack the distributed KV cache completely, decode-phase
growth then triggers evictions (thrashing) and the evicted context has to be
recomputed; reserving a small fraction of each core removes the thrashing at a
small concurrency cost.

Run:  python examples/kv_cache_tuning.py [num_requests]
"""

from __future__ import annotations

import sys

from repro import OuroborosSystem, get_model
from repro.experiments import ExperimentSettings
from repro.workload.distributions import WikiTextLikeDistribution
from repro.workload.generator import TraceGenerator, WorkloadSpec

THRESHOLDS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def main(num_requests: int = 300) -> None:
    settings = ExperimentSettings(num_requests=num_requests, anneal_iterations=20)
    model = get_model("llama-13b")
    # Long decodes keep the cache under pressure for most of the run.
    spec = WorkloadSpec(
        name="decode-heavy",
        distribution=WikiTextLikeDistribution(decode_log_mean=6.8),
        num_requests=num_requests,
        seed=0,
    )

    print(f"KV-cache threshold sweep on {model}, {num_requests} decode-heavy requests\n")
    print("{:>10} {:>14} {:>16} {:>11} {:>18}".format(
        "threshold", "tokens/s", "energy/token mJ", "evictions", "recomputed tokens"))

    baseline_throughput = None
    for threshold in THRESHOLDS:
        system = OuroborosSystem(model, settings.system_config(kv_threshold=threshold))
        trace = TraceGenerator(spec).generate()
        result = system.serve(trace, workload_name=f"threshold={threshold}")
        if baseline_throughput is None:
            baseline_throughput = result.throughput_tokens_per_s
        print("{:>10.2f} {:>14,.0f} {:>16.3f} {:>11} {:>18}".format(
            threshold,
            result.throughput_tokens_per_s,
            result.energy_per_output_token_j * 1e3,
            result.evictions,
            result.recomputed_tokens,
        ))

    print("\nInterpretation: small thresholds trade a little admission concurrency "
          "for far fewer evictions; very large thresholds waste KV capacity and "
          "reduce the number of concurrently decoding sequences.")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    main(count)
