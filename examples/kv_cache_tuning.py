#!/usr/bin/env python3
"""KV-cache tuning: sweep the admission threshold and watch thrashing disappear.

Reproduces the Fig. 17 study on a decode-heavy workload: with a zero
threshold, admissions pack the distributed KV cache completely, decode-phase
growth then triggers evictions (thrashing) and the evicted context has to be
recomputed; reserving a small fraction of each core removes the thrashing at a
small concurrency cost.

Every run is described by a fluent `DeploymentSpec` and served through the
unified `repro.serve(...)` entry point; the decode-heavy trace is addressed by
the parametric workload string ``wikitext2_ldm6.8`` (WikiText-like lengths
with a heavier decode tail).

Run:  python examples/kv_cache_tuning.py [num_requests]
"""

from __future__ import annotations

import sys

from repro import deployment, get_model, serve

THRESHOLDS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def main(num_requests: int = 300) -> None:
    model = get_model("llama-13b")
    print(f"KV-cache threshold sweep on {model}, {num_requests} decode-heavy requests\n")
    print("{:>10} {:>14} {:>16} {:>11} {:>18}".format(
        "threshold", "tokens/s", "energy/token mJ", "evictions", "recomputed tokens"))

    for threshold in THRESHOLDS:
        spec = (
            deployment("llama-13b")
            .anneal(20)
            .kv(policy="dynamic", threshold=threshold)
            # Long decodes keep the cache under pressure for most of the run.
            .workload("wikitext2_ldm6.8", num_requests=num_requests,
                      label=f"threshold={threshold}")
            .build()
        )
        result = serve(spec)
        print("{:>10.2f} {:>14,.0f} {:>16.3f} {:>11} {:>18}".format(
            threshold,
            result.throughput_tokens_per_s,
            result.energy_per_output_token_j * 1e3,
            result.evictions,
            result.recomputed_tokens,
        ))

    print("\nInterpretation: small thresholds trade a little admission concurrency "
          "for far fewer evictions; very large thresholds waste KV capacity and "
          "reduce the number of concurrently decoding sequences.")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    main(count)
