#!/usr/bin/env python3
"""Serving-system shoot-out: Ouroboros vs. DGX A100, TPUv4, AttAcc and WSE-2.

Reproduces a slice of the paper's main comparison (Fig. 13/14) for a chosen
model across the four workload settings, printing normalized throughput and
normalized energy per output token.  Every cell is a set of `DeploymentSpec`s
served through the unified `repro.api.serve` entry point (one spec per
registered comparison system); building is memoised per (model, system,
config), so the four workloads reuse one built system each.

Run:  python examples/serving_comparison.py [model] [num_requests]
      model in {llama-13b, baichuan-13b, llama-32b, qwen-32b}
"""

from __future__ import annotations

import sys

from repro.experiments import ExperimentSettings
from repro.experiments.common import (
    OUROBOROS_NAME,
    PAPER_WORKLOAD_ORDER,
    normalized_energy,
    normalized_throughput,
    run_all_systems,
)
from repro.models.architectures import get_model


def main(model_name: str = "llama-13b", num_requests: int = 200) -> None:
    settings = ExperimentSettings(num_requests=num_requests, anneal_iterations=50)
    arch = get_model(model_name)
    print(f"Comparing serving systems on {arch} with {num_requests} requests per workload\n")

    systems_order = ["DGX A100", "TPUv4", "AttAcc", "Cerebras", OUROBOROS_NAME]

    header = "{:<14}" + "{:>12}" * len(systems_order)
    print("Normalized throughput (DGX A100 = 1.0)")
    print(header.format("workload", *systems_order))
    energy_rows = []
    for workload in PAPER_WORKLOAD_ORDER:
        cell = run_all_systems(model_name, workload, settings)
        throughput = normalized_throughput(cell)
        energy = normalized_energy(cell)
        print(header.format(
            workload, *(f"{throughput.get(name, float('nan')):.2f}" for name in systems_order)
        ))
        energy_rows.append((workload, energy))

    print("\nNormalized energy per output token (DGX A100 = 1.0, lower is better)")
    print(header.format("workload", *systems_order))
    for workload, energy in energy_rows:
        print(header.format(
            workload, *(f"{energy.get(name, float('nan')):.2f}" for name in systems_order)
        ))


if __name__ == "__main__":
    model = sys.argv[1] if len(sys.argv) > 1 else "llama-13b"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 200
    main(model, count)
