#!/usr/bin/env python3
"""Live serving walkthrough: boot a daemon, stream requests, watch telemetry.

Starts a :class:`repro.serving.ServingDaemon` on a background thread (the
same daemon ``repro serve --daemon`` runs in the foreground), subscribes a
connection to its completion-event stream, replays the deployment's trace
over the socket protocol from a second connection, polls the rolling-window
metrics mid-flight, then drains and verifies the headline property of the
live serving path: the drained result is **bit-for-bit identical** to the
batch ``api.serve(spec)`` result.

Run:  python examples/daemon_client.py
"""

from __future__ import annotations

import threading

from repro import api, deployment
from repro.serving import start_daemon

NUM_REQUESTS = 24


def main() -> None:
    spec = (
        deployment("llama-13b")
        .workload("lp128_ld2048", num_requests=NUM_REQUESTS)
        .arrival_rate(20.0)
        .build()
    )
    print(f"Batch reference: serving {NUM_REQUESTS} requests offline...")
    batch = api.serve(spec)
    print(f"  {batch.throughput_tokens_per_s:,.0f} tok/s, "
          f"TTFT p95 {batch.ttft.p95_s * 1e3:.1f} ms\n")

    with start_daemon(spec) as handle:
        print(f"Daemon listening on {handle.host}:{handle.port}")

        # One connection subscribes to the pushed per-request event stream.
        subscriber = handle.client()
        subscriber.subscribe()
        events: list[dict] = []
        collector = threading.Thread(
            target=lambda: events.extend(subscriber.events()), daemon=True
        )
        collector.start()

        # A second connection replays the spec's trace in arrival order.
        trace = api.trace_for(spec)
        with handle.client() as client:
            print(f"Streaming {len(trace.requests)} requests over the socket...")
            for request in sorted(trace.requests,
                                  key=lambda r: (r.arrival_time, r.request_id)):
                client.submit(request)

            status = client.status()
            print(f"  mid-flight: state={status['state']} "
                  f"completed={status['completed']} waiting={status['waiting']}")
            window = client.metrics()
            print(f"  rolling window: {window['aggregate']['requests']} done, "
                  f"queue depth {window['aggregate']['queue_depth']}")

            client.end_stream()
            live = client.drain()

        collector.join(timeout=60.0)
        subscriber.close()

    completions = [e for e in events if e["event"] == "completion"]
    print(f"\nReceived {len(completions)} completion events; "
          f"final event: {events[-1]['event']}")
    print(f"Live result:  {live['throughput_tokens_per_s']:,.0f} tok/s, "
          f"TTFT p95 {live['ttft']['p95_s'] * 1e3:.1f} ms")

    matches = live == batch.as_dict()
    print(f"Live drain equals batch serve bit-for-bit: {matches}")
    if not matches:
        raise SystemExit("parity violation: live and batch results differ")


if __name__ == "__main__":
    main()
