"""Shared result dataclasses used by the pipeline engines, simulator and baselines.

Also home of the streaming statistics layer: :class:`LatencyAccumulator`
summarises per-request latency samples in O(1) memory behind the existing
:class:`LatencyStats` shape (exact at small N — the bitwise CI anchors — and
P² quantile estimation beyond :data:`EXACT_SAMPLE_LIMIT` samples), and
:class:`ServeAccumulator` folds completed/shed sequences into per-tenant
stats incrementally so the engines never hold per-sequence sample lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # import cycle guard: workload.requests is engine-side
    from .workload.requests import Sequence, SLOTarget


@dataclass
class LatencyStats:
    """Distribution summary of a per-request latency metric (seconds).

    Used for TTFT (time to first output token) and end-to-end request latency
    in open-loop serving; with batch traces every arrival is t=0, so the
    end-to-end numbers degrade gracefully to completion times.
    """

    count: int = 0
    mean_s: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyStats":
        if not samples:
            return cls()
        import numpy as np

        values = np.asarray(samples, dtype=np.float64)
        p50, p95, p99 = np.percentile(values, (50.0, 95.0, 99.0))
        return cls(
            count=len(samples),
            mean_s=float(values.mean()),
            p50_s=float(p50),
            p95_s=float(p95),
            p99_s=float(p99),
            max_s=float(values.max()),
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }


@dataclass
class TenantStats:
    """Per-tenant slice of a serving run's latency and SLO accounting.

    ``goodput`` is the fraction of the tenant's completed requests meeting the
    trace's :class:`~repro.workload.requests.SLOTarget`; it is ``None`` when
    the run had no SLO to evaluate.  Counts sum to the aggregate across the
    tenants of a run (every completed request belongs to exactly one tenant).
    """

    requests: int = 0
    ttft: LatencyStats = field(default_factory=LatencyStats)
    latency: LatencyStats = field(default_factory=LatencyStats)
    goodput: float | None = None
    #: requests of this tenant permanently dropped by the overload shedder
    #: (they count against goodput: a shed request never met its SLO)
    shed: int = 0
    #: requests of this tenant still waiting for admission when the stats
    #: were captured — always 0 for a drained batch run; the daemon's live
    #: metrics report the current depth through the same field
    queue_depth: int = 0
    #: arrival-to-admission wait of the tenant's completed requests
    admission_wait: LatencyStats = field(default_factory=LatencyStats)
    #: KV evictions suffered by the tenant's completed requests (capacity
    #: pressure, faults and preemptions combined)
    evictions: int = 0
    #: evictions that were scheduling preemptions (subset of ``evictions``)
    preemptions: int = 0
    #: tokens the tenant's completed requests re-prefilled after evictions
    #: — the recompute tax of thrashing, faults and preemption
    recomputed_tokens: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "ttft": self.ttft.as_dict(),
            "latency": self.latency.as_dict(),
            "goodput": self.goodput,
            "shed": self.shed,
            "queue_depth": self.queue_depth,
            "admission_wait": self.admission_wait.as_dict(),
            "evictions": self.evictions,
            "preemptions": self.preemptions,
            "recomputed_tokens": self.recomputed_tokens,
        }


@dataclass
class EnergyBreakdown:
    """Energy split into the four categories the paper plots (Fig. 14/20).

    All values in joules.
    """

    compute_j: float = 0.0
    on_chip_memory_j: float = 0.0
    off_chip_memory_j: float = 0.0
    communication_j: float = 0.0

    @property
    def total_j(self) -> float:
        return (
            self.compute_j
            + self.on_chip_memory_j
            + self.off_chip_memory_j
            + self.communication_j
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_j=self.compute_j + other.compute_j,
            on_chip_memory_j=self.on_chip_memory_j + other.on_chip_memory_j,
            off_chip_memory_j=self.off_chip_memory_j + other.off_chip_memory_j,
            communication_j=self.communication_j + other.communication_j,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_j=self.compute_j * factor,
            on_chip_memory_j=self.on_chip_memory_j * factor,
            off_chip_memory_j=self.off_chip_memory_j * factor,
            communication_j=self.communication_j * factor,
        )

    def fractions(self) -> dict[str, float]:
        total = self.total_j
        if total == 0:
            return {key: 0.0 for key in ("compute", "on_chip_memory", "off_chip_memory", "communication")}
        return {
            "compute": self.compute_j / total,
            "on_chip_memory": self.on_chip_memory_j / total,
            "off_chip_memory": self.off_chip_memory_j / total,
            "communication": self.communication_j / total,
        }

    def as_dict(self) -> dict[str, float]:
        return {
            "compute_j": self.compute_j,
            "on_chip_memory_j": self.on_chip_memory_j,
            "off_chip_memory_j": self.off_chip_memory_j,
            "communication_j": self.communication_j,
            "total_j": self.total_j,
        }


@dataclass
class FaultStats:
    """Counters describing injected faults and their recovery cost.

    Produced by the fault injector (``repro.sim.faults``) and surfaced on
    :class:`RunResult.faults`; lives here so the workload/pipeline layers can
    reference it without importing the simulator.
    """

    #: fault events applied during the run
    injected: int = 0
    kv_core_failures: int = 0
    weight_core_failures: int = 0
    kv_block_losses: int = 0
    admission_stalls: int = 0
    #: resident sequences whose KV a fault destroyed and that were re-queued
    recovered_sequences: int = 0
    #: tokens re-prefilled because a fault discarded their KV entries
    recompute_tokens: int = 0
    #: wall-clock spent in the recovery model (weight remapping transfers)
    recovery_latency_s: float = 0.0
    #: wall-clock admission was frozen by injected stalls
    stall_time_s: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "injected": self.injected,
            "kv_core_failures": self.kv_core_failures,
            "weight_core_failures": self.weight_core_failures,
            "kv_block_losses": self.kv_block_losses,
            "admission_stalls": self.admission_stalls,
            "recovered_sequences": self.recovered_sequences,
            "recompute_tokens": self.recompute_tokens,
            "recovery_latency_s": self.recovery_latency_s,
            "stall_time_s": self.stall_time_s,
        }


@dataclass
class RunResult:
    """Outcome of serving one request trace on one system."""

    system: str
    model: str
    workload: str
    #: wall-clock seconds to serve the whole trace
    total_time_s: float
    #: tokens that left the pipeline (prefill + decode, excluding recompute waste)
    total_tokens: int
    #: generated (decode) tokens only -- the numerator of serving throughput
    output_tokens: int
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    #: average pipeline / compute utilization in [0, 1]
    utilization: float = 0.0
    #: tokens recomputed due to KV-cache eviction (waste)
    recomputed_tokens: int = 0
    #: number of KV-cache evictions observed
    evictions: int = 0
    #: per-request time to first output token (arrival -> first decode token)
    ttft: LatencyStats = field(default_factory=LatencyStats)
    #: per-request end-to-end latency (arrival -> completion)
    latency: LatencyStats = field(default_factory=LatencyStats)
    #: fraction of completed requests meeting the trace's SLO (None = no SLO)
    goodput: float | None = None
    #: per-tenant latency/goodput breakdown, keyed by tenant id
    tenants: dict[str, TenantStats] = field(default_factory=dict)
    #: injected-fault accounting (None = the run had no fault plan)
    faults: FaultStats | None = None
    #: requests permanently dropped by the overload shedder
    shed_requests: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.output_tokens / self.total_time_s

    @property
    def total_throughput_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.total_tokens / self.total_time_s

    @property
    def energy_per_output_token_j(self) -> float:
        if self.output_tokens <= 0:
            return 0.0
        return self.energy.total_j / self.output_tokens

    def as_dict(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "model": self.model,
            "workload": self.workload,
            "total_time_s": self.total_time_s,
            "total_tokens": self.total_tokens,
            "output_tokens": self.output_tokens,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "energy_per_output_token_j": self.energy_per_output_token_j,
            "utilization": self.utilization,
            "recomputed_tokens": self.recomputed_tokens,
            "evictions": self.evictions,
            "ttft": self.ttft.as_dict(),
            "latency": self.latency.as_dict(),
            "goodput": self.goodput,
            "tenants": {name: stats.as_dict() for name, stats in self.tenants.items()},
            "faults": self.faults.as_dict() if self.faults is not None else None,
            "shed_requests": self.shed_requests,
            "energy": self.energy.as_dict(),
            "extra": dict(self.extra),
        }


#: sample count up to which :class:`LatencyAccumulator` buffers exact samples
#: and reproduces :meth:`LatencyStats.from_samples` bitwise.  Every CI bitwise
#: anchor (fig22–25, daemon replay, checkpoint/resume) serves far fewer
#: requests than this, so the P² approximation only engages at scales where
#: no exact baseline exists.
EXACT_SAMPLE_LIMIT = 4096


class P2Quantile:
    """Streaming quantile estimator (Jain & Chlamtac's P² algorithm).

    Tracks one quantile with five markers in O(1) memory.  Deterministic
    given the sample order, and the full marker state serialises to plain
    JSON for checkpoint/resume.
    """

    __slots__ = ("p", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self._q: list[float] = []  # marker heights (sorted observations)
        self._n: list[int] = [0, 1, 2, 3, 4]  # marker positions
        self._np: list[float] = [0.0, 2 * p, 4 * p, 2 + 2 * p, 4.0]
        self._dn: list[float] = [0.0, p / 2, p, (1 + p) / 2, 1.0]

    def add(self, value: float) -> None:
        q, n, np_ = self._q, self._n, self._np
        if len(q) < 5:
            q.append(value)
            q.sort()
            return
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            while value >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            np_[i] += self._dn[i]
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or (d <= -1.0 and n[i - 1] - n[i] < -1):
                step = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:  # parabolic prediction left the bracket: linear fallback
                    q[i] = q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])
                n[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        q, n = self._q, self._n
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def value(self) -> float:
        if not self._q:
            return 0.0
        if len(self._q) < 5:
            import numpy as np

            return float(np.percentile(self._q, self.p * 100.0))
        return self._q[2]

    def state(self) -> dict[str, Any]:
        return {
            "p": self.p,
            "q": list(self._q),
            "n": list(self._n),
            "np": list(self._np),
        }

    @classmethod
    def restore(cls, state: dict[str, Any]) -> "P2Quantile":
        estimator = cls(float(state["p"]))
        estimator._q = [float(v) for v in state["q"]]
        estimator._n = [int(v) for v in state["n"]]
        estimator._np = [float(v) for v in state["np"]]
        return estimator


class LatencyAccumulator:
    """Streaming builder of a :class:`LatencyStats` in O(1) memory.

    Buffers exact samples up to :data:`EXACT_SAMPLE_LIMIT` so small-N runs —
    every bitwise CI anchor — finalise through the exact
    :meth:`LatencyStats.from_samples` path, bit for bit.  Beyond the limit
    the buffer is spilled into three P² quantile estimators plus running
    count/sum/max, bounding memory while keeping p50/p95/p99 within the
    estimator's accuracy.
    """

    __slots__ = ("_exact", "_count", "_sum", "_max", "_p50", "_p95", "_p99")

    def __init__(self) -> None:
        self._exact: list[float] | None = []
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._p50 = P2Quantile(0.50)
        self._p95 = P2Quantile(0.95)
        self._p99 = P2Quantile(0.99)

    @property
    def count(self) -> int:
        return self._count

    @property
    def is_exact(self) -> bool:
        return self._exact is not None

    def add(self, value: float) -> None:
        self._count += 1
        if self._exact is not None:
            self._exact.append(value)
            if len(self._exact) > EXACT_SAMPLE_LIMIT:
                self._spill()
            return
        self._feed(value)

    def _feed(self, value: float) -> None:
        self._sum += value
        if value > self._max:
            self._max = value
        self._p50.add(value)
        self._p95.add(value)
        self._p99.add(value)

    def _spill(self) -> None:
        buffered, self._exact = self._exact, None
        assert buffered is not None
        for value in buffered:
            self._feed(value)

    def finalize(self) -> LatencyStats:
        if self._exact is not None:
            return LatencyStats.from_samples(self._exact)
        return LatencyStats(
            count=self._count,
            mean_s=self._sum / self._count,
            p50_s=self._p50.value(),
            p95_s=self._p95.value(),
            p99_s=self._p99.value(),
            max_s=self._max,
        )

    def state(self) -> dict[str, Any]:
        if self._exact is not None:
            return {"exact": list(self._exact)}
        return {
            "count": self._count,
            "sum": self._sum,
            "max": self._max,
            "p50": self._p50.state(),
            "p95": self._p95.state(),
            "p99": self._p99.state(),
        }

    @classmethod
    def restore(cls, state: dict[str, Any]) -> "LatencyAccumulator":
        accumulator = cls()
        if "exact" in state:
            accumulator._exact = [float(v) for v in state["exact"]]
            accumulator._count = len(accumulator._exact)
            return accumulator
        accumulator._exact = None
        accumulator._count = int(state["count"])
        accumulator._sum = float(state["sum"])
        accumulator._max = float(state["max"])
        accumulator._p50 = P2Quantile.restore(state["p50"])
        accumulator._p95 = P2Quantile.restore(state["p95"])
        accumulator._p99 = P2Quantile.restore(state["p99"])
        return accumulator


class _TenantAccumulator:
    """One tenant's incremental slice of a :class:`ServeAccumulator`."""

    __slots__ = (
        "requests", "ttft", "latency", "admission_wait", "met",
        "evictions", "preemptions", "recomputed_tokens",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.ttft = LatencyAccumulator()
        self.latency = LatencyAccumulator()
        self.admission_wait = LatencyAccumulator()
        self.met = 0
        self.evictions = 0
        self.preemptions = 0
        self.recomputed_tokens = 0

    def state(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "ttft": self.ttft.state(),
            "latency": self.latency.state(),
            "admission_wait": self.admission_wait.state(),
            "met": self.met,
            "evictions": self.evictions,
            "preemptions": self.preemptions,
            "recomputed_tokens": self.recomputed_tokens,
        }

    @classmethod
    def restore(cls, state: dict[str, Any]) -> "_TenantAccumulator":
        accumulator = cls()
        accumulator.requests = int(state["requests"])
        accumulator.ttft = LatencyAccumulator.restore(state["ttft"])
        accumulator.latency = LatencyAccumulator.restore(state["latency"])
        accumulator.admission_wait = LatencyAccumulator.restore(state["admission_wait"])
        accumulator.met = int(state["met"])
        accumulator.evictions = int(state.get("evictions", 0))
        accumulator.preemptions = int(state.get("preemptions", 0))
        accumulator.recomputed_tokens = int(state.get("recomputed_tokens", 0))
        return accumulator


class ServeAccumulator:
    """Folds completed/shed sequences into run statistics incrementally.

    The engines feed every finished sequence in (once its completion epoch has
    been stamped) and every permanently shed request, so at `_finish` time no
    per-sequence sample lists exist — memory is O(tenants), not O(trace).
    Tenant dict ordering reproduces the materialised path: tenants appear in
    first-completion order, then shed-only tenants in first-shed order.
    """

    def __init__(self, slo_for: "Callable[[str], SLOTarget | None]") -> None:
        self._slo_for = slo_for
        self.completed = 0
        self.output_tokens = 0
        self.ttft = LatencyAccumulator()
        self.latency = LatencyAccumulator()
        self._tenants: dict[str, _TenantAccumulator] = {}
        self._shed: dict[str, int] = {}

    @property
    def shed_total(self) -> int:
        return sum(self._shed.values())

    def note_completed(self, sequence: "Sequence") -> None:
        self.completed += 1
        self.output_tokens += sequence.request.decode_length
        ttft = sequence.ttft_s
        if ttft is not None:
            self.ttft.add(ttft)
        latency = sequence.latency_s
        if latency is not None:
            self.latency.add(latency)
        tenant = self._tenants.get(sequence.tenant)
        if tenant is None:
            tenant = self._tenants[sequence.tenant] = _TenantAccumulator()
        tenant.requests += 1
        if ttft is not None:
            tenant.ttft.add(ttft)
        if latency is not None:
            tenant.latency.add(latency)
        if sequence.admission_time is not None:
            tenant.admission_wait.add(
                sequence.admission_time - sequence.request.arrival_time
            )
        tenant.evictions += sequence.eviction_count
        tenant.preemptions += sequence.preemptions
        tenant.recomputed_tokens += sequence.recomputed_tokens
        slo = self._slo_for(sequence.tenant)
        if slo is not None and slo.met_by(ttft, latency):
            tenant.met += 1

    def note_shed(self, sequence: "Sequence") -> None:
        self._shed[sequence.tenant] = self._shed.get(sequence.tenant, 0) + 1

    def tenant_results(
        self, queue_depths: dict[str, int]
    ) -> tuple[dict[str, TenantStats], int, int]:
        """Per-tenant stats plus the aggregate (met, judged) SLO counts.

        Ordering matches the materialised `_finish`: completion-order tenants
        first, then tenants that only ever shed, in first-shed order.
        """
        tenants: dict[str, TenantStats] = {}
        met_total = 0
        judged_total = 0
        for name, acc in self._tenants.items():
            shed = self._shed.get(name, 0)
            slo = self._slo_for(name)
            goodput: float | None = None
            if slo is not None:
                judged = acc.requests + shed
                goodput = (acc.met / judged) if judged else 0.0
                met_total += acc.met
                judged_total += judged
            tenants[name] = TenantStats(
                requests=acc.requests,
                ttft=acc.ttft.finalize(),
                latency=acc.latency.finalize(),
                goodput=goodput,
                shed=shed,
                queue_depth=queue_depths.get(name, 0),
                admission_wait=acc.admission_wait.finalize(),
                evictions=acc.evictions,
                preemptions=acc.preemptions,
                recomputed_tokens=acc.recomputed_tokens,
            )
        for name, shed in self._shed.items():
            if name in tenants:
                continue
            slo = self._slo_for(name)
            goodput = None
            if slo is not None:
                goodput = 0.0 if shed else None
                judged_total += shed
            tenants[name] = TenantStats(
                requests=0,
                goodput=goodput,
                shed=shed,
                queue_depth=queue_depths.get(name, 0),
            )
        return tenants, met_total, judged_total

    def state(self) -> dict[str, Any]:
        return {
            "completed": self.completed,
            "output_tokens": self.output_tokens,
            "ttft": self.ttft.state(),
            "latency": self.latency.state(),
            "tenants": [[name, acc.state()] for name, acc in self._tenants.items()],
            "shed": [[name, count] for name, count in self._shed.items()],
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self.completed = int(state["completed"])
        self.output_tokens = int(state["output_tokens"])
        self.ttft = LatencyAccumulator.restore(state["ttft"])
        self.latency = LatencyAccumulator.restore(state["latency"])
        self._tenants = {
            name: _TenantAccumulator.restore(entry) for name, entry in state["tenants"]
        }
        self._shed = {name: int(count) for name, count in state["shed"]}
