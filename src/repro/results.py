"""Shared result dataclasses used by the pipeline engines, simulator and baselines."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LatencyStats:
    """Distribution summary of a per-request latency metric (seconds).

    Used for TTFT (time to first output token) and end-to-end request latency
    in open-loop serving; with batch traces every arrival is t=0, so the
    end-to-end numbers degrade gracefully to completion times.
    """

    count: int = 0
    mean_s: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyStats":
        if not samples:
            return cls()
        import numpy as np

        values = np.asarray(samples, dtype=np.float64)
        p50, p95, p99 = np.percentile(values, (50.0, 95.0, 99.0))
        return cls(
            count=len(samples),
            mean_s=float(values.mean()),
            p50_s=float(p50),
            p95_s=float(p95),
            p99_s=float(p99),
            max_s=float(values.max()),
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }


@dataclass
class TenantStats:
    """Per-tenant slice of a serving run's latency and SLO accounting.

    ``goodput`` is the fraction of the tenant's completed requests meeting the
    trace's :class:`~repro.workload.requests.SLOTarget`; it is ``None`` when
    the run had no SLO to evaluate.  Counts sum to the aggregate across the
    tenants of a run (every completed request belongs to exactly one tenant).
    """

    requests: int = 0
    ttft: LatencyStats = field(default_factory=LatencyStats)
    latency: LatencyStats = field(default_factory=LatencyStats)
    goodput: float | None = None

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ttft": self.ttft.as_dict(),
            "latency": self.latency.as_dict(),
            "goodput": self.goodput,
        }


@dataclass
class EnergyBreakdown:
    """Energy split into the four categories the paper plots (Fig. 14/20).

    All values in joules.
    """

    compute_j: float = 0.0
    on_chip_memory_j: float = 0.0
    off_chip_memory_j: float = 0.0
    communication_j: float = 0.0

    @property
    def total_j(self) -> float:
        return (
            self.compute_j
            + self.on_chip_memory_j
            + self.off_chip_memory_j
            + self.communication_j
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_j=self.compute_j + other.compute_j,
            on_chip_memory_j=self.on_chip_memory_j + other.on_chip_memory_j,
            off_chip_memory_j=self.off_chip_memory_j + other.off_chip_memory_j,
            communication_j=self.communication_j + other.communication_j,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_j=self.compute_j * factor,
            on_chip_memory_j=self.on_chip_memory_j * factor,
            off_chip_memory_j=self.off_chip_memory_j * factor,
            communication_j=self.communication_j * factor,
        )

    def fractions(self) -> dict[str, float]:
        total = self.total_j
        if total == 0:
            return {key: 0.0 for key in ("compute", "on_chip_memory", "off_chip_memory", "communication")}
        return {
            "compute": self.compute_j / total,
            "on_chip_memory": self.on_chip_memory_j / total,
            "off_chip_memory": self.off_chip_memory_j / total,
            "communication": self.communication_j / total,
        }

    def as_dict(self) -> dict[str, float]:
        return {
            "compute_j": self.compute_j,
            "on_chip_memory_j": self.on_chip_memory_j,
            "off_chip_memory_j": self.off_chip_memory_j,
            "communication_j": self.communication_j,
            "total_j": self.total_j,
        }


@dataclass
class RunResult:
    """Outcome of serving one request trace on one system."""

    system: str
    model: str
    workload: str
    #: wall-clock seconds to serve the whole trace
    total_time_s: float
    #: tokens that left the pipeline (prefill + decode, excluding recompute waste)
    total_tokens: int
    #: generated (decode) tokens only -- the numerator of serving throughput
    output_tokens: int
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    #: average pipeline / compute utilization in [0, 1]
    utilization: float = 0.0
    #: tokens recomputed due to KV-cache eviction (waste)
    recomputed_tokens: int = 0
    #: number of KV-cache evictions observed
    evictions: int = 0
    #: per-request time to first output token (arrival -> first decode token)
    ttft: LatencyStats = field(default_factory=LatencyStats)
    #: per-request end-to-end latency (arrival -> completion)
    latency: LatencyStats = field(default_factory=LatencyStats)
    #: fraction of completed requests meeting the trace's SLO (None = no SLO)
    goodput: float | None = None
    #: per-tenant latency/goodput breakdown, keyed by tenant id
    tenants: dict[str, TenantStats] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.output_tokens / self.total_time_s

    @property
    def total_throughput_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.total_tokens / self.total_time_s

    @property
    def energy_per_output_token_j(self) -> float:
        if self.output_tokens <= 0:
            return 0.0
        return self.energy.total_j / self.output_tokens

    def as_dict(self) -> dict:
        return {
            "system": self.system,
            "model": self.model,
            "workload": self.workload,
            "total_time_s": self.total_time_s,
            "total_tokens": self.total_tokens,
            "output_tokens": self.output_tokens,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "energy_per_output_token_j": self.energy_per_output_token_j,
            "utilization": self.utilization,
            "recomputed_tokens": self.recomputed_tokens,
            "evictions": self.evictions,
            "ttft": self.ttft.as_dict(),
            "latency": self.latency.as_dict(),
            "goodput": self.goodput,
            "tenants": {name: stats.as_dict() for name, stats in self.tenants.items()},
            "energy": self.energy.as_dict(),
        }
