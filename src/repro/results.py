"""Shared result dataclasses used by the pipeline engines, simulator and baselines."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LatencyStats:
    """Distribution summary of a per-request latency metric (seconds).

    Used for TTFT (time to first output token) and end-to-end request latency
    in open-loop serving; with batch traces every arrival is t=0, so the
    end-to-end numbers degrade gracefully to completion times.
    """

    count: int = 0
    mean_s: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyStats":
        if not samples:
            return cls()
        import numpy as np

        values = np.asarray(samples, dtype=np.float64)
        p50, p95, p99 = np.percentile(values, (50.0, 95.0, 99.0))
        return cls(
            count=len(samples),
            mean_s=float(values.mean()),
            p50_s=float(p50),
            p95_s=float(p95),
            p99_s=float(p99),
            max_s=float(values.max()),
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }


@dataclass
class TenantStats:
    """Per-tenant slice of a serving run's latency and SLO accounting.

    ``goodput`` is the fraction of the tenant's completed requests meeting the
    trace's :class:`~repro.workload.requests.SLOTarget`; it is ``None`` when
    the run had no SLO to evaluate.  Counts sum to the aggregate across the
    tenants of a run (every completed request belongs to exactly one tenant).
    """

    requests: int = 0
    ttft: LatencyStats = field(default_factory=LatencyStats)
    latency: LatencyStats = field(default_factory=LatencyStats)
    goodput: float | None = None
    #: requests of this tenant permanently dropped by the overload shedder
    #: (they count against goodput: a shed request never met its SLO)
    shed: int = 0
    #: requests of this tenant still waiting for admission when the stats
    #: were captured — always 0 for a drained batch run; the daemon's live
    #: metrics report the current depth through the same field
    queue_depth: int = 0
    #: arrival-to-admission wait of the tenant's completed requests
    admission_wait: LatencyStats = field(default_factory=LatencyStats)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ttft": self.ttft.as_dict(),
            "latency": self.latency.as_dict(),
            "goodput": self.goodput,
            "shed": self.shed,
            "queue_depth": self.queue_depth,
            "admission_wait": self.admission_wait.as_dict(),
        }


@dataclass
class EnergyBreakdown:
    """Energy split into the four categories the paper plots (Fig. 14/20).

    All values in joules.
    """

    compute_j: float = 0.0
    on_chip_memory_j: float = 0.0
    off_chip_memory_j: float = 0.0
    communication_j: float = 0.0

    @property
    def total_j(self) -> float:
        return (
            self.compute_j
            + self.on_chip_memory_j
            + self.off_chip_memory_j
            + self.communication_j
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_j=self.compute_j + other.compute_j,
            on_chip_memory_j=self.on_chip_memory_j + other.on_chip_memory_j,
            off_chip_memory_j=self.off_chip_memory_j + other.off_chip_memory_j,
            communication_j=self.communication_j + other.communication_j,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_j=self.compute_j * factor,
            on_chip_memory_j=self.on_chip_memory_j * factor,
            off_chip_memory_j=self.off_chip_memory_j * factor,
            communication_j=self.communication_j * factor,
        )

    def fractions(self) -> dict[str, float]:
        total = self.total_j
        if total == 0:
            return {key: 0.0 for key in ("compute", "on_chip_memory", "off_chip_memory", "communication")}
        return {
            "compute": self.compute_j / total,
            "on_chip_memory": self.on_chip_memory_j / total,
            "off_chip_memory": self.off_chip_memory_j / total,
            "communication": self.communication_j / total,
        }

    def as_dict(self) -> dict[str, float]:
        return {
            "compute_j": self.compute_j,
            "on_chip_memory_j": self.on_chip_memory_j,
            "off_chip_memory_j": self.off_chip_memory_j,
            "communication_j": self.communication_j,
            "total_j": self.total_j,
        }


@dataclass
class FaultStats:
    """Counters describing injected faults and their recovery cost.

    Produced by the fault injector (``repro.sim.faults``) and surfaced on
    :class:`RunResult.faults`; lives here so the workload/pipeline layers can
    reference it without importing the simulator.
    """

    #: fault events applied during the run
    injected: int = 0
    kv_core_failures: int = 0
    weight_core_failures: int = 0
    kv_block_losses: int = 0
    admission_stalls: int = 0
    #: resident sequences whose KV a fault destroyed and that were re-queued
    recovered_sequences: int = 0
    #: tokens re-prefilled because a fault discarded their KV entries
    recompute_tokens: int = 0
    #: wall-clock spent in the recovery model (weight remapping transfers)
    recovery_latency_s: float = 0.0
    #: wall-clock admission was frozen by injected stalls
    stall_time_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "injected": self.injected,
            "kv_core_failures": self.kv_core_failures,
            "weight_core_failures": self.weight_core_failures,
            "kv_block_losses": self.kv_block_losses,
            "admission_stalls": self.admission_stalls,
            "recovered_sequences": self.recovered_sequences,
            "recompute_tokens": self.recompute_tokens,
            "recovery_latency_s": self.recovery_latency_s,
            "stall_time_s": self.stall_time_s,
        }


@dataclass
class RunResult:
    """Outcome of serving one request trace on one system."""

    system: str
    model: str
    workload: str
    #: wall-clock seconds to serve the whole trace
    total_time_s: float
    #: tokens that left the pipeline (prefill + decode, excluding recompute waste)
    total_tokens: int
    #: generated (decode) tokens only -- the numerator of serving throughput
    output_tokens: int
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    #: average pipeline / compute utilization in [0, 1]
    utilization: float = 0.0
    #: tokens recomputed due to KV-cache eviction (waste)
    recomputed_tokens: int = 0
    #: number of KV-cache evictions observed
    evictions: int = 0
    #: per-request time to first output token (arrival -> first decode token)
    ttft: LatencyStats = field(default_factory=LatencyStats)
    #: per-request end-to-end latency (arrival -> completion)
    latency: LatencyStats = field(default_factory=LatencyStats)
    #: fraction of completed requests meeting the trace's SLO (None = no SLO)
    goodput: float | None = None
    #: per-tenant latency/goodput breakdown, keyed by tenant id
    tenants: dict[str, TenantStats] = field(default_factory=dict)
    #: injected-fault accounting (None = the run had no fault plan)
    faults: FaultStats | None = None
    #: requests permanently dropped by the overload shedder
    shed_requests: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.output_tokens / self.total_time_s

    @property
    def total_throughput_tokens_per_s(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.total_tokens / self.total_time_s

    @property
    def energy_per_output_token_j(self) -> float:
        if self.output_tokens <= 0:
            return 0.0
        return self.energy.total_j / self.output_tokens

    def as_dict(self) -> dict:
        return {
            "system": self.system,
            "model": self.model,
            "workload": self.workload,
            "total_time_s": self.total_time_s,
            "total_tokens": self.total_tokens,
            "output_tokens": self.output_tokens,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "energy_per_output_token_j": self.energy_per_output_token_j,
            "utilization": self.utilization,
            "recomputed_tokens": self.recomputed_tokens,
            "evictions": self.evictions,
            "ttft": self.ttft.as_dict(),
            "latency": self.latency.as_dict(),
            "goodput": self.goodput,
            "tenants": {name: stats.as_dict() for name, stats in self.tenants.items()},
            "faults": self.faults.as_dict() if self.faults is not None else None,
            "shed_requests": self.shed_requests,
            "energy": self.energy.as_dict(),
            "extra": dict(self.extra),
        }
