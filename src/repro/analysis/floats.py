"""Float-stability checker for stats and accounting code.

Float addition is not associative, so ``sum()`` over an *unordered*
iterable (a ``set`` / ``frozenset``) produces run-dependent low bits —
exactly the kind of drift the bitwise bench gate exists to catch, except
it only fires after the damage is committed.  Scoped to the modules that
aggregate metrics (``results.py``, ``accounting.py``, ``stats*``, and
``perf/``):

``FLT001``
    ``sum()`` whose argument is a set expression, a set-typed name, or a
    generator draining one — iterate a ``sorted()`` sequence (or
    ``math.fsum`` over one) instead.
"""

from __future__ import annotations

import ast

from .core import Finding, ParsedModule, Project, dotted_name
from .determinism import _is_set_expr, set_typed_symbols

SCOPED_FILENAMES = frozenset({"results.py", "accounting.py"})


def _in_scope(relpath: str) -> bool:
    parts = relpath.split("/")
    filename = parts[-1]
    return (
        filename in SCOPED_FILENAMES
        or filename.startswith("stats")
        or "perf" in parts[:-1]
    )


class FloatStabilityChecker:
    name = "floats"

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            if not _in_scope(module.relpath):
                continue
            symbols = set_typed_symbols(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if dotted_name(node.func) not in ("sum", "math.fsum", "fsum"):
                    continue
                if not node.args:
                    continue
                token = self._unordered_token(node.args[0], symbols)
                if token is not None:
                    findings.append(module.finding(
                        "FLT001", node,
                        f"sum() over unordered {token}: float addition is "
                        "not associative, so the result depends on set "
                        "order — sum a sorted() sequence instead",
                        symbol=token,
                    ))
        return findings

    def _unordered_token(self, arg: ast.expr,
                         symbols: set[str]) -> str | None:
        token = _is_set_expr(arg, symbols)
        if token is not None:
            return token
        if isinstance(arg, ast.GeneratorExp) and len(arg.generators) == 1:
            return _is_set_expr(arg.generators[0].iter, symbols)
        return None
