"""Serialization-completeness checker for spec/result dataclasses.

Checkpoints, fault plans and deployment specs round-trip through
``to_dict``/``as_dict`` and ``from_dict``/``_from_jsonable``.  A field added
to the dataclass but not to its hand-written serializer silently drops state
— the checkpoint still loads, the spec still validates, and the corruption
only surfaces as a bitwise mismatch several PRs later.  This checker
cross-references every dataclass's field list against the keys its
serializer methods actually touch:

``SER001``
    A dataclass field the ``as_dict``/``to_dict`` literal never emits.

``SER002``
    An emitted key that is neither a field nor a ``@property`` — usually a
    typo, or a rename that silently forked the schema.

``SER003``
    A dataclass field the ``from_dict``/``_from_jsonable`` never reads
    (neither ``data["field"]``/``data.get("field")`` nor a ``field=``
    keyword in the constructor call).

Serializers that are *generic* — built on ``dataclasses.asdict``,
``dataclasses.fields``, ``self.__dict__`` or ``cls(**data)`` — are complete
by construction and skipped.
"""

from __future__ import annotations

import ast

from .core import (
    Finding,
    ParsedModule,
    Project,
    dataclass_field_names,
    dotted_name,
    is_dataclass_def,
    iter_class_defs,
    property_names,
)

TO_DICT_NAMES = frozenset({"as_dict", "to_dict"})
FROM_DICT_NAMES = frozenset({"from_dict", "_from_jsonable", "from_jsonable"})


def _is_generic(func: ast.FunctionDef) -> bool:
    """Whether a serializer derives its keys from the dataclass machinery."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("asdict", "dataclasses.asdict", "astuple",
                        "fields", "dataclasses.fields", "replace",
                        "dataclasses.replace", "vars"):
                return True
            # cls(**data) / SomeClass(**data): a double-star splat forwards
            # every key, so the constructor signature is the schema.
            if any(kw.arg is None for kw in node.keywords):
                return True
        elif isinstance(node, ast.Attribute) and node.attr == "__dict__":
            return True
    return False


def _emitted_keys(func: ast.FunctionDef) -> dict[str, ast.AST]:
    """String keys an ``as_dict`` body emits at the *top level*, with the
    node each one anchors to for line reporting.

    Dict literals nested inside another dict literal's values are
    sub-objects with their own schema, not keys of this dataclass — only
    the outermost literals (plus ``d["k"] = ...`` stores and ``dict(k=...)``
    keywords outside any literal) count.
    """
    keys: dict[str, ast.AST] = {}

    def collect(node: ast.AST, inside_dict: bool) -> None:
        if isinstance(node, ast.Dict):
            if not inside_dict:
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.setdefault(key.value, key)
            inside_dict = True
        elif not inside_dict:
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        keys.setdefault(target.slice.value, target)
            elif isinstance(node, ast.Call) and dotted_name(node.func) == "dict":
                for keyword in node.keywords:
                    if keyword.arg:
                        keys.setdefault(keyword.arg, keyword.value)
        for child in ast.iter_child_nodes(node):
            collect(child, inside_dict)

    collect(func, False)
    return keys


def _consumed_keys(func: ast.FunctionDef) -> set[str]:
    """Keys a ``from_dict`` body reads: subscripts, ``.get``, ctor kwargs."""
    keys: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript):
            if (
                isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                keys.add(node.slice.value)
        elif isinstance(node, ast.Call):
            func_name = dotted_name(node.func) or ""
            if func_name.endswith(".get") and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    keys.add(first.value)
            keys.update(kw.arg for kw in node.keywords if kw.arg)
    return keys


class SerializationChecker:
    name = "serialization"

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            for class_def in iter_class_defs(module):
                if not is_dataclass_def(class_def):
                    continue
                findings.extend(self._check_class(module, class_def))
        return findings

    def _check_class(self, module: ParsedModule,
                     class_def: ast.ClassDef) -> list[Finding]:
        fields = dataclass_field_names(class_def)
        if not fields:
            return []
        properties = property_names(class_def)
        findings: list[Finding] = []
        for statement in class_def.body:
            if not isinstance(statement, ast.FunctionDef):
                continue
            if statement.name in TO_DICT_NAMES:
                findings.extend(self._check_to_dict(
                    module, class_def, statement, fields, properties
                ))
            elif statement.name in FROM_DICT_NAMES:
                findings.extend(self._check_from_dict(
                    module, class_def, statement, fields
                ))
        return findings

    def _check_to_dict(self, module: ParsedModule, class_def: ast.ClassDef,
                       func: ast.FunctionDef, fields: list[str],
                       properties: set[str]) -> list[Finding]:
        if _is_generic(func):
            return []
        emitted = _emitted_keys(func)
        if not emitted:
            # Nothing statically visible (fully dynamic construction): the
            # checker cannot prove anything either way, so stay silent
            # rather than flag every field.
            return []
        findings: list[Finding] = []
        for field in fields:
            if field not in emitted:
                findings.append(module.finding(
                    "SER001", func,
                    f"{class_def.name}.{func.name} never emits field "
                    f"'{field}'; the round-trip silently drops it",
                    symbol=f"{class_def.name}.{field}",
                ))
        known = set(fields) | properties
        for key in sorted(emitted):
            if key not in known:
                findings.append(module.finding(
                    "SER002", emitted[key],
                    f"{class_def.name}.{func.name} emits key '{key}' that "
                    "is neither a field nor a property — typo or schema "
                    "fork?",
                    symbol=f"{class_def.name}.{key}",
                ))
        return findings

    def _check_from_dict(self, module: ParsedModule, class_def: ast.ClassDef,
                         func: ast.FunctionDef,
                         fields: list[str]) -> list[Finding]:
        if _is_generic(func):
            return []
        consumed = _consumed_keys(func)
        if not consumed:
            return []
        findings: list[Finding] = []
        for field in fields:
            if field not in consumed:
                findings.append(module.finding(
                    "SER003", func,
                    f"{class_def.name}.{func.name} never reads field "
                    f"'{field}'; a serialized value would be dropped on "
                    "load",
                    symbol=f"{class_def.name}.{field}",
                ))
        return findings
