"""Knob-plumbing checker: every config field must be reachable by users.

A field added to :class:`PipelineConfig`, :class:`DeploymentSpec` or
:class:`TenantSpec` is only a knob if someone can actually turn it.  History shows the plumbing lags:
a field lands for one experiment, the fluent builder and the CLI never grow
a path to it, and the next user hand-edits frozen dataclasses instead.
This checker closes the loop statically:

``KNOB001``
    A ``PipelineConfig``/``DeploymentSpec`` field with no reachable path
    from any fluent builder class (``*Builder``): no ``replace``/ctor
    keyword, no override-dict key mentions it.

``KNOB002``
    A field with no reachable path from the CLI (any module calling
    ``add_argument``): no flag dest, call keyword or string key matches it,
    and no generic escape hatch — a ``<Class>.from_dict`` reference or a
    ``dataclasses.fields(<Class>)``-driven override loop — covers the whole
    class.

``KNOB003``
    A dead CLI flag: ``add_argument`` defines a dest that no ``args.<dest>``
    read ever consumes.
"""

from __future__ import annotations

import ast

from .core import (
    Finding,
    ParsedModule,
    Project,
    dataclass_field_names,
    dotted_name,
    is_dataclass_def,
    iter_class_defs,
)

#: the spec dataclasses whose fields are user-facing knobs (TenantSpec joined
#: when per-tenant scheduling weights and KV quotas became serving knobs)
KNOB_CLASSES = ("PipelineConfig", "DeploymentSpec", "TenantSpec")


def _string_keys_and_keywords(tree: ast.AST) -> set[str]:
    """Every token a code region could plumb a field through by name:
    call keyword names, dict-literal string keys, subscript-store keys,
    and ``with_<field>`` fluent-wither calls."""
    tokens: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            tokens.update(kw.arg for kw in node.keywords if kw.arg)
            if isinstance(node.func, ast.Attribute) and node.func.attr.startswith(
                "with_"
            ):
                tokens.add(node.func.attr[len("with_"):])
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    tokens.add(key.value)
        elif isinstance(node, ast.Subscript):
            if (
                isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                tokens.add(node.slice.value)
    return tokens


def _flag_dest(call: ast.Call) -> str | None:
    """The argparse dest an ``add_argument`` call binds, or None."""
    for keyword in call.keywords:
        if keyword.arg == "dest" and isinstance(keyword.value, ast.Constant):
            return str(keyword.value.value)
    for arg in call.args:
        if not isinstance(arg, ast.Constant) or not isinstance(arg.value, str):
            continue
        text = arg.value
        if text.startswith("--"):
            return text[2:].replace("-", "_")
        if not text.startswith("-"):
            return text  # positional
    return None


def _fields_aliases(tree: ast.AST) -> set[str]:
    """Names ``dataclasses.fields`` is callable under in this module
    (handles ``from dataclasses import fields as dataclass_fields``)."""
    aliases = {"fields", "dataclasses.fields"}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "dataclasses":
            for alias in node.names:
                if alias.name == "fields":
                    aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "dataclasses":
                    aliases.add(f"{alias.asname or alias.name}.fields")
    return aliases


def _generic_classes(tree: ast.AST) -> set[str]:
    """Classes fully reachable via a generic path in this module:
    ``<Class>.from_dict`` references or ``fields(<Class>)`` calls."""
    classes: set[str] = set()
    fields_aliases = _fields_aliases(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "from_dict":
            path = dotted_name(node)
            if path:
                parts = path.split(".")
                if len(parts) >= 2:
                    classes.add(parts[-2])
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in fields_aliases:
                for arg in node.args:
                    arg_name = dotted_name(arg)
                    if arg_name:
                        classes.add(arg_name.split(".")[-1])
    return classes


class KnobPlumbingChecker:
    name = "knobs"

    def run(self, project: Project) -> list[Finding]:
        # knob classes: name -> (module, classdef, fields)
        knob_defs: dict[str, tuple[ParsedModule, ast.ClassDef, list[str]]] = {}
        builder_tokens: set[str] = set()
        builders_found = False
        cli_modules: list[ParsedModule] = []

        for module in project:
            for class_def in iter_class_defs(module):
                if class_def.name in KNOB_CLASSES and is_dataclass_def(class_def):
                    knob_defs[class_def.name] = (
                        module, class_def, dataclass_field_names(class_def)
                    )
                if class_def.name.endswith("Builder"):
                    builders_found = True
                    builder_tokens |= _string_keys_and_keywords(class_def)
            if any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
                for node in ast.walk(module.tree)
            ):
                cli_modules.append(module)

        findings: list[Finding] = []
        for class_name, (module, class_def, fields) in sorted(knob_defs.items()):
            field_lines = {
                stmt.target.id: stmt
                for stmt in class_def.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
            if builders_found:
                for field in fields:
                    if field not in builder_tokens:
                        findings.append(module.finding(
                            "KNOB001", field_lines.get(field, class_def),
                            f"{class_name}.{field} is not reachable from "
                            "any fluent builder — add a builder method (or "
                            "keyword) that plumbs it",
                            symbol=f"{class_name}.{field}",
                        ))
            if cli_modules:
                findings.extend(self._check_cli(
                    cli_modules, module, class_name, fields, field_lines,
                    class_def,
                ))

        for module in cli_modules:
            findings.extend(self._check_dead_flags(module))
        return findings

    def _check_cli(self, cli_modules: list[ParsedModule],
                   module: ParsedModule, class_name: str,
                   fields: list[str],
                   field_lines: dict[str, ast.AnnAssign],
                   class_def: ast.ClassDef) -> list[Finding]:
        cli_tokens: set[str] = set()
        generic: set[str] = set()
        for cli_module in cli_modules:
            cli_tokens |= _string_keys_and_keywords(cli_module.tree)
            generic |= _generic_classes(cli_module.tree)
            for node in ast.walk(cli_module.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_argument"
                ):
                    dest = _flag_dest(node)
                    if dest:
                        cli_tokens.add(dest)
        if class_name in generic:
            return []
        findings: list[Finding] = []
        for field in fields:
            if field not in cli_tokens:
                findings.append(module.finding(
                    "KNOB002", field_lines.get(field, class_def),
                    f"{class_name}.{field} is not reachable from the CLI — "
                    "add a flag, or a generic spec/override path "
                    f"(<Class>.from_dict / fields({class_name}) loop)",
                    symbol=f"cli.{class_name}.{field}",
                ))
        return findings

    def _check_dead_flags(self, module: ParsedModule) -> list[Finding]:
        reads = {
            node.attr
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Attribute)
        }
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            dest = _flag_dest(node)
            if dest and dest not in reads:
                findings.append(module.finding(
                    "KNOB003", node,
                    f"CLI flag binds dest '{dest}' but args.{dest} is "
                    "never read — dead flag",
                    symbol=f"flag.{dest}",
                ))
        return findings
