"""Determinism checker: flag nondeterminism sources in the simulation core.

The bitwise gates (``test_engine_equivalence.py``, the ``BENCH_PR<n>.json``
trajectory, checkpoint/resume) only hold if the modules on the serving path
are pure functions of the spec and seed.  Four construct families break that
silently, so they are banned inside ``sim/``, ``pipeline/``, ``workload/``,
``kvcache/`` and ``serving/`` (live serving promises the same bitwise
parity: a drained daemon replay must equal the batch run, so its modules
obey the same rules; genuine wall-clock needs there carry an explicit
``repro-lint: allow`` justification):

``DET001``
    Unseeded RNG: module-level ``random.*`` / ``np.random.*`` draws, and RNG
    constructors (``default_rng``, ``Random``, ``RandomState``,
    ``SeedSequence``) called without an explicit seed.

``DET002``
    Wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
    ``datetime.now`` and friends) — simulation time must come from the
    engine's own clock.

``DET003``
    Iteration over a ``set``/``frozenset`` without ``sorted()``: set order
    hashes by memory layout, so any arithmetic or scheduling decision fed by
    it varies run to run.  Plain ``dict`` iteration is insertion-ordered and
    therefore allowed.

``DET004``
    ``os.environ`` reads: environment variables must only steer the harness
    (``perf/``), never the simulated results.
"""

from __future__ import annotations

import ast

from .core import Finding, ParsedModule, Project, dotted_name, iteration_sites

#: path segments that put a module on the deterministic serving path
SCOPED_DIRS = frozenset({"sim", "pipeline", "workload", "kvcache", "serving"})

#: RNG constructors that are fine *when given a seed argument*
SEEDED_CONSTRUCTORS = frozenset(
    {"default_rng", "Random", "RandomState", "SeedSequence", "Generator",
     "Philox", "PCG64"}
)

#: dotted call suffixes that read the wall clock
WALL_CLOCK_SUFFIXES = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
)

SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet",
     "typing.Set", "typing.FrozenSet", "typing.AbstractSet"}
)


def _annotation_is_set(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    return dotted_name(annotation) in SET_TYPE_NAMES


def _value_is_set(value: ast.expr | None) -> bool:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return dotted_name(value.func) in ("set", "frozenset")
    return False


def set_typed_symbols(tree: ast.AST) -> set[str]:
    """Dotted paths (``x``, ``self._failed``) bound to set values anywhere."""
    symbols: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            target = dotted_name(node.target)
            if target and (_annotation_is_set(node.annotation)
                           or _value_is_set(node.value)):
                symbols.add(target)
        elif isinstance(node, ast.Assign):
            if _value_is_set(node.value):
                for target in node.targets:
                    path = dotted_name(target)
                    if path:
                        symbols.add(path)
    return symbols


def _is_set_expr(expr: ast.expr, symbols: set[str]) -> str | None:
    """A display token when ``expr`` is an unordered set, else None."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "<set literal>"
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        if name in ("set", "frozenset"):
            return f"{name}(...)"
        return None
    path = dotted_name(expr)
    if path is not None and path in symbols:
        return path
    return None


class DeterminismChecker:
    name = "determinism"

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            parts = module.relpath.split("/")
            if not SCOPED_DIRS & set(parts[:-1]):
                continue
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: ParsedModule) -> list[Finding]:
        findings: list[Finding] = []
        symbols = set_typed_symbols(module.tree)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node))
            elif isinstance(node, ast.Subscript):
                if dotted_name(node.value) == "os.environ":
                    findings.append(module.finding(
                        "DET004", node,
                        "os.environ read on the deterministic serving path; "
                        "environment knobs belong in the harness (perf/), "
                        "not the simulation",
                        symbol="os.environ",
                    ))

        for iter_expr, anchor in iteration_sites(module.tree):
            token = _is_set_expr(iter_expr, symbols)
            if token is not None:
                findings.append(module.finding(
                    "DET003", anchor,
                    f"iteration over unordered set {token}; wrap it in "
                    "sorted() so the order (and any float accumulation fed "
                    "by it) is reproducible",
                    symbol=token,
                ))
        return findings

    def _check_call(self, module: ParsedModule,
                    node: ast.Call) -> list[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return []

        if name == "os.getenv" or name == "os.environ.get":
            return [module.finding(
                "DET004", node,
                f"{name}() read on the deterministic serving path; "
                "environment knobs belong in the harness (perf/), not the "
                "simulation",
                symbol=name,
            )]

        for suffix in WALL_CLOCK_SUFFIXES:
            if name == suffix or name.endswith("." + suffix):
                return [module.finding(
                    "DET002", node,
                    f"wall-clock read {name}(); simulated time must come "
                    "from the engine clock so runs reproduce bitwise",
                    symbol=name,
                )]

        parts = name.split(".")
        if "random" in parts[:-1]:  # random.x, np.random.x, numpy.random.x
            tail = parts[-1]
            if tail in SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    return [module.finding(
                        "DET001", node,
                        f"{name}() constructed without a seed; pass an "
                        "explicit seed derived from the spec",
                        symbol=name,
                    )]
                return []
            return [module.finding(
                "DET001", node,
                f"unseeded global RNG call {name}(); draw from a seeded "
                "np.random.default_rng(seed) instead",
                symbol=name,
            )]
        if parts[-1] in SEEDED_CONSTRUCTORS and parts[0] in (
            "random", "np", "numpy"
        ):
            if not node.args and not node.keywords:
                return [module.finding(
                    "DET001", node,
                    f"{name}() constructed without a seed; pass an explicit "
                    "seed derived from the spec",
                    symbol=name,
                )]
        return []
