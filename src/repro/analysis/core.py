"""AST-walking checker framework behind ``repro lint``.

The repository's load-bearing guarantees — bitwise fast-vs-scalar engine
equality, deterministic benchmark headline metrics, exact checkpoint/resume,
full spec dict round-trips — are enforced at runtime by the test suite, which
means a violation surfaces only after a bench run or a checkpoint has already
been burned.  This package proves the same invariants *statically*: each
:class:`Checker` walks the parsed ASTs of the source tree and emits structured
:class:`Finding`\\ s (file, line, rule id, message) for constructs that could
break a guarantee.

Framework pieces in this module:

:class:`ParsedModule`
    One parsed source file: path, source, AST, and the per-line suppression
    comments (``# repro-lint: allow=RULE1,RULE2`` grandfathers a finding on
    that line; a bare ``# repro-lint: allow`` suppresses every rule there).

:class:`Project`
    The set of parsed modules under one scan root, with relpath lookup — the
    unit checkers run against, so cross-file rules (builder plumbing, engine
    parity) see everything at once.

:class:`Checker`
    Protocol every rule module implements: ``run(project) -> list[Finding]``.

:func:`run_lint`
    Load a project, run the registered checkers, apply the optional committed
    baseline file, and return a :class:`LintReport`.

Baselines grandfather pre-existing findings without turning the gate off for
new ones: the baseline JSON maps line-independent finding keys to a one-line
justification, and only *non-baselined* findings fail the lint.  Stale
baseline entries (nothing matches them any more) are reported so the file
shrinks instead of rotting.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Protocol

from ..errors import ConfigurationError

#: marker that starts a suppression comment
ALLOW_TAG = "# repro-lint: allow"


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One structured lint finding.

    ``key`` is the line-independent identity used by baseline files: rule id
    plus file plus a checker-chosen stable token (usually the offending
    symbol), so a baselined finding survives unrelated edits that shift line
    numbers.
    """

    rule: str
    path: str
    line: int
    message: str
    #: stable token identifying the construct (symbol / field / flag name)
    symbol: str = ""

    @property
    def key(self) -> str:
        return f"{self.rule}:{self.path}:{self.symbol}"

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "symbol": self.symbol,
            "key": self.key,
        }


# ---------------------------------------------------------------------------
# Parsed source
# ---------------------------------------------------------------------------


def _parse_allows(source: str) -> dict[int, frozenset[str] | None]:
    """Per-line suppressions: line -> allowed rule ids (None = every rule)."""
    allows: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        index = text.find(ALLOW_TAG)
        if index < 0:
            continue
        rest = text[index + len(ALLOW_TAG):].strip()
        if rest.startswith("="):
            rules = frozenset(
                rule.strip() for rule in rest[1:].split(",") if rule.strip()
            )
            allows[lineno] = rules if rules else None
        else:
            allows[lineno] = None
    return allows


@dataclass
class ParsedModule:
    """One source file of a :class:`Project`, parsed once and shared."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    allows: dict[int, frozenset[str] | None] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ParsedModule":
        source = path.read_text()
        return cls(
            path=path,
            relpath=path.relative_to(root).as_posix(),
            source=source,
            tree=ast.parse(source, filename=str(path)),
            allows=_parse_allows(source),
        )

    def allowed(self, line: int, rule: str) -> bool:
        """Whether a suppression comment on ``line`` covers ``rule``."""
        if line not in self.allows:
            return False
        rules = self.allows[line]
        return rules is None or rule in rules

    def finding(self, rule: str, node: ast.AST, message: str,
                symbol: str = "") -> "Finding":
        """Build a finding anchored at ``node`` in this module."""
        return Finding(
            rule=rule,
            path=self.relpath,
            line=getattr(node, "lineno", 0),
            message=message,
            symbol=symbol,
        )


@dataclass
class Project:
    """All parsed modules under one scan root."""

    root: Path
    modules: list[ParsedModule]

    @classmethod
    def load(cls, root: Path) -> "Project":
        root = Path(root).resolve()
        if root.is_file():
            return cls(root=root.parent, modules=[
                ParsedModule.parse(root, root.parent)
            ])
        if not root.is_dir():
            raise ConfigurationError(f"lint root '{root}' does not exist")
        modules = [
            ParsedModule.parse(path, root)
            for path in sorted(root.rglob("*.py"))
            if "__pycache__" not in path.parts
        ]
        return cls(root=root, modules=modules)

    def module(self, relpath: str) -> ParsedModule | None:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None

    def __iter__(self) -> Iterator[ParsedModule]:
        return iter(self.modules)


class Checker(Protocol):
    """One lint rule family: walk a project, emit findings."""

    #: short identifier shown in reports (e.g. ``determinism``)
    name: str

    def run(self, project: Project) -> list[Finding]: ...


# ---------------------------------------------------------------------------
# Shared AST helpers (used by several checkers)
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, None for anything dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def is_dataclass_def(node: ast.ClassDef) -> bool:
    """Whether a class definition carries a ``@dataclass`` decorator."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def dataclass_field_names(node: ast.ClassDef) -> list[str]:
    """Field names of a dataclass body (annotated assignments, no ClassVar)."""
    names: list[str] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = dotted_name(statement.annotation)
        if annotation in ("ClassVar", "typing.ClassVar"):
            continue
        if isinstance(statement.annotation, ast.Subscript):
            base = dotted_name(statement.annotation.value)
            if base in ("ClassVar", "typing.ClassVar"):
                continue
        names.append(statement.target.id)
    return names


def property_names(node: ast.ClassDef) -> set[str]:
    """Names of ``@property`` methods defined directly on a class."""
    names: set[str] = set()
    for statement in node.body:
        if not isinstance(statement, ast.FunctionDef):
            continue
        for decorator in statement.decorator_list:
            if dotted_name(decorator) == "property":
                names.add(statement.name)
    return names


def iter_class_defs(module: ParsedModule) -> Iterator[ast.ClassDef]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            yield node


def iteration_sites(tree: ast.AST) -> Iterator[tuple[ast.expr, ast.AST]]:
    """Every ``(iterable expression, anchor node)`` a construct loops over.

    Covers ``for`` statements and every comprehension generator.
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter, node


# ---------------------------------------------------------------------------
# Baseline files
# ---------------------------------------------------------------------------


def load_baseline(path: Path) -> dict[str, str]:
    """Load a committed baseline: finding key -> one-line justification.

    Every entry *must* carry a non-empty reason — a grandfathered finding
    without a recorded justification is indistinguishable from a silenced
    bug, so that is a configuration error, not a convenience.
    """
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"baseline file '{path}' does not exist")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline file '{path}' is not JSON: {exc}")
    entries = data.get("findings", data) if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ConfigurationError(
            f"baseline file '{path}' must hold a list of "
            '{"key": ..., "reason": ...} entries'
        )
    baseline: dict[str, str] = {}
    for entry in entries:
        if (
            not isinstance(entry, dict)
            or not entry.get("key")
            or not str(entry.get("reason", "")).strip()
        ):
            raise ConfigurationError(
                f"baseline entry {entry!r} needs a 'key' and a non-empty "
                "'reason' (one-line justification)"
            )
        baseline[str(entry["key"])] = str(entry["reason"])
    return baseline


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------


@dataclass
class LintReport:
    """Outcome of one lint run."""

    root: str
    #: non-suppressed, non-baselined findings (what fails the gate)
    findings: list[Finding] = field(default_factory=list)
    #: findings grandfathered by the baseline file, with their justification
    baselined: list[tuple[Finding, str]] = field(default_factory=list)
    #: baseline keys that matched nothing (entries to delete)
    stale_baseline_keys: list[str] = field(default_factory=list)
    #: checker names that ran
    checkers: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict[str, Any]:
        return {
            "root": self.root,
            "ok": self.ok,
            "checkers": self.checkers,
            "findings": [finding.as_dict() for finding in self.findings],
            "baselined": [
                {**finding.as_dict(), "reason": reason}
                for finding, reason in self.baselined
            ],
            "stale_baseline_keys": self.stale_baseline_keys,
        }

    def format(self) -> str:
        lines: list[str] = []
        for finding in self.findings:
            lines.append(finding.format())
        for finding, reason in self.baselined:
            lines.append(f"{finding.format()} [baselined: {reason}]")
        for key in self.stale_baseline_keys:
            lines.append(f"stale baseline entry (delete it): {key}")
        count = len(self.findings)
        lines.append(
            f"repro lint: {count} finding{'s' if count != 1 else ''} "
            f"({len(self.baselined)} baselined) across "
            f"{len(self.checkers)} checkers"
        )
        return "\n".join(lines)


def default_checkers() -> "list[Checker]":
    """The five repo-specific checkers, in report order."""
    from .determinism import DeterminismChecker
    from .floats import FloatStabilityChecker
    from .knobs import KnobPlumbingChecker
    from .parity import EngineParityChecker
    from .serialization import SerializationChecker

    return [
        DeterminismChecker(),
        SerializationChecker(),
        EngineParityChecker(),
        KnobPlumbingChecker(),
        FloatStabilityChecker(),
    ]


def run_lint(
    root: str | Path,
    checkers: Iterable[Checker] | None = None,
    baseline_path: str | Path | None = None,
) -> LintReport:
    """Lint the source tree under ``root`` and return the structured report."""
    project = Project.load(Path(root))
    active = list(checkers) if checkers is not None else default_checkers()
    baseline = load_baseline(Path(baseline_path)) if baseline_path else {}

    raw: list[Finding] = []
    for checker in active:
        raw.extend(checker.run(project))
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.symbol))

    report = LintReport(root=str(project.root), checkers=[c.name for c in active])
    matched_keys: set[str] = set()
    for finding in raw:
        module = project.module(finding.path)
        if module is not None and module.allowed(finding.line, finding.rule):
            continue
        reason = baseline.get(finding.key)
        if reason is not None:
            matched_keys.add(finding.key)
            report.baselined.append((finding, reason))
        else:
            report.findings.append(finding)
    report.stale_baseline_keys = sorted(set(baseline) - matched_keys)
    return report
