"""Engine-parity checker: the fast and scalar paths must stay twins.

``PipelineEngine.run`` (vectorised) and ``PipelineEngine.run_scalar`` (the
retained reference) are required to produce bitwise-identical results —
``tests/test_engine_equivalence.py`` enforces it at runtime, but only for
the configurations it happens to sweep.  This checker enforces the
*structural* half statically, for any class defining both ``run`` and
``run_scalar``:

``PAR001``
    A ``self.<attr>`` store present in one path but not the other: state
    mutated by only one path diverges the moment both are used (e.g. a
    counter bumped only by the fast path breaks checkpoint parity).

``PAR002``
    A method invoked on a shared receiver (``self``, ``scheduler``,
    ``sequence``, ...) by one path but not the other — a side-effecting
    call (KV growth, completion bookkeeping) one path skips.

Receivers that only appear in one of the two methods are ignored (each path
may use private temporaries), as are imported modules (``np.*`` is
vectorised-only by design).  Known-equivalent call pairs — the scalar
``advance_tokens`` versus the vectorised ``apply_advance`` — are declared
in :data:`EQUIVALENT_CALLS` and normalised before comparison.
"""

from __future__ import annotations

import ast

from .core import Finding, ParsedModule, Project, dotted_name, iter_class_defs

FAST_NAME = "run"
SCALAR_NAME = "run_scalar"

#: method names proven equivalent by the runtime equivalence suite; each
#: group is normalised to one token before the two paths are compared.
EQUIVALENT_CALLS: tuple[frozenset[str], ...] = (
    frozenset({"apply_advance", "advance_tokens"}),
)


def _normalise(method: str) -> str:
    for group in EQUIVALENT_CALLS:
        if method in group:
            return "|".join(sorted(group))
    return method


def _module_imports(tree: ast.Module) -> set[str]:
    """Top-level names bound by imports (module aliases to skip as receivers)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _self_stores(func: ast.FunctionDef) -> set[str]:
    """Dotted ``self.*`` paths assigned or augmented anywhere in ``func``."""
    stores: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            continue
        for target in targets:
            path = dotted_name(target)
            if path and path.startswith("self."):
                stores.add(path)
    return stores


def _receiver_calls(func: ast.FunctionDef,
                    modules: set[str]) -> dict[str, set[str]]:
    """Map receiver name -> normalised methods called on it in ``func``."""
    calls: dict[str, set[str]] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        path = dotted_name(node.func)
        if path is None or "." not in path:
            continue
        root, _, rest = path.partition(".")
        if root in modules:
            continue
        parts = rest.split(".")
        method = ".".join(parts[:-1] + [_normalise(parts[-1])])
        calls.setdefault(root, set()).add(method)
    return calls


class EngineParityChecker:
    name = "parity"

    def run(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project:
            modules = _module_imports(module.tree)
            for class_def in iter_class_defs(module):
                methods = {
                    stmt.name: stmt
                    for stmt in class_def.body
                    if isinstance(stmt, ast.FunctionDef)
                }
                fast = methods.get(FAST_NAME)
                scalar = methods.get(SCALAR_NAME)
                if fast is None or scalar is None:
                    continue
                findings.extend(self._compare(
                    module, class_def, fast, scalar, modules
                ))
        return findings

    def _compare(self, module: ParsedModule, class_def: ast.ClassDef,
                 fast: ast.FunctionDef, scalar: ast.FunctionDef,
                 modules: set[str]) -> list[Finding]:
        findings: list[Finding] = []

        fast_stores = _self_stores(fast)
        scalar_stores = _self_stores(scalar)
        for path in sorted(fast_stores - scalar_stores):
            findings.append(module.finding(
                "PAR001", fast,
                f"{class_def.name}.{FAST_NAME} writes {path} but "
                f"{SCALAR_NAME} never does; the paths cannot stay "
                "bitwise-equal",
                symbol=f"{class_def.name}.{path}",
            ))
        for path in sorted(scalar_stores - fast_stores):
            findings.append(module.finding(
                "PAR001", scalar,
                f"{class_def.name}.{SCALAR_NAME} writes {path} but "
                f"{FAST_NAME} never does; the paths cannot stay "
                "bitwise-equal",
                symbol=f"{class_def.name}.{path}",
            ))

        fast_calls = _receiver_calls(fast, modules)
        scalar_calls = _receiver_calls(scalar, modules)
        for receiver in sorted(set(fast_calls) & set(scalar_calls)):
            only_fast = fast_calls[receiver] - scalar_calls[receiver]
            only_scalar = scalar_calls[receiver] - fast_calls[receiver]
            for method in sorted(only_fast):
                findings.append(module.finding(
                    "PAR002", fast,
                    f"{class_def.name}.{FAST_NAME} calls "
                    f"{receiver}.{method}() but {SCALAR_NAME} never does — "
                    "a side effect one path skips (declare the pair in "
                    "EQUIVALENT_CALLS if the scalar spelling differs)",
                    symbol=f"{class_def.name}.{receiver}.{method}",
                ))
            for method in sorted(only_scalar):
                findings.append(module.finding(
                    "PAR002", scalar,
                    f"{class_def.name}.{SCALAR_NAME} calls "
                    f"{receiver}.{method}() but {FAST_NAME} never does — "
                    "a side effect one path skips (declare the pair in "
                    "EQUIVALENT_CALLS if the scalar spelling differs)",
                    symbol=f"{class_def.name}.{receiver}.{method}",
                ))
        return findings
