"""Static invariant checkers behind ``repro lint``.

An AST-walking framework (:mod:`.core`) plus five repo-specific checkers
that prove the repository's load-bearing guarantees at lint time instead of
runtime: determinism of the serving path, serialization completeness of the
spec/result dataclasses, fast-vs-scalar engine parity, knob plumbing from
config fields to the builder and CLI, and float-accumulation stability in
the stats code.  See each checker module's docstring for its rule ids.
"""

from .core import (
    Checker,
    Finding,
    LintReport,
    ParsedModule,
    Project,
    default_checkers,
    load_baseline,
    run_lint,
)
from .determinism import DeterminismChecker
from .floats import FloatStabilityChecker
from .knobs import KnobPlumbingChecker
from .parity import EngineParityChecker
from .serialization import SerializationChecker

__all__ = [
    "Checker",
    "DeterminismChecker",
    "EngineParityChecker",
    "Finding",
    "FloatStabilityChecker",
    "KnobPlumbingChecker",
    "LintReport",
    "ParsedModule",
    "Project",
    "SerializationChecker",
    "default_checkers",
    "load_baseline",
    "run_lint",
]
