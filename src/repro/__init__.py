"""Ouroboros reproduction: wafer-scale SRAM CIM with token-grained pipelining.

This package re-implements, in pure Python, the system described in
"Ouroboros: Wafer-Scale SRAM CIM with Token-Grained Pipelining for Large
Language Model Inference" (ASPLOS 2026): the hardware hierarchy (crossbar ->
CIM core -> die -> wafer), the token-grained pipeline, the distributed dynamic
KV-cache manager, the communication-aware fault-tolerant mapping, an
end-to-end analytical simulator, and the baseline systems the paper compares
against.  The :mod:`repro.experiments` subpackage regenerates every table and
figure of the paper's evaluation.
"""

from .api import (
    PRESETS,
    SYSTEM_REGISTRY,
    DeploymentSpec,
    ServingSystem,
    SLOTarget,
    SystemEntry,
    TenantSpec,
    build_deployment,
    deployment,
    get_system,
    preset,
    register_system,
    serve,
)
from .core.system import OuroborosSystem
from .models.architectures import (
    MODEL_REGISTRY,
    AttentionMask,
    ModelArch,
    generic_llm,
    get_model,
)
from .results import EnergyBreakdown, LatencyStats, RunResult, TenantStats
from .sim.engine import (
    KVPolicy,
    MappingStrategy,
    OuroborosSystemConfig,
    PipelineMode,
    build_system,
    default_system_config,
    required_wafers,
)
from .workload.generator import PAPER_WORKLOADS, Trace, generate_trace, make_workload

__version__ = "1.1.0"

__all__ = [
    # unified serving API
    "DeploymentSpec",
    "TenantSpec",
    "SLOTarget",
    "ServingSystem",
    "SystemEntry",
    "SYSTEM_REGISTRY",
    "PRESETS",
    "deployment",
    "preset",
    "serve",
    "build_deployment",
    "get_system",
    "register_system",
    # core system and knobs
    "OuroborosSystem",
    "OuroborosSystemConfig",
    "PipelineMode",
    "KVPolicy",
    "MappingStrategy",
    "build_system",
    "default_system_config",
    "required_wafers",
    "ModelArch",
    "AttentionMask",
    "MODEL_REGISTRY",
    "get_model",
    "generic_llm",
    "EnergyBreakdown",
    "LatencyStats",
    "RunResult",
    "TenantStats",
    "Trace",
    "generate_trace",
    "make_workload",
    "PAPER_WORKLOADS",
    "__version__",
]
