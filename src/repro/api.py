"""Unified serving API: one spec, one registry, one entry point.

Everything the repository can serve a trace on -- the Ouroboros wafer-scale
system and every analytical baseline -- implements the :class:`ServingSystem`
protocol and is addressable by a string key in :data:`SYSTEM_REGISTRY`,
mirroring :data:`repro.models.architectures.MODEL_REGISTRY`.  A run is fully
described by a frozen, serializable :class:`DeploymentSpec` (model + system +
system knobs + workload), and :func:`serve` is the single entry point the CLI,
the experiment drivers, the :class:`~repro.perf.sweep.SweepRunner` and the
benchmark harness all call::

    from repro.api import deployment, serve

    spec = (deployment("llama-13b")
            .system("ouroboros")
            .kv(policy="dynamic", threshold=0.1)
            .pipeline("token")
            .workload("wikitext2", num_requests=200)
            .build())
    result = serve(spec)

    spec.to_dict()                                 # JSON-ready
    DeploymentSpec.from_dict(spec.to_dict())       # == spec

New backends (e.g. a LUT-in-DRAM baseline) plug in through
:func:`register_system` and immediately become usable from the CLI, the sweep
runner and the figure drivers without touching any of them.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import re
import threading
import types
import typing
from dataclasses import dataclass, field, replace
from typing import Callable, Protocol, runtime_checkable

from .baselines.cerebras import CerebrasWSE2System
from .baselines.cim_cores import ISSCC22, VLSI22, CIMCoreSystem
from .baselines.common import BaselineConfig, BaselineSystem
from .baselines.gpu import DGXA100System
from .baselines.tpu import TPUv4System
from .core.system import OuroborosSystem
from .errors import ConfigurationError
from .models.architectures import MODEL_REGISTRY, ModelArch, generic_llm, get_model
from .pipeline.checkpoint import EngineCheckpoint
from .results import RunResult
from .sim.engine import (
    KVPolicy,
    MappingStrategy,
    OuroborosSystemConfig,
    PipelineMode,
    default_system_config,
)
from .sim.faults import FaultPlan, make_fault_plan
from .workload.distributions import get_distribution
from .workload.generator import (
    TenantSpec,
    Trace,
    generate_multi_tenant_trace,
    generate_trace,
)
from .workload.streams import StreamingTrace, multi_tenant_stream, workload_stream
from .workload.policies import POLICY_NAMES, validate_policy_name
from .workload.requests import SLOTarget

# Deferred import: repro.baselines.attacc imports nothing from here, but keep
# the import list alphabetised with the others above.
from .baselines.attacc import AttAccSystem  # noqa: E402  (grouped with peers)


# ---------------------------------------------------------------------------
# The ServingSystem protocol
# ---------------------------------------------------------------------------


@runtime_checkable
class ServingSystem(Protocol):
    """Anything that can serve a request trace and describe itself.

    Implemented by :class:`~repro.core.system.OuroborosSystem` (and its
    underlying :class:`~repro.sim.engine.BuiltOuroboros`) and by every
    :class:`~repro.baselines.common.BaselineSystem` subclass.
    """

    @property
    def name(self) -> str: ...

    def serve(self, trace: Trace, workload_name: str | None = None) -> RunResult: ...

    def summary(self) -> dict: ...


# ---------------------------------------------------------------------------
# System registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemEntry:
    """One registered serving system.

    ``factory`` builds a fresh :class:`ServingSystem` for a model; ``spec``
    carries the knobs (``spec.config`` for Ouroboros-family systems,
    ``spec.baseline`` plus ``spec.options`` for the analytical baselines).
    """

    key: str
    #: label used in result tables and the Fig. 13/14 comparison grids
    display_name: str
    factory: Callable[[ModelArch, "DeploymentSpec"], ServingSystem]
    #: whether the system honours per-request arrival times (open-loop serving)
    supports_arrival: bool = False
    #: part of the paper's main Fig. 13/14/16/19 baseline comparison
    in_comparison_grid: bool = False
    #: implementing class (for introspection / registry-completeness tests)
    system_cls: type | None = None


SYSTEM_REGISTRY: dict[str, SystemEntry] = {}


def register_system(entry: SystemEntry) -> SystemEntry:
    """Register a serving system under its key (and display name)."""
    if entry.key != entry.key.lower():
        raise ConfigurationError(f"system key {entry.key!r} must be lowercase")
    SYSTEM_REGISTRY[entry.key] = entry
    return entry


def get_system(name: str) -> SystemEntry:
    """Look up a registered system by key or display name (case-insensitive)."""
    key = name.lower()
    if key in SYSTEM_REGISTRY:
        return SYSTEM_REGISTRY[key]
    for entry in SYSTEM_REGISTRY.values():
        if entry.display_name.lower() == key:
            return entry
    raise ConfigurationError(
        f"unknown system '{name}'; known systems: {sorted(SYSTEM_REGISTRY)}"
    )


def comparison_grid_keys() -> tuple[str, ...]:
    """Registry keys of the paper's baseline comparison, in plotting order."""
    return tuple(
        entry.key for entry in SYSTEM_REGISTRY.values() if entry.in_comparison_grid
    )


register_system(SystemEntry(
    key="ouroboros",
    display_name="Ours",
    factory=lambda arch, spec: OuroborosSystem(
        arch, spec.config, auto_scale_wafers=spec.auto_scale_wafers
    ),
    supports_arrival=True,
    system_cls=OuroborosSystem,
))
register_system(SystemEntry(
    key="dgx-a100",
    display_name="DGX A100",
    factory=lambda arch, spec: DGXA100System(
        arch, num_gpus=int(spec.options.get("num_gpus", 8)), config=spec.baseline
    ),
    in_comparison_grid=True,
    system_cls=DGXA100System,
))
register_system(SystemEntry(
    key="tpu-v4",
    display_name="TPUv4",
    factory=lambda arch, spec: TPUv4System(
        arch, num_devices=int(spec.options.get("num_devices", 8)), config=spec.baseline
    ),
    in_comparison_grid=True,
    system_cls=TPUv4System,
))
register_system(SystemEntry(
    key="attacc",
    display_name="AttAcc",
    factory=lambda arch, spec: AttAccSystem(arch, config=spec.baseline),
    in_comparison_grid=True,
    system_cls=AttAccSystem,
))
register_system(SystemEntry(
    key="cerebras-wse2",
    display_name="Cerebras",
    factory=lambda arch, spec: CerebrasWSE2System(
        arch,
        config=spec.baseline,
        num_wafers=spec.options.get("num_wafers"),
    ),
    in_comparison_grid=True,
    system_cls=CerebrasWSE2System,
))
register_system(SystemEntry(
    key="cim-vlsi22",
    display_name="VLSI'22",
    factory=lambda arch, spec: CIMCoreSystem(arch, VLSI22, config=spec.baseline),
    system_cls=CIMCoreSystem,
))
register_system(SystemEntry(
    key="cim-isscc22",
    display_name="ISSCC'22",
    factory=lambda arch, spec: CIMCoreSystem(arch, ISSCC22, config=spec.baseline),
    system_cls=CIMCoreSystem,
))


# ---------------------------------------------------------------------------
# Model resolution
# ---------------------------------------------------------------------------

_GENERIC_MODEL = re.compile(r"^generic-([0-9]+(?:\.[0-9]+)?)b$")


def resolve_model(model: ModelArch | str) -> ModelArch:
    """Resolve a model name (registry key or ``generic-<N>b``) to its arch."""
    if isinstance(model, ModelArch):
        return model
    key = model.lower()
    if key in MODEL_REGISTRY:
        return MODEL_REGISTRY[key]()
    match = _GENERIC_MODEL.match(key)
    if match:
        return generic_llm(float(match.group(1)))
    raise ConfigurationError(
        f"unknown model '{model}'; known models: {sorted(MODEL_REGISTRY)} "
        "(or 'generic-<billions>b', e.g. 'generic-19.5b')"
    )


def resolve_model_name(model: ModelArch | str) -> str:
    """Canonical spec string for a model (inverse of :func:`resolve_model`)."""
    if isinstance(model, str):
        resolve_model(model)  # validate
        return model.lower()
    name = model.name.lower()
    resolve_model(name)  # raises if the arch is not registry-addressable
    return name


# ---------------------------------------------------------------------------
# Dataclass <-> dict serialization helpers
# ---------------------------------------------------------------------------


def _to_jsonable(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {key: _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    return value


def _from_jsonable(tp, data):
    origin = typing.get_origin(tp)
    if origin is typing.Union or origin is types.UnionType:
        if data is None:
            return None
        for arg in typing.get_args(tp):
            if arg is not type(None):
                return _from_jsonable(arg, data)
    if origin in (tuple, list) and isinstance(data, (list, tuple)):
        args = typing.get_args(tp)
        # Homogeneous containers only: tuple[X, ...] or list[X].
        item_tp = args[0] if args else None
        items = [
            _from_jsonable(item_tp, item) if item_tp is not None else item
            for item in data
        ]
        return tuple(items) if origin is tuple else items
    if isinstance(tp, type) and issubclass(tp, enum.Enum):
        return tp(data)
    if dataclasses.is_dataclass(tp) and isinstance(data, dict):
        hints = typing.get_type_hints(tp)
        kwargs = {
            f.name: _from_jsonable(hints[f.name], data[f.name])
            for f in dataclasses.fields(tp)
            if f.init and f.name in data
        }
        return tp(**kwargs)
    if tp is float and data is not None:
        return float(data)
    return data


# ---------------------------------------------------------------------------
# DeploymentSpec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeploymentSpec:
    """A complete, serializable description of one serving run.

    The spec is the single source of defaults for the whole stack: the model,
    the system (a :data:`SYSTEM_REGISTRY` key), every system knob
    (:class:`OuroborosSystemConfig` for the Ouroboros family,
    :class:`BaselineConfig` plus ``options`` for the analytical baselines) and
    the workload (name, request count, seed, Poisson arrival rate).

    ``DeploymentSpec.from_dict(spec.to_dict()) == spec`` holds for every spec,
    which is what makes specs usable as sweep-cache keys and as on-disk run
    descriptions.
    """

    model: str
    system: str = "ouroboros"
    #: knobs of the Ouroboros family (ignored by the analytical baselines)
    config: OuroborosSystemConfig = field(default_factory=default_system_config)
    #: knobs of the analytical baselines (ignored by Ouroboros)
    baseline: BaselineConfig = field(default_factory=BaselineConfig)
    #: per-system structural options (e.g. ``{"num_gpus": 4}`` for dgx-a100)
    options: dict = field(default_factory=dict)
    #: workload name: one of the paper's settings, ``lp<P>_ld<D>``, or
    #: ``wikitext2_ldm<float>`` (decode-heavy WikiText variant)
    workload: str = "wikitext2"
    #: label recorded in ``RunResult.workload`` (defaults to ``workload``)
    workload_label: str | None = None
    num_requests: int = 200
    seed: int = 0
    #: mean Poisson arrival rate in requests/s (0 = closed batch)
    arrival_rate_per_s: float = 0.0
    #: multi-tenant serving: per-tenant workloads and arrival processes.  When
    #: non-empty, the trace is the arrival-ordered interleave of the tenants'
    #: streams (seeded by ``seed``); ``workload`` and ``num_requests`` then
    #: describe nothing and are ignored by :func:`trace_for` — leave them at
    #: their defaults, since they still participate in spec equality and the
    #: sweep-cache key.  ``arrival_rate_per_s`` must stay 0: the rates live on
    #: the tenants (enforced below).
    tenants: tuple[TenantSpec, ...] = ()
    #: per-request SLO the run's goodput is evaluated against (optional)
    slo: SLOTarget | None = None
    #: deterministic runtime fault plan injected while serving (Ouroboros
    #: only; the analytical baselines have no runtime to break)
    faults: FaultPlan | None = None
    #: grow ``config.num_wafers`` to fit the model's weights (Ouroboros only)
    auto_scale_wafers: bool = True

    def __post_init__(self) -> None:
        resolve_model(self.model)
        get_system(self.system)
        get_distribution(self.workload)
        if self.num_requests <= 0:
            raise ConfigurationError("num_requests must be positive")
        if self.arrival_rate_per_s < 0:
            raise ConfigurationError("arrival_rate_per_s cannot be negative")
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"tenant names must be unique, got {names}")
        if self.tenants and self.arrival_rate_per_s > 0:
            raise ConfigurationError(
                "a multi-tenant spec carries its arrival rates on the tenants; "
                "leave arrival_rate_per_s at 0"
            )

    # ------------------------------------------------------------- validation

    def validate(self) -> "DeploymentSpec":
        """Cross-field validation beyond what ``__post_init__`` can check.

        Raises a typed :class:`ConfigurationError` for open-loop arrival rates
        on systems that ignore arrival times (the analytical baselines), so
        callers get one error path instead of ad-hoc CLI rejections.
        """
        entry = get_system(self.system)
        open_loop = self.arrival_rate_per_s > 0 or any(
            tenant.arrival_rate_per_s > 0 for tenant in self.tenants
        )
        if open_loop and not entry.supports_arrival:
            raise ConfigurationError(
                f"{entry.display_name} is an analytic closed-batch comparison "
                "model and ignores request arrival times; an open-loop "
                "'speedup' would be a load artifact. Drop the arrival rate or "
                "pick a system that supports open-loop serving."
            )
        if self.faults is not None and len(self.faults) and not (
            entry.system_cls is not None
            and issubclass(entry.system_cls, OuroborosSystem)
        ):
            raise ConfigurationError(
                f"{entry.display_name} is an analytical comparison model with "
                "no simulated runtime to inject faults into; fault plans "
                "require an Ouroboros-family system."
            )
        quota_total = sum(
            tenant.kv_quota for tenant in self.tenants if tenant.kv_quota is not None
        )
        if quota_total > 1.0:
            raise ConfigurationError(
                "tenant kv_quota fractions reserve more than the whole KV "
                f"cache (sum = {quota_total:g} > 1.0); shrink the quotas"
            )
        return self

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """JSON-ready dict; ``from_dict`` round-trips it to an equal spec."""
        return _to_jsonable(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DeploymentSpec":
        return _from_jsonable(cls, dict(data))

    def canonical_json(self) -> str:
        """Stable JSON string of the spec (sweep-cache key material)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    # ---------------------------------------------------------- conveniences

    def with_system(self, system: str) -> "DeploymentSpec":
        return replace(self, system=system)

    def label(self) -> str:
        if self.workload_label:
            return self.workload_label
        if self.tenants:
            return "+".join(tenant.name for tenant in self.tenants)
        return self.workload


# ---------------------------------------------------------------------------
# Fluent builder
# ---------------------------------------------------------------------------

_PIPELINE_ALIASES = {
    "token": PipelineMode.TOKEN_GRAINED,
    "tgp": PipelineMode.TOKEN_GRAINED,
    "sequence": PipelineMode.SEQUENCE_GRAINED,
    "blocked": PipelineMode.BLOCKED,
    "auto": PipelineMode.AUTO,
}


class DeploymentBuilder:
    """Fluent construction of a :class:`DeploymentSpec`.

    Every method returns the builder, so paper configurations read in one
    line::

        deployment("llama-13b").system("ouroboros").wafers(2) \\
            .kv(policy="dynamic", threshold=0.1).pipeline("token") \\
            .arrival_rate(8.0).build()
    """

    def __init__(self, model: ModelArch | str) -> None:
        self._spec = DeploymentSpec(model=resolve_model_name(model))

    # ------------------------------------------------------------ system side

    def system(self, name: str) -> "DeploymentBuilder":
        self._spec = self._spec.with_system(get_system(name).key)
        return self

    def config(self, config: OuroborosSystemConfig) -> "DeploymentBuilder":
        self._spec = replace(self._spec, config=config)
        return self

    def _config(self, **overrides) -> "DeploymentBuilder":
        self._spec = replace(self._spec, config=replace(self._spec.config, **overrides))
        return self

    def wafers(self, count: int, auto_scale: bool = True) -> "DeploymentBuilder":
        self._spec = replace(self._spec, auto_scale_wafers=auto_scale)
        return self._config(num_wafers=count)

    def kv(self, policy: str | KVPolicy | None = None,
           threshold: float | None = None) -> "DeploymentBuilder":
        overrides = {}
        if policy is not None:
            overrides["kv_policy"] = (
                policy if isinstance(policy, KVPolicy) else KVPolicy(policy)
            )
        if threshold is not None:
            overrides["kv_threshold"] = threshold
        return self._config(**overrides)

    def pipeline(self, mode: str | PipelineMode) -> "DeploymentBuilder":
        if isinstance(mode, str):
            if mode.lower() not in _PIPELINE_ALIASES:
                raise ConfigurationError(
                    f"unknown pipeline mode '{mode}'; "
                    f"known: {sorted(_PIPELINE_ALIASES)}"
                )
            mode = _PIPELINE_ALIASES[mode.lower()]
        return self._config(pipeline_mode=mode)

    def mapping(self, strategy: str | MappingStrategy) -> "DeploymentBuilder":
        if isinstance(strategy, str):
            strategy = MappingStrategy(strategy)
        return self._config(mapping_strategy=strategy)

    def anneal(self, iterations: int) -> "DeploymentBuilder":
        return self._config(anneal_iterations=iterations)

    def chunk(self, tokens: int | None = None, *,
              context_quantum: int | None = None) -> "DeploymentBuilder":
        """Set the epoch chunk size and/or the context-quantisation step."""
        overrides: dict = {}
        if tokens is not None:
            overrides["chunk_tokens"] = tokens
        if context_quantum is not None:
            overrides["context_quantum"] = context_quantum
        pipeline = replace(self._spec.config.pipeline, **overrides)
        return self._config(pipeline=pipeline)

    def epoch_limit(self, max_epochs: int) -> "DeploymentBuilder":
        """Bound the engine's epoch loop (the runaway-simulation guard)."""
        pipeline = replace(self._spec.config.pipeline, max_epochs=max_epochs)
        return self._config(pipeline=pipeline)

    def concurrency(self, max_sequences: int | None) -> "DeploymentBuilder":
        """Cap concurrently resident sequences (continuous-batching limit)."""
        pipeline = replace(
            self._spec.config.pipeline, max_active_sequences=max_sequences
        )
        return self._config(pipeline=pipeline)

    def scheduler(
        self, policy: str, aging_rate: float | None = None
    ) -> "DeploymentBuilder":
        """Select the admission-order policy (``fcfs`` / ``wfq`` / ``priority``).

        ``aging_rate`` parameterises the ``priority`` policy (priority units a
        waiting request gains per second; bounds starvation)::

            deployment("llama-13b").scheduler("wfq") \\
                .tenant("chat", "wikitext2", 200, 8.0, weight=2.0) \\
                .tenant("batch", "lp2048_ld2048", 50, 1.0).build()
        """
        overrides: dict = {"scheduling_policy": validate_policy_name(policy)}
        if aging_rate is not None:
            overrides["priority_aging_rate"] = aging_rate
        pipeline = replace(self._spec.config.pipeline, **overrides)
        return self._config(pipeline=pipeline)

    def defects(self, enabled: bool = True, seed: int | None = 0) -> "DeploymentBuilder":
        return self._config(model_defects=enabled, defect_seed=seed)

    def cim(self, enabled: bool = True) -> "DeploymentBuilder":
        return self._config(cim_enabled=enabled)

    def lut(self, enabled: bool = True) -> "DeploymentBuilder":
        return self._config(lut_optimized=enabled)

    def baseline(self, **overrides) -> "DeploymentBuilder":
        self._spec = replace(
            self._spec, baseline=replace(self._spec.baseline, **overrides)
        )
        return self

    def options(self, **options) -> "DeploymentBuilder":
        merged = dict(self._spec.options)
        merged.update(options)
        self._spec = replace(self._spec, options=merged)
        return self

    # ---------------------------------------------------------- workload side

    def workload(self, name: str, num_requests: int | None = None,
                 seed: int | None = None, label: str | None = None) -> "DeploymentBuilder":
        self._spec = replace(
            self._spec,
            workload=name,
            workload_label=label if label is not None else self._spec.workload_label,
            num_requests=num_requests if num_requests is not None else self._spec.num_requests,
            seed=seed if seed is not None else self._spec.seed,
        )
        return self

    def requests(self, count: int) -> "DeploymentBuilder":
        self._spec = replace(self._spec, num_requests=count)
        return self

    def seed(self, seed: int) -> "DeploymentBuilder":
        self._spec = replace(self._spec, seed=seed)
        return self

    def arrival_rate(self, rate_per_s: float) -> "DeploymentBuilder":
        self._spec = replace(self._spec, arrival_rate_per_s=rate_per_s)
        return self

    def tenants(self, *tenants: TenantSpec) -> "DeploymentBuilder":
        """Replace the spec's tenant set (multi-tenant serving)."""
        self._spec = replace(self._spec, tenants=tuple(tenants))
        return self

    def tenant(
        self,
        name: str,
        workload: str,
        num_requests: int = 100,
        arrival_rate_per_s: float = 0.0,
        slo: SLOTarget | None = None,
        weight: float = 1.0,
        priority: int = 0,
        kv_quota: float | None = None,
    ) -> "DeploymentBuilder":
        """Append one tenant, so multi-tenant specs read as a fluent chain::

            deployment("llama-13b").tenant("chat", "wikitext2", 200, 8.0) \\
                .tenant("batch", "lp2048_ld2048", 50).slo(ttft_s=0.5).build()

        A tenant-level ``slo`` overrides the deployment-wide :meth:`slo`
        target for that tenant's requests; ``weight`` and ``priority`` feed
        the ``wfq`` / ``priority`` scheduling policies (see
        :meth:`scheduler`) and are inert under the default ``fcfs``.
        ``kv_quota`` caps the tenant to that fraction of the KV cache's
        blocks (:meth:`build` rejects quota sets reserving more than the
        whole cache); ``None`` leaves the tenant uncapped.
        """
        tenant = TenantSpec(
            name=name,
            workload=workload,
            num_requests=num_requests,
            arrival_rate_per_s=arrival_rate_per_s,
            slo=slo,
            weight=weight,
            priority=priority,
            kv_quota=kv_quota,
        )
        self._spec = replace(self._spec, tenants=self._spec.tenants + (tenant,))
        return self

    def faults(self, plan: FaultPlan | str | None) -> "DeploymentBuilder":
        """Attach a deterministic runtime fault plan (Ouroboros only).

        Accepts a ready :class:`~repro.sim.faults.FaultPlan` or the compact
        CLI syntax ``kind@time[:target[:duration]],...``::

            deployment("llama-13b").faults("kv_core@0.5,stall@1.0:0:0.25").build()
        """
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        self._spec = replace(self._spec, faults=plan)
        return self

    def shedding(
        self,
        max_queue_depth: int | None = None,
        deadline: bool = False,
        headroom_s: float = 0.0,
        retries: int = 0,
        backoff_s: float = 0.0,
    ) -> "DeploymentBuilder":
        """Configure graceful overload shedding of the admission queue.

        ``max_queue_depth`` bounds the arrived waiting queue (overflow is
        shed, with ``retries`` × exponential ``backoff_s`` before the drop
        becomes permanent); ``deadline`` drops requests whose remaining TTFT
        budget is below ``headroom_s`` — they could no longer meet their SLO
        even if admitted immediately.  All off by default (the historical
        unbounded queue, bit for bit).
        """
        pipeline = replace(
            self._spec.config.pipeline,
            max_queue_depth=max_queue_depth,
            shed_deadline=deadline,
            shed_headroom_s=headroom_s,
            shed_retries=retries,
            shed_backoff_s=backoff_s,
        )
        return self._config(pipeline=pipeline)

    def preemption(self, enabled: bool = True) -> "DeploymentBuilder":
        """Let the scheduling policy preempt active lower-ranked sequences.

        With preemption on, a high-ranked arrival that cannot be admitted —
        the batch cap or KV cache is full — may evict a strictly lower-ranked
        resident sequence (``wfq``: lower weight; ``priority``: lower static
        priority; ``fcfs`` never preempts), which re-queues with its prefix
        KV dropped and recomputes it on re-admission.  Off by default (the
        historical run-to-completion behaviour, bit for bit).
        """
        pipeline = replace(self._spec.config.pipeline, preemptive=enabled)
        return self._config(pipeline=pipeline)

    def slo(
        self,
        ttft_s: float | None = None,
        latency_s: float | None = None,
        goodput_target: float = 0.99,
    ) -> "DeploymentBuilder":
        """Attach the TTFT / end-to-end SLO the run's goodput is judged by."""
        self._spec = replace(
            self._spec,
            slo=SLOTarget(
                ttft_s=ttft_s, latency_s=latency_s, goodput_target=goodput_target
            ),
        )
        return self

    # ----------------------------------------------------------------- finish

    def build(self) -> DeploymentSpec:
        return self._spec.validate()

    spec = build


def deployment(model: ModelArch | str) -> DeploymentBuilder:
    """Start a fluent :class:`DeploymentBuilder` for ``model``."""
    return DeploymentBuilder(model)


# ---------------------------------------------------------------------------
# Named presets (the paper's figure configurations)
# ---------------------------------------------------------------------------


def _build_presets() -> dict[str, DeploymentSpec]:
    from .baselines.multi_die import ablation_config

    presets: dict[str, DeploymentSpec] = {
        # Headline / Fig. 13/14 anchor cell: paper-sized trace, default system.
        "headline": deployment("llama-13b").workload("wikitext2", num_requests=1000).build(),
        # Fig. 13/14 reference baseline of the comparison grids.
        "fig13-reference": deployment("llama-13b").system("dgx-a100")
            .workload("wikitext2", num_requests=1000).build(),
        # Fig. 15 ablation start and end points.
        "fig15-baseline": deployment("llama-13b").config(ablation_config("Baseline"))
            .workload("wikitext2", num_requests=1000).build(),
        "fig15-full": deployment("llama-13b").config(ablation_config("+KV Cache"))
            .workload("wikitext2", num_requests=1000).build(),
        # Fig. 16 encoder cell: blocked TGP on BERT's 384-token classification.
        "fig16-bert": deployment("bert-large").pipeline("blocked")
            .workload("lp384_ld1", num_requests=1000, label="encoder").build(),
        # Fig. 17 KV-threshold sweep anchor (decode-heavy WikiText variant).
        "fig17-kv": deployment("llama-13b").kv(policy="dynamic", threshold=0.1)
            .workload("wikitext2_ldm6.5", num_requests=1000).build(),
        # Fig. 19/20 multi-wafer cell: LLaMA-65B split across two wafers.
        "fig19-multiwafer": deployment("llama-65b").wafers(2)
            .workload("wikitext2", num_requests=1000).build(),
        # Fig. 21 LUT-optimised Ouroboros core.
        "fig21-lut": deployment("llama-13b").lut()
            .workload("wikitext2", num_requests=1000).build(),
        # Fig. 22 open-loop serving at a moderate offered load.
        "fig22-open-loop": deployment("llama-13b").arrival_rate(8.0)
            .workload("wikitext2", num_requests=1000).build(),
    }
    return presets


PRESETS: dict[str, DeploymentSpec] = _build_presets()


def preset(name: str) -> DeploymentSpec:
    """Look up a named paper-figure deployment preset."""
    if name not in PRESETS:
        raise ConfigurationError(
            f"unknown preset '{name}'; known presets: {sorted(PRESETS)}"
        )
    return PRESETS[name]


# ---------------------------------------------------------------------------
# Building and serving
# ---------------------------------------------------------------------------

#: built systems keyed by the system-relevant part of the spec; one build per
#: distinct (model, system, config) replaces the historical ad-hoc
#: build-once-per-model loops in the sweep runner and experiment drivers.
#: Bounded LRU: built Ouroboros systems hold wafers/mappings/defect maps, so
#: long multi-config sweeps must not accumulate them without limit.
_SYSTEM_CACHE: dict[str, ServingSystem] = {}
_SYSTEM_CACHE_MAX = 16
#: guards the memo dict: daemon fleets and threaded sweeps build concurrently,
#: and the pop/re-insert LRU dance is not atomic on its own
_SYSTEM_CACHE_LOCK = threading.Lock()


def _system_cache_key(spec: DeploymentSpec) -> str:
    payload = spec.to_dict()
    for workload_field in ("workload", "workload_label", "num_requests", "seed",
                           "arrival_rate_per_s", "faults"):
        payload.pop(workload_field, None)
    return json.dumps(payload, sort_keys=True)


def clear_system_cache() -> None:
    """Drop all memoised built systems (tests, memory-sensitive callers)."""
    with _SYSTEM_CACHE_LOCK:
        _SYSTEM_CACHE.clear()


def build_deployment(spec: DeploymentSpec, *, cache: bool = True) -> ServingSystem:
    """Construct (or fetch the memoised) :class:`ServingSystem` for a spec.

    Thread-safe: the memo is lock-guarded so concurrent daemons/sweep workers
    can build at once.  Two threads missing on the same key may both run the
    factory (builds stay parallel instead of serialising behind the lock);
    one of the two builds wins the memo slot, and both are valid systems —
    every serve creates a fresh pipeline, so sharing or not sharing the
    built system never changes results.
    """
    entry = get_system(spec.system)
    arch = resolve_model(spec.model)
    if not cache:
        return entry.factory(arch, spec)
    key = _system_cache_key(spec)
    with _SYSTEM_CACHE_LOCK:
        system = _SYSTEM_CACHE.pop(key, None)
        if system is not None:
            _SYSTEM_CACHE[key] = system  # re-insert = most recently used
            return system
    system = entry.factory(arch, spec)
    with _SYSTEM_CACHE_LOCK:
        existing = _SYSTEM_CACHE.pop(key, None)
        if existing is not None:
            system = existing  # a concurrent builder won; keep one canonical
        _SYSTEM_CACHE[key] = system
        while len(_SYSTEM_CACHE) > _SYSTEM_CACHE_MAX:
            _SYSTEM_CACHE.pop(next(iter(_SYSTEM_CACHE)))
    return system


def trace_for(spec: DeploymentSpec) -> Trace:
    """Generate the (deterministic) request trace a spec describes."""
    if spec.tenants:
        return generate_multi_tenant_trace(spec.tenants, seed=spec.seed, slo=spec.slo)
    trace = generate_trace(
        spec.workload,
        num_requests=spec.num_requests,
        seed=spec.seed,
        arrival_rate_per_s=spec.arrival_rate_per_s,
    )
    trace.slo = spec.slo
    return trace


def stream_for(spec: DeploymentSpec) -> StreamingTrace:
    """Lazy equivalent of :func:`trace_for` (identical requests, on demand).

    The stream emits exactly the requests :func:`trace_for` would materialise,
    in the same order with the same ids — ``stream_for(spec).materialize()``
    is bitwise equal to ``trace_for(spec)`` — while holding one pending
    request per tenant, which is what lets ``serve`` handle million-request
    specs in O(active sequences) memory.
    """
    if spec.tenants:
        return multi_tenant_stream(spec.tenants, seed=spec.seed, slo=spec.slo)
    stream = workload_stream(
        spec.workload,
        num_requests=spec.num_requests,
        seed=spec.seed,
        arrival_rate_per_s=spec.arrival_rate_per_s,
    )
    stream.slo = spec.slo
    return stream


#: request count at which :func:`serve` switches to the streaming trace path
#: automatically.  Purely an execution knob: the accumulator's exact/P²
#: switchover is by *sample count*, so results are identical either way —
#: streaming just bounds memory.
STREAMING_AUTO_THRESHOLD = 100_000


def total_spec_requests(spec: DeploymentSpec) -> int:
    """Total requests a spec's trace will contain (all tenants)."""
    if spec.tenants:
        return sum(tenant.num_requests for tenant in spec.tenants)
    return spec.num_requests


def serve(
    spec: DeploymentSpec,
    *,
    suspend_at_epoch: int | None = None,
    resume_from: EngineCheckpoint | None = None,
    streaming: bool | None = None,
) -> RunResult | EngineCheckpoint:
    """Serve the deployment described by ``spec`` and return its result.

    The one entry point behind the CLI, the experiment drivers, the sweep
    runner and the benchmark harness.  Building is memoised per (model,
    system, config); every serve generates a fresh trace and pipeline, so
    results are deterministic and independent of call order.

    ``spec.faults`` injects runtime faults during the run (Ouroboros only).
    ``suspend_at_epoch`` returns an :class:`EngineCheckpoint` once that epoch
    is reached instead of a result; ``resume_from`` continues a suspended run
    — the combined suspended+resumed run is bitwise identical to an
    uninterrupted ``serve(spec)``.

    ``streaming`` selects the lazy trace path (arrivals pulled from a
    heap-merged per-tenant stream as simulated time advances; O(active)
    resident memory instead of O(trace)).  ``None`` — the default — streams
    automatically once the spec's total request count reaches
    :data:`STREAMING_AUTO_THRESHOLD` on an Ouroboros-family system.  The
    result is identical either way; streaming only changes how the trace is
    held in memory.
    """
    spec.validate()
    system = build_deployment(spec)
    is_ouroboros = isinstance(system, OuroborosSystem)
    if streaming is None:
        streaming = (
            is_ouroboros and total_spec_requests(spec) >= STREAMING_AUTO_THRESHOLD
        )
    elif streaming and not is_ouroboros:
        raise ConfigurationError(
            f"{get_system(spec.system).display_name} is an analytical model "
            "that consumes the whole trace at once; streaming traces require "
            "an Ouroboros-family system."
        )
    kwargs: dict = {}
    if spec.faults is not None and len(spec.faults):
        kwargs["fault_plan"] = spec.faults
    if suspend_at_epoch is not None:
        kwargs["suspend_at_epoch"] = suspend_at_epoch
    if resume_from is not None:
        kwargs["resume_from"] = resume_from
    if kwargs and not is_ouroboros:
        raise ConfigurationError(
            f"{get_system(spec.system).display_name} does not support fault "
            "injection or checkpoint/resume; use an Ouroboros-family system."
        )
    trace = stream_for(spec) if streaming else trace_for(spec)
    result = system.serve(trace, workload_name=spec.label(), **kwargs)
    if isinstance(result, EngineCheckpoint):
        return result
    result.system = get_system(spec.system).display_name
    return result


__all__ = [
    "ServingSystem",
    "SystemEntry",
    "SYSTEM_REGISTRY",
    "register_system",
    "get_system",
    "comparison_grid_keys",
    "DeploymentSpec",
    "DeploymentBuilder",
    "deployment",
    "TenantSpec",
    "SLOTarget",
    "FaultPlan",
    "make_fault_plan",
    "EngineCheckpoint",
    "POLICY_NAMES",
    "PRESETS",
    "preset",
    "resolve_model",
    "resolve_model_name",
    "build_deployment",
    "trace_for",
    "stream_for",
    "total_spec_requests",
    "STREAMING_AUTO_THRESHOLD",
    "serve",
    "clear_system_cache",
]
