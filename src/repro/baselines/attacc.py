"""DGX + AttAcc baseline: GPU node with PIM-offloaded attention.

AttAcc (Park et al., ASPLOS'24) executes the attention score/context GEMVs and
the KV-cache reads inside HBM-PIM stacks, removing the KV traffic from the
GPU's HBM channels during decode.  Weight reads (the other half of the decode
memory traffic) still stream from HBM, so decode remains weight-read bound but
with a substantially larger usable batch (320 GB of PIM-augmented HBM) and
cheaper per-byte KV energy.
"""

from __future__ import annotations

from dataclasses import replace

from ..models.architectures import ModelArch
from ..results import EnergyBreakdown
from ..units import GB, PJ, TERA
from ..workload.generator import Trace
from .common import BaselineConfig, BaselineHardware, BaselineSystem


def attacc_hardware() -> BaselineHardware:
    """DGX + AttAcc configuration with 320 GB of PIM-capable HBM."""
    return BaselineHardware(
        name="AttAcc",
        num_devices=8,
        peak_macs_per_s=8 * 312 * TERA / 2.0,
        prefill_efficiency=0.60,
        decode_efficiency=0.35,
        memory_capacity_bytes=320 * GB,
        memory_bandwidth_bytes_per_s=8 * 1.555e12,
        memory_bandwidth_efficiency=0.70,
        memory_energy_per_byte_j=3.9 * 8 * PJ,
        memory_is_on_chip=False,
        mac_energy_j=0.8 * PJ,
        on_chip_energy_per_byte_j=0.45 * 8 * PJ,
        interconnect_bandwidth_bytes_per_s=2.4e12,
        interconnect_energy_per_byte_j=10.0 * 8 * PJ,
        tensor_parallel=8,
        weight_bytes_per_param=2,
        kv_bytes_per_element=2,
        max_batch_size=256,
        attention_in_memory=True,
    )


#: in-memory attention processes KV data at roughly 1/4 the energy of a
#: regular HBM read (no off-chip transfer of operands, only commands/results)
PIM_KV_ENERGY_FACTOR = 0.25


class AttAccSystem(BaselineSystem):
    """DGX + AttAcc: decode attention executed in HBM-PIM."""

    def __init__(self, arch: ModelArch, config: BaselineConfig | None = None) -> None:
        super().__init__(arch, attacc_hardware(), config)

    def decode_time_and_energy(
        self, decode_tokens: float, context_length: float, batch_size: int
    ) -> tuple[float, EnergyBreakdown]:
        time, energy = super().decode_time_and_energy(
            decode_tokens, context_length, batch_size
        )
        # The parent charged the KV traffic at full HBM energy even though the
        # time model already skipped it; re-price the KV share at PIM energy.
        steps = decode_tokens / max(1, batch_size)
        kv_bytes = steps * batch_size * context_length * self.kv_bytes_per_token()
        full_cost = kv_bytes * self.hardware.memory_energy_per_byte_j
        pim_cost = full_cost * PIM_KV_ENERGY_FACTOR
        energy = replace(energy, off_chip_memory_j=energy.off_chip_memory_j - full_cost + pim_cost)
        return time, energy
