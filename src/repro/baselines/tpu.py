"""TPUv4 baseline (8 devices with 32 GB HBM each, ICI interconnect)."""

from __future__ import annotations

from ..models.architectures import ModelArch
from ..units import GB, PJ, TERA
from .common import BaselineConfig, BaselineHardware, BaselineSystem


def tpu_v4_hardware(num_devices: int = 8) -> BaselineHardware:
    """Published characteristics of a TPUv4 pod slice.

    * 275 TFLOPS BF16 per chip, high GEMM efficiency thanks to the systolic
      MXUs (~70% prefill) but poor GEMV efficiency (~25% decode).
    * 32 GB HBM2 at 1.2 TB/s per chip.
    * 3D-torus ICI with ~300 GB/s per link; modelled as a 1.2 TB/s aggregate
      all-reduce fabric for TP=8.
    """
    return BaselineHardware(
        name="TPUv4",
        num_devices=num_devices,
        peak_macs_per_s=num_devices * 275 * TERA / 2.0,
        prefill_efficiency=0.70,
        decode_efficiency=0.25,
        memory_capacity_bytes=num_devices * 32 * GB,
        memory_bandwidth_bytes_per_s=num_devices * 1.2e12,
        memory_bandwidth_efficiency=0.70,
        memory_energy_per_byte_j=3.9 * 8 * PJ,
        memory_is_on_chip=False,
        mac_energy_j=0.6 * PJ,
        on_chip_energy_per_byte_j=0.4 * 8 * PJ,
        interconnect_bandwidth_bytes_per_s=1.2e12,
        interconnect_energy_per_byte_j=8.0 * 8 * PJ,
        tensor_parallel=num_devices,
        weight_bytes_per_param=2,
        kv_bytes_per_element=2,
        max_batch_size=256,
    )


class TPUv4System(BaselineSystem):
    """8x TPUv4 modelled after the ONNXim/NPUsim configuration of the paper."""

    def __init__(self, arch: ModelArch, num_devices: int = 8, config: BaselineConfig | None = None) -> None:
        super().__init__(arch, tpu_v4_hardware(num_devices), config)
