"""The ablation study's starting-point system (Section 6.5).

The paper's ablation baseline keeps the same silicon as Ouroboros but packages
the 63 dies separately, connects them with NVLink-class links, runs tensor
parallelism 8 x pipeline parallelism 8 with a *sequence-grained* pipeline,
reads weights out of SRAM instead of computing in memory, ignores placement
locality, and manages the KV cache statically.  Each "+X" ablation point then
re-enables one Ouroboros feature on top of this configuration.

This module provides convenience constructors for those configurations so the
Fig. 15 experiment (and users exploring the design space) can build them in
one call.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.system import OuroborosSystem
from ..models.architectures import ModelArch
from ..pipeline.engine import PipelineConfig
from ..sim.engine import (
    KVPolicy,
    MappingStrategy,
    OuroborosSystemConfig,
    PipelineMode,
)

#: the order in which the ablation re-enables Ouroboros features
ABLATION_STEPS = ("Baseline", "+Wafer", "+CIM", "+TGP", "+Mapping", "+KV Cache")


def ablation_config(
    step: str,
    pipeline: PipelineConfig | None = None,
    anneal_iterations: int = 50,
) -> OuroborosSystemConfig:
    """System configuration for one cumulative ablation step.

    ``step`` must be one of :data:`ABLATION_STEPS`; each step enables every
    feature of the previous steps plus one more, mirroring Fig. 15.
    """
    if step not in ABLATION_STEPS:
        raise ValueError(f"unknown ablation step {step!r}; expected one of {ABLATION_STEPS}")
    index = ABLATION_STEPS.index(step)
    config = OuroborosSystemConfig(
        wafer_integration=index >= 1,
        cim_enabled=index >= 2,
        pipeline_mode=PipelineMode.TOKEN_GRAINED if index >= 3 else PipelineMode.SEQUENCE_GRAINED,
        mapping_strategy=MappingStrategy.OPTIMIZED if index >= 4 else MappingStrategy.NAIVE,
        anneal_iterations=anneal_iterations if index >= 4 else 0,
        kv_policy=KVPolicy.DYNAMIC if index >= 5 else KVPolicy.STATIC,
        kv_threshold=0.1 if index >= 5 else 0.0,
    )
    if pipeline is not None:
        config = replace(config, pipeline=pipeline)
    return config


def multi_die_baseline(
    arch: ModelArch, pipeline: PipelineConfig | None = None
) -> OuroborosSystem:
    """The fully stripped-down baseline system (first bar of Fig. 15)."""
    return OuroborosSystem(arch, ablation_config("Baseline", pipeline))


def ablation_system(
    arch: ModelArch, step: str, pipeline: PipelineConfig | None = None
) -> OuroborosSystem:
    """Build the system corresponding to one ablation step."""
    return OuroborosSystem(arch, ablation_config(step, pipeline))
