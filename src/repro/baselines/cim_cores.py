"""Alternative CIM-core circuit designs (Table 2 / Fig. 21).

The paper positions its capacity-oriented CIM core against two circuit-level
designs that maximise TOPS/W and TOPS/mm^2 at the cost of on-chip capacity:

============  =========  ==========  ============  ===============
design        process    TOPS/W      TOPS/mm^2     wafer capacity
============  =========  ==========  ============  ===============
VLSI'22       12 nm      30.30       10.40         2.63 GB (7 nm)
ISSCC'22      5 nm       63.00       55.00         11.32 GB (7 nm)
This work     7 nm       10.98       2.03          54 GB
============  =========  ==========  ============  ===============

When one of the dense designs is dropped into the Ouroboros system, its wafer
no longer holds the model weights and KV cache, so the paper provisions HBM2
at 1.6 TB/s to make the comparison fair; inference then becomes bound by
off-chip weight streaming.  ``Ours+LUT`` applies the 10% compute-energy saving
of LUT-based crossbars to the Ouroboros core.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.architectures import ModelArch
from ..units import GB, PJ
from .common import BaselineConfig, BaselineHardware, BaselineSystem

#: usable silicon area of the 215mm x 215mm wafer (9x7 dies of 23mm x 30mm)
WAFER_SILICON_AREA_MM2 = 9 * 7 * 23.0 * 30.0
#: HBM2 bandwidth provisioned for capacity-limited designs (Section 6.9)
HBM2_BANDWIDTH_BYTES_PER_S = 1.6e12


@dataclass(frozen=True)
class CIMCoreDesign:
    """Circuit-level characteristics of one CIM macro design (7-nm scaled)."""

    name: str
    tops_per_w: float
    tops_per_mm2: float
    wafer_capacity_bytes: float
    lut_optimized: bool = False

    @property
    def mac_energy_j(self) -> float:
        """Energy per 8-bit MAC (2 ops) implied by the TOPS/W figure."""
        energy = 2.0 / (self.tops_per_w * 1e12)
        if self.lut_optimized:
            energy *= 0.9
        return energy

    @property
    def peak_macs_per_s(self) -> float:
        """Wafer-level peak MAC rate implied by the TOPS/mm^2 figure."""
        return self.tops_per_mm2 * 1e12 * WAFER_SILICON_AREA_MM2 / 2.0

    def fits_model(self, arch: ModelArch, kv_reserve_fraction: float = 0.2) -> bool:
        """Whether weights plus a KV reserve fit the design's wafer capacity."""
        return arch.total_weight_bytes <= self.wafer_capacity_bytes * (
            1.0 - kv_reserve_fraction
        )


VLSI22 = CIMCoreDesign(
    name="VLSI'22",
    tops_per_w=49.67,
    tops_per_mm2=26.0,
    wafer_capacity_bytes=2.63 * GB,
)
ISSCC22 = CIMCoreDesign(
    name="ISSCC'22",
    tops_per_w=44.41,
    tops_per_mm2=30.55,
    wafer_capacity_bytes=11.32 * GB,
)
OUROBOROS_CORE = CIMCoreDesign(
    name="This work",
    tops_per_w=10.98,
    tops_per_mm2=2.03,
    wafer_capacity_bytes=54 * GB,
)
OUROBOROS_LUT_CORE = CIMCoreDesign(
    name="This work + LUT",
    tops_per_w=10.98,
    tops_per_mm2=2.03,
    wafer_capacity_bytes=54 * GB,
    lut_optimized=True,
)

ALL_DESIGNS = (VLSI22, ISSCC22, OUROBOROS_CORE, OUROBOROS_LUT_CORE)


def cim_core_hardware(design: CIMCoreDesign, arch: ModelArch) -> BaselineHardware:
    """System-level hardware model for a wafer built from ``design`` macros."""
    fits = design.fits_model(arch)
    if fits:
        memory_capacity = design.wafer_capacity_bytes
        memory_bandwidth = 1.0e15  # on-wafer SRAM: effectively not the bottleneck
        memory_energy = 0.0  # weights consumed in-situ by the CIM macros
        memory_on_chip = True
    else:
        # Capacity-limited designs stream weights and KV from HBM2 (1.6 TB/s).
        memory_capacity = 320 * GB
        memory_bandwidth = HBM2_BANDWIDTH_BYTES_PER_S
        memory_energy = 3.9 * 8 * PJ
        memory_on_chip = False
    return BaselineHardware(
        name=design.name,
        num_devices=1,
        peak_macs_per_s=design.peak_macs_per_s,
        prefill_efficiency=0.5,
        decode_efficiency=0.3,
        memory_capacity_bytes=memory_capacity,
        memory_bandwidth_bytes_per_s=memory_bandwidth,
        memory_bandwidth_efficiency=1.0 if memory_on_chip else 0.70,
        memory_energy_per_byte_j=memory_energy,
        memory_is_on_chip=memory_on_chip,
        mac_energy_j=design.mac_energy_j,
        on_chip_energy_per_byte_j=0.2 * 8 * PJ,
        interconnect_bandwidth_bytes_per_s=1.0e14,
        interconnect_energy_per_byte_j=0.8 * 8 * PJ,
        tensor_parallel=1,
        weight_bytes_per_param=1,
        kv_bytes_per_element=1,
        max_batch_size=256,
    )


class CIMCoreSystem(BaselineSystem):
    """The Ouroboros system built from an alternative CIM macro design."""

    def __init__(
        self,
        arch: ModelArch,
        design: CIMCoreDesign,
        config: BaselineConfig | None = None,
    ) -> None:
        self.design = design
        super().__init__(arch, cim_core_hardware(design, arch), config)
