"""Analytical roofline models of the baseline inference systems.

The paper compares Ouroboros against four deployed systems (Section 6.1):

* a DGX A100 node running vLLM,
* a cluster of eight TPUv4 devices,
* the DGX + AttAcc processing-in-memory configuration, and
* a Cerebras WSE-2 wafer running WaferLLM.

None of that hardware is available here, so each baseline is modelled
analytically from published peak-compute, memory-bandwidth, capacity and
energy-per-byte figures.  The model captures the first-order behaviour that
drives the paper's comparison: the prefill phase is compute-bound, the decode
phase is bound by reading the weights plus the KV cache from (off-chip) memory
every step, batching amortises weight reads across concurrent sequences but is
capped by memory capacity, and tensor parallelism adds all-reduce traffic on
the inter-device interconnect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError
from ..models.architectures import ModelArch
from ..results import EnergyBreakdown, RunResult
from ..units import GB, PJ, TERA
from ..workload.generator import Trace


@dataclass(frozen=True)
class BaselineHardware:
    """Published characteristics of one baseline system (aggregated over devices)."""

    name: str
    num_devices: int
    #: aggregate peak 8/16-bit MAC throughput (MAC/s, i.e. ops/2)
    peak_macs_per_s: float
    #: achieved fraction of peak during compute-bound (prefill) phases
    prefill_efficiency: float
    #: achieved fraction of peak during memory-bound (decode) phases
    decode_efficiency: float
    #: aggregate main-memory (HBM/DRAM/SRAM) capacity in bytes
    memory_capacity_bytes: float
    #: aggregate main-memory bandwidth in bytes/s
    memory_bandwidth_bytes_per_s: float
    #: fraction of the peak bandwidth achieved on serving access patterns
    #: (scattered KV reads, weight streaming); ~0.7 for HBM-based systems
    memory_bandwidth_efficiency: float
    #: energy per byte of main-memory traffic
    memory_energy_per_byte_j: float
    #: whether main memory is on-chip SRAM (Cerebras) rather than HBM/DRAM
    memory_is_on_chip: bool
    #: energy per multiply-accumulate in the digital datapath
    mac_energy_j: float
    #: energy per byte staged through on-chip buffers/caches
    on_chip_energy_per_byte_j: float
    #: aggregate interconnect (NVLink/ICI/fabric) bandwidth in bytes/s
    interconnect_bandwidth_bytes_per_s: float
    #: energy per byte on the interconnect
    interconnect_energy_per_byte_j: float
    #: tensor-parallel degree used for serving
    tensor_parallel: int = 1
    #: bytes per weight parameter as deployed (2 = FP16, 1 = INT8)
    weight_bytes_per_param: int = 2
    #: bytes per cached K/V element
    kv_bytes_per_element: int = 2
    #: largest batch the serving stack will form
    max_batch_size: int = 256
    #: attention (score/context + KV reads) executed inside memory (AttAcc)
    attention_in_memory: bool = False


#: fraction of the KV-cache volume that still crosses the memory channel when
#: attention executes in PIM (commands, scores, context results)
PIM_CHANNEL_TRAFFIC_FRACTION = 0.3


@dataclass
class BaselineConfig:
    """Run-time knobs of a baseline simulation."""

    #: fraction of interconnect time hidden behind compute (overlap)
    interconnect_overlap: float = 0.5
    #: static/idle power charged per device while serving, in watts
    idle_power_per_device_w: float = 0.0


class BaselineSystem:
    """Roofline-model serving simulator for one baseline system."""

    def __init__(
        self,
        arch: ModelArch,
        hardware: BaselineHardware,
        config: BaselineConfig | None = None,
    ) -> None:
        self.arch = arch
        self.hardware = hardware
        self.config = config or BaselineConfig()
        if self.weight_bytes() > hardware.memory_capacity_bytes:
            raise ConfigurationError(
                f"{arch.name} weights ({self.weight_bytes() / GB:.1f} GiB) do not fit "
                f"{hardware.name}'s {hardware.memory_capacity_bytes / GB:.1f} GiB memory"
            )

    # ------------------------------------------------------------ introspection

    @property
    def name(self) -> str:
        """Display name (the ``ServingSystem`` protocol)."""
        return self.hardware.name

    def summary(self) -> dict[str, float]:
        """Key facts about the modelled deployment (protocol counterpart of
        :meth:`repro.core.system.OuroborosSystem.summary`)."""
        hw = self.hardware
        return {
            "system": hw.name,
            "model": self.arch.name,
            "num_devices": hw.num_devices,
            "peak_tops": hw.peak_macs_per_s * 2.0 / 1e12,
            "memory_capacity_gib": hw.memory_capacity_bytes / (1 << 30),
            "memory_bandwidth_tb_per_s": hw.memory_bandwidth_bytes_per_s / 1e12,
            "tensor_parallel": hw.tensor_parallel,
            "max_batch_size": hw.max_batch_size,
            "weight_gib": self.weight_bytes() / (1 << 30),
        }

    # ----------------------------------------------------------------- sizing

    def weight_bytes(self) -> float:
        return float(self.arch.total_weight_params) * self.hardware.weight_bytes_per_param

    def kv_bytes_per_token(self) -> float:
        return (
            2.0
            * self.arch.kv_dim
            * self.arch.num_blocks
            * self.hardware.kv_bytes_per_element
        )

    def max_batch_size(self, context_length: float) -> int:
        """Concurrent sequences the KV budget supports at a given context."""
        free = self.hardware.memory_capacity_bytes - self.weight_bytes()
        per_sequence = max(1.0, context_length) * self.kv_bytes_per_token()
        batch = int(free // per_sequence) if per_sequence > 0 else self.hardware.max_batch_size
        return max(1, min(self.hardware.max_batch_size, batch))

    # ----------------------------------------------------------------- phases

    def prefill_time_and_energy(
        self, prompt_tokens: float, context_length: float
    ) -> tuple[float, EnergyBreakdown]:
        """Time/energy to prefill ``prompt_tokens`` tokens (batched GEMMs)."""
        hw = self.hardware
        macs = prompt_tokens * (
            self.arch.num_blocks * self.arch.block_weight_params
            + self.arch.num_blocks * self.arch.num_heads * self.arch.head_dim * context_length
        )
        compute_time = macs / (hw.peak_macs_per_s * hw.prefill_efficiency)
        # Weights stream from memory once per prefill pass over the batch; with
        # chunked prefill the read is amortised over roughly max_batch prompts.
        weight_reads = self.weight_bytes() * prompt_tokens / max(
            1.0, self._prefill_amortisation()
        )
        kv_writes = prompt_tokens * self.kv_bytes_per_token()
        memory_time = (weight_reads + kv_writes) / (
            hw.memory_bandwidth_bytes_per_s * hw.memory_bandwidth_efficiency
        )
        time = max(compute_time, memory_time) + self._interconnect_time(prompt_tokens)
        energy = self._phase_energy(macs, weight_reads + kv_writes, prompt_tokens)
        return time, energy

    def _prefill_amortisation(self) -> float:
        """Tokens over which one weight read is amortised during prefill."""
        # Chunked prefill processes ~512-token chunks per weight pass.
        return 512.0

    def decode_time_and_energy(
        self, decode_tokens: float, context_length: float, batch_size: int
    ) -> tuple[float, EnergyBreakdown]:
        """Time/energy to generate ``decode_tokens`` tokens at a given batch size."""
        hw = self.hardware
        steps = decode_tokens / max(1, batch_size)
        macs_per_step = batch_size * (
            self.arch.num_blocks * self.arch.block_weight_params
            + self.arch.num_blocks * self.arch.num_heads * self.arch.head_dim * context_length
        )
        compute_time_per_step = macs_per_step / (
            hw.peak_macs_per_s * hw.decode_efficiency
        )
        # Every decode step reads each in-batch sequence's whole KV cache.
        kv_bytes_per_step = batch_size * context_length * self.kv_bytes_per_token()
        if hw.attention_in_memory:
            # PIM keeps the KV operands in memory but commands, scores and
            # context results still cross the channel (~30% of the KV volume).
            effective_kv_bytes = PIM_CHANNEL_TRAFFIC_FRACTION * kv_bytes_per_step
        else:
            effective_kv_bytes = kv_bytes_per_step
        memory_bytes_per_step = self.weight_bytes() + effective_kv_bytes
        memory_time_per_step = memory_bytes_per_step / (
            hw.memory_bandwidth_bytes_per_s * hw.memory_bandwidth_efficiency
        )
        step_time = max(compute_time_per_step, memory_time_per_step)
        step_time += self._interconnect_time(batch_size)
        total_time = steps * step_time
        total_memory_bytes = steps * (self.weight_bytes() + kv_bytes_per_step)
        total_macs = steps * macs_per_step
        energy = self._phase_energy(total_macs, total_memory_bytes, decode_tokens)
        return total_time, energy

    # ------------------------------------------------------------------ shared

    def _interconnect_time(self, tokens: float) -> float:
        """All-reduce time for tensor parallelism, partially overlapped."""
        hw = self.hardware
        if hw.tensor_parallel <= 1:
            return 0.0
        volume = (
            tokens
            * 2.0  # two all-reduces per block (attention out + FFN out)
            * self.arch.num_blocks
            * self.arch.hidden_size
            * self.hardware.kv_bytes_per_element
            * 2.0
            * (hw.tensor_parallel - 1)
            / hw.tensor_parallel
        )
        raw = volume / hw.interconnect_bandwidth_bytes_per_s
        return raw * (1.0 - self.config.interconnect_overlap)

    def _interconnect_bytes(self, tokens: float) -> float:
        hw = self.hardware
        if hw.tensor_parallel <= 1:
            return 0.0
        return (
            tokens
            * 2.0
            * self.arch.num_blocks
            * self.arch.hidden_size
            * self.hardware.kv_bytes_per_element
            * 2.0
            * (hw.tensor_parallel - 1)
            / hw.tensor_parallel
        )

    def _phase_energy(
        self, macs: float, memory_bytes: float, tokens: float
    ) -> EnergyBreakdown:
        hw = self.hardware
        compute = macs * hw.mac_energy_j
        # Activations and operands staged through on-chip SRAM/caches.
        on_chip = memory_bytes * hw.on_chip_energy_per_byte_j
        if hw.memory_is_on_chip:
            on_chip += memory_bytes * hw.memory_energy_per_byte_j
            off_chip = 0.0
        else:
            off_chip = memory_bytes * hw.memory_energy_per_byte_j
        communication = self._interconnect_bytes(tokens) * hw.interconnect_energy_per_byte_j
        return EnergyBreakdown(
            compute_j=compute,
            on_chip_memory_j=on_chip,
            off_chip_memory_j=off_chip,
            communication_j=communication,
        )

    # ------------------------------------------------------------------ serving

    def serve(self, trace: Trace, workload_name: str | None = None) -> RunResult:
        """Serve a trace and return aggregate throughput/energy results."""
        total_prefill = float(trace.total_prefill_tokens)
        total_decode = float(trace.total_decode_tokens)
        mean_prefill = trace.mean_prefill_length
        mean_decode = trace.mean_decode_length
        avg_context = mean_prefill + mean_decode / 2.0
        batch = self.max_batch_size(mean_prefill + mean_decode)

        prefill_time, prefill_energy = self.prefill_time_and_energy(
            total_prefill, mean_prefill / 2.0
        )
        decode_time, decode_energy = self.decode_time_and_energy(
            total_decode, avg_context, batch
        )
        total_time = prefill_time + decode_time
        energy = prefill_energy + decode_energy
        if self.config.idle_power_per_device_w > 0:
            static = (
                self.config.idle_power_per_device_w
                * self.hardware.num_devices
                * total_time
            )
            energy = energy + EnergyBreakdown(compute_j=static)

        output_tokens = int(total_decode)
        # Compute-side utilisation: achieved MACs / (peak * time).
        total_macs = total_prefill * self.arch.num_blocks * self.arch.block_weight_params
        total_macs += total_decode * self.arch.num_blocks * self.arch.block_weight_params
        utilization = min(
            1.0, total_macs / (self.hardware.peak_macs_per_s * max(total_time, 1e-12))
        )
        return RunResult(
            system=self.hardware.name,
            model=self.arch.name,
            workload=workload_name or trace.spec.name,
            total_time_s=total_time,
            total_tokens=int(total_prefill + total_decode),
            output_tokens=output_tokens,
            energy=energy,
            utilization=utilization,
            extra={"batch_size": batch, "num_devices": self.hardware.num_devices},
        )


def adjust_for_quantization(
    hardware: BaselineHardware, weight_bytes: int, kv_bytes: int
) -> BaselineHardware:
    """Return a copy of ``hardware`` deployed with different weight/KV precision."""
    return replace(
        hardware, weight_bytes_per_param=weight_bytes, kv_bytes_per_element=kv_bytes
    )


def tops(value: float) -> float:
    """Convenience: convert TOPS (ops/s) to MAC/s."""
    return value * TERA / 2.0


def pj(value: float) -> float:
    return value * PJ
