"""DGX A100 baseline (8x A100-40GB, NVLink, vLLM serving stack)."""

from __future__ import annotations

from ..models.architectures import ModelArch
from ..units import GB, PJ, TERA
from .common import BaselineConfig, BaselineHardware, BaselineSystem


def dgx_a100_hardware(num_gpus: int = 8) -> BaselineHardware:
    """Published characteristics of a DGX A100 node.

    * 312 TFLOPS FP16 (dense) per GPU, ~60% achievable on GEMM-heavy prefill
      and ~35% on memory-bound decode with vLLM's continuous batching.
    * 40 GB HBM2e at 1.56 TB/s per GPU.
    * 600 GB/s NVLink per GPU (aggregate fabric ~2.4 TB/s effective for
      all-reduce traffic with TP=8).
    * HBM access energy ~3.9 pJ/bit; FP16 MAC ~0.8 pJ at the system level.
    """
    return BaselineHardware(
        name="DGX A100",
        num_devices=num_gpus,
        peak_macs_per_s=num_gpus * 312 * TERA / 2.0,
        prefill_efficiency=0.60,
        decode_efficiency=0.35,
        memory_capacity_bytes=num_gpus * 40 * GB,
        memory_bandwidth_bytes_per_s=num_gpus * 1.555e12,
        memory_bandwidth_efficiency=0.70,
        memory_energy_per_byte_j=3.9 * 8 * PJ,
        memory_is_on_chip=False,
        mac_energy_j=0.8 * PJ,
        on_chip_energy_per_byte_j=0.45 * 8 * PJ,
        interconnect_bandwidth_bytes_per_s=2.4e12,
        interconnect_energy_per_byte_j=10.0 * 8 * PJ,
        tensor_parallel=num_gpus,
        weight_bytes_per_param=2,
        kv_bytes_per_element=2,
        max_batch_size=256,
    )


class DGXA100System(BaselineSystem):
    """8x A100 running vLLM (FlashAttention + chunked prefill + paged KV)."""

    def __init__(self, arch: ModelArch, num_gpus: int = 8, config: BaselineConfig | None = None) -> None:
        super().__init__(arch, dgx_a100_hardware(num_gpus), config)
