"""Cerebras WSE-2 baseline running a WaferLLM-style inference engine.

The WSE-2 keeps 40 GB of SRAM on a single wafer, so (with 8-bit weights) the
13B/32B models fit on chip and weight reads never leave the wafer.  Unlike
Ouroboros the WSE-2 is *not* computing in memory: every weight byte is read
from SRAM into the compute datapath for every use, and activations/partial
sums cross the wafer fabric using SUMMA-style GEMM and pipelined all-reduce
GEMV collectives, which is the communication volume Fig. 18 compares against.
"""

from __future__ import annotations

import math
from dataclasses import replace

from ..errors import ConfigurationError
from ..models.architectures import ModelArch
from ..units import GB, PJ
from .common import BaselineConfig, BaselineHardware, BaselineSystem


def wse2_hardware() -> BaselineHardware:
    """Published characteristics of a Cerebras WSE-2.

    * 850,000 cores, ~75 TOPS-equivalent dense FP16 throughput usable for
      transformer inference per the WaferLLM characterisation (7.5 PFLOPS peak
      is rarely approached on GEMV; we use achievable efficiencies instead).
    * 40 GB on-wafer SRAM at an aggregate 20 PB/s; the practical weight-stream
      bandwidth per GEMV pass is fabric-limited, modelled at 1.0 PB/s.
    * On-wafer fabric energy ~0.5 pJ/bit; SRAM read ~0.45 pJ/bit.
    """
    return BaselineHardware(
        name="Cerebras WSE-2",
        num_devices=1,
        peak_macs_per_s=7.5e15 / 2.0,
        prefill_efficiency=0.30,
        decode_efficiency=0.05,
        memory_capacity_bytes=40 * GB,
        memory_bandwidth_bytes_per_s=1.0e15,
        memory_bandwidth_efficiency=1.0,
        memory_energy_per_byte_j=0.45 * 8 * PJ,
        memory_is_on_chip=True,
        mac_energy_j=0.55 * PJ,
        on_chip_energy_per_byte_j=0.2 * 8 * PJ,
        interconnect_bandwidth_bytes_per_s=2.0e14,
        interconnect_energy_per_byte_j=0.5 * 8 * PJ,
        tensor_parallel=64,
        weight_bytes_per_param=1,
        kv_bytes_per_element=1,
        max_batch_size=64,
    )


class CerebrasWSE2System(BaselineSystem):
    """Cerebras WSE-2 with WaferLLM-style SUMMA/all-reduce execution.

    ``num_wafers`` scales capacity, bandwidth and peak compute for models that
    do not fit a single WSE-2 (the multi-wafer comparison of Fig. 19/20).
    """

    def __init__(
        self,
        arch: ModelArch,
        config: BaselineConfig | None = None,
        num_wafers: int | None = None,
    ) -> None:
        hardware = wse2_hardware()
        weight_bytes = float(arch.total_weight_params) * hardware.weight_bytes_per_param
        if num_wafers is None:
            num_wafers = max(
                1, math.ceil(weight_bytes / (hardware.memory_capacity_bytes * 0.8))
            )
        if num_wafers > 1:
            hardware = replace(
                hardware,
                name=f"Cerebras WSE-2 x{num_wafers}",
                num_devices=num_wafers,
                peak_macs_per_s=hardware.peak_macs_per_s * num_wafers,
                memory_capacity_bytes=hardware.memory_capacity_bytes * num_wafers,
                memory_bandwidth_bytes_per_s=hardware.memory_bandwidth_bytes_per_s
                * num_wafers,
                interconnect_bandwidth_bytes_per_s=hardware.interconnect_bandwidth_bytes_per_s
                * num_wafers,
            )
        if weight_bytes > hardware.memory_capacity_bytes:
            raise ConfigurationError(
                f"{arch.name} does not fit {num_wafers} WSE-2 wafer(s) even at INT8"
            )
        super().__init__(arch, hardware, config)
