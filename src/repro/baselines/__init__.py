"""Baseline systems the paper compares Ouroboros against."""

from .attacc import AttAccSystem, attacc_hardware
from .cerebras import CerebrasWSE2System, wse2_hardware
from .cim_cores import (
    ALL_DESIGNS,
    ISSCC22,
    OUROBOROS_CORE,
    OUROBOROS_LUT_CORE,
    VLSI22,
    CIMCoreDesign,
    CIMCoreSystem,
    cim_core_hardware,
)
from .common import BaselineConfig, BaselineHardware, BaselineSystem
from .gpu import DGXA100System, dgx_a100_hardware
from .multi_die import (
    ABLATION_STEPS,
    ablation_config,
    ablation_system,
    multi_die_baseline,
)
from .tpu import TPUv4System, tpu_v4_hardware

__all__ = [
    "BaselineSystem",
    "BaselineHardware",
    "BaselineConfig",
    "DGXA100System",
    "dgx_a100_hardware",
    "TPUv4System",
    "tpu_v4_hardware",
    "AttAccSystem",
    "attacc_hardware",
    "CerebrasWSE2System",
    "wse2_hardware",
    "CIMCoreDesign",
    "CIMCoreSystem",
    "cim_core_hardware",
    "VLSI22",
    "ISSCC22",
    "OUROBOROS_CORE",
    "OUROBOROS_LUT_CORE",
    "ALL_DESIGNS",
    "ABLATION_STEPS",
    "ablation_config",
    "ablation_system",
    "multi_die_baseline",
]
