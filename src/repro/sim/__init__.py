"""End-to-end simulation: system builder, energy accounting and result types."""

from .accounting import EnergyAccountant
from .engine import (
    BuiltOuroboros,
    KVPolicy,
    MappingStrategy,
    OuroborosSystemConfig,
    PipelineMode,
    build_system,
    required_wafers,
)
from .faults import FaultEvent, FaultInjector, FaultPlan, make_fault_plan
from .results import EnergyBreakdown, RunResult

__all__ = [
    "EnergyAccountant",
    "BuiltOuroboros",
    "OuroborosSystemConfig",
    "PipelineMode",
    "KVPolicy",
    "MappingStrategy",
    "build_system",
    "required_wafers",
    "EnergyBreakdown",
    "RunResult",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "make_fault_plan",
]
