"""Energy accounting helpers shared by the Ouroboros simulator and baselines."""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.energy import EnergyModel
from ..results import EnergyBreakdown


@dataclass
class EnergyAccountant:
    """Accumulates energy events into the paper's four-way breakdown."""

    energy_model: EnergyModel
    breakdown: EnergyBreakdown = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.breakdown is None:
            self.breakdown = EnergyBreakdown()

    # ------------------------------------------------------------------ compute

    def add_cim_macs(self, macs: float, crossbar_config) -> None:
        self.breakdown.compute_j += macs * self.energy_model.cim_mac_j(crossbar_config)

    def add_digital_macs(self, macs: float) -> None:
        self.breakdown.compute_j += macs * self.energy_model.digital_mac_j

    def add_sfu_elements(self, elements: float) -> None:
        self.breakdown.compute_j += elements * self.energy_model.sfu_j_per_element

    # ------------------------------------------------------------------ memory

    def add_sram_read(self, num_bytes: float) -> None:
        self.breakdown.on_chip_memory_j += num_bytes * self.energy_model.sram_read_j_per_byte

    def add_sram_write(self, num_bytes: float) -> None:
        self.breakdown.on_chip_memory_j += num_bytes * self.energy_model.sram_write_j_per_byte

    def add_hbm_access(self, num_bytes: float) -> None:
        self.breakdown.off_chip_memory_j += num_bytes * self.energy_model.hbm_j_per_byte

    def add_dram_access(self, num_bytes: float) -> None:
        self.breakdown.off_chip_memory_j += num_bytes * self.energy_model.dram_j_per_byte

    # ------------------------------------------------------------ communication

    def add_noc_traffic(self, num_bytes: float, hops: float, die_crossings: float = 0.0) -> None:
        self.breakdown.communication_j += self.energy_model.noc_transfer_energy_j(
            num_bytes, hops, die_crossings
        )

    def add_nvlink_traffic(self, num_bytes: float) -> None:
        self.breakdown.communication_j += num_bytes * self.energy_model.nvlink_j_per_byte

    def add_optical_traffic(self, num_bytes: float) -> None:
        self.breakdown.communication_j += num_bytes * self.energy_model.optical_j_per_byte

    # ------------------------------------------------------------------ readout

    def snapshot(self) -> EnergyBreakdown:
        return EnergyBreakdown(
            compute_j=self.breakdown.compute_j,
            on_chip_memory_j=self.breakdown.on_chip_memory_j,
            off_chip_memory_j=self.breakdown.off_chip_memory_j,
            communication_j=self.breakdown.communication_j,
        )
