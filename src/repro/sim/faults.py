"""Deterministic runtime fault injection for serving runs.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent`\\ s — KV-core
failures, weight-core failures, transient KV-block losses and admission
stalls — that a :class:`FaultInjector` applies while a pipeline engine serves
a trace.  Events fire at the first epoch boundary whose clock has reached
their ``time_s`` (epoch granularity is the simulation's native resolution;
sub-epoch fault timing would be below the model's fidelity anyway), and every
consequence flows through the existing serving machinery:

* ``kv_core`` permanently fails a healthy KV core through the distributed
  manager's :meth:`fail_core`; resident sequences that stored heads there are
  re-queued (tenant/priority preserved) and re-prefill their context.
* ``kv_block`` destroys the KV blocks on one core *without* failing it — the
  transient-loss case: affected sequences recompute, capacity is untouched.
* ``weight_core`` routes through the replacement-chain recovery model
  (:class:`~repro.mapping.fault_tolerance.FaultToleranceManager`): the chain's
  transfer latency is added to the clock and the terminal KV core's residents
  recompute.
* ``stall`` freezes new admissions for ``duration_s`` seconds; active
  sequences keep decoding.

Plans are plain data: dict/JSON round-trip for :class:`DeploymentSpec`
plumbing, plus a compact string syntax for the CLI —
``kind@time[:target[:duration]]`` items joined by commas, e.g.
``kv_core@0.5,stall@1.0:0:0.25``.  Everything is deterministic: the same plan
against the same trace produces bit-for-bit identical results, and runs
without a plan pay zero overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..results import FaultStats

FAULT_KINDS = ("kv_core", "weight_core", "kv_block", "stall")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what happens, when, and to which target.

    ``target`` is an abstract index, not a core id: the injector resolves it
    against the *currently healthy* candidates (modulo their count), so plans
    stay valid regardless of wafer size or earlier failures.  ``duration_s``
    only applies to ``stall`` events.
    """

    time_s: float
    kind: str
    target: int = 0
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind '{self.kind}'; known kinds: {list(FAULT_KINDS)}"
            )
        if self.time_s < 0:
            raise ConfigurationError("fault time_s cannot be negative")
        if self.target < 0:
            raise ConfigurationError("fault target cannot be negative")
        if self.duration_s < 0:
            raise ConfigurationError("fault duration_s cannot be negative")

    def as_dict(self) -> dict:
        return {
            "time_s": self.time_s,
            "kind": self.kind,
            "target": self.target,
            "duration_s": self.duration_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A time-ordered set of fault events to inject into one serving run."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        # Normalise: accept any iterable, store a stable time-sorted tuple so
        # the injector can walk a cursor forward.
        ordered = tuple(sorted(self.events, key=lambda e: e.time_s))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def as_dict(self) -> dict:
        return {"events": [event.as_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(events=tuple(FaultEvent.from_dict(e) for e in data["events"]))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the compact CLI syntax ``kind@time[:target[:duration]],...``."""
        events: list[FaultEvent] = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "@" not in item:
                raise ConfigurationError(
                    f"malformed fault event '{item}': expected "
                    "kind@time[:target[:duration]]"
                )
            kind, _, rest = item.partition("@")
            parts = rest.split(":")
            if len(parts) > 3 or not parts[0]:
                raise ConfigurationError(
                    f"malformed fault event '{item}': expected "
                    "kind@time[:target[:duration]]"
                )
            try:
                time_s = float(parts[0])
                target = int(parts[1]) if len(parts) > 1 and parts[1] else 0
                duration = float(parts[2]) if len(parts) > 2 and parts[2] else 0.0
            except ValueError as exc:
                raise ConfigurationError(
                    f"malformed fault event '{item}': {exc}"
                ) from exc
            events.append(
                FaultEvent(
                    time_s=time_s, kind=kind.strip(), target=target,
                    duration_s=duration,
                )
            )
        return cls(events=tuple(events))


def make_fault_plan(
    rate_per_s: float,
    horizon_s: float,
    *,
    kinds: tuple[str, ...] = ("kv_block", "stall"),
    stall_duration_s: float = 0.05,
    seed: int = 0,
) -> FaultPlan:
    """Deterministic plan: events at a fixed rate, cycling through ``kinds``.

    Used by the fault-recovery experiment to sweep fault rate without a live
    RNG: event times are the exact multiples of ``1 / rate_per_s`` up to the
    horizon, targets walk ``seed + index`` so successive events of one kind
    hit different cores.
    """
    if rate_per_s <= 0 or horizon_s <= 0:
        return FaultPlan()
    period = 1.0 / rate_per_s
    events = []
    index = 0
    while (index + 1) * period <= horizon_s:
        kind = kinds[index % len(kinds)]
        events.append(
            FaultEvent(
                time_s=(index + 1) * period,
                kind=kind,
                target=seed + index,
                duration_s=stall_duration_s if kind == "stall" else 0.0,
            )
        )
        index += 1
    return FaultPlan(events=tuple(events))


@dataclass
class FaultInjector:
    """Applies a :class:`FaultPlan` to a running pipeline engine.

    Constructed per run by ``PipelineEngine.run``/``run_scalar``; ``poll`` is
    called once per epoch after admission and applies every event whose time
    has been reached, returning ``(applied, extra_delay_s)`` — the delay is
    the recovery model's transfer latency, which the engine adds to its clock.
    """

    plan: FaultPlan
    engine: object
    stats: FaultStats = field(default_factory=FaultStats)

    def __post_init__(self) -> None:
        self._cursor = 0
        kv = self.engine.kv_manager
        kinds = {event.kind for event in self.plan.events}
        if kinds & {"kv_core", "kv_block"} and not hasattr(kv, "fail_core"):
            raise ConfigurationError(
                "kv_core/kv_block fault events require the dynamic distributed "
                "KV-cache manager; the static KV policy does not model "
                "per-core failures"
            )
        if "weight_core" in kinds and getattr(self.engine, "fault_recovery", None) is None:
            raise ConfigurationError(
                "weight_core fault events require a fault-recovery hook "
                "(serve through an Ouroboros system with the dynamic KV policy)"
            )

    # ------------------------------------------------------------------ state

    def snapshot_state(self) -> dict:
        return {"cursor": self._cursor, "stats": dict(self.stats.__dict__)}

    def restore_state(self, state: dict) -> None:
        self._cursor = state["cursor"]
        self.stats = FaultStats(**state["stats"])

    # ------------------------------------------------------------------- poll

    def poll(self, time_s: float) -> tuple[bool, float]:
        """Apply every not-yet-applied event with ``event.time_s <= time_s``."""
        applied = False
        delay = 0.0
        events = self.plan.events
        while self._cursor < len(events) and events[self._cursor].time_s <= time_s:
            event = events[self._cursor]
            self._cursor += 1
            delay += self._apply(event, time_s)
            applied = True
            self.stats.injected += 1
        return applied, delay

    def _apply(self, event: FaultEvent, time_s: float) -> float:
        if event.kind == "kv_core":
            return self._apply_kv_core(event)
        if event.kind == "kv_block":
            return self._apply_kv_block(event)
        if event.kind == "weight_core":
            return self._apply_weight_core(event)
        return self._apply_stall(event, time_s)

    def _apply_kv_core(self, event: FaultEvent) -> float:
        kv = self.engine.kv_manager
        healthy = [c for c in kv.kv_core_ids if c not in kv.failed_cores]
        if not healthy:
            return 0.0  # every KV core already failed; nothing left to break
        core = healthy[event.target % len(healthy)]
        affected = kv.fail_core(core)
        self.stats.kv_core_failures += 1
        self._recompute(affected)
        return 0.0

    def _apply_kv_block(self, event: FaultEvent) -> float:
        kv = self.engine.kv_manager
        core = kv.kv_core_ids[event.target % len(kv.kv_core_ids)]
        affected = kv.sequences_on_core(core)
        self.stats.kv_block_losses += 1
        self._recompute(affected)
        return 0.0

    def _apply_weight_core(self, event: FaultEvent) -> float:
        result = self.engine.fault_recovery(event.target)
        if result is None:
            return 0.0  # no healthy weight core left to fail
        self.stats.weight_core_failures += 1
        self.stats.recovery_latency_s += result.recovery_latency_s
        self._recompute(result.affected_sequences)
        return result.recovery_latency_s

    def _apply_stall(self, event: FaultEvent, time_s: float) -> float:
        scheduler = self.engine.scheduler
        scheduler.admission_stall_until = max(
            scheduler.admission_stall_until, time_s + event.duration_s
        )
        self.stats.admission_stalls += 1
        self.stats.stall_time_s += event.duration_s
        return 0.0

    def _recompute(self, affected_ids) -> None:
        """Re-queue every active sequence whose KV the fault destroyed."""
        affected = set(affected_ids)
        if not affected:
            return
        scheduler = self.engine.scheduler
        for sequence in scheduler.active:  # copy; safe to mutate mid-walk
            if sequence.sequence_id in affected:
                tokens = scheduler.recompute_sequence(sequence)
                self.stats.recovered_sequences += 1
                self.stats.recompute_tokens += tokens
