"""End-to-end Ouroboros system builder and simulator.

:class:`OuroborosBuilder` turns a model architecture plus an
:class:`OuroborosSystemConfig` into a *built system*: the wafer(s) with a
sampled defect map, the inter-core weight mapping, the KV-cache manager owning
the leftover cores, and the per-token cost model parameterised by the mapping's
average hop distance.  :meth:`BuiltOuroboros.serve` then runs a request trace
through the selected pipeline strategy and returns a :class:`RunResult`.

Multi-wafer scaling (Section 6.8) is modelled by partitioning the model's
blocks across wafers; the only cross-wafer traffic is the single token-sized
activation hand-off per wafer boundary, which is charged on the optical
Ethernet ports.
"""

from __future__ import annotations

import enum
import math
import warnings
from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError, MappingError
from ..hardware.config import WaferConfig
from ..hardware.energy import EnergyModel
from ..hardware.wafer import Wafer
from ..hardware.yieldmodel import DefectMap, sample_defect_map
from ..kvcache.manager import DistributedKVCacheManager
from ..kvcache.static import StaticKVCacheManager
from ..mapping.fault_tolerance import FaultToleranceManager, RemappingResult
from ..mapping.intercore import WaferMapping, map_model
from ..models.architectures import ModelArch
from ..pipeline.blocked import BlockedTokenGrainedPipeline
from ..pipeline.checkpoint import EngineCheckpoint
from ..pipeline.engine import PipelineConfig, PipelineEngine
from ..pipeline.sequence_grained import SequenceGrainedPipeline
from ..pipeline.stages import TokenCostModel
from ..pipeline.tgp import TokenGrainedPipeline
from ..results import RunResult
from ..workload.generator import Trace
from ..workload.streams import StreamingTrace
from ..workload.scheduler import InterSequenceScheduler


class PipelineMode(enum.Enum):
    """Which pipeline strategy the built system uses."""

    TOKEN_GRAINED = "tgp"
    SEQUENCE_GRAINED = "sequence"
    BLOCKED = "blocked"
    AUTO = "auto"


class KVPolicy(enum.Enum):
    """KV-cache management policy."""

    DYNAMIC = "dynamic"
    STATIC = "static"


class MappingStrategy(enum.Enum):
    """Inter-core mapping quality used by the built system."""

    OPTIMIZED = "optimized"   # greedy + annealing (MIQP substitute)
    GREEDY = "greedy"          # locality-aware but unrefined
    NAIVE = "naive"            # ignore locality (tensor/pipeline parallel style)


@dataclass(frozen=True)
class OuroborosSystemConfig:
    """All knobs of an Ouroboros deployment."""

    wafer: WaferConfig = field(default_factory=WaferConfig)
    num_wafers: int = 1
    pipeline_mode: PipelineMode = PipelineMode.AUTO
    kv_policy: KVPolicy = KVPolicy.DYNAMIC
    kv_threshold: float = 0.1
    mapping_strategy: MappingStrategy = MappingStrategy.OPTIMIZED
    anneal_iterations: int = 100
    defect_seed: int | None = 0
    model_defects: bool = True
    cim_enabled: bool = True
    lut_optimized: bool = False
    #: True = stitched wafer-scale integration; False = the same dies packaged
    #: separately and connected by NVLink-class links (ablation "Baseline")
    wafer_integration: bool = True
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    energy_model: EnergyModel = field(default_factory=EnergyModel)

    def __post_init__(self) -> None:
        if self.num_wafers <= 0:
            raise ConfigurationError("num_wafers must be positive")


@dataclass
class BuiltOuroboros:
    """A fully constructed Ouroboros deployment, ready to serve traces."""

    arch: ModelArch
    config: OuroborosSystemConfig
    wafers: list[Wafer]
    mappings: list[WaferMapping]
    kv_manager: DistributedKVCacheManager | StaticKVCacheManager
    cost_model: TokenCostModel
    defect_maps: list[DefectMap | None]

    # ------------------------------------------------------------------ summary

    @property
    def name(self) -> str:
        """Display name (the ``ServingSystem`` protocol)."""
        return "Ouroboros"

    @property
    def num_weight_cores(self) -> int:
        return sum(mapping.num_weight_cores for mapping in self.mappings)

    @property
    def num_kv_cores(self) -> int:
        return sum(mapping.num_kv_cores for mapping in self.mappings)

    @property
    def total_cores(self) -> int:
        return sum(wafer.num_cores for wafer in self.wafers)

    @property
    def healthy_cores(self) -> int:
        return sum(wafer.num_healthy_cores for wafer in self.wafers)

    def summary(self) -> dict[str, float]:
        return {
            "model": self.arch.name,
            "wafers": len(self.wafers),
            "total_cores": self.total_cores,
            "healthy_cores": self.healthy_cores,
            "weight_cores": self.num_weight_cores,
            "kv_cores": self.num_kv_cores,
            "pipeline_depth": 6 * self.arch.num_blocks,
            "average_hops": self.cost_model.average_hops,
            "kv_capacity_gib": getattr(self.kv_manager, "capacity_bytes", 0) / (1 << 30),
        }

    # ------------------------------------------------------------------ serving

    def make_pipeline(self) -> PipelineEngine:
        """Construct a fresh pipeline engine bound to a fresh KV manager."""
        kv_manager = _build_kv_manager(self.arch, self.config, self.mappings)
        # Admission control: do not admit wildly more sequences than the KV
        # cache can hold at a typical final context length, otherwise the
        # decode-phase growth of an over-committed cache thrashes (evict /
        # re-prefill cycles) instead of making forward progress.
        planning_context = max(256, self.arch.max_context // 2)
        capacity_estimate = kv_manager.max_concurrent_sequences(planning_context)
        max_active = max(2, int(capacity_estimate * 1.25))
        if self.config.pipeline.max_active_sequences is not None:
            # Explicit continuous-batching limit: never loosens the
            # KV-capacity-derived bound, only tightens it.
            max_active = min(max_active, self.config.pipeline.max_active_sequences)
        pipeline_config = self.config.pipeline
        scheduler = InterSequenceScheduler(
            kv_manager,
            max_active_sequences=max_active,
            policy=pipeline_config.make_scheduling_policy(),
            max_queue_depth=pipeline_config.max_queue_depth,
            shed_deadline=pipeline_config.shed_deadline,
            shed_headroom_s=pipeline_config.shed_headroom_s,
            shed_retries=pipeline_config.shed_retries,
            shed_backoff_s=pipeline_config.shed_backoff_s,
            preemptive=pipeline_config.preemptive,
        )
        mode = self.config.pipeline_mode
        if mode is PipelineMode.AUTO:
            mode = (
                PipelineMode.TOKEN_GRAINED
                if self.arch.is_decoder_only
                else PipelineMode.BLOCKED
            )
        engine_cls: type[PipelineEngine]
        if mode is PipelineMode.TOKEN_GRAINED:
            engine_cls = TokenGrainedPipeline
        elif mode is PipelineMode.SEQUENCE_GRAINED:
            engine_cls = SequenceGrainedPipeline
        else:
            engine_cls = BlockedTokenGrainedPipeline
        engine = engine_cls(
            self.arch,
            self.cost_model,
            kv_manager,
            config=self.config.pipeline,
            scheduler=scheduler,
        )
        engine.fault_recovery = self._make_fault_recovery(kv_manager)
        return engine

    def _make_fault_recovery(self, kv_manager):
        """Weight-core recovery hook for the fault injector.

        Bound to wafer 0's mapping and the *per-run* KV manager (wafer 0's
        core-id offset is zero, so local and global KV core ids coincide):
        each call fails one still-healthy weight core — resolved modulo their
        count so abstract fault targets stay valid after earlier failures —
        and routes the replacement chain through
        :class:`~repro.mapping.fault_tolerance.FaultToleranceManager`.
        Returns ``None`` once no healthy weight core remains.  The hook is
        only available with the dynamic KV policy: the replacement chain
        reclaims a KV core, which the static baseline cannot model.
        """
        if not isinstance(kv_manager, DistributedKVCacheManager):
            return None
        manager = FaultToleranceManager(
            self.wafers[0], self.mappings[0], kv_manager=kv_manager
        )

        def recover(target: int) -> RemappingResult | None:
            healthy = sorted(manager.weight_cores - manager.failed_cores)
            if not healthy:
                return None
            return manager.fail_core(healthy[target % len(healthy)])

        return recover

    def serve(
        self,
        trace: Trace | StreamingTrace,
        workload_name: str | None = None,
        *,
        fault_plan=None,
        suspend_at_epoch: int | None = None,
        resume_from: EngineCheckpoint | None = None,
    ) -> RunResult | EngineCheckpoint:
        """Serve a trace and return throughput/energy results.

        ``fault_plan`` injects runtime faults during the run;
        ``suspend_at_epoch`` returns an :class:`EngineCheckpoint` instead of a
        result once that epoch is reached (the wafer-level cost adjustments
        and summary are applied when the resumed run finishes, not twice), and
        ``resume_from`` continues a suspended run bit for bit.
        """
        engine = self.make_pipeline()
        outcome = engine.run(
            trace,
            workload_name,
            fault_plan=fault_plan,
            suspend_at_epoch=suspend_at_epoch,
            resume_from=resume_from,
        )
        if isinstance(outcome, EngineCheckpoint):
            return outcome
        result = self._add_inter_wafer_costs(outcome, trace)
        result.extra.update(self.summary())
        return result

    def serve_live(
        self,
        trace: Trace | StreamingTrace,
        workload_name: str | None = None,
        *,
        arrival_feed,
        fault_plan=None,
        resume_from: EngineCheckpoint | None = None,
        scalar: bool = False,
    ) -> RunResult | EngineCheckpoint:
        """Serve requests delivered live by ``arrival_feed`` (the daemon path).

        Same engine, same epoch arithmetic as :meth:`serve`: the feed only
        controls *when* requests enter the admission queue, never how they
        are served, so draining a replayed trace reproduces the batch result
        bit for bit.  ``trace`` starts empty and accumulates the ingested
        requests; a feed-requested checkpoint-and-stop returns the
        :class:`EngineCheckpoint` like a suspended batch run.  ``scalar``
        selects the scalar reference engine path (parity tests).
        """
        engine = self.make_pipeline()
        runner = engine.run_scalar if scalar else engine.run
        outcome = runner(
            trace,
            workload_name,
            fault_plan=fault_plan,
            resume_from=resume_from,
            arrival_feed=arrival_feed,
        )
        if isinstance(outcome, EngineCheckpoint):
            return outcome
        result = self._add_inter_wafer_costs(outcome, trace)
        result.extra.update(self.summary())
        return result

    def _add_inter_wafer_costs(
        self, result: RunResult, trace: Trace | StreamingTrace
    ) -> RunResult:
        crossings = len(self.wafers) - 1
        if crossings <= 0:
            return result
        em = self.config.energy_model
        bytes_per_token = self.arch.activation_bytes_per_token
        total_bytes = float(result.total_tokens) * bytes_per_token * crossings
        result.energy.communication_j += total_bytes * em.optical_j_per_byte
        bandwidth = self.config.wafer.inter_wafer_bandwidth_bytes_per_s
        # The hand-off is pipelined with compute; only charge the serialisation
        # of the crossing if it exceeds the available optical bandwidth budget.
        transfer_time = total_bytes / bandwidth
        if transfer_time > result.total_time_s:
            result.total_time_s = transfer_time
        return result


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


def _mapping_average_hops(mapping: WaferMapping, strategy: MappingStrategy) -> float:
    hops = mapping.activation_route_hops
    if strategy is MappingStrategy.NAIVE:
        # Ignoring locality roughly doubles the average transfer distance and
        # pushes a larger share of traffic across die boundaries.
        return max(hops * 2.5, hops + 4.0)
    if strategy is MappingStrategy.GREEDY:
        return hops * 1.15
    return hops


def _build_kv_manager(
    arch: ModelArch,
    config: OuroborosSystemConfig,
    mappings: list[WaferMapping],
) -> DistributedKVCacheManager | StaticKVCacheManager:
    kv_core_ids: list[int] = []
    for index, mapping in enumerate(mappings):
        offset = index * 10**6  # disjoint core-id space per wafer
        kv_core_ids.extend(core + offset for core in mapping.kv_core_ids)
    if not kv_core_ids:
        raise MappingError("mapping left no cores for the KV cache")
    if config.kv_policy is KVPolicy.STATIC:
        return StaticKVCacheManager(
            arch,
            kv_core_ids,
            reserved_context=arch.max_context,
        )
    return DistributedKVCacheManager(
        arch,
        kv_core_ids,
        threshold=config.kv_threshold,
    )


def default_system_config() -> OuroborosSystemConfig:
    """The one place default Ouroboros knobs come from.

    :class:`repro.api.DeploymentSpec` uses this as its ``config`` default;
    the legacy entry points below route through it instead of each
    constructing their own ``OuroborosSystemConfig()``.
    """
    return OuroborosSystemConfig()


def build_system(arch: ModelArch, config: OuroborosSystemConfig | None = None) -> BuiltOuroboros:
    """Deprecated public entry point: build a ready-to-serve deployment.

    Prefer ``repro.api.serve(DeploymentSpec(...))`` or
    ``repro.api.build_deployment(...)``; this shim keeps old callers working
    (results are bitwise-identical) while steering new code to the spec API.
    """
    warnings.warn(
        "build_system() is deprecated; use repro.api.serve(DeploymentSpec(...)) "
        "or repro.api.build_deployment() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_system(arch, config if config is not None else default_system_config())


def _build_system(arch: ModelArch, config: OuroborosSystemConfig) -> BuiltOuroboros:
    """Build a ready-to-serve Ouroboros deployment for ``arch``."""
    wafers: list[Wafer] = []
    defect_maps: list[DefectMap | None] = []
    for index in range(config.num_wafers):
        defect_map = None
        if config.model_defects:
            seed = None if config.defect_seed is None else config.defect_seed + index
            defect_map = sample_defect_map(config.wafer, seed=seed)
        wafer = Wafer(config.wafer, defect_map=defect_map, energy=config.energy_model)
        wafers.append(wafer)
        defect_maps.append(defect_map)

    # Partition the model's blocks across wafers (contiguous pipeline spans).
    blocks_per_wafer = _partition_blocks(arch, config, wafers)
    anneal = (
        config.anneal_iterations
        if config.mapping_strategy is MappingStrategy.OPTIMIZED
        else 0
    )
    mappings: list[WaferMapping] = []
    for wafer, blocks in zip(wafers, blocks_per_wafer):
        sub_arch = replace(arch, num_blocks=blocks) if blocks != arch.num_blocks else arch
        mappings.append(map_model(sub_arch, wafer, anneal_iterations=anneal))

    kv_manager = _build_kv_manager(arch, config, mappings)

    combined_hops = sum(
        _mapping_average_hops(mapping, config.mapping_strategy) for mapping in mappings
    ) / len(mappings)
    energy_model = config.energy_model
    die_crossing_fraction = 0.05
    transfer_bandwidth_scale = 1.0
    # Weight-reuse credit for non-CIM datapaths: sequence-grained scheduling
    # amortises each SRAM weight read over a whole sequence, token-grained
    # scheduling re-reads per token (Section 6.5's red bars).
    if config.pipeline_mode is PipelineMode.SEQUENCE_GRAINED:
        weight_reuse_tokens = 512.0
    else:
        weight_reuse_tokens = 1.0
    if not config.wafer_integration:
        # Separately packaged dies: every die boundary becomes an NVLink-class
        # SerDes crossing, and the die-to-die links are slower than stitched
        # on-wafer links.
        energy_model = dataclasses_replace_energy_for_multi_die(energy_model)
        die_crossing_fraction = 0.35
        transfer_bandwidth_scale = 0.5
    cost_model = TokenCostModel(
        arch=arch,
        wafer_config=config.wafer,
        energy_model=energy_model,
        average_hops=max(1.0, combined_hops),
        die_crossing_fraction=die_crossing_fraction,
        cim_enabled=config.cim_enabled,
        lut_optimized=config.lut_optimized,
        transfer_bandwidth_scale=transfer_bandwidth_scale,
        weight_reuse_tokens=weight_reuse_tokens,
    )
    return BuiltOuroboros(
        arch=arch,
        config=config,
        wafers=wafers,
        mappings=mappings,
        kv_manager=kv_manager,
        cost_model=cost_model,
        defect_maps=defect_maps,
    )


def dataclasses_replace_energy_for_multi_die(energy_model: EnergyModel) -> EnergyModel:
    """Energy table for the non-wafer (multi-die, NVLink-connected) ablation."""
    return replace(
        energy_model,
        die_crossing_j_per_byte=energy_model.nvlink_j_per_byte,
    )


def _partition_blocks(
    arch: ModelArch, config: OuroborosSystemConfig, wafers: list[Wafer]
) -> list[int]:
    """Split the model's transformer blocks across the available wafers."""
    num_wafers = len(wafers)
    if num_wafers == 1:
        return [arch.num_blocks]
    base = arch.num_blocks // num_wafers
    remainder = arch.num_blocks % num_wafers
    split = [base + (1 if i < remainder else 0) for i in range(num_wafers)]
    if any(count == 0 for count in split):
        raise ConfigurationError(
            f"{arch.name} has too few blocks to span {num_wafers} wafers"
        )
    return split


def required_wafers(arch: ModelArch, config: OuroborosSystemConfig | None = None) -> int:
    """Minimum wafer count whose SRAM holds the model weights plus KV headroom."""
    config = config if config is not None else default_system_config()
    per_wafer = config.wafer.sram_bytes * 0.80  # keep ~20% for KV/activations
    return max(1, math.ceil(arch.total_weight_bytes / per_wafer))
