"""Result types of the end-to-end simulation (re-exported from :mod:`repro.results`)."""

from ..results import EnergyBreakdown, RunResult

__all__ = ["EnergyBreakdown", "RunResult"]
