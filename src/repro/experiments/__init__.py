"""Experiment drivers: one module per table/figure of the paper's evaluation.

===============  =====================================================
module           paper artifact
===============  =====================================================
fig01            Fig. 1  -- hardware scaling tax on GPUs
fig11            Fig. 11 -- throughput vs. row-activation ratio
fig13            Fig. 13 -- normalized throughput vs. baselines
fig14            Fig. 14 -- normalized energy per output token
fig15            Fig. 15 -- ablation (Wafer/CIM/TGP/Mapping/KV)
fig16            Fig. 16 -- encoder-based models
fig17            Fig. 17 -- KV-cache threshold sweep
fig18            Fig. 18 -- mapping transmission volume
fig19/20         Fig. 19/20 -- multi-wafer scaling (LLaMA-65B)
fig21            Table 2 / Fig. 21 -- CIM-core circuit designs
fig22            (beyond the paper) open-loop arrival-rate sweep
fig23            (beyond the paper) multi-tenant SLO goodput vs. load
fig24            (beyond the paper) scheduling-policy comparison (fcfs/wfq/priority)
fig25            (beyond the paper) fault recovery + overload shedding vs. load
fig26            (beyond the paper) preemptive scheduling + recompute tax
headline         abstract -- average/peak speedup and efficiency
===============  =====================================================

Every module exposes ``run(settings) -> FigureResult`` with ``rows()`` and
``format_table()``.
"""

from . import (
    fig01_scaling_tax,
    fig11_row_activation,
    fig13_throughput,
    fig14_energy,
    fig15_ablation,
    fig16_encoder,
    fig17_kv_threshold,
    fig18_mapping,
    fig19_20_multiwafer,
    fig21_cim_cores,
    fig22_arrival_sweep,
    fig23_slo_goodput,
    fig24_policy_comparison,
    fig25_fault_recovery,
    fig26_preemption,
    headline,
)
from .common import (
    BASELINE_SYSTEMS,
    DECODER_MODELS,
    DEFAULT_SETTINGS,
    ENCODER_MODELS,
    OUROBOROS_NAME,
    PAPER_WORKLOAD_ORDER,
    ExperimentSettings,
    FigureResult,
    cell_deployments,
    run_all_systems,
    run_baseline,
    run_grid,
    run_ouroboros,
)

ALL_EXPERIMENTS = {
    "fig01": fig01_scaling_tax,
    "fig11": fig11_row_activation,
    "fig13": fig13_throughput,
    "fig14": fig14_energy,
    "fig15": fig15_ablation,
    "fig16": fig16_encoder,
    "fig17": fig17_kv_threshold,
    "fig18": fig18_mapping,
    "fig19_20": fig19_20_multiwafer,
    "fig21": fig21_cim_cores,
    "fig22": fig22_arrival_sweep,
    "fig23": fig23_slo_goodput,
    "fig24": fig24_policy_comparison,
    "fig25": fig25_fault_recovery,
    "fig26": fig26_preemption,
    "headline": headline,
}

__all__ = [
    "ExperimentSettings",
    "FigureResult",
    "DEFAULT_SETTINGS",
    "DECODER_MODELS",
    "ENCODER_MODELS",
    "PAPER_WORKLOAD_ORDER",
    "BASELINE_SYSTEMS",
    "OUROBOROS_NAME",
    "cell_deployments",
    "run_ouroboros",
    "run_baseline",
    "run_all_systems",
    "run_grid",
    "ALL_EXPERIMENTS",
    "fig01_scaling_tax",
    "fig11_row_activation",
    "fig13_throughput",
    "fig14_energy",
    "fig15_ablation",
    "fig16_encoder",
    "fig17_kv_threshold",
    "fig18_mapping",
    "fig19_20_multiwafer",
    "fig21_cim_cores",
    "fig22_arrival_sweep",
    "fig23_slo_goodput",
    "fig24_policy_comparison",
    "fig25_fault_recovery",
    "fig26_preemption",
    "headline",
]
