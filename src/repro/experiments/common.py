"""Shared infrastructure for the per-figure experiment drivers.

Every experiment module exposes a ``run(settings)`` function that returns a
result object with a ``rows()`` method (list of dictionaries, one per plotted
bar/point) and a ``format_table()`` helper for human-readable output.  The
drivers are deliberately deterministic: the same settings produce the same
numbers, so the benchmark harness can assert on the qualitative shape of each
figure.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from .. import api
from ..api import DeploymentSpec, comparison_grid_keys, get_system
from ..baselines.common import BaselineSystem
from ..core.system import OuroborosSystem
from ..errors import ConfigurationError
from ..models.architectures import ModelArch, get_model
from ..pipeline.engine import PipelineConfig
from ..results import RunResult
from ..sim.engine import OuroborosSystemConfig
from ..sim.faults import FaultPlan
from ..workload.generator import TenantSpec, Trace, generate_trace
from ..workload.requests import SLOTarget

#: workloads of the main evaluation figures, in plotting order
PAPER_WORKLOAD_ORDER = ("wikitext2", "lp128_ld2048", "lp2048_ld128", "lp2048_ld2048")

#: decoder-only models of Fig. 13/14, in plotting order
DECODER_MODELS = ("llama-13b", "baichuan-13b", "llama-32b", "qwen-32b")

#: encoder-containing models of Fig. 16
ENCODER_MODELS = ("bert-large", "t5-11b")

#: compatibility view of the Fig. 13/14 comparison baselines; derived from the
#: canonical :data:`repro.api.SYSTEM_REGISTRY`, keyed by display name
BASELINE_SYSTEMS: dict[str, type[BaselineSystem]] = {
    get_system(key).display_name: get_system(key).system_cls
    for key in comparison_grid_keys()
}

OUROBOROS_NAME = "Ours"


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiment drivers.

    The defaults are sized so the full figure suite runs in minutes on a
    laptop; pass ``num_requests=1000`` to match the paper's trace size exactly.
    """

    num_requests: int = 200
    seed: int = 0
    chunk_tokens: int = 256
    anneal_iterations: int = 50
    kv_threshold: float = 0.1
    model_defects: bool = True
    #: mean Poisson request arrival rate in requests/s (0 = closed batch);
    #: nonzero rates serve the trace open-loop and populate the TTFT /
    #: end-to-end latency fields of RunResult
    arrival_rate_per_s: float = 0.0
    #: multi-tenant serving: per-tenant workloads and arrival processes
    #: (empty = the single-tenant workload named by the figure driver)
    tenants: tuple[TenantSpec, ...] = ()
    #: per-request SLO the run's goodput is evaluated against (optional)
    slo: SLOTarget | None = None
    #: continuous-batching limit (None = bounded only by KV capacity)
    max_active_sequences: int | None = None
    #: admission-order policy of the scheduler (fcfs / wfq / priority)
    scheduling_policy: str = "fcfs"
    #: priority units gained per second of waiting (priority policy only)
    priority_aging_rate: float = 1.0
    #: deterministic runtime fault plan injected while serving (None = no
    #: faults; Ouroboros only)
    faults: FaultPlan | None = None
    #: admission-queue bound for overload shedding (None = unbounded)
    max_queue_depth: int | None = None
    #: shed waiting requests whose TTFT deadline can no longer be met
    shed_deadline: bool = False
    #: service-time slack reserved by deadline shedding (see PipelineConfig)
    shed_headroom_s: float = 0.0
    #: retry-with-backoff budget before a shed becomes permanent
    shed_retries: int = 0
    #: base backoff delay for shed retries (doubles per retry)
    shed_backoff_s: float = 0.0
    #: let the scheduling policy preempt active lower-ranked sequences
    preemptive: bool = False

    def pipeline_config(self) -> PipelineConfig:
        return PipelineConfig(
            chunk_tokens=self.chunk_tokens,
            max_active_sequences=self.max_active_sequences,
            scheduling_policy=self.scheduling_policy,
            priority_aging_rate=self.priority_aging_rate,
            max_queue_depth=self.max_queue_depth,
            shed_deadline=self.shed_deadline,
            shed_headroom_s=self.shed_headroom_s,
            shed_retries=self.shed_retries,
            shed_backoff_s=self.shed_backoff_s,
            preemptive=self.preemptive,
        )

    def system_config(self, **overrides) -> OuroborosSystemConfig:
        config = replace(
            api.default_system_config(),
            anneal_iterations=self.anneal_iterations,
            kv_threshold=self.kv_threshold,
            model_defects=self.model_defects,
            pipeline=self.pipeline_config(),
        )
        if overrides:
            config = replace(config, **overrides)
        return config

    def deployment(
        self,
        model: ModelArch | str,
        workload: str,
        system: str = "ouroboros",
        *,
        workload_label: str | None = None,
        options: dict | None = None,
        config: OuroborosSystemConfig | None = None,
        **config_overrides,
    ) -> DeploymentSpec:
        """Build the :class:`DeploymentSpec` these settings describe."""
        return DeploymentSpec(
            model=api.resolve_model_name(model),
            system=get_system(system).key,
            config=config if config is not None else self.system_config(**config_overrides),
            options=dict(options or {}),
            workload=workload,
            workload_label=workload_label,
            num_requests=self.num_requests,
            seed=self.seed,
            arrival_rate_per_s=self.arrival_rate_per_s,
            tenants=self.tenants,
            slo=self.slo,
            faults=self.faults,
        )


DEFAULT_SETTINGS = ExperimentSettings()


# ---------------------------------------------------------------------------
# Running systems
# ---------------------------------------------------------------------------


def resolve_model(model: ModelArch | str) -> ModelArch:
    return get_model(model) if isinstance(model, str) else model


def workload_trace(
    workload: str, settings: ExperimentSettings = DEFAULT_SETTINGS
) -> Trace:
    return generate_trace(
        workload,
        num_requests=settings.num_requests,
        seed=settings.seed,
        arrival_rate_per_s=settings.arrival_rate_per_s,
    )


def run_ouroboros(
    model: ModelArch | str,
    workload: str,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    **config_overrides,
) -> RunResult:
    """Deprecated: serve one workload on Ouroboros.

    Thin shim over :func:`repro.api.serve`; results are bitwise-identical.
    """
    warnings.warn(
        "run_ouroboros() is deprecated; use repro.api.serve(settings.deployment(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return api.serve(settings.deployment(model, workload, **config_overrides))


def run_baseline(
    name: str,
    model: ModelArch | str,
    workload: str,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> RunResult | None:
    """Deprecated: serve one workload on a named baseline.

    Thin shim over :func:`repro.api.serve`.  Returns ``None`` when the
    baseline cannot deploy the model at all (e.g. the model does not fit the
    Cerebras WSE-2's SRAM), mirroring missing bars.
    """
    warnings.warn(
        "run_baseline() is deprecated; use repro.api.serve(settings.deployment(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        return api.serve(settings.deployment(model, workload, system=name))
    except ConfigurationError:
        return None


def run_grid(
    models: tuple[str, ...],
    workloads: tuple[str, ...],
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    runner=None,
) -> dict[tuple[str, str], dict[str, RunResult]]:
    """Run a model x workload grid through the parallel :class:`SweepRunner`.

    Cells fan out across a process pool on multi-core machines and can be
    served from the on-disk result cache (``REPRO_RESULT_CACHE_DIR``); on a
    single core the runner reuses one built system per model, exactly like
    the historical serial loop.
    """
    from ..perf.sweep import SweepRunner

    runner = runner or SweepRunner()
    return runner.run_grid(tuple(models), tuple(workloads), settings)


def cell_deployments(
    model: ModelArch | str,
    workload: str,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    systems: tuple[str, ...] | None = None,
) -> list[DeploymentSpec]:
    """The specs one comparison cell serves: the baselines, then Ouroboros.

    ``systems`` restricts the baseline set by key or display name (Ouroboros
    always runs); ``()`` means Ouroboros only, e.g. for the open-loop arrival
    sweep, where the analytic baselines have no notion of arrival times.
    """
    specs: list[DeploymentSpec] = []
    for key in comparison_grid_keys():
        entry = get_system(key)
        if systems is not None and not {entry.key, entry.display_name} & set(systems):
            continue
        specs.append(settings.deployment(model, workload, system=key))
    specs.append(settings.deployment(model, workload))
    return specs


def run_all_systems(
    model: ModelArch | str,
    workload: str,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    ouroboros_system: OuroborosSystem | None = None,
    systems: tuple[str, ...] | None = None,
) -> dict[str, RunResult]:
    """Run every baseline plus Ouroboros on one (model, workload) cell.

    Every system is constructed and served through the unified
    :func:`repro.api.serve` entry point.  Specs are validated loudly first
    (e.g. a nonzero arrival rate with closed-batch baselines raises the typed
    :class:`ConfigurationError` instead of being swallowed); only *capacity*
    failures while building -- a baseline that cannot deploy the model at all
    -- are omitted, mirroring the missing bars of the paper's figures.
    ``ouroboros_system`` serves on a caller-provided system instead of the
    spec-built one (legacy hook).
    """
    specs = cell_deployments(model, workload, settings, systems=systems)
    for spec in specs:
        spec.validate()
    results: dict[str, RunResult] = {}
    for spec in specs:
        display = get_system(spec.system).display_name
        if spec.system == "ouroboros":
            if ouroboros_system is not None:
                trace = api.trace_for(spec)
                result = ouroboros_system.serve(trace, workload_name=spec.label())
                result.system = OUROBOROS_NAME
                results[OUROBOROS_NAME] = result
                continue
            display = OUROBOROS_NAME
        try:
            results[display] = api.serve(spec)
        except ConfigurationError:
            continue
    return results


# ---------------------------------------------------------------------------
# Normalisation and tabulation
# ---------------------------------------------------------------------------


def normalized_throughput(
    results: dict[str, RunResult], reference: str = "DGX A100"
) -> dict[str, float]:
    """Throughput of every system normalised to ``reference`` (Fig. 13 style)."""
    base = results[reference].throughput_tokens_per_s
    if base <= 0:
        raise ConfigurationError(f"reference system {reference} produced no tokens")
    return {
        name: result.throughput_tokens_per_s / base for name, result in results.items()
    }


def normalized_energy(
    results: dict[str, RunResult], reference: str = "DGX A100"
) -> dict[str, float]:
    """Energy per output token normalised to ``reference`` (Fig. 14 style)."""
    base = results[reference].energy_per_output_token_j
    if base <= 0:
        raise ConfigurationError(f"reference system {reference} consumed no energy")
    return {
        name: result.energy_per_output_token_j / base for name, result in results.items()
    }


@dataclass
class FigureResult:
    """Generic container for one regenerated figure."""

    figure: str
    description: str
    rows_data: list[dict] = field(default_factory=list)

    def rows(self) -> list[dict]:
        return list(self.rows_data)

    def format_table(self) -> str:
        if not self.rows_data:
            return f"{self.figure}: (no data)"
        columns = list(self.rows_data[0].keys())
        widths = {
            column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in self.rows_data))
            for column in columns
        }
        header = " | ".join(str(column).ljust(widths[column]) for column in columns)
        separator = "-+-".join("-" * widths[column] for column in columns)
        lines = [f"{self.figure}: {self.description}", header, separator]
        for row in self.rows_data:
            lines.append(
                " | ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns)
            )
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def geometric_mean(values: list[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= max(value, 1e-12)
    return product ** (1.0 / len(values))
