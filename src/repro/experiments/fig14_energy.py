"""Fig. 14 -- normalized energy per output token, with breakdown.

Reuses the raw Fig. 13 grid (same systems, same workloads) and reports, per
(model, workload) cell, each system's energy per output token normalized to
DGX A100 together with the compute / on-chip / off-chip / communication split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .common import (
    DECODER_MODELS,
    DEFAULT_SETTINGS,
    OUROBOROS_NAME,
    PAPER_WORKLOAD_ORDER,
    ExperimentSettings,
    FigureResult,
    geometric_mean,
    normalized_energy,
)
from .fig13_throughput import main_comparison_grid


@dataclass
class EnergyResult(FigureResult):
    grid: dict[tuple[str, str], dict[str, float]] = field(default_factory=dict)

    def average_reduction_vs(self, baseline: str) -> float:
        """Average fractional energy reduction of Ouroboros vs. one baseline."""
        ratios = []
        for values in self.grid.values():
            if baseline in values and values[baseline] > 0:
                ratios.append(values[OUROBOROS_NAME] / values[baseline])
        if not ratios:
            return 0.0
        return 1.0 - geometric_mean(ratios)


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    models: tuple[str, ...] = DECODER_MODELS,
    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER,
) -> EnergyResult:
    raw = main_comparison_grid(settings, models, workloads)
    result = EnergyResult(
        figure="Fig. 14",
        description="Normalized energy per output token (reference: DGX A100)",
    )
    for (model, workload), cell in raw.items():
        normalized = normalized_energy(cell)
        result.grid[(model, workload)] = normalized
        for name, run_result in cell.items():
            fractions = run_result.energy.fractions()
            result.rows_data.append(
                {
                    "model": model,
                    "workload": workload,
                    "system": name,
                    "normalized_energy": normalized[name],
                    "compute_frac": fractions["compute"],
                    "on_chip_frac": fractions["on_chip_memory"],
                    "off_chip_frac": fractions["off_chip_memory"],
                    "communication_frac": fractions["communication"],
                }
            )
    return result
