"""Fig. 18 -- normalized transmission volume of the mapping schemes.

Compares the per-token on-wafer communication volume of three execution
schemes for LLaMA-13B/32B/65B: Cerebras's default SUMMA + pipelined
all-reduce, a WaferLLM-style locality-aware placement, and the Ouroboros
MIQP-style mapping.  The paper reports a 45% average reduction versus Cerebras
and 18% versus WaferLLM, with the advantage growing with model size.

LLaMA-65B does not fit one wafer; because every transformer block is identical,
its per-block volume is computed on a single-wafer mapping of as many blocks as
fit and scaled to the full block count (the paper's multi-wafer mapping does the
same per-wafer placement twice).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..hardware.wafer import Wafer
from ..hardware.yieldmodel import sample_defect_map
from ..mapping.baselines import (
    TransmissionVolume,
    cerebras_summa_volume,
    ouroboros_volume,
    waferllm_volume,
)
from ..mapping.intercore import map_model
from ..models.architectures import ModelArch
from ..models.layers import cores_per_block
from .common import DEFAULT_SETTINGS, ExperimentSettings, FigureResult, resolve_model

MAPPING_MODELS = ("llama-13b", "llama-32b", "llama-65b")
SCHEMES = ("Cerebras", "WaferLLM", "Ours")


@dataclass
class MappingResult(FigureResult):
    volumes: dict[tuple[str, str], TransmissionVolume] = field(default_factory=dict)

    def normalized(self, model: str) -> dict[str, float]:
        reference = self.volumes[(model, "Cerebras")].byte_hops_per_token
        return {
            scheme: self.volumes[(model, scheme)].byte_hops_per_token / reference
            for scheme in SCHEMES
        }

    def average_reduction_vs(self, scheme: str, models: tuple[str, ...] | None = None) -> float:
        if models is None:
            models = tuple(sorted({model for model, _ in self.volumes}))
        ratios = []
        for model in models:
            reference = self.volumes[(model, scheme)].byte_hops_per_token
            ours = self.volumes[(model, "Ours")].byte_hops_per_token
            if reference > 0:
                ratios.append(ours / reference)
        if not ratios:
            return 0.0
        return 1.0 - sum(ratios) / len(ratios)


def _fit_arch_and_scale(arch: ModelArch, wafer: Wafer) -> tuple[ModelArch, float]:
    """Cap the block count to what one wafer holds; return the volume scale."""
    capacity = wafer.config.die.core.weight_capacity_bytes
    per_block = cores_per_block(arch, capacity)
    budget = int(wafer.num_healthy_cores * 0.9)
    max_blocks = max(1, budget // per_block)
    if arch.num_blocks <= max_blocks:
        return arch, 1.0
    scaled = replace(arch, num_blocks=max_blocks)
    return scaled, arch.num_blocks / max_blocks


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    models: tuple[str, ...] = MAPPING_MODELS,
) -> MappingResult:
    result = MappingResult(
        figure="Fig. 18",
        description="Normalized per-token transmission volume of mapping schemes",
    )
    defect_map = (
        sample_defect_map(Wafer().config, seed=settings.seed)
        if settings.model_defects
        else None
    )
    wafer = Wafer(defect_map=defect_map)
    for model in models:
        arch = resolve_model(model)
        fit_arch, scale = _fit_arch_and_scale(arch, wafer)
        cerebras = cerebras_summa_volume(fit_arch, wafer)
        waferllm = waferllm_volume(fit_arch, wafer)
        ours = ouroboros_volume(
            fit_arch, wafer, anneal_iterations=settings.anneal_iterations, seed=settings.seed
        )
        for scheme, volume in (("Cerebras", cerebras), ("WaferLLM", waferllm), ("Ours", ours)):
            scaled = TransmissionVolume(
                scheme=scheme,
                byte_hops_per_token=volume.byte_hops_per_token * scale,
                bytes_per_token=volume.bytes_per_token * scale,
            )
            result.volumes[(model, scheme)] = scaled
    for model in models:
        normalized = result.normalized(model)
        row = {"model": model}
        row.update(normalized)
        result.rows_data.append(row)
    return result


def mapping_quality_summary(result: MappingResult) -> dict[str, float]:
    """The paper's headline mapping numbers: reduction vs Cerebras and WaferLLM."""
    return {
        "reduction_vs_cerebras": result.average_reduction_vs("Cerebras"),
        "reduction_vs_waferllm": result.average_reduction_vs("WaferLLM"),
    }


def _unused_map_model_reference() -> None:  # pragma: no cover - documentation aid
    """The mapping itself is exercised through :func:`ouroboros_volume`."""
    _ = map_model
