"""Fig. 26 -- preemptive scheduling and the recompute tax it pays.

PR 10's scheduler can *preempt*: when the batch cap or the KV cache is full
and a higher-ranked request arrives, the policy may evict an active
lower-ranked sequence (dropping its KV blocks), re-queue it with its tenant
and priority preserved, and admit the arrival in its place.  The evicted
sequence recomputes its prefill when it is re-admitted, so preemption trades
batch-tenant recompute work for interactive-tenant TTFT tail.

This figure measures both sides of that trade.  The fig24 two-tenant mix is
re-served at the saturated 4x load under ``wfq`` and ``priority`` admission,
co-sweeping the continuous-batching cap (``max_active_sequences``) with the
``preemptive`` knob off and on.  Offered loads and per-tenant SLOs come from
the same FCFS closed-batch anchor construction as fig23/fig24, so the
preemptive numbers are directly comparable against fig24's non-preemptive
headline: the interactive tenant's TTFT p95 under preemptive wfq must land
*below* the fig24 wfq anchor at the same load, and the recompute tax shows up
as the batch tenant's preemption and recomputed-token counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..perf.sweep import SweepRunner
from ..workload.generator import TenantSpec
from ..workload.policies import validate_policy_name
from ..workload.requests import SLOTarget
from . import fig23_slo_goodput as fig23
from . import fig24_policy_comparison as fig24
from .common import DEFAULT_SETTINGS, ExperimentSettings, FigureResult

#: swept preemption-capable policies (fcfs never nominates a victim, so it is
#: only run as the anchor that defines loads and SLOs)
DEFAULT_POLICIES = ("wfq", "priority")

#: swept continuous-batching caps; the first is the fig23/fig24 default and
#: carries the headline comparison against fig24's wfq anchor
DEFAULT_MAX_ACTIVE_CAPS = (8, 16)

#: swept loads: the lightest fraction anchors the per-tenant SLOs exactly as
#: in fig23/fig24, the heaviest (past saturation) is where the headline is
#: read -- preemption only matters when admission actually contends
DEFAULT_LOAD_FRACTIONS = (0.25, 4.0)


@dataclass
class PreemptionResult(FigureResult):
    model: str = ""
    #: load fraction the headline numbers are read at
    headline_load: float = 0.0
    #: per-tenant SLOs shared by every swept cell (FCFS anchor)
    tenant_slos: dict[str, SLOTarget] = field(default_factory=dict)
    #: closed-batch service rate shared by every swept cell (FCFS anchor)
    base_rate_per_s: float = 0.0
    #: full sweep result per (policy, max_active, preemptive) cell
    results: dict[tuple[str, int, bool], fig23.SLOGoodputResult] = field(
        default_factory=dict
    )
    #: headline metrics: preemptive wfq at the first swept cap and heaviest
    #: load, with the non-preemptive run of the same cell as the baseline
    headline: dict[str, float] = field(default_factory=dict)

    def interactive_ttft_p95(
        self, policy: str, max_active: int, preemptive: bool
    ) -> float:
        run_result = self.results[(policy, max_active, preemptive)].results[
            self.headline_load
        ]
        return run_result.tenants["interactive"].ttft.p95_s


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    model: str = "llama-13b",
    tenants: tuple[TenantSpec, ...] | None = None,
    load_fractions: tuple[float, ...] = DEFAULT_LOAD_FRACTIONS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    max_active_caps: tuple[int, ...] = DEFAULT_MAX_ACTIVE_CAPS,
    runner: SweepRunner | None = None,
) -> PreemptionResult:
    """Co-sweep policy x batch cap x preemption at the saturated load."""
    runner = runner or SweepRunner()
    policies = tuple(validate_policy_name(policy) for policy in policies)
    tenants = (
        tenants
        if tenants is not None
        else fig24.default_policy_tenants(settings.num_requests)
    )
    anchor_cap = max_active_caps[0]

    # The FCFS anchor (non-preemptive, first swept cap) defines the offered
    # loads and per-tenant SLOs exactly as fig24 does, so the preemptive
    # numbers below are judged against the same deadlines as fig24's rows.
    anchor = fig23.run(
        replace(
            settings,
            scheduling_policy="fcfs",
            max_active_sequences=anchor_cap,
            preemptive=False,
        ),
        model=model,
        tenants=tenants,
        load_fractions=load_fractions,
        runner=runner,
    )
    slo_tenants = tuple(
        replace(tenant, slo=anchor.tenant_slos[tenant.name]) for tenant in tenants
    )

    sweeps: dict[tuple[str, int, bool], fig23.SLOGoodputResult] = {}
    for policy in policies:
        for cap in max_active_caps:
            for preemptive in (False, True):
                sweeps[(policy, cap, preemptive)] = fig23.run(
                    replace(
                        settings,
                        scheduling_policy=policy,
                        max_active_sequences=cap,
                        preemptive=preemptive,
                    ),
                    model=model,
                    tenants=slo_tenants,
                    load_fractions=load_fractions,
                    runner=runner,
                    base_rate_per_s=anchor.base_rate_per_s,
                )

    headline_load = max(load_fractions)
    result = PreemptionResult(
        figure="Fig. 26",
        description=(
            f"Preemptive scheduling on {model} "
            f"({'+'.join(t.name for t in tenants)}; policies "
            f"{'/'.join(policies)} x caps "
            f"{'/'.join(str(c) for c in max_active_caps)} x preempt off/on; "
            f"loads and SLOs from the FCFS anchor, headline at "
            f"{headline_load:g}x the closed-batch rate, "
            f"{anchor.base_rate_per_s:.1f} req/s)"
        ),
        model=model,
        headline_load=headline_load,
        tenant_slos=dict(anchor.tenant_slos),
        base_rate_per_s=anchor.base_rate_per_s,
        results=sweeps,
    )
    interactive_name = tenants[0].name
    batch_name = tenants[-1].name
    for (policy, cap, preemptive), sweep in sweeps.items():
        for fraction in load_fractions:
            run_result = sweep.results[fraction]
            interactive = run_result.tenants[interactive_name]
            batch = run_result.tenants[batch_name]
            result.rows_data.append(
                {
                    "policy": policy,
                    "max_active": cap,
                    "preemptive": preemptive,
                    "load": fraction,
                    "goodput": run_result.goodput,
                    "interactive_ttft_p95_s": interactive.ttft.p95_s,
                    "interactive_goodput": interactive.goodput,
                    "batch_goodput": batch.goodput,
                    "preemptions": interactive.preemptions + batch.preemptions,
                    "recomputed_tokens": interactive.recomputed_tokens
                    + batch.recomputed_tokens,
                }
            )

    # Headline: preemptive wfq at the anchor cap versus its own
    # non-preemptive twin (same policy, cap, loads, SLOs), read past
    # saturation -- the apples-to-apples cut preemption buys, plus the
    # recompute tax it pays for it.
    headline_policy = "wfq" if "wfq" in policies else policies[0]
    on = sweeps[(headline_policy, anchor_cap, True)].results[headline_load]
    off = sweeps[(headline_policy, anchor_cap, False)].results[headline_load]
    result.headline = {
        "interactive_ttft_p95_s": on.tenants[interactive_name].ttft.p95_s,
        "baseline_interactive_ttft_p95_s": off.tenants[interactive_name].ttft.p95_s,
        "goodput": float(on.goodput or 0.0),
        "baseline_goodput": float(off.goodput or 0.0),
        "preemptions": float(
            on.tenants[interactive_name].preemptions
            + on.tenants[batch_name].preemptions
        ),
        "recomputed_tokens": float(
            on.tenants[interactive_name].recomputed_tokens
            + on.tenants[batch_name].recomputed_tokens
        ),
    }
    return result
