"""Fig. 16 -- encoder-containing models (BERT-Large, T5-11B).

Plain TGP relies on the causal mask; bidirectional / prefix masks force the
attention stages back to sequence granularity ("TGP with block", Section
4.2.2).  This driver serves BERT-Large and T5-11B on Ouroboros (blocked TGP)
and the four baselines, reporting throughput and energy per *processed* token
(encoders generate few or no output tokens, so the per-output-token metric of
the decoder figures is replaced by the per-token metric here).

It also reports the paper's two supporting claims:

* blocked TGP is ~25x faster than falling back to fully sequence-grained
  pipelining for encoder models, and
* blocking costs only ~5% on decoder-only models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..api import comparison_grid_keys
from ..errors import ConfigurationError
from ..results import RunResult
from ..sim.engine import PipelineMode
from .common import (
    DEFAULT_SETTINGS,
    OUROBOROS_NAME,
    ExperimentSettings,
    FigureResult,
)

ENCODER_MODELS = ("bert-large", "t5-11b")

#: encoder workloads (spec-addressable fixed-length settings): BERT classifies
#: 384-token inputs; T5 summarises 512-token inputs into 64-token outputs
ENCODER_WORKLOADS = {
    "bert-large": "lp384_ld1",
    "t5-11b": "lp512_ld64",
}


def _per_token_throughput(result: RunResult) -> float:
    return result.total_throughput_tokens_per_s


def _per_token_energy(result: RunResult) -> float:
    if result.total_tokens <= 0:
        return 0.0
    return result.energy.total_j / result.total_tokens


@dataclass
class EncoderResult(FigureResult):
    raw: dict[tuple[str, str], RunResult] = field(default_factory=dict)
    #: blocked-TGP vs sequence-grained speedup per encoder model
    blocking_speedup: dict[str, float] = field(default_factory=dict)

    def normalized_throughput(self, model: str, reference: str = "DGX A100") -> dict[str, float]:
        base = _per_token_throughput(self.raw[(model, reference)])
        return {
            system: _per_token_throughput(result) / base
            for (m, system), result in self.raw.items()
            if m == model
        }

    def normalized_energy(self, model: str, reference: str = "DGX A100") -> dict[str, float]:
        base = _per_token_energy(self.raw[(model, reference)])
        return {
            system: _per_token_energy(result) / base
            for (m, system), result in self.raw.items()
            if m == model
        }


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    models: tuple[str, ...] = ENCODER_MODELS,
) -> EncoderResult:
    result = EncoderResult(
        figure="Fig. 16",
        description="Encoder-based models: throughput and energy vs. baselines",
    )
    for model in models:
        workload = ENCODER_WORKLOADS[model]
        for key in comparison_grid_keys():
            spec = settings.deployment(
                model, workload, system=key, workload_label="encoder"
            )
            try:
                baseline = api.serve(spec)
            except ConfigurationError:
                continue
            result.raw[(model, api.get_system(key).display_name)] = baseline

        blocked = api.serve(settings.deployment(
            model, workload, workload_label="encoder",
            pipeline_mode=PipelineMode.BLOCKED,
        ))
        blocked.system = OUROBOROS_NAME
        result.raw[(model, OUROBOROS_NAME)] = blocked

        sequential = api.serve(settings.deployment(
            model, workload, workload_label="encoder",
            pipeline_mode=PipelineMode.SEQUENCE_GRAINED,
        ))
        result.blocking_speedup[model] = _per_token_throughput(blocked) / max(
            _per_token_throughput(sequential), 1e-12
        )

    for model in models:
        throughput = result.normalized_throughput(model)
        energy = result.normalized_energy(model)
        for system in throughput:
            result.rows_data.append(
                {
                    "model": model,
                    "system": system,
                    "normalized_throughput": throughput[system],
                    "normalized_energy": energy[system],
                }
            )
    return result


def decoder_blocking_penalty(
    settings: ExperimentSettings = DEFAULT_SETTINGS, model: str = "llama-13b"
) -> float:
    """Throughput cost of blocking on a decoder-only model (paper: ~5%)."""
    tgp = api.serve(settings.deployment(
        model, "wikitext2", pipeline_mode=PipelineMode.TOKEN_GRAINED
    ))
    blocked = api.serve(settings.deployment(
        model, "wikitext2", pipeline_mode=PipelineMode.BLOCKED
    ))
    return 1.0 - blocked.throughput_tokens_per_s / max(
        tgp.throughput_tokens_per_s, 1e-12
    )
