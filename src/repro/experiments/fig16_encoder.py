"""Fig. 16 -- encoder-containing models (BERT-Large, T5-11B).

Plain TGP relies on the causal mask; bidirectional / prefix masks force the
attention stages back to sequence granularity ("TGP with block", Section
4.2.2).  This driver serves BERT-Large and T5-11B on Ouroboros (blocked TGP)
and the four baselines, reporting throughput and energy per *processed* token
(encoders generate few or no output tokens, so the per-output-token metric of
the decoder figures is replaced by the per-token metric here).

It also reports the paper's two supporting claims:

* blocked TGP is ~25x faster than falling back to fully sequence-grained
  pipelining for encoder models, and
* blocking costs only ~5% on decoder-only models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.system import OuroborosSystem
from ..results import RunResult
from ..sim.engine import PipelineMode
from ..workload.distributions import FixedLengthDistribution
from ..workload.generator import Trace, TraceGenerator, WorkloadSpec
from .common import (
    BASELINE_SYSTEMS,
    DEFAULT_SETTINGS,
    OUROBOROS_NAME,
    ExperimentSettings,
    FigureResult,
    resolve_model,
)

ENCODER_MODELS = ("bert-large", "t5-11b")

#: encoder workloads: BERT classifies 384-token inputs; T5 summarises
#: 512-token inputs into 64-token outputs
ENCODER_WORKLOADS = {
    "bert-large": FixedLengthDistribution(prefill_length=384, decode_length=1),
    "t5-11b": FixedLengthDistribution(prefill_length=512, decode_length=64),
}


def encoder_trace(model: str, settings: ExperimentSettings) -> Trace:
    distribution = ENCODER_WORKLOADS[model]
    spec = WorkloadSpec(
        name=f"{model}-encoder",
        distribution=distribution,
        num_requests=settings.num_requests,
        seed=settings.seed,
    )
    return TraceGenerator(spec).generate()


def _per_token_throughput(result: RunResult) -> float:
    return result.total_throughput_tokens_per_s


def _per_token_energy(result: RunResult) -> float:
    if result.total_tokens <= 0:
        return 0.0
    return result.energy.total_j / result.total_tokens


@dataclass
class EncoderResult(FigureResult):
    raw: dict[tuple[str, str], RunResult] = field(default_factory=dict)
    #: blocked-TGP vs sequence-grained speedup per encoder model
    blocking_speedup: dict[str, float] = field(default_factory=dict)

    def normalized_throughput(self, model: str, reference: str = "DGX A100") -> dict[str, float]:
        base = _per_token_throughput(self.raw[(model, reference)])
        return {
            system: _per_token_throughput(result) / base
            for (m, system), result in self.raw.items()
            if m == model
        }

    def normalized_energy(self, model: str, reference: str = "DGX A100") -> dict[str, float]:
        base = _per_token_energy(self.raw[(model, reference)])
        return {
            system: _per_token_energy(result) / base
            for (m, system), result in self.raw.items()
            if m == model
        }


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    models: tuple[str, ...] = ENCODER_MODELS,
) -> EncoderResult:
    result = EncoderResult(
        figure="Fig. 16",
        description="Encoder-based models: throughput and energy vs. baselines",
    )
    for model in models:
        arch = resolve_model(model)
        trace = encoder_trace(model, settings)
        for name, system_cls in BASELINE_SYSTEMS.items():
            try:
                baseline = system_cls(arch)
            except Exception:
                continue
            result.raw[(model, name)] = baseline.serve(trace, workload_name="encoder")

        blocked_system = OuroborosSystem(
            arch, settings.system_config(pipeline_mode=PipelineMode.BLOCKED)
        )
        blocked = blocked_system.serve(trace, workload_name="encoder")
        blocked.system = OUROBOROS_NAME
        result.raw[(model, OUROBOROS_NAME)] = blocked

        sequence_system = OuroborosSystem(
            arch, settings.system_config(pipeline_mode=PipelineMode.SEQUENCE_GRAINED)
        )
        sequential = sequence_system.serve(trace, workload_name="encoder")
        result.blocking_speedup[model] = _per_token_throughput(blocked) / max(
            _per_token_throughput(sequential), 1e-12
        )

    for model in models:
        throughput = result.normalized_throughput(model)
        energy = result.normalized_energy(model)
        for system in throughput:
            result.rows_data.append(
                {
                    "model": model,
                    "system": system,
                    "normalized_throughput": throughput[system],
                    "normalized_energy": energy[system],
                }
            )
    return result


def decoder_blocking_penalty(
    settings: ExperimentSettings = DEFAULT_SETTINGS, model: str = "llama-13b"
) -> float:
    """Throughput cost of blocking on a decoder-only model (paper: ~5%)."""
    arch = resolve_model(model)
    from .common import workload_trace

    trace = workload_trace("wikitext2", settings)
    tgp = OuroborosSystem(
        arch, settings.system_config(pipeline_mode=PipelineMode.TOKEN_GRAINED)
    ).serve(trace)
    blocked = OuroborosSystem(
        arch, settings.system_config(pipeline_mode=PipelineMode.BLOCKED)
    ).serve(trace)
    return 1.0 - blocked.throughput_tokens_per_s / max(
        tgp.throughput_tokens_per_s, 1e-12
    )
