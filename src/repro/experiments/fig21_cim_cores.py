"""Table 2 / Fig. 21 -- impact of the CIM-core circuit design on the system.

Table 2 contrasts the Ouroboros capacity-oriented core with two dense
circuit-level designs (VLSI'22, ISSCC'22).  Fig. 21 drops each design into the
Ouroboros system: the dense designs no longer hold the model on-wafer and must
stream weights from HBM2 (1.6 TB/s), so despite their superior TOPS/W they lose
at the system level; adding LUT-based computation to the Ouroboros core saves a
further ~10% of compute energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..baselines.cim_cores import ISSCC22, OUROBOROS_CORE, VLSI22
from ..results import RunResult
from .common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    FigureResult,
    geometric_mean,
)

FIG21_MODELS = ("llama-13b", "baichuan-13b", "llama-32b", "qwen-32b")
FIG21_WORKLOADS = ("wikitext2", "lp128_ld2048", "lp2048_ld128", "lp2048_ld2048")
DESIGN_ORDER = ("This work", "VLSI'22", "ISSCC'22", "This work + LUT")

#: the dense circuit designs, as system-registry keys
DENSE_DESIGN_SYSTEMS = {"VLSI'22": "cim-vlsi22", "ISSCC'22": "cim-isscc22"}


def table2() -> list[dict]:
    """The circuit-level comparison of Table 2 (7-nm-scaled figures)."""
    return [
        {
            "design": design.name,
            "tops_per_w": design.tops_per_w,
            "tops_per_mm2": design.tops_per_mm2,
            "wafer_capacity_gb": design.wafer_capacity_bytes / (1 << 30),
        }
        for design in (VLSI22, ISSCC22, OUROBOROS_CORE)
    ]


@dataclass
class CIMCoreResult(FigureResult):
    raw: dict[tuple[str, str, str], RunResult] = field(default_factory=dict)

    def normalized_energy(self, model: str, workload: str) -> dict[str, float]:
        ours = self.raw[(model, workload, "This work")].energy_per_output_token_j
        return {
            design: self.raw[(model, workload, design)].energy_per_output_token_j
            / max(ours, 1e-12)
            for design in DESIGN_ORDER
        }

    def normalized_throughput(self, model: str, workload: str) -> dict[str, float]:
        ours = self.raw[(model, workload, "This work")].throughput_tokens_per_s
        return {
            design: self.raw[(model, workload, design)].throughput_tokens_per_s
            / max(ours, 1e-12)
            for design in DESIGN_ORDER
        }

    def average_speedup_vs_dense(self) -> float:
        """Geometric-mean speedup of this work over the dense CIM designs."""
        ratios = []
        for (model, workload, design), result in self.raw.items():
            if design not in ("VLSI'22", "ISSCC'22"):
                continue
            ours = self.raw[(model, workload, "This work")]
            ratios.append(
                ours.throughput_tokens_per_s / max(result.throughput_tokens_per_s, 1e-12)
            )
        return geometric_mean(ratios)


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    models: tuple[str, ...] = FIG21_MODELS,
    workloads: tuple[str, ...] = FIG21_WORKLOADS,
) -> CIMCoreResult:
    result = CIMCoreResult(
        figure="Fig. 21",
        description="System impact of CIM-core circuit designs (normalized to this work)",
    )
    for model in models:
        for workload in workloads:
            ours = api.serve(settings.deployment(model, workload))
            ours.system = "This work"
            result.raw[(model, workload, "This work")] = ours
            lut = api.serve(settings.deployment(model, workload, lut_optimized=True))
            lut.system = "This work + LUT"
            result.raw[(model, workload, "This work + LUT")] = lut
            for name, system_key in DENSE_DESIGN_SYSTEMS.items():
                result.raw[(model, workload, name)] = api.serve(
                    settings.deployment(model, workload, system=system_key)
                )
    for model in models:
        for workload in workloads:
            energy = result.normalized_energy(model, workload)
            throughput = result.normalized_throughput(model, workload)
            for design in DESIGN_ORDER:
                result.rows_data.append(
                    {
                        "model": model,
                        "workload": workload,
                        "design": design,
                        "normalized_energy": energy[design],
                        "normalized_throughput": throughput[design],
                    }
                )
    return result
