"""Table 2 / Fig. 21 -- impact of the CIM-core circuit design on the system.

Table 2 contrasts the Ouroboros capacity-oriented core with two dense
circuit-level designs (VLSI'22, ISSCC'22).  Fig. 21 drops each design into the
Ouroboros system: the dense designs no longer hold the model on-wafer and must
stream weights from HBM2 (1.6 TB/s), so despite their superior TOPS/W they lose
at the system level; adding LUT-based computation to the Ouroboros core saves a
further ~10% of compute energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.cim_cores import (
    ALL_DESIGNS,
    ISSCC22,
    OUROBOROS_CORE,
    OUROBOROS_LUT_CORE,
    VLSI22,
    CIMCoreDesign,
    CIMCoreSystem,
)
from ..core.system import OuroborosSystem
from ..results import RunResult
from .common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    FigureResult,
    geometric_mean,
    resolve_model,
    workload_trace,
)

FIG21_MODELS = ("llama-13b", "baichuan-13b", "llama-32b", "qwen-32b")
FIG21_WORKLOADS = ("wikitext2", "lp128_ld2048", "lp2048_ld128", "lp2048_ld2048")
DESIGN_ORDER = ("This work", "VLSI'22", "ISSCC'22", "This work + LUT")


def table2() -> list[dict]:
    """The circuit-level comparison of Table 2 (7-nm-scaled figures)."""
    return [
        {
            "design": design.name,
            "tops_per_w": design.tops_per_w,
            "tops_per_mm2": design.tops_per_mm2,
            "wafer_capacity_gb": design.wafer_capacity_bytes / (1 << 30),
        }
        for design in (VLSI22, ISSCC22, OUROBOROS_CORE)
    ]


@dataclass
class CIMCoreResult(FigureResult):
    raw: dict[tuple[str, str, str], RunResult] = field(default_factory=dict)

    def normalized_energy(self, model: str, workload: str) -> dict[str, float]:
        ours = self.raw[(model, workload, "This work")].energy_per_output_token_j
        return {
            design: self.raw[(model, workload, design)].energy_per_output_token_j
            / max(ours, 1e-12)
            for design in DESIGN_ORDER
        }

    def normalized_throughput(self, model: str, workload: str) -> dict[str, float]:
        ours = self.raw[(model, workload, "This work")].throughput_tokens_per_s
        return {
            design: self.raw[(model, workload, design)].throughput_tokens_per_s
            / max(ours, 1e-12)
            for design in DESIGN_ORDER
        }

    def average_speedup_vs_dense(self) -> float:
        """Geometric-mean speedup of this work over the dense CIM designs."""
        ratios = []
        for (model, workload, design), result in self.raw.items():
            if design not in ("VLSI'22", "ISSCC'22"):
                continue
            ours = self.raw[(model, workload, "This work")]
            ratios.append(
                ours.throughput_tokens_per_s / max(result.throughput_tokens_per_s, 1e-12)
            )
        return geometric_mean(ratios)


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    models: tuple[str, ...] = FIG21_MODELS,
    workloads: tuple[str, ...] = FIG21_WORKLOADS,
) -> CIMCoreResult:
    result = CIMCoreResult(
        figure="Fig. 21",
        description="System impact of CIM-core circuit designs (normalized to this work)",
    )
    designs: dict[str, CIMCoreDesign] = {d.name: d for d in ALL_DESIGNS}
    for model in models:
        arch = resolve_model(model)
        ouroboros = OuroborosSystem(arch, settings.system_config())
        ouroboros_lut = OuroborosSystem(arch, settings.system_config(lut_optimized=True))
        for workload in workloads:
            trace = workload_trace(workload, settings)
            ours = ouroboros.serve(workload_trace(workload, settings), workload_name=workload)
            ours.system = "This work"
            result.raw[(model, workload, "This work")] = ours
            lut = ouroboros_lut.serve(
                workload_trace(workload, settings), workload_name=workload
            )
            lut.system = "This work + LUT"
            result.raw[(model, workload, "This work + LUT")] = lut
            for name in ("VLSI'22", "ISSCC'22"):
                system = CIMCoreSystem(arch, designs[name])
                result.raw[(model, workload, name)] = system.serve(
                    trace, workload_name=workload
                )
    for model in models:
        for workload in workloads:
            energy = result.normalized_energy(model, workload)
            throughput = result.normalized_throughput(model, workload)
            for design in DESIGN_ORDER:
                result.rows_data.append(
                    {
                        "model": model,
                        "workload": workload,
                        "design": design,
                        "normalized_energy": energy[design],
                        "normalized_throughput": throughput[design],
                    }
                )
    return result
