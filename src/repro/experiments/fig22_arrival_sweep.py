"""Fig. 22 -- open-loop serving: arrival rate versus throughput and latency.

This figure extends the paper's closed-batch evaluation (Figs. 13/14) with the
serving mode production deployments actually run: requests arrive over time
(Poisson process) and the system is measured on tail latency as well as
throughput.  The sweep fixes one (model, workload) cell and serves the same
request mix at increasing arrival rates, expressed as fractions of the
*closed-batch service rate* -- the request throughput the system sustains when
every request is available at t=0.  Below saturation the wafer idles between
arrivals (throughput tracks the offered load, latency stays flat); past
saturation a queue builds and the latency percentiles grow while throughput
plateaus at the batch rate.

Only Ouroboros is swept: the analytic baseline models have no notion of
arrival times.  Cell execution goes through :class:`repro.perf.SweepRunner`,
so the rate variants fan out across a process pool on multi-core machines and
reuse the on-disk result cache (``REPRO_RESULT_CACHE_DIR``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..perf.sweep import SweepCell, SweepRunner
from ..results import RunResult
from .common import DEFAULT_SETTINGS, OUROBOROS_NAME, ExperimentSettings, FigureResult

#: offered load as a fraction of the closed-batch service rate, in plot order
DEFAULT_LOAD_FRACTIONS = (0.25, 0.5, 1.0, 2.0)


@dataclass
class ArrivalSweepResult(FigureResult):
    model: str = ""
    workload: str = ""
    #: closed-batch request service rate (requests/s) the sweep is scaled by
    base_rate_per_s: float = 0.0
    #: RunResult per swept arrival rate (requests/s), in sweep order
    results: dict[float, RunResult] = field(default_factory=dict)

    def saturation_throughput_tok_s(self) -> float:
        """Output-token throughput at the highest swept load."""
        if not self.results:
            return 0.0
        return self.results[max(self.results)].throughput_tokens_per_s


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    model: str = "llama-13b",
    workload: str = "wikitext2",
    load_fractions: tuple[float, ...] = DEFAULT_LOAD_FRACTIONS,
    runner: SweepRunner | None = None,
) -> ArrivalSweepResult:
    """Sweep Poisson arrival rates on one (model, workload) cell."""
    runner = runner or SweepRunner()
    cell = SweepCell(model=model, workload=workload, systems=())

    # Anchor: the closed-batch run both defines the service rate the sweep is
    # scaled by and doubles as the regression reference (arrival rate 0 must
    # reproduce the batch numbers bit for bit).
    batch_settings = replace(settings, arrival_rate_per_s=0.0)
    batch = runner.run_variants(cell, [batch_settings])[0][OUROBOROS_NAME]
    base_rate = settings.num_requests / batch.total_time_s

    rates = [fraction * base_rate for fraction in load_fractions]
    variants = [replace(settings, arrival_rate_per_s=rate) for rate in rates]
    sweep = runner.run_variants(cell, variants)

    result = ArrivalSweepResult(
        figure="Fig. 22",
        description=(
            f"Open-loop arrival sweep on {model}/{workload} "
            f"(load relative to the closed-batch rate, {base_rate:.1f} req/s)"
        ),
        model=model,
        workload=workload,
        base_rate_per_s=base_rate,
    )
    for fraction, rate, cell_results in zip(load_fractions, rates, sweep):
        run_result = cell_results[OUROBOROS_NAME]
        result.results[rate] = run_result
        result.rows_data.append(
            {
                "load": fraction,
                "arrival_rate_req_s": rate,
                "throughput_tok_s": run_result.throughput_tokens_per_s,
                "ttft_p50_s": run_result.ttft.p50_s,
                "ttft_p95_s": run_result.ttft.p95_s,
                "latency_p50_s": run_result.latency.p50_s,
                "latency_p95_s": run_result.latency.p95_s,
                "latency_p99_s": run_result.latency.p99_s,
                "evictions": run_result.evictions,
            }
        )
    return result
