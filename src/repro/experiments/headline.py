"""Headline numbers of the paper (abstract / Section 6.2-6.3).

The paper summarises the main comparison as: 4.1x average throughput and 4.2x
average energy-efficiency improvement over the state-of-the-art systems,
peaking at 9.1x throughput and 17x energy efficiency for the 13B models.  This
driver aggregates the Fig. 13/14 grid into those summary statistics, measuring
the improvement against the *best* baseline of each cell (the strongest
competitor), which is the convention the abstract uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .common import (
    DECODER_MODELS,
    DEFAULT_SETTINGS,
    OUROBOROS_NAME,
    PAPER_WORKLOAD_ORDER,
    ExperimentSettings,
    FigureResult,
    geometric_mean,
)
from .fig13_throughput import main_comparison_grid


@dataclass
class HeadlineResult(FigureResult):
    speedups: dict[tuple[str, str], float] = field(default_factory=dict)
    efficiency_gains: dict[tuple[str, str], float] = field(default_factory=dict)

    @property
    def average_speedup(self) -> float:
        return geometric_mean(list(self.speedups.values()))

    @property
    def average_efficiency_gain(self) -> float:
        return geometric_mean(list(self.efficiency_gains.values()))

    @property
    def peak_speedup(self) -> float:
        return max(self.speedups.values())

    @property
    def peak_efficiency_gain(self) -> float:
        return max(self.efficiency_gains.values())

    def peak_speedup_13b(self) -> float:
        return max(
            value for (model, _), value in self.speedups.items() if "13b" in model
        )


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    models: tuple[str, ...] = DECODER_MODELS,
    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER,
    against: str = "best-baseline",
) -> HeadlineResult:
    raw = main_comparison_grid(settings, models, workloads)
    result = HeadlineResult(
        figure="Headline",
        description="Average / peak speedup and energy-efficiency gain vs. baselines",
    )
    for (model, workload), cell in raw.items():
        ours = cell[OUROBOROS_NAME]
        baselines = {name: r for name, r in cell.items() if name != OUROBOROS_NAME}
        if against == "best-baseline":
            best_throughput = max(r.throughput_tokens_per_s for r in baselines.values())
            best_energy = min(r.energy_per_output_token_j for r in baselines.values())
        else:
            best_throughput = baselines[against].throughput_tokens_per_s
            best_energy = baselines[against].energy_per_output_token_j
        speedup = ours.throughput_tokens_per_s / max(best_throughput, 1e-12)
        efficiency = best_energy / max(ours.energy_per_output_token_j, 1e-12)
        result.speedups[(model, workload)] = speedup
        result.efficiency_gains[(model, workload)] = efficiency
        result.rows_data.append(
            {
                "model": model,
                "workload": workload,
                "speedup_vs_best_baseline": speedup,
                "efficiency_gain_vs_best_baseline": efficiency,
            }
        )
    result.rows_data.append(
        {
            "model": "AVERAGE",
            "workload": "-",
            "speedup_vs_best_baseline": result.average_speedup,
            "efficiency_gain_vs_best_baseline": result.average_efficiency_gain,
        }
    )
    return result
