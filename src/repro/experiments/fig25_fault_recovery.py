"""Fig. 25 -- goodput under runtime faults, with and without overload shedding.

This figure (beyond the paper) stresses the fault-tolerance story end to end:
the two-tenant mix of the SLO-goodput figure is served at increasing offered
load while a deterministic :class:`~repro.sim.faults.FaultPlan` fails cores,
destroys KV blocks and freezes admission mid-run.  Every load point runs twice
-- once with the admission queue shedding nothing (every request waits out its
blown deadline in the queue) and once with deadline-aware early rejection
enabled -- so the figure reads off what graceful degradation buys: past
saturation the shedding run stops burning wafer time on requests that can no
longer meet their TTFT deadline, and its aggregate SLO goodput stays strictly
above the non-shedding run's.

The sweep is anchored exactly like Fig. 23: a closed-batch run of the mix
defines the service rate the load fractions scale, and the lightest swept
load (served fault-free) defines the per-tenant SLOs plus the shedding
headroom -- requests are dropped once their remaining TTFT budget falls below
a fraction of the *tightest* tenant deadline, i.e. once even an immediate
admission could not save them.  Fault event times are spread across each
run's arrival span, so the same plan stresses every load point at the same
relative phase of the run.

Only Ouroboros is swept: the analytic baselines have no runtime to break.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..perf.sweep import SweepCell, SweepRunner
from ..results import FaultStats, RunResult
from ..sim.faults import FaultPlan, make_fault_plan
from ..workload.generator import TenantSpec
from ..workload.requests import SLOTarget
from .common import DEFAULT_SETTINGS, OUROBOROS_NAME, ExperimentSettings, FigureResult
from .fig23_slo_goodput import (
    DEFAULT_GOODPUT_TARGET,
    DEFAULT_LATENCY_FACTOR,
    DEFAULT_MAX_ACTIVE,
    DEFAULT_TTFT_FACTOR,
    default_tenants,
)

#: offered load as a fraction of the closed-batch service rate; the last
#: fraction is well past saturation, which is where shedding earns its keep
DEFAULT_LOAD_FRACTIONS = (0.5, 1.0, 4.0)

#: fault events injected per run (0 = the fault-free control); expressed as a
#: count rather than a rate so the same sweep stresses every load point
#: equally -- the rate is count / arrival-span, which shrinks as load grows
DEFAULT_FAULT_COUNTS = (0, 4)

#: event mix the plans cycle through: transient KV loss, an admission freeze,
#: a permanent KV-core failure and a weight-core replacement chain
DEFAULT_FAULT_KINDS = ("kv_block", "stall", "kv_core", "weight_core")

#: shedding headroom as a fraction of the tightest tenant TTFT deadline: a
#: request is dropped once its remaining TTFT budget falls below this slack
#: (roughly the service time of one admission at light load).  Must stay
#: below 1.0 or interactive requests would be shed on arrival.
DEFAULT_HEADROOM_FRACTION = 0.4

#: injected stall length as a fraction of the tightest tenant TTFT deadline
DEFAULT_STALL_FRACTION = 0.5


@dataclass
class FaultRecoveryResult(FigureResult):
    model: str = ""
    #: per-tenant SLOs the goodput numbers are evaluated against
    tenant_slos: dict[str, SLOTarget] = field(default_factory=dict)
    #: combined closed-batch request service rate (requests/s) of the mix
    base_rate_per_s: float = 0.0
    #: deadline slack the shedding variants reject against
    shed_headroom_s: float = 0.0
    #: RunResult per (fault_count, load_fraction, shed) sweep point
    results: dict[tuple[int, float, bool], RunResult] = field(default_factory=dict)

    def headline(self) -> dict[str, float]:
        """Deterministic headline metrics at the harshest sweep point.

        Read at the highest fault count and highest load: aggregate SLO
        goodput and TTFT p95 with and without shedding, plus the fault
        accounting of the shedding run.  These are the numbers the benchmark
        trajectory asserts on.
        """
        if not self.results:
            return {}
        fault_count = max(key[0] for key in self.results)
        load = max(key[1] for key in self.results)
        shed = self.results[(fault_count, load, True)]
        no_shed = self.results[(fault_count, load, False)]
        faults = shed.faults if shed.faults is not None else FaultStats()
        return {
            "fault_goodput_shed": shed.goodput or 0.0,
            "fault_goodput_no_shed": no_shed.goodput or 0.0,
            "fault_ttft_p95_shed_s": shed.ttft.p95_s,
            "fault_ttft_p95_no_shed_s": no_shed.ttft.p95_s,
            "fault_shed_requests": float(shed.shed_requests),
            "fault_injected": float(faults.injected),
            "fault_recovered_sequences": float(faults.recovered_sequences),
            "fault_recompute_tokens": float(faults.recompute_tokens),
        }


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    model: str = "llama-13b",
    tenants: tuple[TenantSpec, ...] | None = None,
    load_fractions: tuple[float, ...] = DEFAULT_LOAD_FRACTIONS,
    fault_counts: tuple[int, ...] = DEFAULT_FAULT_COUNTS,
    runner: SweepRunner | None = None,
) -> FaultRecoveryResult:
    """Sweep fault count x offered load, with and without overload shedding."""
    runner = runner or SweepRunner()
    if settings.max_active_sequences is None:
        settings = replace(settings, max_active_sequences=DEFAULT_MAX_ACTIVE)
    tenants = tenants if tenants is not None else default_tenants(settings.num_requests)
    closed = tuple(replace(tenant, arrival_rate_per_s=0.0) for tenant in tenants)
    total_requests = sum(tenant.num_requests for tenant in closed)
    cell = SweepCell(model=model, workload="wikitext2", systems=())

    # Anchor 1: the closed-batch run defines the service rate the load
    # fractions scale (identical to the Fig. 23 anchor, so the cached cell is
    # shared between the two figures).
    batch_settings = replace(settings, tenants=closed, slo=None, arrival_rate_per_s=0.0)
    batch = runner.run_variants(cell, [batch_settings])[0][OUROBOROS_NAME]
    base_rate = total_requests / batch.total_time_s

    def tenants_at(fraction: float, tenants: tuple[TenantSpec, ...]):
        return tuple(
            replace(
                tenant,
                arrival_rate_per_s=fraction
                * base_rate
                * (tenant.num_requests / total_requests),
            )
            for tenant in tenants
        )

    # Anchor 2: the lightest swept load, fault-free and SLO-free, defines each
    # tenant's unloaded latency scale -- the same convention as Fig. 23.
    light_fraction = min(load_fractions)
    light = runner.run_variants(
        cell, [replace(settings, tenants=tenants_at(light_fraction, closed))]
    )[0][OUROBOROS_NAME]

    def tenant_slo(tenant: TenantSpec) -> SLOTarget:
        if tenant.slo is not None:
            return tenant.slo
        anchor = light.tenants[tenant.name]
        return SLOTarget(
            ttft_s=max(DEFAULT_TTFT_FACTOR * anchor.ttft.p95_s, 1e-9),
            latency_s=max(DEFAULT_LATENCY_FACTOR * anchor.latency.p95_s, 1e-9),
            goodput_target=DEFAULT_GOODPUT_TARGET,
        )

    closed = tuple(replace(tenant, slo=tenant_slo(tenant)) for tenant in closed)
    slos = {tenant.name: tenant.slo for tenant in closed}
    tightest_ttft = min(target.ttft_s for target in slos.values())
    headroom_s = DEFAULT_HEADROOM_FRACTION * tightest_ttft

    def fault_plan(count: int, fraction: float) -> FaultPlan | None:
        if count <= 0:
            return None
        # Spread the events across the run's arrival span so every load point
        # is stressed at the same relative phase.
        horizon_s = total_requests / (fraction * base_rate)
        return make_fault_plan(
            count / horizon_s,
            horizon_s,
            kinds=DEFAULT_FAULT_KINDS,
            stall_duration_s=DEFAULT_STALL_FRACTION * tightest_ttft,
            seed=settings.seed,
        )

    points = [
        (count, fraction, shed)
        for count in fault_counts
        for fraction in load_fractions
        for shed in (False, True)
    ]
    variants = [
        replace(
            settings,
            tenants=tenants_at(fraction, closed),
            faults=fault_plan(count, fraction),
            shed_deadline=shed,
            shed_headroom_s=headroom_s if shed else 0.0,
        )
        for count, fraction, shed in points
    ]
    sweep = runner.run_variants(cell, variants)

    slo_text = " ".join(
        f"{name}:ttft<={target.ttft_s:.3f}s,latency<={target.latency_s:.3f}s"
        for name, target in slos.items()
    )
    result = FaultRecoveryResult(
        figure="Fig. 25",
        description=(
            f"Fault recovery and overload shedding on {model} "
            f"({'+'.join(t.name for t in closed)}; load relative to the "
            f"closed-batch rate, {base_rate:.1f} req/s; faults cycle "
            f"{'/'.join(DEFAULT_FAULT_KINDS)}; shed headroom "
            f"{headroom_s * 1e3:.2f} ms; {slo_text})"
        ),
        model=model,
        tenant_slos=slos,
        base_rate_per_s=base_rate,
        shed_headroom_s=headroom_s,
    )
    for (count, fraction, shed), cell_results in zip(points, sweep):
        run_result = cell_results[OUROBOROS_NAME]
        result.results[(count, fraction, shed)] = run_result
        faults = run_result.faults if run_result.faults is not None else FaultStats()
        result.rows_data.append(
            {
                "faults": count,
                "load": fraction,
                "shed": shed,
                "goodput": run_result.goodput,
                "ttft_p95_s": run_result.ttft.p95_s,
                "shed_requests": run_result.shed_requests,
                "injected": faults.injected,
                "recovered_sequences": faults.recovered_sequences,
                "recompute_tokens": faults.recompute_tokens,
                "stall_time_s": faults.stall_time_s,
                "recovery_latency_s": faults.recovery_latency_s,
            }
        )
    return result
