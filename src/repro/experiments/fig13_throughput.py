"""Fig. 13 -- normalized throughput of Ouroboros versus the four baselines.

Grid: four decoder-only models (LLaMA-13B, Baichuan-13B, LLaMA-32B, Qwen-32B)
by four workload settings (WikiText-2 and the three fixed LP/LD pairs).  Every
cell reports the throughput of DGX A100, TPUv4, AttAcc, Cerebras WSE-2 and
Ouroboros, normalized to DGX A100.

Because Fig. 14 (energy) uses exactly the same runs, the raw grid is cached
per settings object and shared between the two drivers.  Cell execution is
delegated to :class:`repro.perf.SweepRunner`, which fans the independent cells
across a process pool on multi-core machines (``REPRO_SWEEP_PROCS`` overrides
the worker count) and can reuse an on-disk result cache
(``REPRO_RESULT_CACHE_DIR``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..perf.sweep import SweepRunner
from ..results import RunResult
from .common import (
    DECODER_MODELS,
    DEFAULT_SETTINGS,
    OUROBOROS_NAME,
    PAPER_WORKLOAD_ORDER,
    ExperimentSettings,
    FigureResult,
    geometric_mean,
    normalized_throughput,
)

#: cache of raw grids keyed by the settings object (they are frozen/hashable)
_GRID_CACHE: dict[tuple, dict[tuple[str, str], dict[str, RunResult]]] = {}


def _cache_key(settings: ExperimentSettings, models: tuple[str, ...], workloads: tuple[str, ...]) -> tuple:
    return (settings, models, workloads)


def main_comparison_grid(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    models: tuple[str, ...] = DECODER_MODELS,
    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER,
    runner: SweepRunner | None = None,
) -> dict[tuple[str, str], dict[str, RunResult]]:
    """Raw results for every (model, workload) cell of Fig. 13/14."""
    key = _cache_key(settings, tuple(models), tuple(workloads))
    if key in _GRID_CACHE:
        return _GRID_CACHE[key]
    runner = runner or SweepRunner()
    grid = runner.run_grid(tuple(models), tuple(workloads), settings)
    _GRID_CACHE[key] = grid
    return grid


@dataclass
class ThroughputResult(FigureResult):
    grid: dict[tuple[str, str], dict[str, float]] = field(default_factory=dict)

    def speedup_over(self, baseline: str = "DGX A100") -> dict[tuple[str, str], float]:
        return {cell: values[OUROBOROS_NAME] for cell, values in self.grid.items()}

    def average_speedup(self) -> float:
        return geometric_mean(
            [values[OUROBOROS_NAME] for values in self.grid.values()]
        )

    def peak_speedup(self) -> float:
        return max(values[OUROBOROS_NAME] for values in self.grid.values())


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    models: tuple[str, ...] = DECODER_MODELS,
    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER,
) -> ThroughputResult:
    raw = main_comparison_grid(settings, models, workloads)
    result = ThroughputResult(
        figure="Fig. 13",
        description="Normalized throughput vs. baselines (reference: DGX A100)",
    )
    for (model, workload), cell in raw.items():
        normalized = normalized_throughput(cell)
        result.grid[(model, workload)] = normalized
        row = {"model": model, "workload": workload}
        row.update({name: normalized[name] for name in cell})
        result.rows_data.append(row)
    return result
