"""Fig. 11 -- throughput versus crossbar row-activation ratio.

The crossbar activates one row per 32-row bank each cycle (a 1/32 ratio).
Raising the ratio adds adder-tree area, which crowds out SRAM and shrinks the
wafer-level KV capacity (fewer concurrent sequences -> the system becomes
*SRAM-capacity bound*); lowering it starves the MAC arrays (the system becomes
*computation bound*).  The paper quantifies this on LLaMA-13B and selects 1/32
as the peak.  This driver regenerates the curve from the area/throughput model
in :mod:`repro.hardware.crossbar`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.crossbar import effective_sram_ratio, throughput_vs_activation_ratio
from ..hardware.config import CrossbarConfig
from .common import DEFAULT_SETTINGS, ExperimentSettings, FigureResult

#: row-activation ratios swept by Fig. 11 (1/4 ... 1/256)
RATIOS = (1 / 4, 1 / 8, 1 / 16, 1 / 32, 1 / 64, 1 / 128, 1 / 256)


@dataclass
class RowActivationResult(FigureResult):
    throughput_by_ratio: dict[float, float] = field(default_factory=dict)

    def best_ratio(self) -> float:
        return max(self.throughput_by_ratio, key=self.throughput_by_ratio.get)


def run(settings: ExperimentSettings = DEFAULT_SETTINGS) -> RowActivationResult:
    throughput = throughput_vs_activation_ratio(list(RATIOS))
    result = RowActivationResult(
        figure="Fig. 11",
        description="Normalized throughput vs. crossbar row-activation ratio (LLaMA-13B)",
        throughput_by_ratio=throughput,
    )
    base = CrossbarConfig()
    for ratio in RATIOS:
        candidate = CrossbarConfig(row_activation_ratio=ratio)
        compute_scale = candidate.macs_per_cycle / CrossbarConfig().macs_per_cycle
        capacity_scale = effective_sram_ratio(ratio)
        bound = "compute" if compute_scale < capacity_scale else "sram_capacity"
        result.rows_data.append(
            {
                "row_activation_ratio": f"1/{round(1 / ratio)}",
                "normalized_throughput": throughput[ratio],
                "compute_scale": compute_scale,
                "kv_capacity_scale": capacity_scale,
                "bound_by": bound,
            }
        )
    _ = base
    return result
