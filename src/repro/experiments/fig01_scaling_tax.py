"""Fig. 1 -- the hardware scaling tax of conventional GPU deployments.

The paper's motivation figure shows that, as LLaMA-class models grow from 7B
to 130B parameters and the deployment scales from one to eight A100 GPUs, the
energy spent on data movement (off-chip memory, on-chip staging, inter-GPU
communication) grows much faster than the energy spent on computation.  This
driver reproduces the series: for each model size it serves a fixed workload
on the smallest DGX A100 slice that fits the model and reports the energy
breakdown per output token plus the compute-only share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .. import api
from ..baselines.gpu import dgx_a100_hardware
from ..models.architectures import generic_llm
from ..results import EnergyBreakdown
from ..units import GB
from .common import DEFAULT_SETTINGS, ExperimentSettings, FigureResult

#: model sizes (billions of parameters) swept by Fig. 1
MODEL_SIZES_B = (7.0, 13.0, 19.5, 32.0, 65.0, 130.0)

#: workload used for the motivation study
WORKLOAD = "lp2048_ld2048"


@dataclass
class ScalingTaxPoint:
    """One model-size point of Fig. 1."""

    model_size_b: float
    num_gpus: int
    energy: EnergyBreakdown
    output_tokens: int

    @property
    def compute_energy_j(self) -> float:
        return self.energy.compute_j

    @property
    def total_energy_j(self) -> float:
        return self.energy.total_j

    @property
    def data_movement_fraction(self) -> float:
        total = self.energy.total_j
        if total == 0:
            return 0.0
        return 1.0 - self.energy.compute_j / total


@dataclass
class ScalingTaxResult(FigureResult):
    points: list[ScalingTaxPoint] = field(default_factory=list)


def gpus_required(model_size_b: float) -> int:
    """Smallest power-of-two A100 count whose HBM holds the FP16 weights + KV."""
    weight_bytes = model_size_b * 1e9 * 2
    per_gpu = 40 * GB * 0.75  # keep 25% for KV cache and activations
    gpus = max(1, math.ceil(weight_bytes / per_gpu))
    return 1 << (gpus - 1).bit_length()


def run(settings: ExperimentSettings = DEFAULT_SETTINGS) -> ScalingTaxResult:
    result = ScalingTaxResult(
        figure="Fig. 1",
        description="Hardware scaling tax: energy breakdown vs. model size on A100s",
    )
    for size in MODEL_SIZES_B:
        arch = generic_llm(size)
        num_gpus = min(8, gpus_required(size))
        if arch.total_weight_params * 2 > dgx_a100_hardware(num_gpus).memory_capacity_bytes:
            # The largest models exceed even 8 GPUs of HBM in FP16; the paper
            # still deploys them on 8 GPUs (weights spill / are re-streamed),
            # which we approximate by charging the full weight traffic anyway.
            num_gpus = 8
        spec = settings.deployment(
            f"generic-{size:g}b",
            WORKLOAD,
            system="dgx-a100",
            options={"num_gpus": num_gpus},
        )
        run_result = api.serve(spec)
        point = ScalingTaxPoint(
            model_size_b=size,
            num_gpus=num_gpus,
            energy=run_result.energy,
            output_tokens=run_result.output_tokens,
        )
        result.points.append(point)
        result.rows_data.append(
            {
                "model_size_b": size,
                "num_gpus": num_gpus,
                "compute_energy_j": point.compute_energy_j,
                "total_energy_j": point.total_energy_j,
                "off_chip_j": point.energy.off_chip_memory_j,
                "on_chip_j": point.energy.on_chip_memory_j,
                "communication_j": point.energy.communication_j,
                "data_movement_fraction": point.data_movement_fraction,
            }
        )
    return result
