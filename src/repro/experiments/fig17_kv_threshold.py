"""Fig. 17 -- throughput and energy versus the KV-cache admission threshold.

The distributed KV manager marks a core "full" for new sequences once its free
space drops below a threshold, reserving the remainder for the decode-phase
growth of already-resident sequences (Section 4.4.4).  A zero threshold lets
admissions pack the cache completely and causes thrashing (evictions plus
recomputation); a very large threshold wastes capacity and reduces the number
of concurrent sequences.  The paper sweeps the threshold from 0 to 0.5 for
LLaMA and T5 and finds a throughput peak at a small positive threshold, with
energy mostly decreasing as thrashing disappears.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..results import RunResult
from ..sim.engine import PipelineMode
from .common import DEFAULT_SETTINGS, ExperimentSettings, FigureResult

THRESHOLDS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
SWEEP_MODELS = ("llama-13b", "t5-11b")


def _sweep_workload(model: str) -> str:
    """A decode-heavy workload that keeps the KV cache near capacity."""
    if model == "t5-11b":
        return "lp512_ld256"
    return "wikitext2_ldm6.5"


@dataclass
class KVThresholdResult(FigureResult):
    raw: dict[tuple[str, float], RunResult] = field(default_factory=dict)

    def normalized_series(self, model: str) -> dict[float, dict[str, float]]:
        thresholds = sorted(t for (m, t) in self.raw if m == model)
        base = self.raw[(model, thresholds[0])]
        series: dict[float, dict[str, float]] = {}
        for threshold in thresholds:
            result = self.raw[(model, threshold)]
            series[threshold] = {
                "throughput": result.throughput_tokens_per_s
                / max(base.throughput_tokens_per_s, 1e-12),
                "energy": result.energy_per_output_token_j
                / max(base.energy_per_output_token_j, 1e-12),
                "evictions": float(result.evictions),
                "recomputed_tokens": float(result.recomputed_tokens),
            }
        return series


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    models: tuple[str, ...] = SWEEP_MODELS,
    thresholds: tuple[float, ...] = THRESHOLDS,
) -> KVThresholdResult:
    result = KVThresholdResult(
        figure="Fig. 17",
        description="Throughput and energy vs. KV-cache admission threshold",
    )
    for model in models:
        workload = _sweep_workload(model)
        for threshold in thresholds:
            overrides = {"kv_threshold": threshold}
            if model == "t5-11b":
                overrides["pipeline_mode"] = PipelineMode.BLOCKED
            spec = settings.deployment(
                model, workload,
                workload_label=f"kv-threshold-{threshold}",
                **overrides,
            )
            result.raw[(model, threshold)] = api.serve(spec)
    for model in models:
        for threshold, values in result.normalized_series(model).items():
            result.rows_data.append(
                {
                    "model": model,
                    "threshold": threshold,
                    "normalized_throughput": values["throughput"],
                    "normalized_energy": values["energy"],
                    "evictions": values["evictions"],
                    "recomputed_tokens": values["recomputed_tokens"],
                }
            )
    return result
