"""Fig. 24 -- per-tenant scheduling policies under the multi-tenant SLO sweep.

PR 4's fig23 made head-of-line blocking *measurable*: under FCFS admission, a
long batch request at the queue head starves the interactive tenant even when
the wafer has capacity for the interactive request.  This figure makes it
*tunable*: the fig23 multi-tenant SLO sweep is re-run under all three
admission policies of the scheduler --

* ``fcfs``      -- the paper's arrival-order queue (the fig23 baseline),
* ``wfq``       -- weighted fair queueing over tenants (token-cost fairness;
  the interactive tenant's small requests stop waiting behind the batch
  tenant's 4k-token requests),
* ``priority``  -- strict priority admission for the interactive tenant with
  starvation-free aging (the batch tenant ages back in within
  ``gap / aging_rate`` seconds, so it is delayed, not starved)

-- and reports, per policy and offered load, the interactive tenant's TTFT
p95 and the aggregate SLO goodput.  All three policies are swept at
*identical* offered loads and judged against *identical* per-tenant SLOs: the
closed-batch service rate and the light-load SLO deadlines are derived once,
from the FCFS anchor, and passed into the wfq/priority sweeps verbatim.  The
headline comparison is read at the heaviest swept load (past saturation):
at and below the closed-batch rate the waiting queue is almost always short
and every policy degenerates to the same admission order, while past it the
queue is persistent and head-of-line blocking dominates the interactive
tenant's TTFT tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..perf.sweep import SweepRunner
from ..workload.generator import TenantSpec
from ..workload.policies import POLICY_NAMES, validate_policy_name
from ..workload.requests import SLOTarget
from . import fig23_slo_goodput as fig23
from .common import DEFAULT_SETTINGS, ExperimentSettings, FigureResult

#: swept policies, in table order (fcfs first: it is the anchor)
DEFAULT_POLICIES = ("fcfs", "wfq", "priority")

#: WFQ share of the interactive tenant (the batch tenant keeps weight 1.0);
#: together with token-cost fairness this stops 4k-token batch requests from
#: head-of-line-blocking the interactive stream
INTERACTIVE_WEIGHT = 2.0

#: static priority of the interactive tenant under the ``priority`` policy
#: (the batch tenant stays at 0 and ages back in)
INTERACTIVE_PRIORITY = 1


def default_policy_tenants(num_requests: int) -> tuple[TenantSpec, ...]:
    """The fig23 two-tenant mix with policy knobs set on the tenants.

    The interactive tenant carries the WFQ weight and the static priority;
    both fields are inert under ``fcfs``, so the FCFS anchor sweep serves the
    exact fig23 trace.
    """
    interactive, batch = fig23.default_tenants(num_requests)
    return (
        replace(
            interactive, weight=INTERACTIVE_WEIGHT, priority=INTERACTIVE_PRIORITY
        ),
        batch,
    )


@dataclass
class PolicyComparisonResult(FigureResult):
    model: str = ""
    #: load fraction the headline per-policy numbers are read at
    headline_load: float = 0.0
    #: per-tenant SLOs shared by every policy (derived from the FCFS anchor)
    tenant_slos: dict[str, SLOTarget] = field(default_factory=dict)
    #: closed-batch service rate shared by every policy (FCFS anchor)
    base_rate_per_s: float = 0.0
    #: full fig23 sweep result per policy
    results: dict[str, fig23.SLOGoodputResult] = field(default_factory=dict)
    #: per policy: headline metrics at ``headline_load``
    headline: dict[str, dict[str, float]] = field(default_factory=dict)

    def interactive_ttft_p95(self, policy: str) -> float:
        return self.headline[policy]["interactive_ttft_p95_s"]

    def aggregate_goodput(self, policy: str) -> float:
        return self.headline[policy]["goodput"]


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    model: str = "llama-13b",
    tenants: tuple[TenantSpec, ...] | None = None,
    load_fractions: tuple[float, ...] = fig23.DEFAULT_LOAD_FRACTIONS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    runner: SweepRunner | None = None,
) -> PolicyComparisonResult:
    """Re-run the fig23 SLO sweep under every scheduling policy."""
    runner = runner or SweepRunner()
    policies = tuple(validate_policy_name(policy) for policy in policies)
    if "fcfs" not in policies:
        policies = ("fcfs",) + policies  # the anchor policy is mandatory
    tenants = (
        tenants if tenants is not None else default_policy_tenants(settings.num_requests)
    )

    # The FCFS sweep doubles as the anchor: its closed-batch run defines the
    # offered loads and its light-load run defines the per-tenant SLOs that
    # every other policy is judged against.
    anchor = fig23.run(
        replace(settings, scheduling_policy="fcfs"),
        model=model,
        tenants=tenants,
        load_fractions=load_fractions,
        runner=runner,
    )
    slo_tenants = tuple(
        replace(tenant, slo=anchor.tenant_slos[tenant.name]) for tenant in tenants
    )

    sweeps: dict[str, fig23.SLOGoodputResult] = {"fcfs": anchor}
    for policy in policies:
        if policy == "fcfs":
            continue
        sweeps[policy] = fig23.run(
            replace(settings, scheduling_policy=policy),
            model=model,
            tenants=slo_tenants,
            load_fractions=load_fractions,
            runner=runner,
            base_rate_per_s=anchor.base_rate_per_s,
        )

    # Admission order only matters when requests actually queue: at and
    # below the closed-batch rate the waiting queue is almost always short
    # and every policy degenerates to the same order.  The headline is
    # therefore read at the heaviest swept load (past saturation), where
    # head-of-line blocking dominates the interactive tenant's TTFT tail.
    headline_load = max(load_fractions)
    result = PolicyComparisonResult(
        figure="Fig. 24",
        description=(
            f"Scheduling-policy comparison on {model} "
            f"({'+'.join(t.name for t in tenants)}; policies "
            f"{'/'.join(policies)}; identical loads and SLOs from the FCFS "
            f"anchor, headline at {headline_load:g}x the closed-batch rate, "
            f"{anchor.base_rate_per_s:.1f} req/s)"
        ),
        model=model,
        headline_load=headline_load,
        tenant_slos=dict(anchor.tenant_slos),
        base_rate_per_s=anchor.base_rate_per_s,
        results=sweeps,
    )
    # The first tenant is the latency-sensitive one whose TTFT tail the
    # policies are judged on (named "interactive" in the default mix).
    interactive_name = tenants[0].name
    batch_name = tenants[-1].name
    for policy in policies:
        sweep = sweeps[policy]
        for fraction in load_fractions:
            run_result = sweep.results[fraction]
            interactive = run_result.tenants[interactive_name]
            row = {
                "policy": policy,
                "load": fraction,
                "goodput": run_result.goodput,
                "interactive_ttft_p95_s": interactive.ttft.p95_s,
                "interactive_goodput": interactive.goodput,
                "batch_goodput": run_result.tenants[batch_name].goodput,
                "max_load_meeting_slo": sweep.max_load_meeting_slo(),
            }
            result.rows_data.append(row)
            if fraction == headline_load:
                result.headline[policy] = {
                    "goodput": float(run_result.goodput or 0.0),
                    "interactive_ttft_p95_s": interactive.ttft.p95_s,
                    "interactive_goodput": float(interactive.goodput or 0.0),
                }
    return result
