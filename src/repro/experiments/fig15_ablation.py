"""Fig. 15 -- ablation of the Ouroboros features.

Starting from a multi-die, non-CIM, sequence-grained, naively mapped,
statically KV-managed system, the ablation re-enables one feature at a time:

    Baseline -> +Wafer -> +CIM -> +TGP -> +Mapping -> +KV Cache

and reports throughput and energy normalized to the Baseline for LLaMA-13B and
LLaMA-32B under WikiText-2 and the LP=128/LD=2048 setting.  The paper also
shows the pathological "+TGP without CIM" point whose energy explodes because
token-granular scheduling destroys weight reuse; that point falls out of the
same grid here (the ``+TGP`` step before CIM is enabled would re-read every
weight per token), and is reported via :func:`tgp_without_cim_energy_factor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .. import api
from ..baselines.multi_die import ABLATION_STEPS, ablation_config
from ..results import RunResult
from ..sim.engine import PipelineMode
from .common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    FigureResult,
)

ABLATION_MODELS = ("llama-13b", "llama-32b")
ABLATION_WORKLOADS = ("wikitext2", "lp128_ld2048")


@dataclass
class AblationResult(FigureResult):
    #: raw results keyed by (model, workload, step)
    raw: dict[tuple[str, str, str], RunResult] = field(default_factory=dict)

    def normalized_series(
        self, model: str, workload: str
    ) -> dict[str, dict[str, float]]:
        """Per-step throughput/energy normalized to the Baseline step."""
        base = self.raw[(model, workload, ABLATION_STEPS[0])]
        series: dict[str, dict[str, float]] = {}
        for step in ABLATION_STEPS:
            result = self.raw[(model, workload, step)]
            series[step] = {
                "throughput": result.throughput_tokens_per_s
                / max(base.throughput_tokens_per_s, 1e-12),
                "energy": result.energy_per_output_token_j
                / max(base.energy_per_output_token_j, 1e-12),
            }
        return series


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    models: tuple[str, ...] = ABLATION_MODELS,
    workloads: tuple[str, ...] = ABLATION_WORKLOADS,
) -> AblationResult:
    result = AblationResult(
        figure="Fig. 15",
        description="Ablation: Wafer, CIM, TGP, Mapping, KV-cache management",
    )
    for model in models:
        for step in ABLATION_STEPS:
            config = ablation_config(
                step,
                pipeline=settings.pipeline_config(),
                anneal_iterations=settings.anneal_iterations,
            )
            config = replace(config, model_defects=settings.model_defects)
            for workload in workloads:
                spec = settings.deployment(model, workload, config=config)
                run_result = api.serve(spec)
                run_result.system = step
                result.raw[(model, workload, step)] = run_result
    for model in models:
        for workload in workloads:
            series = result.normalized_series(model, workload)
            for step, values in series.items():
                result.rows_data.append(
                    {
                        "model": model,
                        "workload": workload,
                        "step": step,
                        "normalized_throughput": values["throughput"],
                        "normalized_energy": values["energy"],
                    }
                )
    return result


def tgp_without_cim_energy_factor(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    model: str = "llama-13b",
    workload: str = "wikitext2",
) -> float:
    """Energy blow-up of running TGP *without* CIM (the red hatched bars).

    Token-granular scheduling eliminates weight reuse, so a non-CIM datapath
    re-reads every weight from SRAM for every token; the paper reports ~78x
    the baseline energy on WikiText-2.  Returns the energy ratio of
    (TGP, no CIM) to the sequence-grained non-CIM baseline.
    """
    base_config = ablation_config("+Wafer", pipeline=settings.pipeline_config())
    base_config = replace(base_config, model_defects=settings.model_defects)
    baseline = api.serve(settings.deployment(model, workload, config=base_config))
    tgp_config = replace(
        base_config, pipeline_mode=PipelineMode.TOKEN_GRAINED, cim_enabled=False
    )
    tgp_no_cim = api.serve(settings.deployment(model, workload, config=tgp_config))
    return tgp_no_cim.energy_per_output_token_j / max(
        baseline.energy_per_output_token_j, 1e-12
    )
