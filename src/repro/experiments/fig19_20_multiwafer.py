"""Fig. 19 / Fig. 20 -- multi-wafer scaling on LLaMA-65B.

LLaMA-65B does not fit a single wafer's 54 GB of SRAM, so Ouroboros
interconnects two wafers through the optical Ethernet ports and splits the
pipeline across them.  The comparison repeats the Fig. 13/14 methodology
(throughput and energy per output token versus DGX A100, TPUv4, AttAcc and a
two-wafer Cerebras deployment) for the four workload settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api
from ..api import comparison_grid_keys, get_system
from ..results import RunResult
from .common import (
    DEFAULT_SETTINGS,
    OUROBOROS_NAME,
    PAPER_WORKLOAD_ORDER,
    ExperimentSettings,
    FigureResult,
    normalized_energy,
    normalized_throughput,
)

MODEL = "llama-65b"


@dataclass
class MultiWaferResult(FigureResult):
    raw: dict[tuple[str, str], RunResult] = field(default_factory=dict)
    num_wafers: int = 2

    def normalized_throughput(self, workload: str) -> dict[str, float]:
        cell = {name: r for (wl, name), r in self.raw.items() if wl == workload}
        return normalized_throughput(cell)

    def normalized_energy(self, workload: str) -> dict[str, float]:
        cell = {name: r for (wl, name), r in self.raw.items() if wl == workload}
        return normalized_energy(cell)

    def average_speedup(self) -> float:
        values = []
        for workload in PAPER_WORKLOAD_ORDER:
            values.append(self.normalized_throughput(workload)[OUROBOROS_NAME])
        return sum(values) / len(values)


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER,
) -> MultiWaferResult:
    result = MultiWaferResult(
        figure="Fig. 19/20",
        description="Multi-wafer scaling: LLaMA-65B on two wafers vs. baselines",
    )
    ouro_spec = settings.deployment(MODEL, workloads[0], num_wafers=2)
    result.num_wafers = api.build_deployment(ouro_spec).num_wafers
    for workload in workloads:
        for key in comparison_grid_keys():
            options = {"num_wafers": 2} if key == "cerebras-wse2" else None
            spec = settings.deployment(MODEL, workload, system=key, options=options)
            result.raw[(workload, get_system(key).display_name)] = api.serve(spec)
        ours = api.serve(settings.deployment(MODEL, workload, num_wafers=2))
        result.raw[(workload, OUROBOROS_NAME)] = ours
    for workload in workloads:
        throughput = result.normalized_throughput(workload)
        energy = result.normalized_energy(workload)
        for system in throughput:
            result.rows_data.append(
                {
                    "workload": workload,
                    "system": system,
                    "normalized_throughput": throughput[system],
                    "normalized_energy": energy[system],
                }
            )
    return result
