"""Fig. 23 -- multi-tenant SLO goodput versus offered load.

This figure answers the capacity-planning question the paper's wafer-scale
design motivates but its closed-batch evaluation cannot: *how much offered
load can one deployment carry while still honouring a latency SLO, per
tenant?*  Two tenants with different request mixes share one wafer -- an
interactive tenant (WikiText-like prompts and outputs, latency-sensitive) and
a batch tenant (long fixed prefill/decode, throughput-oriented) -- and the
sweep serves the interleaved trace at increasing offered load, expressed as
fractions of the measured closed-batch service rate of the same mix.  Each
tenant's arrival rate scales with its share of the request mix, so a load
fraction of 1.0 offers exactly the combined rate the wafer sustains closed
batch.

*Goodput* is the fraction of requests meeting the per-request SLO deadlines
(see :class:`~repro.workload.requests.SLOTarget`); the figure's headline
number is the maximum swept load at which every tenant's goodput still
reaches the SLO's ``goodput_target``.  Sub-epoch admission (epochs split at
arrival boundaries) is what makes the low-load end of the curve meaningful:
without it, TTFT at light load would be dominated by the epoch quantisation
rather than by the actual queueing behaviour.

Only Ouroboros is swept (the analytic baselines have no notion of arrival
times); cells run through :class:`repro.perf.SweepRunner`, so the load
variants fan out across a process pool and reuse the on-disk result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..perf.sweep import SweepCell, SweepRunner
from ..results import RunResult
from ..workload.generator import TenantSpec
from ..workload.requests import SLOTarget
from .common import DEFAULT_SETTINGS, OUROBOROS_NAME, ExperimentSettings, FigureResult

#: offered load as a fraction of the closed-batch service rate, in plot order
DEFAULT_LOAD_FRACTIONS = (0.25, 0.5, 1.0, 2.0, 4.0)

#: multipliers deriving each tenant's default SLO from *its own* latency at
#: the lightest swept load: deadline = factor x the tenant's light-load p95
#: (the serving-systems convention of "SLO scale x unloaded latency", taken
#: at a tail percentile because heavy-tailed request lengths give even an
#: unloaded system a wide latency spread a median-scaled deadline cannot
#: cover).  Below saturation the percentiles sit within a small factor of
#: the unloaded tail; past saturation the queueing delay grows without bound
#: and pushes them beyond any fixed deadline -- which is exactly the crossing
#: the max-load-meeting-SLO metric reads off.  Deriving per tenant keeps the
#: deadlines meaningful for mixes whose intrinsic service times differ by
#: orders of magnitude (interactive vs. long-context batch).
DEFAULT_TTFT_FACTOR = 2.0
DEFAULT_LATENCY_FACTOR = 2.0
DEFAULT_GOODPUT_TARGET = 0.95

#: continuous-batching limit the figure serves under.  Unbounded concurrency
#: lets the wafer swallow any offered load as one ever-growing batch (the KV
#: cache fits hundreds of sequences), which flattens the goodput curve into
#: the closed-batch value; capping the batch like a real deployment makes
#: offered load saturate at a realistic operating point, so the curve bends.
DEFAULT_MAX_ACTIVE = 8


def default_tenants(num_requests: int) -> tuple[TenantSpec, ...]:
    """The figure's two-tenant mix, scaled to a total of ``num_requests``.

    Two thirds of the requests belong to the interactive tenant, one third to
    the batch tenant; rates are attached per swept load fraction by
    :func:`run`.
    """
    interactive = max(1, (2 * num_requests) // 3)
    batch = max(1, num_requests - interactive)
    return (
        TenantSpec(name="interactive", workload="wikitext2", num_requests=interactive),
        TenantSpec(name="batch", workload="lp2048_ld2048", num_requests=batch),
    )


@dataclass
class SLOGoodputResult(FigureResult):
    model: str = ""
    #: per-tenant SLOs the goodput numbers are evaluated against
    tenant_slos: dict[str, SLOTarget] = field(default_factory=dict)
    #: combined closed-batch request service rate (requests/s) of the mix
    base_rate_per_s: float = 0.0
    #: RunResult per swept load fraction, in sweep order
    results: dict[float, RunResult] = field(default_factory=dict)
    #: per tenant: the largest swept load fraction whose goodput still
    #: reached the SLO target (0.0 when no swept load met it)
    max_load: dict[str, float] = field(default_factory=dict)

    def max_load_meeting_slo(self) -> float:
        """Largest swept load at which *every* tenant met the SLO target."""
        if not self.max_load:
            return 0.0
        return min(self.max_load.values())


def run(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    model: str = "llama-13b",
    tenants: tuple[TenantSpec, ...] | None = None,
    load_fractions: tuple[float, ...] = DEFAULT_LOAD_FRACTIONS,
    slo: SLOTarget | None = None,
    runner: SweepRunner | None = None,
    base_rate_per_s: float | None = None,
) -> SLOGoodputResult:
    """Sweep per-tenant offered load against a TTFT / end-to-end SLO.

    ``base_rate_per_s`` overrides the closed-batch anchor run that normally
    defines the service rate the load fractions scale — the policy-comparison
    figure (fig24) passes the FCFS anchor so every policy is swept at
    *identical* offered loads rather than loads rescaled by each policy's own
    closed-batch rate.
    """
    runner = runner or SweepRunner()
    if settings.max_active_sequences is None:
        settings = replace(settings, max_active_sequences=DEFAULT_MAX_ACTIVE)
    tenants = tenants if tenants is not None else default_tenants(settings.num_requests)
    closed = tuple(replace(tenant, arrival_rate_per_s=0.0) for tenant in tenants)
    total_requests = sum(tenant.num_requests for tenant in closed)
    cell = SweepCell(model=model, workload="wikitext2", systems=())

    # Anchor 1: the closed-batch run of the same mix defines the service rate
    # the load fractions are scaled by.  With every arrival at t=0 it also
    # regression-anchors the multi-tenant path to closed batch.
    if base_rate_per_s is not None:
        base_rate = base_rate_per_s
    else:
        batch_settings = replace(
            settings, tenants=closed, slo=None, arrival_rate_per_s=0.0
        )
        batch = runner.run_variants(cell, [batch_settings])[0][OUROBOROS_NAME]
        base_rate = total_requests / batch.total_time_s

    def tenants_at(fraction: float, tenants: tuple[TenantSpec, ...]):
        return tuple(
            replace(
                tenant,
                arrival_rate_per_s=fraction
                * base_rate
                * (tenant.num_requests / total_requests),
            )
            for tenant in tenants
        )

    # Anchor 2: the lightest swept load, served without an SLO, defines each
    # tenant's *unloaded* latency scale (at light load a request faces little
    # queueing, so its latency is close to intrinsic service time).  Skipped
    # entirely when every tenant already carries an SLO (or the caller set a
    # deployment-wide one), e.g. when fig24 re-sweeps under another policy
    # against the SLOs derived from the FCFS anchor.
    light = None
    if slo is None and any(tenant.slo is None for tenant in closed):
        light_fraction = min(load_fractions)
        light = runner.run_variants(
            cell, [replace(settings, tenants=tenants_at(light_fraction, closed))]
        )[0][OUROBOROS_NAME]

    # Attach each tenant's SLO: the caller's deployment-wide target when
    # given, otherwise a deadline scaled from the tenant's own light-load
    # medians (a tenant already carrying an SLO keeps it).
    def tenant_slo(tenant: TenantSpec) -> SLOTarget:
        if tenant.slo is not None:
            return tenant.slo
        if slo is not None:
            return slo
        anchor = light.tenants[tenant.name]
        return SLOTarget(
            ttft_s=max(DEFAULT_TTFT_FACTOR * anchor.ttft.p95_s, 1e-9),
            latency_s=max(DEFAULT_LATENCY_FACTOR * anchor.latency.p95_s, 1e-9),
            goodput_target=DEFAULT_GOODPUT_TARGET,
        )

    closed = tuple(replace(tenant, slo=tenant_slo(tenant)) for tenant in closed)
    slos = {tenant.name: tenant.slo for tenant in closed}

    variants = [
        replace(settings, tenants=tenants_at(fraction, closed))
        for fraction in load_fractions
    ]
    sweep = runner.run_variants(cell, variants)

    slo_text = " ".join(
        f"{name}:ttft<={target.ttft_s:.3f}s,latency<={target.latency_s:.3f}s"
        for name, target in slos.items()
    )
    result = SLOGoodputResult(
        figure="Fig. 23",
        description=(
            f"Multi-tenant SLO goodput on {model} "
            f"({'+'.join(t.name for t in closed)}; load relative to the "
            f"closed-batch rate, {base_rate:.1f} req/s; {slo_text} @ goodput "
            f"{next(iter(slos.values())).goodput_target:.0%})"
        ),
        model=model,
        tenant_slos=slos,
        base_rate_per_s=base_rate,
    )
    for fraction, cell_results in zip(load_fractions, sweep):
        run_result = cell_results[OUROBOROS_NAME]
        result.results[fraction] = run_result
        for tenant in closed:
            stats = run_result.tenants[tenant.name]
            target = slos[tenant.name]
            met = stats.goodput is not None and stats.goodput >= target.goodput_target
            if met:
                current = result.max_load.get(tenant.name, 0.0)
                result.max_load[tenant.name] = max(current, fraction)
            else:
                result.max_load.setdefault(tenant.name, 0.0)
            result.rows_data.append(
                {
                    "load": fraction,
                    "tenant": tenant.name,
                    "arrival_rate_req_s": fraction
                    * base_rate
                    * (tenant.num_requests / total_requests),
                    "goodput": stats.goodput,
                    "meets_slo": met,
                    "ttft_p99_s": stats.ttft.p99_s,
                    "latency_p99_s": stats.latency.p99_s,
                }
            )
    return result
