"""Distributed dynamic KV-cache management and its static baseline."""

from .bitmap import OccupancyBitmap
from .blocks import BlockAddress, FreeBlockTable, tokens_per_block
from .manager import DistributedKVCacheManager, KVCacheStats
from .pagetable import HeadPlacement, PageTable
from .static import StaticKVCacheManager, StaticKVCacheStats

__all__ = [
    "OccupancyBitmap",
    "BlockAddress",
    "FreeBlockTable",
    "tokens_per_block",
    "DistributedKVCacheManager",
    "KVCacheStats",
    "HeadPlacement",
    "PageTable",
    "StaticKVCacheManager",
    "StaticKVCacheStats",
]
