"""Per-core sequence/block occupancy bitmap (Fig. 12b).

The core controller keeps a 256 x 256 bitmap: entry ``(m, n) == 1`` means the
m-th resident sequence occupies the n-th logical block of the core.  This is
the second level of the distributed address translation and lets a group of
cores manage their KV blocks without centralized control.
"""

from __future__ import annotations

import numpy as np

from ..errors import KVCacheError


class OccupancyBitmap:
    """A small dense bitmap mapping sequence slots to logical blocks."""

    def __init__(self, max_sequences: int = 256, num_blocks: int = 256) -> None:
        if max_sequences <= 0 or num_blocks <= 0:
            raise KVCacheError("bitmap dimensions must be positive")
        self.max_sequences = max_sequences
        self.num_blocks = num_blocks
        self._bits = np.zeros((max_sequences, num_blocks), dtype=bool)
        #: mapping from external sequence id to a row slot of the bitmap
        self._slot_of: dict[int, int] = {}

    # ------------------------------------------------------------------ slots

    def _slot(self, sequence_id: int, create: bool = False) -> int:
        slot = self._slot_of.get(sequence_id)
        if slot is not None:
            return slot
        if not create:
            raise KVCacheError(f"sequence {sequence_id} not resident in bitmap")
        for candidate in range(self.max_sequences):
            if candidate not in self._slot_of.values():
                self._slot_of[sequence_id] = candidate
                return candidate
        raise KVCacheError("bitmap has no free sequence slots")

    @property
    def resident_sequences(self) -> list[int]:
        return sorted(self._slot_of)

    # ------------------------------------------------------------------ blocks

    def set_block(self, sequence_id: int, block_index: int) -> None:
        if not 0 <= block_index < self.num_blocks:
            raise KVCacheError(f"block index {block_index} out of range")
        if self._bits[:, block_index].any():
            raise KVCacheError(f"block {block_index} is already occupied")
        slot = self._slot(sequence_id, create=True)
        self._bits[slot, block_index] = True

    def clear_block(self, sequence_id: int, block_index: int) -> None:
        slot = self._slot(sequence_id)
        if not self._bits[slot, block_index]:
            raise KVCacheError(
                f"block {block_index} is not held by sequence {sequence_id}"
            )
        self._bits[slot, block_index] = False

    def blocks_of(self, sequence_id: int) -> list[int]:
        slot = self._slot_of.get(sequence_id)
        if slot is None:
            return []
        return [int(i) for i in np.nonzero(self._bits[slot])[0]]

    def owner_of(self, block_index: int) -> int | None:
        column = self._bits[:, block_index]
        occupied = np.nonzero(column)[0]
        if occupied.size == 0:
            return None
        slot = int(occupied[0])
        for sequence_id, assigned in self._slot_of.items():
            if assigned == slot:
                return sequence_id
        return None

    def release_sequence(self, sequence_id: int) -> int:
        """Clear every block of a sequence; return how many were released."""
        slot = self._slot_of.pop(sequence_id, None)
        if slot is None:
            return 0
        released = int(self._bits[slot].sum())
        self._bits[slot, :] = False
        return released

    # ----------------------------------------------------------------- queries

    @property
    def used_blocks(self) -> int:
        return int(self._bits.any(axis=0).sum())

    @property
    def free_blocks(self) -> int:
        return self.num_blocks - self.used_blocks

    def occupancy(self) -> float:
        return self.used_blocks / self.num_blocks
