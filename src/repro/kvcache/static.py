"""Static KV-cache allocation baseline.

The ablation baseline (Section 6.5) uses static KV management: every admitted
sequence reserves space for the model's maximum context length up front,
regardless of how many tokens it will actually cache.  This wastes blocks on
short sequences and limits the number of concurrently resident sequences,
which is exactly the inefficiency the distributed dynamic manager removes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError, KVCacheError
from ..models.architectures import ModelArch
from ..workload.requests import Sequence
from .blocks import tokens_per_block


@dataclass
class StaticKVCacheStats:
    admitted_sequences: int = 0
    released_sequences: int = 0
    failed_admissions: int = 0
    peak_resident: int = 0


class StaticKVCacheManager:
    """Reserve worst-case KV space per sequence at admission time."""

    def __init__(
        self,
        arch: ModelArch,
        kv_core_ids: list[int] | int,
        blocks_per_core: int = 256,
        reserved_context: int | None = None,
        element_bytes: int | None = None,
    ) -> None:
        if isinstance(kv_core_ids, int):
            num_cores = kv_core_ids
        else:
            num_cores = len(kv_core_ids)
        if num_cores <= 0:
            raise ConfigurationError("at least one KV core is required")
        self.arch = arch
        self.num_kv_cores = num_cores
        self.blocks_per_core = blocks_per_core
        self.element_bytes = element_bytes or arch.activation_bytes
        self.tokens_per_block = tokens_per_block(arch.head_dim, self.element_bytes)
        self.reserved_context = reserved_context or arch.max_context
        self.stats = StaticKVCacheStats()
        self._resident: dict[int, int] = {}  # sequence id -> reserved blocks
        self._free_blocks = num_cores * blocks_per_core
        # Static reservations never vary per sequence, so the per-sequence
        # block count and the byte capacity are computed once, not per call.
        slots = 2 * self.arch.num_blocks * self.arch.kv_heads
        blocks_per_slot = max(1, math.ceil(self.reserved_context / self.tokens_per_block))
        self._blocks_per_sequence = slots * blocks_per_slot
        self._capacity_bytes = (
            self.total_blocks * self.tokens_per_block * arch.head_dim * self.element_bytes
        )

    # ------------------------------------------------------------------ sizing

    @property
    def total_blocks(self) -> int:
        return self.num_kv_cores * self.blocks_per_core

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - self._free_blocks

    @property
    def utilization(self) -> float:
        return self.used_blocks / self.total_blocks if self.total_blocks else 0.0

    @property
    def capacity_bytes(self) -> int:
        """Raw KV capacity in bytes (cached at construction; O(1))."""
        return self._capacity_bytes

    def blocks_per_sequence(self) -> int:
        """Blocks statically reserved for one sequence (cached; O(1))."""
        return self._blocks_per_sequence

    def max_concurrent_sequences(self, context_length: int | None = None) -> int:
        """Static allocation ignores the actual context length.

        Returns 0 when a single worst-case sequence does not fit the cache.
        """
        per_sequence = self._blocks_per_sequence
        return self.total_blocks // per_sequence if per_sequence else 0

    @property
    def resident_sequences(self) -> list[int]:
        return sorted(self._resident)

    # -------------------------------------------------------------- allocation

    def try_admit(self, sequence: Sequence) -> bool:
        sequence_id = sequence.sequence_id
        if sequence_id in self._resident:
            raise KVCacheError(f"sequence {sequence_id} is already resident")
        needed = self.blocks_per_sequence()
        if needed > self._free_blocks:
            self.stats.failed_admissions += 1
            return False
        self._free_blocks -= needed
        self._resident[sequence_id] = needed
        self.stats.admitted_sequences += 1
        self.stats.peak_resident = max(self.stats.peak_resident, len(self._resident))
        return True

    def append_tokens(self, sequence: Sequence, count: int = 1) -> bool:
        """Growth always succeeds up to the statically reserved context."""
        if sequence.sequence_id not in self._resident:
            raise KVCacheError(
                f"sequence {sequence.sequence_id} is not resident in the KV cache"
            )
        return sequence.context_length + count <= self.reserved_context

    def append_token(self, sequence: Sequence) -> bool:
        return self.append_tokens(sequence, 1)

    def release(self, sequence: Sequence) -> None:
        reserved = self._resident.pop(sequence.sequence_id, None)
        if reserved is None:
            return
        self._free_blocks += reserved
        self.stats.released_sequences += 1

    # -------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """JSON-able occupancy state for a bit-for-bit checkpoint."""
        return {
            "resident": [list(item) for item in self._resident.items()],
            "free_blocks": self._free_blocks,
            "stats": dict(self.stats.__dict__),
        }

    def restore_state(self, state: dict) -> None:
        self._resident = {seq_id: blocks for seq_id, blocks in state["resident"]}
        self._free_blocks = state["free_blocks"]
        self.stats = StaticKVCacheStats(**state["stats"])
