"""Static KV-cache allocation baseline.

The ablation baseline (Section 6.5) uses static KV management: every admitted
sequence reserves space for the model's maximum context length up front,
regardless of how many tokens it will actually cache.  This wastes blocks on
short sequences and limits the number of concurrently resident sequences,
which is exactly the inefficiency the distributed dynamic manager removes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError, KVCacheError
from ..models.architectures import ModelArch
from ..workload.requests import Sequence
from .blocks import tokens_per_block


@dataclass
class StaticKVCacheStats:
    admitted_sequences: int = 0
    released_sequences: int = 0
    failed_admissions: int = 0
    #: admissions refused because the tenant's KV quota was exhausted
    #: (subset of ``failed_admissions``)
    quota_rejections: int = 0
    peak_resident: int = 0


class StaticKVCacheManager:
    """Reserve worst-case KV space per sequence at admission time."""

    def __init__(
        self,
        arch: ModelArch,
        kv_core_ids: list[int] | int,
        blocks_per_core: int = 256,
        reserved_context: int | None = None,
        element_bytes: int | None = None,
    ) -> None:
        if isinstance(kv_core_ids, int):
            num_cores = kv_core_ids
        else:
            num_cores = len(kv_core_ids)
        if num_cores <= 0:
            raise ConfigurationError("at least one KV core is required")
        self.arch = arch
        self.num_kv_cores = num_cores
        self.blocks_per_core = blocks_per_core
        self.element_bytes = element_bytes or arch.activation_bytes
        self.tokens_per_block = tokens_per_block(arch.head_dim, self.element_bytes)
        self.reserved_context = reserved_context or arch.max_context
        self.stats = StaticKVCacheStats()
        self._resident: dict[int, int] = {}  # sequence id -> reserved blocks
        self._free_blocks = num_cores * blocks_per_core
        #: whether the most recent admission failure was quota-bound (read by
        #: the scheduler to steer eviction pressure intra-tenant first)
        self.last_failure_quota_bound = False
        self._tenant_quotas: dict[str, float] = {}
        self._tenant_quota_blocks: dict[str, int] = {}
        self._tenant_used: dict[str, int] = {}
        # Static reservations never vary per sequence, so the per-sequence
        # block count and the byte capacity are computed once, not per call.
        slots = 2 * self.arch.num_blocks * self.arch.kv_heads
        blocks_per_slot = max(1, math.ceil(self.reserved_context / self.tokens_per_block))
        self._blocks_per_sequence = slots * blocks_per_slot
        self._capacity_bytes = (
            self.total_blocks * self.tokens_per_block * arch.head_dim * self.element_bytes
        )

    # ------------------------------------------------------------------ sizing

    @property
    def total_blocks(self) -> int:
        return self.num_kv_cores * self.blocks_per_core

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - self._free_blocks

    @property
    def utilization(self) -> float:
        return self.used_blocks / self.total_blocks if self.total_blocks else 0.0

    @property
    def capacity_bytes(self) -> int:
        """Raw KV capacity in bytes (cached at construction; O(1))."""
        return self._capacity_bytes

    def blocks_per_sequence(self) -> int:
        """Blocks statically reserved for one sequence (cached; O(1))."""
        return self._blocks_per_sequence

    def max_concurrent_sequences(self, context_length: int | None = None) -> int:
        """Static allocation ignores the actual context length.

        Returns 0 when a single worst-case sequence does not fit the cache.
        """
        per_sequence = self._blocks_per_sequence
        return self.total_blocks // per_sequence if per_sequence else 0

    @property
    def resident_sequences(self) -> list[int]:
        return sorted(self._resident)

    # ---------------------------------------------------------------- quotas

    def set_tenant_quotas(self, quotas: dict[str, float]) -> None:
        """Cap each listed tenant to a fraction of the cache's blocks.

        Same semantics as the dynamic manager's
        :meth:`~repro.kvcache.manager.DistributedKVCacheManager.set_tenant_quotas`:
        ``floor(fraction * total_blocks)`` blocks, 0.0 rejects everything,
        unlisted tenants are uncapped.
        """
        for tenant, fraction in quotas.items():
            if not 0.0 <= fraction <= 1.0:
                raise ConfigurationError(
                    f"tenant {tenant!r} kv_quota must lie in [0, 1], got {fraction}"
                )
        self._tenant_quotas = dict(quotas)
        self._tenant_quota_blocks = {
            tenant: int(fraction * self.total_blocks)
            for tenant, fraction in self._tenant_quotas.items()
        }
        for tenant in self._tenant_quota_blocks:
            self._tenant_used.setdefault(tenant, 0)

    def tenant_quota_blocks(self, tenant: str) -> int | None:
        """Block cap of a tenant (None when uncapped)."""
        return self._tenant_quota_blocks.get(tenant)

    def tenant_used_blocks(self, tenant: str) -> int:
        """Blocks currently held by a quota'd tenant (0 when uncapped)."""
        return self._tenant_used.get(tenant, 0)

    # -------------------------------------------------------------- allocation

    def try_admit(self, sequence: Sequence) -> bool:
        sequence_id = sequence.sequence_id
        if sequence_id in self._resident:
            raise KVCacheError(f"sequence {sequence_id} is already resident")
        self.last_failure_quota_bound = False
        needed = self.blocks_per_sequence()
        cap = self._tenant_quota_blocks.get(sequence.tenant)
        if cap is not None and self._tenant_used.get(sequence.tenant, 0) + needed > cap:
            self.stats.failed_admissions += 1
            self.stats.quota_rejections += 1
            self.last_failure_quota_bound = True
            return False
        if needed > self._free_blocks:
            self.stats.failed_admissions += 1
            return False
        self._free_blocks -= needed
        self._resident[sequence_id] = needed
        if sequence.tenant in self._tenant_quota_blocks:
            self._tenant_used[sequence.tenant] += needed
        self.stats.admitted_sequences += 1
        self.stats.peak_resident = max(self.stats.peak_resident, len(self._resident))
        return True

    def append_tokens(self, sequence: Sequence, count: int = 1) -> bool:
        """Growth always succeeds up to the statically reserved context."""
        if sequence.sequence_id not in self._resident:
            raise KVCacheError(
                f"sequence {sequence.sequence_id} is not resident in the KV cache"
            )
        return sequence.context_length + count <= self.reserved_context

    def append_token(self, sequence: Sequence) -> bool:
        return self.append_tokens(sequence, 1)

    def release(self, sequence: Sequence) -> None:
        reserved = self._resident.pop(sequence.sequence_id, None)
        if reserved is None:
            return
        self._free_blocks += reserved
        if sequence.tenant in self._tenant_quota_blocks:
            self._tenant_used[sequence.tenant] -= reserved
        self.stats.released_sequences += 1

    # -------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict[str, Any]:
        """JSON-able occupancy state for a bit-for-bit checkpoint."""
        return {
            "resident": [list(item) for item in self._resident.items()],
            "free_blocks": self._free_blocks,
            "tenant_quotas": dict(self._tenant_quotas),
            "tenant_used": dict(self._tenant_used),
            "stats": dict(self.stats.__dict__),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._resident = {seq_id: blocks for seq_id, blocks in state["resident"]}
        self._free_blocks = state["free_blocks"]
        self._tenant_used = dict(state.get("tenant_used", {}))
        self.set_tenant_quotas(dict(state.get("tenant_quotas", {})))
        self.last_failure_quota_bound = False
        self.stats = StaticKVCacheStats(**state["stats"])
