"""Logical KV blocks and the per-crossbar free-block table (Fig. 12c).

In attention mode each crossbar's 1024 x 1024 SRAM array is partitioned into
eight 128 x 1024-bit logical blocks.  With a 128-wide head dimension and 8-bit
KV elements, one logical block holds 128 tokens of K (or V) for a single
attention head.  The crossbar controller keeps one register per logical block
recording how many rows/columns are valid, which is what the free-block table
below models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KVCacheError


@dataclass(frozen=True)
class BlockAddress:
    """Physical location of one logical KV block."""

    core_id: int
    crossbar_index: int
    block_index: int


def tokens_per_block(head_dim: int, element_bytes: int = 1, block_bits: int = 128 * 1024) -> int:
    """How many tokens of one head's K (or V) fit in a logical block."""
    if head_dim <= 0 or element_bytes <= 0:
        raise KVCacheError("head_dim and element_bytes must be positive")
    tokens = block_bits // (head_dim * element_bytes * 8)
    return max(1, tokens)


class FreeBlockTable:
    """Free-block table of one crossbar controller.

    Tracks, for each of the crossbar's logical blocks, how many token rows are
    occupied and by which sequence.  This is the third level of the paper's
    address translation: sequence number -> core -> block -> valid rows.
    """

    def __init__(self, num_blocks: int = 8, rows_per_block: int = 128) -> None:
        if num_blocks <= 0 or rows_per_block <= 0:
            raise KVCacheError("num_blocks and rows_per_block must be positive")
        self.num_blocks = num_blocks
        self.rows_per_block = rows_per_block
        self._owner: list[int | None] = [None] * num_blocks
        self._rows_used: list[int] = [0] * num_blocks

    # ------------------------------------------------------------------ queries

    @property
    def free_blocks(self) -> int:
        return sum(1 for owner in self._owner if owner is None)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - self.free_blocks

    def owner_of(self, block_index: int) -> int | None:
        return self._owner[block_index]

    def rows_used(self, block_index: int) -> int:
        return self._rows_used[block_index]

    def rows_free(self, block_index: int) -> int:
        if self._owner[block_index] is None:
            return self.rows_per_block
        return self.rows_per_block - self._rows_used[block_index]

    def blocks_of(self, owner: int) -> list[int]:
        return [i for i, o in enumerate(self._owner) if o == owner]

    # ---------------------------------------------------------------- mutation

    def allocate(self, owner: int) -> int:
        """Allocate a free block to ``owner``; return its index."""
        for index, existing in enumerate(self._owner):
            if existing is None:
                self._owner[index] = owner
                self._rows_used[index] = 0
                return index
        raise KVCacheError("free-block table has no free blocks")

    def append_rows(self, block_index: int, rows: int) -> int:
        """Fill ``rows`` more rows of a block; return rows actually stored."""
        if self._owner[block_index] is None:
            raise KVCacheError(f"block {block_index} is not allocated")
        if rows < 0:
            raise KVCacheError("rows must be non-negative")
        free = self.rows_per_block - self._rows_used[block_index]
        stored = min(free, rows)
        self._rows_used[block_index] += stored
        return stored

    def release(self, block_index: int) -> None:
        if self._owner[block_index] is None:
            raise KVCacheError(f"block {block_index} is not allocated")
        self._owner[block_index] = None
        self._rows_used[block_index] = 0

    def release_owner(self, owner: int) -> int:
        """Release every block held by ``owner``; return the count released."""
        released = 0
        for index, existing in enumerate(self._owner):
            if existing == owner:
                self.release(index)
                released += 1
        return released

    def reset(self) -> None:
        self._owner = [None] * self.num_blocks
        self._rows_used = [0] * self.num_blocks
