"""First-level KV address translation: sequence -> per-head core coordinates.

Fig. 12a: the page table, kept on an amortised storage core per transformer
block, maps a sequence number to the list of core coordinates that store each
of its attention heads (one core per head, per K/V group).

Entries are stored as two compact per-head core arrays (K cores, V cores);
:class:`HeadPlacement` objects are materialised lazily on :meth:`lookup`, so
the serving hot path (which registers and removes thousands of entries but
rarely inspects them) never pays for per-head object construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import KVCacheError


@dataclass(frozen=True)
class HeadPlacement:
    """Where one attention head's K and V data of one sequence live."""

    head: int
    k_core: int
    v_core: int


@dataclass
class PageTable:
    """Per-transformer-block page table: sequence id -> head placements."""

    block_index: int
    _entries: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = field(
        default_factory=dict
    )

    def register_heads(
        self,
        sequence_id: int,
        k_cores: Iterable[int],
        v_cores: Iterable[int],
    ) -> None:
        """Register a sequence from per-head K-core and V-core arrays."""
        if sequence_id in self._entries:
            raise KVCacheError(
                f"sequence {sequence_id} already registered in block {self.block_index}"
            )
        # ndarray.tolist() converts to Python ints in C; the genexp fallback
        # covers plain iterables.
        k_tolist = getattr(k_cores, "tolist", None)
        v_tolist = getattr(v_cores, "tolist", None)
        k = k_tolist() if k_tolist is not None else [int(c) for c in k_cores]
        v = v_tolist() if v_tolist is not None else [int(c) for c in v_cores]
        self._entries[sequence_id] = (tuple(k), tuple(v))

    def register(self, sequence_id: int, placements: list[HeadPlacement]) -> None:
        self.register_heads(
            sequence_id,
            [p.k_core for p in placements],
            [p.v_core for p in placements],
        )

    def lookup(self, sequence_id: int) -> list[HeadPlacement]:
        try:
            k_cores, v_cores = self._entries[sequence_id]
        except KeyError as exc:
            raise KVCacheError(
                f"sequence {sequence_id} has no page-table entry in block "
                f"{self.block_index}"
            ) from exc
        return [
            HeadPlacement(head=head, k_core=k, v_core=v)
            for head, (k, v) in enumerate(zip(k_cores, v_cores))
        ]

    def contains(self, sequence_id: int) -> bool:
        return sequence_id in self._entries

    def remove(self, sequence_id: int) -> None:
        self._entries.pop(sequence_id, None)

    def cores_of(self, sequence_id: int) -> list[int]:
        """All distinct cores referenced by a sequence in this block."""
        if sequence_id not in self._entries:
            self.lookup(sequence_id)  # raises with the canonical message
        k_cores, v_cores = self._entries[sequence_id]
        return sorted(set(k_cores) | set(v_cores))

    @property
    def resident_sequences(self) -> list[int]:
        return sorted(self._entries)

    def snapshot_state(self) -> list[list[Any]]:
        """JSON-able entry list, preserving insertion order."""
        return [
            [sequence_id, list(k_cores), list(v_cores)]
            for sequence_id, (k_cores, v_cores) in self._entries.items()
        ]

    def restore_state(self, state: list[list[Any]]) -> None:
        self._entries = {
            sequence_id: (tuple(k_cores), tuple(v_cores))
            for sequence_id, k_cores, v_cores in state
        }

    def __len__(self) -> int:
        return len(self._entries)
