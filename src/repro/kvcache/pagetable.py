"""First-level KV address translation: sequence -> per-head core coordinates.

Fig. 12a: the page table, kept on an amortised storage core per transformer
block, maps a sequence number to the list of core coordinates that store each
of its attention heads (one core per head, per K/V group).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import KVCacheError


@dataclass(frozen=True)
class HeadPlacement:
    """Where one attention head's K and V data of one sequence live."""

    head: int
    k_core: int
    v_core: int


@dataclass
class PageTable:
    """Per-transformer-block page table: sequence id -> head placements."""

    block_index: int
    _entries: dict[int, list[HeadPlacement]] = field(default_factory=dict)

    def register(self, sequence_id: int, placements: list[HeadPlacement]) -> None:
        if sequence_id in self._entries:
            raise KVCacheError(
                f"sequence {sequence_id} already registered in block {self.block_index}"
            )
        self._entries[sequence_id] = list(placements)

    def lookup(self, sequence_id: int) -> list[HeadPlacement]:
        try:
            return self._entries[sequence_id]
        except KeyError as exc:
            raise KVCacheError(
                f"sequence {sequence_id} has no page-table entry in block "
                f"{self.block_index}"
            ) from exc

    def contains(self, sequence_id: int) -> bool:
        return sequence_id in self._entries

    def remove(self, sequence_id: int) -> None:
        self._entries.pop(sequence_id, None)

    def cores_of(self, sequence_id: int) -> list[int]:
        """All distinct cores referenced by a sequence in this block."""
        placements = self.lookup(sequence_id)
        cores = {p.k_core for p in placements} | {p.v_core for p in placements}
        return sorted(cores)

    @property
    def resident_sequences(self) -> list[int]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
