"""Distributed dynamic KV-cache management (Section 4.4).

The manager owns every CIM core that the inter-core weight mapping left
unassigned.  Those cores are split per transformer block into a K group
(computing S = Q K^T) and a V group (computing softmax(S) V).  For each
admitted sequence it allocates, per block and per attention head, one core from
each group (walking a ring pointer so that consecutively scheduled sequences
land on distinct cores, Section 4.4.3) and grows the per-head logical-block
allocation as the sequence's context expands.

Address translation is three-level (Fig. 12): a per-block page table maps the
sequence to per-head core coordinates; each core's bitmap maps the sequence to
logical blocks; each crossbar's free-block table tracks valid rows.  For
simulation speed the manager keeps the block occupancy in vectorised per-core
counters plus O(1) running totals (free/healthy block counts are maintained
incrementally, never recomputed by scanning the core arrays), and the ring
selection of admission cores is a handful of vectorised index operations; the
page tables are materialised exactly (they are cheap and the fault-tolerance
path needs them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np
import numpy.typing as npt

from ..errors import ConfigurationError, KVCacheError
from ..models.architectures import ModelArch
from ..workload.requests import Sequence
from .blocks import tokens_per_block
from .pagetable import PageTable


@dataclass
class KVCacheStats:
    """Counters describing KV-cache behaviour over a run."""

    admitted_sequences: int = 0
    released_sequences: int = 0
    allocated_blocks: int = 0
    released_blocks: int = 0
    failed_admissions: int = 0
    failed_growths: int = 0
    #: admissions refused because the tenant's KV quota was exhausted
    #: (subset of ``failed_admissions``)
    quota_rejections: int = 0
    #: growths refused because the tenant's KV quota was exhausted
    #: (subset of ``failed_growths``)
    quota_blocked_growths: int = 0
    peak_used_blocks: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _SequenceAllocation:
    """Internal record of one resident sequence's KV allocation.

    The per-core slot multiplicity is stored sparsely: ``unique_cores`` holds
    the local indices of the cores the sequence actually touches and
    ``unique_counts`` the number of (block, head, K/V) slots on each.  Growth
    and release then scale with the sequence's footprint instead of the total
    KV-core count.
    """

    sequence_id: int
    unique_cores: npt.NDArray[np.int64]
    unique_counts: npt.NDArray[np.int64]
    blocks_per_slot: int
    tokens: int

    @property
    def total_slots(self) -> int:
        return int(self.unique_counts.sum())


class DistributedKVCacheManager:
    """Dynamic, distributed KV-cache manager with per-block ring allocation."""

    def __init__(
        self,
        arch: ModelArch,
        kv_core_ids: list[int],
        blocks_per_core: int = 256,
        threshold: float = 0.0,
        element_bytes: int | None = None,
    ) -> None:
        if not kv_core_ids:
            raise ConfigurationError("at least one KV core is required")
        if not 0.0 <= threshold < 1.0:
            raise ConfigurationError("threshold must lie in [0, 1)")
        if blocks_per_core <= 0:
            raise ConfigurationError("blocks_per_core must be positive")
        self.arch = arch
        self.kv_core_ids = list(kv_core_ids)
        self.blocks_per_core = blocks_per_core
        self.threshold = threshold
        self.element_bytes = element_bytes or arch.activation_bytes
        self.tokens_per_block = tokens_per_block(arch.head_dim, self.element_bytes)
        self.stats = KVCacheStats()
        #: whether the most recent admission/growth failure was caused by a
        #: tenant quota rather than cache pressure.  The scheduler reads this
        #: to decide whether evicting *other* tenants could possibly help.
        self.last_failure_quota_bound = False
        #: per-tenant cap as the configured fraction of the cache
        self._tenant_quotas: dict[str, float] = {}
        #: per-tenant cap in blocks (floor of fraction x configured capacity)
        self._tenant_quota_blocks: dict[str, int] = {}
        #: blocks currently held per quota'd tenant
        self._tenant_used: dict[str, int] = {}

        num_cores = len(self.kv_core_ids)
        self._free_blocks = np.full(num_cores, blocks_per_core, dtype=np.int64)
        self._core_index = {core_id: i for i, core_id in enumerate(self.kv_core_ids)}
        self._core_ids_array = np.asarray(self.kv_core_ids, dtype=np.int64)
        self._allocations: dict[int, _SequenceAllocation] = {}
        self._failed_cores: set[int] = set()
        #: O(1) running totals (kept in sync by every allocation mutation)
        self._free_total = num_cores * blocks_per_core
        self._free_on_failed = 0
        self._threshold_blocks = int(self.threshold * blocks_per_core)
        self._block_bytes = self.tokens_per_block * arch.head_dim * self.element_bytes

        # Split the KV cores into one (K group, V group) pair per transformer
        # block, preserving wafer order so that each block's KV cores sit near
        # its weight cores when the mapper interleaves them.
        self._k_groups: list[list[int]] = []
        self._v_groups: list[list[int]] = []
        self._ring_pointers: list[int] = []
        groups = 2 * arch.num_blocks
        per_group = max(1, num_cores // groups)
        for block in range(arch.num_blocks):
            k_start = (2 * block) * per_group
            v_start = (2 * block + 1) * per_group
            k_group = list(range(k_start, min(k_start + per_group, num_cores)))
            v_group = list(range(v_start, min(v_start + per_group, num_cores)))
            if not k_group:
                k_group = [k_start % num_cores]
            if not v_group:
                v_group = [v_start % num_cores]
            self._k_groups.append(k_group)
            self._v_groups.append(v_group)
            self._ring_pointers.append(0)
        self.page_tables = [PageTable(block_index=b) for b in range(arch.num_blocks)]

        # Vectorised admission state: all (K, V) groups interleaved in block
        # order, as one flat index array plus reduceat offsets, and -- when
        # every group has the same size -- stacked 2D matrices that let one
        # fancy-index pick the ring cores of every block at once.
        self._group_arrays = [
            np.asarray(group, dtype=np.int64)
            for pair in zip(self._k_groups, self._v_groups)
            for group in pair
        ]
        self._group_concat = np.concatenate(self._group_arrays)
        sizes = [len(group) for group in self._group_arrays]
        self._group_offsets = np.cumsum([0] + sizes[:-1])
        heads = self.arch.kv_heads
        self._head_range = np.arange(heads, dtype=np.int64)
        self._k_matrix: npt.NDArray[np.int64] | None
        self._v_matrix: npt.NDArray[np.int64] | None
        if len(set(sizes)) == 1:
            size = sizes[0]
            self._k_matrix = np.stack(
                [np.asarray(g, dtype=np.int64) for g in self._k_groups]
            )
            self._v_matrix = np.stack(
                [np.asarray(g, dtype=np.int64) for g in self._v_groups]
            )
            self._uniform_group_size = size
        else:
            self._k_matrix = self._v_matrix = None
            self._uniform_group_size = 0

    # ------------------------------------------------------------------ sizing

    @property
    def num_kv_cores(self) -> int:
        return len(self.kv_core_ids)

    @property
    def total_blocks(self) -> int:
        return (self.num_kv_cores - len(self._failed_cores)) * self.blocks_per_core

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - self._available_blocks()

    def _available_blocks(self) -> int:
        """Free blocks on healthy cores -- an O(1) incremental counter."""
        return self._free_total - self._free_on_failed

    @property
    def utilization(self) -> float:
        total = self.total_blocks
        return self.used_blocks / total if total else 0.0

    @property
    def capacity_bytes(self) -> int:
        """Raw KV capacity in bytes across all healthy KV cores (O(1))."""
        return self.total_blocks * self._block_bytes

    @property
    def resident_sequences(self) -> list[int]:
        return sorted(self._allocations)

    # ---------------------------------------------------------------- quotas

    def set_tenant_quotas(self, quotas: dict[str, float]) -> None:
        """Cap each listed tenant to a fraction of the configured capacity.

        The cap is ``floor(fraction * num_kv_cores * blocks_per_core)`` blocks
        -- computed against the *configured* capacity, not the currently
        healthy one, so core failures do not silently shrink a tenant's
        entitlement mid-run.  A fraction of 0.0 is a valid cap that rejects
        every admission for that tenant.  Tenants not listed are uncapped.
        """
        for tenant, fraction in quotas.items():
            if not 0.0 <= fraction <= 1.0:
                raise ConfigurationError(
                    f"tenant {tenant!r} kv_quota must lie in [0, 1], got {fraction}"
                )
        self._tenant_quotas = dict(quotas)
        capacity = self.num_kv_cores * self.blocks_per_core
        self._tenant_quota_blocks = {
            tenant: int(fraction * capacity)
            for tenant, fraction in self._tenant_quotas.items()
        }
        for tenant in self._tenant_quota_blocks:
            self._tenant_used.setdefault(tenant, 0)

    def tenant_quota_blocks(self, tenant: str) -> int | None:
        """Block cap of a tenant (None when uncapped)."""
        return self._tenant_quota_blocks.get(tenant)

    def tenant_used_blocks(self, tenant: str) -> int:
        """Blocks currently held by a quota'd tenant (0 when uncapped)."""
        return self._tenant_used.get(tenant, 0)

    def _quota_allows(self, tenant: str, blocks: int) -> bool:
        cap = self._tenant_quota_blocks.get(tenant)
        if cap is None:
            return True
        return self._tenant_used.get(tenant, 0) + blocks <= cap

    def _charge_tenant(self, tenant: str, blocks: int) -> None:
        if tenant in self._tenant_quota_blocks:
            self._tenant_used[tenant] += blocks

    def tokens_cached(self, sequence_id: int) -> int:
        allocation = self._allocations.get(sequence_id)
        return allocation.tokens if allocation else 0

    def blocks_held(self, sequence_id: int) -> int:
        allocation = self._allocations.get(sequence_id)
        if allocation is None:
            return 0
        return allocation.blocks_per_slot * allocation.total_slots

    def max_concurrent_sequences(self, context_length: int) -> int:
        """How many sequences of a given context length fit simultaneously.

        Returns 0 when no healthy KV cores remain or when a single sequence of
        that context length needs more blocks than the whole cache holds.
        """
        total = self.total_blocks
        if total <= 0:
            return 0
        slots = 2 * self.arch.num_blocks * self.arch.kv_heads
        blocks_per_slot = max(1, math.ceil(max(0, context_length) / self.tokens_per_block))
        blocks_per_sequence = slots * blocks_per_slot
        if blocks_per_sequence == 0:
            return 0
        return total // blocks_per_sequence

    # -------------------------------------------------------------- allocation

    def _select_cores(self, group: list[int], pointer: int, count: int) -> list[int] | None:
        """Pick ``count`` cores from a ring group starting at ``pointer``.

        Cores whose free space is below the reservation threshold (or that have
        failed) are skipped for *new* allocations; if fewer than ``count``
        usable cores exist, cores may be reused for several heads.
        """
        threshold_blocks = self._threshold_blocks
        usable: list[int] = []
        size = len(group)
        for offset in range(size):
            local = group[(pointer + offset) % size]
            if self.kv_core_ids[local] in self._failed_cores:
                continue
            if self._free_blocks[local] <= threshold_blocks:
                continue
            usable.append(local)
            if len(usable) == count:
                break
        if not usable:
            return None
        while len(usable) < count:
            usable.append(usable[len(usable) % max(1, len(usable))])
        return usable[:count]

    def _select_all_blocks_fast(self) -> npt.NDArray[np.int64] | None:
        """Ring selection for every (block, K/V) group in a few array ops.

        Only valid when no core has failed and every core of every group sits
        above the reservation threshold (the overwhelmingly common case); the
        caller falls back to the per-group walk otherwise.  Returns an array of
        shape ``(2 * num_blocks, kv_heads)`` of local core indices, rows
        alternating K group / V group per block.
        """
        size = self._uniform_group_size
        if size == 0:
            return None
        assert self._k_matrix is not None and self._v_matrix is not None
        heads = len(self._head_range)
        pointers = np.asarray(self._ring_pointers, dtype=np.int64)
        rows = np.arange(len(self._k_groups), dtype=np.int64)[:, None]
        if size >= heads:
            ring = (pointers[:, None] + self._head_range[None, :]) % size
            k_sel = self._k_matrix[rows, ring]
            v_sel = self._v_matrix[rows, ring]
        else:
            # Fewer cores than heads: the walk hands out each core once in
            # ring order, then pads every remaining head with the first
            # usable core -- replicate that exactly.
            ring = (pointers[:, None] + np.arange(size, dtype=np.int64)[None, :]) % size
            k_part = self._k_matrix[rows, ring]
            v_part = self._v_matrix[rows, ring]
            k_pad = np.repeat(k_part[:, :1], heads - size, axis=1)
            v_pad = np.repeat(v_part[:, :1], heads - size, axis=1)
            k_sel = np.concatenate([k_part, k_pad], axis=1)
            v_sel = np.concatenate([v_part, v_pad], axis=1)
        stacked = np.empty((2 * len(self._k_groups), len(self._head_range)), dtype=np.int64)
        stacked[0::2] = k_sel
        stacked[1::2] = v_sel
        return stacked

    def try_admit(self, sequence: Sequence) -> bool:
        """Reserve one logical block per (block, head, K/V) slot for a sequence."""
        sequence_id = sequence.sequence_id
        if sequence_id in self._allocations:
            raise KVCacheError(f"sequence {sequence_id} is already resident")
        self.last_failure_quota_bound = False
        heads = self.arch.kv_heads
        num_blocks = self.arch.num_blocks

        if self._tenant_quota_blocks:
            # At admission every sequence reserves exactly one block per
            # (transformer block, KV head, K/V) slot, independent of where the
            # ring places them -- so the quota check can run before any
            # placement work.
            reserve = 2 * num_blocks * heads
            if not self._quota_allows(sequence.tenant, reserve):
                self.stats.failed_admissions += 1
                self.stats.quota_rejections += 1
                self.last_failure_quota_bound = True
                return False

        selection: npt.NDArray[np.int64] | None = None
        if not self._failed_cores:
            group_free = self._free_blocks[self._group_concat]
            mins = np.minimum.reduceat(group_free, self._group_offsets)
            if mins.min() > self._threshold_blocks:
                # Every core of every group is usable: pure ring arithmetic.
                selection = self._select_all_blocks_fast()
            else:
                maxes = np.maximum.reduceat(group_free, self._group_offsets)
                if maxes.min() <= self._threshold_blocks:
                    # Some group has no usable core at all: admission fails
                    # before any placement work, exactly as the walk would.
                    self.stats.failed_admissions += 1
                    return False

        if selection is None:
            rows: list[list[int]] = []
            for block in range(num_blocks):
                pointer = self._ring_pointers[block]
                k_cores = self._select_cores(self._k_groups[block], pointer, heads)
                v_cores = self._select_cores(self._v_groups[block], pointer, heads)
                if k_cores is None or v_cores is None:
                    self.stats.failed_admissions += 1
                    return False
                rows.append(k_cores)
                rows.append(v_cores)
            selection = np.asarray(rows, dtype=np.int64)

        counts = np.bincount(selection.ravel(), minlength=self.num_kv_cores)
        touched = np.nonzero(counts)[0]
        touched_counts = counts[touched]
        if np.any(self._free_blocks[touched] < touched_counts):
            self.stats.failed_admissions += 1
            return False

        self._free_blocks[touched] -= touched_counts
        total_reserved = int(touched_counts.sum())
        self._free_total -= total_reserved
        self._charge_tenant(sequence.tenant, total_reserved)
        self._allocations[sequence_id] = _SequenceAllocation(
            sequence_id=sequence_id,
            # astype(copy=False) is a no-op view here (bincount/nonzero yield
            # intp == int64 on this platform); it only pins the static type.
            unique_cores=touched.astype(np.int64, copy=False),
            unique_counts=touched_counts.astype(np.int64, copy=False),
            blocks_per_slot=1,
            tokens=0,
        )
        global_rows = self._core_ids_array[selection]
        for block in range(num_blocks):
            self.page_tables[block].register_heads(
                sequence_id, global_rows[2 * block], global_rows[2 * block + 1]
            )
            self._ring_pointers[block] = (
                self._ring_pointers[block] + heads
            ) % max(1, len(self._k_groups[block]))
        self.stats.admitted_sequences += 1
        self.stats.allocated_blocks += total_reserved
        self._update_peak()
        return True

    def append_tokens(self, sequence: Sequence, count: int = 1) -> bool:
        """Reserve KV space for ``count`` more tokens of a resident sequence."""
        if count < 0:
            raise KVCacheError("count must be non-negative")
        allocation = self._allocations.get(sequence.sequence_id)
        if allocation is None:
            raise KVCacheError(
                f"sequence {sequence.sequence_id} is not resident in the KV cache"
            )
        self.last_failure_quota_bound = False
        new_tokens = allocation.tokens + count
        needed = max(1, math.ceil(new_tokens / self.tokens_per_block))
        delta = needed - allocation.blocks_per_slot
        if delta > 0:
            required = allocation.unique_counts * delta
            total_required = int(required.sum())
            if not self._quota_allows(sequence.tenant, total_required):
                self.stats.failed_growths += 1
                self.stats.quota_blocked_growths += 1
                self.last_failure_quota_bound = True
                return False
            if np.any(self._free_blocks[allocation.unique_cores] < required):
                self.stats.failed_growths += 1
                return False
            self._free_blocks[allocation.unique_cores] -= required
            self._free_total -= total_required
            self._charge_tenant(sequence.tenant, total_required)
            if self._failed_cores:
                self._free_on_failed -= self._sum_on_failed(allocation, delta)
            allocation.blocks_per_slot = needed
            self.stats.allocated_blocks += total_required
        allocation.tokens = new_tokens
        self._update_peak()
        return True

    def append_token(self, sequence: Sequence) -> bool:
        """Scheduler-protocol alias for :meth:`append_tokens` with one token."""
        return self.append_tokens(sequence, 1)

    def release(self, sequence: Sequence) -> None:
        """Free every block held by a sequence (completion or eviction)."""
        allocation = self._allocations.pop(sequence.sequence_id, None)
        if allocation is None:
            return
        returned = allocation.unique_counts * allocation.blocks_per_slot
        self._free_blocks[allocation.unique_cores] += returned
        self._free_total += int(returned.sum())
        self._charge_tenant(sequence.tenant, -int(returned.sum()))
        if self._failed_cores:
            self._free_on_failed += self._sum_on_failed(
                allocation, allocation.blocks_per_slot
            )
        for table in self.page_tables:
            table.remove(sequence.sequence_id)
        self.stats.released_sequences += 1
        self.stats.released_blocks += int(returned.sum())

    def _sum_on_failed(self, allocation: _SequenceAllocation, per_slot: int) -> int:
        """Blocks of an allocation delta that land on failed cores."""
        failed_locals = [
            self._core_index[core_id]
            for core_id in sorted(self._failed_cores)
        ]
        mask = np.isin(allocation.unique_cores, failed_locals)
        if not mask.any():
            return 0
        return int(allocation.unique_counts[mask].sum()) * per_slot

    # ---------------------------------------------------------------- failures

    def fail_core(self, core_id: int) -> list[int]:
        """Mark a KV core as failed; return ids of sequences needing recompute.

        Per Section 4.3.3, when a KV-storage core fails only the sequences
        stored on that core need recomputation.
        """
        if core_id not in self._core_index:
            raise KVCacheError(f"core {core_id} is not a KV core")
        local = self._core_index[core_id]
        if core_id not in self._failed_cores:
            self._free_on_failed += int(self._free_blocks[local])
        self._failed_cores.add(core_id)
        affected = [
            allocation.sequence_id
            for allocation in self._allocations.values()
            if bool((allocation.unique_cores == local).any())
        ]
        return affected

    @property
    def failed_cores(self) -> set[int]:
        return set(self._failed_cores)

    def sequences_on_core(self, core_id: int) -> list[int]:
        """Ids of resident sequences with at least one slot on ``core_id``.

        The blast radius of a transient block loss on one core: unlike
        :meth:`fail_core` the core stays healthy, but the listed sequences'
        cached context is gone and must be recomputed.
        """
        if core_id not in self._core_index:
            raise KVCacheError(f"core {core_id} is not a KV core")
        local = self._core_index[core_id]
        return [
            allocation.sequence_id
            for allocation in self._allocations.values()
            if bool((allocation.unique_cores == local).any())
        ]

    # -------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict[str, Any]:
        """JSON-able occupancy state for a bit-for-bit checkpoint.

        Derived vectorised state (group arrays/matrices, running caches) is
        rebuilt by ``__init__`` deterministically from the configuration and
        is deliberately not part of the snapshot.
        """
        return {
            "free_blocks": self._free_blocks.tolist(),
            "allocations": [
                [
                    allocation.sequence_id,
                    {
                        "cores": allocation.unique_cores.tolist(),
                        "counts": allocation.unique_counts.tolist(),
                        "blocks_per_slot": allocation.blocks_per_slot,
                        "tokens": allocation.tokens,
                    },
                ]
                for allocation in self._allocations.values()
            ],
            "ring_pointers": list(self._ring_pointers),
            "page_tables": [table.snapshot_state() for table in self.page_tables],
            "failed_cores": sorted(self._failed_cores),
            "free_total": self._free_total,
            "free_on_failed": self._free_on_failed,
            "tenant_quotas": dict(self._tenant_quotas),
            "tenant_used": dict(self._tenant_used),
            "stats": dict(self.stats.__dict__),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._free_blocks = np.asarray(state["free_blocks"], dtype=np.int64)
        self._allocations = {
            sequence_id: _SequenceAllocation(
                sequence_id=sequence_id,
                unique_cores=np.asarray(data["cores"], dtype=np.int64),
                unique_counts=np.asarray(data["counts"], dtype=np.int64),
                blocks_per_slot=data["blocks_per_slot"],
                tokens=data["tokens"],
            )
            for sequence_id, data in state["allocations"]
        }
        self._ring_pointers = list(state["ring_pointers"])
        for table, table_state in zip(self.page_tables, state["page_tables"]):
            table.restore_state(table_state)
        self._failed_cores = set(state["failed_cores"])
        self._free_total = state["free_total"]
        self._free_on_failed = state["free_on_failed"]
        self._tenant_used = dict(state.get("tenant_used", {}))
        self.set_tenant_quotas(dict(state.get("tenant_quotas", {})))
        self.last_failure_quota_bound = False
        self.stats = KVCacheStats(**state["stats"])

    # ------------------------------------------------------------------ private

    def _update_peak(self) -> None:
        used = self.used_blocks
        if used > self.stats.peak_used_blocks:
            self.stats.peak_used_blocks = used
