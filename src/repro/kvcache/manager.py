"""Distributed dynamic KV-cache management (Section 4.4).

The manager owns every CIM core that the inter-core weight mapping left
unassigned.  Those cores are split per transformer block into a K group
(computing S = Q K^T) and a V group (computing softmax(S) V).  For each
admitted sequence it allocates, per block and per attention head, one core from
each group (walking a ring pointer so that consecutively scheduled sequences
land on distinct cores, Section 4.4.3) and grows the per-head logical-block
allocation as the sequence's context expands.

Address translation is three-level (Fig. 12): a per-block page table maps the
sequence to per-head core coordinates; each core's bitmap maps the sequence to
logical blocks; each crossbar's free-block table tracks valid rows.  For
simulation speed the manager keeps the block occupancy in vectorised per-core
counters, while the page tables are materialised exactly (they are cheap and
the fault-tolerance path needs them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, KVCacheError
from ..models.architectures import ModelArch
from ..workload.requests import Sequence
from .blocks import tokens_per_block
from .pagetable import HeadPlacement, PageTable


@dataclass
class KVCacheStats:
    """Counters describing KV-cache behaviour over a run."""

    admitted_sequences: int = 0
    released_sequences: int = 0
    allocated_blocks: int = 0
    released_blocks: int = 0
    failed_admissions: int = 0
    failed_growths: int = 0
    peak_used_blocks: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _SequenceAllocation:
    """Internal record of one resident sequence's KV allocation."""

    sequence_id: int
    #: local indices (into the manager's core arrays) of every (block, head, K/V) slot
    slot_cores: np.ndarray
    #: per-core slot multiplicity (bincount of slot_cores over all KV cores)
    slot_counts: np.ndarray
    blocks_per_slot: int
    tokens: int


class DistributedKVCacheManager:
    """Dynamic, distributed KV-cache manager with per-block ring allocation."""

    def __init__(
        self,
        arch: ModelArch,
        kv_core_ids: list[int],
        blocks_per_core: int = 256,
        threshold: float = 0.0,
        element_bytes: int | None = None,
    ) -> None:
        if not kv_core_ids:
            raise ConfigurationError("at least one KV core is required")
        if not 0.0 <= threshold < 1.0:
            raise ConfigurationError("threshold must lie in [0, 1)")
        if blocks_per_core <= 0:
            raise ConfigurationError("blocks_per_core must be positive")
        self.arch = arch
        self.kv_core_ids = list(kv_core_ids)
        self.blocks_per_core = blocks_per_core
        self.threshold = threshold
        self.element_bytes = element_bytes or arch.activation_bytes
        self.tokens_per_block = tokens_per_block(arch.head_dim, self.element_bytes)
        self.stats = KVCacheStats()

        num_cores = len(self.kv_core_ids)
        self._free_blocks = np.full(num_cores, blocks_per_core, dtype=np.int64)
        self._core_index = {core_id: i for i, core_id in enumerate(self.kv_core_ids)}
        self._allocations: dict[int, _SequenceAllocation] = {}
        self._failed_cores: set[int] = set()

        # Split the KV cores into one (K group, V group) pair per transformer
        # block, preserving wafer order so that each block's KV cores sit near
        # its weight cores when the mapper interleaves them.
        self._k_groups: list[list[int]] = []
        self._v_groups: list[list[int]] = []
        self._ring_pointers: list[int] = []
        groups = 2 * arch.num_blocks
        per_group = max(1, num_cores // groups)
        for block in range(arch.num_blocks):
            k_start = (2 * block) * per_group
            v_start = (2 * block + 1) * per_group
            k_group = list(range(k_start, min(k_start + per_group, num_cores)))
            v_group = list(range(v_start, min(v_start + per_group, num_cores)))
            if not k_group:
                k_group = [k_start % num_cores]
            if not v_group:
                v_group = [v_start % num_cores]
            self._k_groups.append(k_group)
            self._v_groups.append(v_group)
            self._ring_pointers.append(0)
        self.page_tables = [PageTable(block_index=b) for b in range(arch.num_blocks)]

    # ------------------------------------------------------------------ sizing

    @property
    def num_kv_cores(self) -> int:
        return len(self.kv_core_ids)

    @property
    def total_blocks(self) -> int:
        return (self.num_kv_cores - len(self._failed_cores)) * self.blocks_per_core

    @property
    def used_blocks(self) -> int:
        healthy = self.total_blocks
        return int(healthy - self._available_blocks())

    def _available_blocks(self) -> int:
        mask = np.ones(self.num_kv_cores, dtype=bool)
        for core_id in self._failed_cores:
            mask[self._core_index[core_id]] = False
        return int(self._free_blocks[mask].sum())

    @property
    def utilization(self) -> float:
        total = self.total_blocks
        return self.used_blocks / total if total else 0.0

    @property
    def capacity_bytes(self) -> int:
        """Raw KV capacity in bytes across all healthy KV cores."""
        block_bytes = self.tokens_per_block * self.arch.head_dim * self.element_bytes
        return self.total_blocks * block_bytes

    @property
    def resident_sequences(self) -> list[int]:
        return sorted(self._allocations)

    def tokens_cached(self, sequence_id: int) -> int:
        allocation = self._allocations.get(sequence_id)
        return allocation.tokens if allocation else 0

    def blocks_held(self, sequence_id: int) -> int:
        allocation = self._allocations.get(sequence_id)
        if allocation is None:
            return 0
        return allocation.blocks_per_slot * int(allocation.slot_counts.sum())

    def max_concurrent_sequences(self, context_length: int) -> int:
        """How many sequences of a given context length fit simultaneously."""
        slots = 2 * self.arch.num_blocks * self.arch.kv_heads
        blocks_per_slot = max(1, math.ceil(context_length / self.tokens_per_block))
        blocks_per_sequence = slots * blocks_per_slot
        if blocks_per_sequence == 0:
            return 0
        return self.total_blocks // blocks_per_sequence

    # -------------------------------------------------------------- allocation

    def _select_cores(self, group: list[int], pointer: int, count: int) -> list[int] | None:
        """Pick ``count`` cores from a ring group starting at ``pointer``.

        Cores whose free space is below the reservation threshold (or that have
        failed) are skipped for *new* allocations; if fewer than ``count``
        usable cores exist, cores may be reused for several heads.
        """
        threshold_blocks = int(self.threshold * self.blocks_per_core)
        usable: list[int] = []
        size = len(group)
        for offset in range(size):
            local = group[(pointer + offset) % size]
            if self.kv_core_ids[local] in self._failed_cores:
                continue
            if self._free_blocks[local] <= threshold_blocks:
                continue
            usable.append(local)
            if len(usable) == count:
                break
        if not usable:
            return None
        while len(usable) < count:
            usable.append(usable[len(usable) % max(1, len(usable))])
        return usable[:count]

    def try_admit(self, sequence: Sequence) -> bool:
        """Reserve one logical block per (block, head, K/V) slot for a sequence."""
        sequence_id = sequence.sequence_id
        if sequence_id in self._allocations:
            raise KVCacheError(f"sequence {sequence_id} is already resident")
        heads = self.arch.kv_heads
        slot_cores: list[int] = []
        placements_per_block: list[list[HeadPlacement]] = []
        for block in range(self.arch.num_blocks):
            pointer = self._ring_pointers[block]
            k_cores = self._select_cores(self._k_groups[block], pointer, heads)
            v_cores = self._select_cores(self._v_groups[block], pointer, heads)
            if k_cores is None or v_cores is None:
                self.stats.failed_admissions += 1
                return False
            placements = [
                HeadPlacement(
                    head=h,
                    k_core=self.kv_core_ids[k_cores[h]],
                    v_core=self.kv_core_ids[v_cores[h]],
                )
                for h in range(heads)
            ]
            placements_per_block.append(placements)
            slot_cores.extend(k_cores)
            slot_cores.extend(v_cores)

        cores = np.asarray(slot_cores, dtype=np.int64)
        counts = np.bincount(cores, minlength=self.num_kv_cores)
        if np.any(self._free_blocks - counts < 0):
            self.stats.failed_admissions += 1
            return False

        self._free_blocks -= counts
        self._allocations[sequence_id] = _SequenceAllocation(
            sequence_id=sequence_id,
            slot_cores=cores,
            slot_counts=counts,
            blocks_per_slot=1,
            tokens=0,
        )
        for block, placements in enumerate(placements_per_block):
            self.page_tables[block].register(sequence_id, placements)
            self._ring_pointers[block] = (
                self._ring_pointers[block] + heads
            ) % max(1, len(self._k_groups[block]))
        self.stats.admitted_sequences += 1
        self.stats.allocated_blocks += int(counts.sum())
        self._update_peak()
        return True

    def append_tokens(self, sequence: Sequence, count: int = 1) -> bool:
        """Reserve KV space for ``count`` more tokens of a resident sequence."""
        if count < 0:
            raise KVCacheError("count must be non-negative")
        allocation = self._allocations.get(sequence.sequence_id)
        if allocation is None:
            raise KVCacheError(
                f"sequence {sequence.sequence_id} is not resident in the KV cache"
            )
        new_tokens = allocation.tokens + count
        needed = max(1, math.ceil(new_tokens / self.tokens_per_block))
        delta = needed - allocation.blocks_per_slot
        if delta > 0:
            required = allocation.slot_counts * delta
            if np.any(self._free_blocks - required < 0):
                self.stats.failed_growths += 1
                return False
            self._free_blocks -= required
            allocation.blocks_per_slot = needed
            self.stats.allocated_blocks += int(required.sum())
        allocation.tokens = new_tokens
        self._update_peak()
        return True

    def append_token(self, sequence: Sequence) -> bool:
        """Scheduler-protocol alias for :meth:`append_tokens` with one token."""
        return self.append_tokens(sequence, 1)

    def release(self, sequence: Sequence) -> None:
        """Free every block held by a sequence (completion or eviction)."""
        allocation = self._allocations.pop(sequence.sequence_id, None)
        if allocation is None:
            return
        returned = allocation.slot_counts * allocation.blocks_per_slot
        self._free_blocks += returned
        for table in self.page_tables:
            table.remove(sequence.sequence_id)
        self.stats.released_sequences += 1
        self.stats.released_blocks += int(returned.sum())

    # ---------------------------------------------------------------- failures

    def fail_core(self, core_id: int) -> list[int]:
        """Mark a KV core as failed; return ids of sequences needing recompute.

        Per Section 4.3.3, when a KV-storage core fails only the sequences
        stored on that core need recomputation.
        """
        if core_id not in self._core_index:
            raise KVCacheError(f"core {core_id} is not a KV core")
        self._failed_cores.add(core_id)
        local = self._core_index[core_id]
        affected = [
            allocation.sequence_id
            for allocation in self._allocations.values()
            if allocation.slot_counts[local] > 0
        ]
        return affected

    @property
    def failed_cores(self) -> set[int]:
        return set(self._failed_cores)

    # ------------------------------------------------------------------ private

    def _update_peak(self) -> None:
        used = self.used_blocks
        if used > self.stats.peak_used_blocks:
            self.stats.peak_used_blocks = used
