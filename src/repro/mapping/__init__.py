"""Mapping of transformer blocks onto the wafer-scale CIM fabric."""

from .baselines import (
    TransmissionVolume,
    cerebras_summa_volume,
    compare_mapping_schemes,
    ouroboros_volume,
    waferllm_volume,
)
from .fault_tolerance import FaultToleranceManager, RemappingResult
from .intercore import BlockMapper, BlockMapping, WaferMapping, map_model
from .intracore import (
    IntraCoreMapper,
    IntraCoreProblem,
    IntraCoreResult,
    grouped_assignment,
    naive_assignment,
)
from .objective import (
    CommunicationCost,
    MappingProblem,
    Placement,
    Tile,
    evaluate_placement,
)

__all__ = [
    "Tile",
    "MappingProblem",
    "Placement",
    "CommunicationCost",
    "evaluate_placement",
    "BlockMapper",
    "BlockMapping",
    "WaferMapping",
    "map_model",
    "IntraCoreProblem",
    "IntraCoreMapper",
    "IntraCoreResult",
    "naive_assignment",
    "grouped_assignment",
    "FaultToleranceManager",
    "RemappingResult",
    "TransmissionVolume",
    "cerebras_summa_volume",
    "waferllm_volume",
    "ouroboros_volume",
    "compare_mapping_schemes",
]
