"""Inter-core weight mapping (Section 4.3.1).

The paper formulates tile placement as a Mixed Integer Quadratic Program and
solves it offline.  No MIQP solver is available in this offline build, so the
same objective (Eq. 1 under constraints Eq. 2-3) is optimised with a greedy
construction followed by simulated annealing; on small instances this reaches
the brute-force optimum (verified by tests), and on block-sized instances it
converges to placements whose cost is within a few percent of the greedy
lower-bound estimate.  Only the resulting communication volumes feed the rest
of the system, so this substitution preserves the evaluation's behaviour.

The mapper works at two granularities:

* :class:`BlockMapper` places the tiles of a single transformer block onto a
  contiguous region of cores (the paper maps one block and repeats it).
* :func:`map_model` partitions the wafer's healthy cores into ``num_blocks``
  consecutive segments along the S-shaped order, applies the block placement
  inside each segment, and designates every unused core as a KV-cache core.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..errors import MappingError
from ..hardware.wafer import Wafer
from ..models.architectures import ModelArch
from .objective import CommunicationCost, MappingProblem, Placement, Tile, evaluate_placement


@dataclass
class BlockMapping:
    """Result of placing one block's tiles."""

    placement: Placement
    cost: CommunicationCost
    weight_core_ids: list[int]
    region_core_ids: list[int]

    @property
    def kv_core_ids(self) -> list[int]:
        used = set(self.weight_core_ids)
        return [core for core in self.region_core_ids if core not in used]


@dataclass
class WaferMapping:
    """Placement of a whole model (all blocks) onto a wafer."""

    arch: ModelArch
    block_mappings: list[BlockMapping] = field(default_factory=list)
    #: byte-hops per token crossing from one block's region to the next
    inter_block_cost: float = 0.0
    #: mesh hops an activation typically travels between consecutive pipeline
    #: stages (centroid-to-centroid along the S-shaped dataflow); used by the
    #: per-token energy/latency model, whereas the byte-hop totals above feed
    #: the mapping-quality comparison of Fig. 18.
    activation_route_hops: float = 2.0

    @property
    def weight_core_ids(self) -> list[int]:
        cores: list[int] = []
        for block in self.block_mappings:
            cores.extend(block.weight_core_ids)
        return cores

    @property
    def kv_core_ids(self) -> list[int]:
        cores: list[int] = []
        for block in self.block_mappings:
            cores.extend(block.kv_core_ids)
        return cores

    @property
    def num_weight_cores(self) -> int:
        return len(self.weight_core_ids)

    @property
    def num_kv_cores(self) -> int:
        return len(self.kv_core_ids)

    def total_cost(self) -> CommunicationCost:
        total = CommunicationCost()
        for block in self.block_mappings:
            total = total + block.cost
        total.inter_layer += self.inter_block_cost
        return total

    def byte_hops_per_token(self) -> float:
        """Weighted byte-hops one token incurs traversing the whole model."""
        return self.total_cost().total

    def bytes_per_token(self) -> float:
        return self.total_cost().total_bytes

    def average_hops_per_transfer(self) -> float:
        total = self.total_cost()
        if total.total_bytes == 0:
            return 0.0
        return total.total / total.total_bytes


class BlockMapper:
    """Greedy + simulated-annealing placement of one block's tiles."""

    def __init__(
        self,
        problem: MappingProblem,
        wafer: Wafer,
        anneal_iterations: int = 0,
        seed: int = 0,
        initial_temperature: float = 50.0,
    ) -> None:
        self.problem = problem
        self.wafer = wafer
        self.anneal_iterations = anneal_iterations
        self.seed = seed
        self.initial_temperature = initial_temperature

    # ----------------------------------------------------------------- greedy

    def greedy(self, region_core_ids: list[int]) -> Placement:
        """Place tiles along the region in dataflow order.

        Consecutive tiles of consecutive layers end up on nearby cores, which
        is a strong starting point because inter-layer traffic dominates.
        """
        tiles = self.problem.tiles()
        healthy = [core for core in region_core_ids if not self.wafer.is_defective(core)]
        if len(healthy) < len(tiles):
            raise MappingError(
                f"region has {len(healthy)} healthy cores but the block needs "
                f"{len(tiles)} tiles"
            )
        assignment = {tile: healthy[i] for i, tile in enumerate(tiles)}
        return Placement(assignment=assignment)

    # --------------------------------------------------------------- annealing

    def anneal(self, placement: Placement, region_core_ids: list[int]) -> Placement:
        """Refine a placement by simulated annealing over tile/core swaps.

        Each proposal is scored by *incremental delta evaluation*: only the
        byte-hop contribution of the edges incident to the moved/swapped tiles
        is recomputed (via the problem's static tile adjacency), instead of
        re-running the full Eq. 1 objective over every tile pair.  Together
        with set-backed free/used core bookkeeping this makes one iteration
        O(tile degree), so the iteration budget can rise an order of magnitude
        at unchanged wall-clock.
        """
        if self.anneal_iterations <= 0:
            return placement
        rng = random.Random(self.seed)
        wafer = self.wafer
        healthy = [core for core in region_core_ids if not wafer.is_defective(core)]
        tiles = list(placement.assignment.keys())
        num_tiles = len(tiles)
        if num_tiles == 0:
            return placement

        index_of = self.problem.tile_indices()
        adjacency = self.problem.tile_adjacency()
        geometry = wafer.geometry()
        rows = geometry.rows.tolist()
        cols = geometry.cols.tolist()
        die_rows = geometry.die_rows.tolist()
        die_cols = geometry.die_cols.tolist()
        factor = self.problem.inter_die_cost_factor

        def wdist(a: int, b: int) -> float:
            distance = float(abs(rows[a] - rows[b]) + abs(cols[a] - cols[b]))
            if die_rows[a] != die_rows[b] or die_cols[a] != die_cols[b]:
                distance *= factor
            return distance

        # core_at[i] is the core of tiles[i]; adjacency is indexed by the
        # problem's canonical tile order, so translate once up front.
        slot_of = [index_of[tile] for tile in tiles]
        core_at: list[int] = [0] * len(adjacency)
        for tile, slot in zip(tiles, slot_of):
            core_at[slot] = placement.assignment[tile]

        current_cost = evaluate_placement(self.problem, placement, wafer).total
        best_cores = list(core_at)
        best_cost = current_cost

        used = set(placement.assignment.values())
        free = [core for core in healthy if core not in used]
        free_pos = {core: i for i, core in enumerate(free)}

        def delta_for_move(slot: int, new_core: int) -> float:
            old_core = core_at[slot]
            delta = 0.0
            for other_slot, volume in adjacency[slot]:
                other_core = core_at[other_slot]
                delta += volume * (
                    wdist(new_core, other_core) - wdist(old_core, other_core)
                )
            return delta

        def delta_for_swap(slot_a: int, slot_b: int) -> float:
            core_a, core_b = core_at[slot_a], core_at[slot_b]
            delta = 0.0
            for other_slot, volume in adjacency[slot_a]:
                if other_slot == slot_b:
                    continue  # both endpoints move; the distance is unchanged
                other_core = core_at[other_slot]
                delta += volume * (
                    wdist(core_b, other_core) - wdist(core_a, other_core)
                )
            for other_slot, volume in adjacency[slot_b]:
                if other_slot == slot_a:
                    continue
                other_core = core_at[other_slot]
                delta += volume * (
                    wdist(core_a, other_core) - wdist(core_b, other_core)
                )
            return delta

        temperature = self.initial_temperature
        for _ in range(self.anneal_iterations):
            pick = slot_of[rng.randrange(num_tiles)]
            if free and rng.random() < 0.5:
                # Move the tile to a free core.
                new_core = free[rng.randrange(len(free))]
                delta = delta_for_move(pick, new_core)
                accept = delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-9)
                )
                if accept:
                    old_core = core_at[pick]
                    core_at[pick] = new_core
                    used.add(new_core)
                    used.discard(old_core)
                    # O(1) removal: swap the taken core with the list tail.
                    position = free_pos.pop(new_core)
                    tail = free.pop()
                    if tail != new_core:
                        free[position] = tail
                        free_pos[tail] = position
                    free.append(old_core)
                    free_pos[old_core] = len(free) - 1
                    current_cost += delta
            else:
                # Swap two tiles.
                other = slot_of[rng.randrange(num_tiles)]
                if other == pick:
                    continue
                delta = delta_for_swap(pick, other)
                accept = delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-9)
                )
                if accept:
                    core_at[pick], core_at[other] = core_at[other], core_at[pick]
                    current_cost += delta
            if current_cost < best_cost:
                best_cost = current_cost
                best_cores = list(core_at)
            temperature *= 0.995
        return Placement({tile: best_cores[slot] for tile, slot in zip(tiles, slot_of)})

    # -------------------------------------------------------------------- run

    def map_block(self, region_core_ids: list[int]) -> BlockMapping:
        placement = self.greedy(region_core_ids)
        placement = self.anneal(placement, region_core_ids)
        placement.validate(self.wafer)
        cost = evaluate_placement(self.problem, placement, self.wafer)
        return BlockMapping(
            placement=placement,
            cost=cost,
            weight_core_ids=sorted(placement.cores()),
            region_core_ids=list(region_core_ids),
        )


def _apply_pattern(
    problem: MappingProblem,
    wafer: Wafer,
    tiles: list[Tile],
    region: list[int],
    pattern: list[int],
) -> BlockMapping:
    """Replicate a relative placement pattern onto another region of cores.

    If a pattern slot falls on a defective core of the new region, the tile is
    diverted to the nearest unused healthy core of the region.
    """
    used: set[int] = set()
    assignment: dict[Tile, int] = {}
    # Fallback cores are handed out in region order; every core before the
    # iterator's position is already used, so one forward pass suffices.
    fallback = iter(core for core in region if not wafer.is_defective(core))
    for tile, index in zip(tiles, pattern):
        core = region[index] if index < len(region) else None
        if core is None or wafer.is_defective(core) or core in used:
            core = next((c for c in fallback if c not in used), None)
            if core is None:
                raise MappingError("not enough healthy cores to replicate the pattern")
        assignment[tile] = core
        used.add(core)
    placement = Placement(assignment)
    placement.validate(wafer)
    cost = evaluate_placement(problem, placement, wafer)
    return BlockMapping(
        placement=placement,
        cost=cost,
        weight_core_ids=sorted(placement.cores()),
        region_core_ids=list(region),
    )


def map_model(
    arch: ModelArch,
    wafer: Wafer,
    anneal_iterations: int = 0,
    seed: int = 0,
    min_kv_fraction: float = 0.05,
) -> WaferMapping:
    """Map a whole model onto a wafer: one region of cores per transformer block.

    The wafer's healthy cores are walked in S-shaped order and split into
    ``num_blocks`` contiguous segments so that consecutive pipeline stages sit
    in adjacent regions.  Within each segment the block's tiles are placed by
    :class:`BlockMapper`; every remaining core of the segment becomes a KV
    core for that block.

    Raises :class:`MappingError` if the model's weights (plus a minimal KV
    reserve of ``min_kv_fraction``) do not fit the wafer.
    """
    capacity = wafer.config.die.core.weight_capacity_bytes
    problem = MappingProblem.from_arch(
        arch, capacity, wafer.config.inter_die_cost_factor
    )
    tiles_per_block = problem.num_cores_required()
    # Traverse the wafer in bands roughly as tall as one block's region is
    # wide, so each block occupies a compact 2D patch instead of a long strip.
    approximate_region = max(1, wafer.num_healthy_cores // arch.num_blocks)
    band_height = max(1, int(round(math.sqrt(approximate_region))))
    healthy_order = [
        core
        for core in wafer.s_shaped_order(band_height=band_height)
        if not wafer.is_defective(core)
    ]
    total_needed = tiles_per_block * arch.num_blocks
    if total_needed > len(healthy_order) * (1.0 - min_kv_fraction):
        raise MappingError(
            f"{arch.name} needs {total_needed} weight cores but the wafer only has "
            f"{len(healthy_order)} healthy cores (min KV reserve "
            f"{min_kv_fraction:.0%})"
        )
    segment_size = len(healthy_order) // arch.num_blocks
    mapper = BlockMapper(problem, wafer, anneal_iterations=anneal_iterations, seed=seed)

    # The paper maps a single transformer block and repeats that placement for
    # every block (all blocks are identical).  We therefore run the expensive
    # annealing once, on the first block's region, and replicate the resulting
    # *relative* placement pattern across the remaining regions.
    block_mappings: list[BlockMapping] = []
    pattern: list[int] | None = None
    tiles = problem.tiles()
    for block in range(arch.num_blocks):
        start = block * segment_size
        end = start + segment_size if block < arch.num_blocks - 1 else len(healthy_order)
        region = healthy_order[start:end]
        if pattern is None:
            mapping = mapper.map_block(region)
            index_of = {core: i for i, core in enumerate(region)}
            pattern = [index_of[mapping.placement.core_of(tile)] for tile in tiles]
        else:
            mapping = _apply_pattern(problem, wafer, tiles, region, pattern)
        block_mappings.append(mapping)

    # Inter-block hand-off cost: last layer of block k -> first tile of block k+1.
    inter_block = 0.0
    layers = sorted(problem.layers, key=lambda layer: layer.index)
    last_layer = layers[-1]
    last_tiles = problem.tiles_of_layer(last_layer.index)
    handoff_bytes = problem.inter_layer_bytes(last_layer)
    geometry = wafer.geometry()
    for current, nxt in zip(block_mappings, block_mappings[1:]):
        entry_core = nxt.weight_core_ids[0]
        for tile in last_tiles:
            src = current.placement.core_of(tile)
            inter_block += handoff_bytes * geometry.weighted_distance(
                src, entry_core, problem.inter_die_cost_factor
            )

    route_hops = _activation_route_hops(problem, wafer, block_mappings[0])
    return WaferMapping(
        arch=arch,
        block_mappings=block_mappings,
        inter_block_cost=inter_block,
        activation_route_hops=route_hops,
    )


def _activation_route_hops(
    problem: MappingProblem, wafer: Wafer, block: BlockMapping
) -> float:
    """Typical hop distance an activation travels between consecutive stages.

    Activations propagate along the S-shaped producer/consumer route, so one
    token's hidden state effectively travels from the centroid of one layer's
    core region to the centroid of the next, plus half the spread of the
    consumer region (the multicast tail).  This is the distance the per-token
    NoC energy/latency model charges; the all-pairs byte-hop objective remains
    the quantity the mapper minimises.
    """
    layers = sorted(problem.layers, key=lambda layer: layer.index)
    geometry = wafer.geometry()
    centroids: list[tuple[float, float]] = []
    spreads: list[float] = []
    for layer in layers:
        layer_cores = [
            block.placement.core_of(tile) for tile in problem.tiles_of_layer(layer.index)
        ]
        rows = [int(geometry.rows[core]) for core in layer_cores]
        cols = [int(geometry.cols[core]) for core in layer_cores]
        centroid = (sum(rows) / len(rows), sum(cols) / len(cols))
        centroids.append(centroid)
        spread = sum(
            abs(r - centroid[0]) + abs(c - centroid[1]) for r, c in zip(rows, cols)
        ) / len(layer_cores)
        spreads.append(spread)
    if len(centroids) < 2:
        return 1.0
    hops = []
    for (a, b), spread in zip(zip(centroids, centroids[1:]), spreads[1:]):
        centroid_distance = abs(a[0] - b[0]) + abs(a[1] - b[1])
        hops.append(centroid_distance + 0.5 * spread)
    return max(1.0, sum(hops) / len(hops))
