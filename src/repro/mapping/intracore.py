"""Intra-core weight mapping: dynamic programming over the H-tree (Section 4.3.2).

Within a core, the weight tile assigned by the inter-core mapper is further
split into crossbar-sized slices (1024 input channels x 128 output channels).
The slices are the leaves of the core's binary H-tree; every internal node
either *reduces* partial sums (if both children cover the same output
channels) or *concatenates* them (doubling the data volume).  Equation 4
minimises ``sum(depth(node) * weight(node))`` with ``weight = 1`` for
concatenation nodes, i.e. concatenations should happen as close to the root as
possible.

The DP below finds the optimal leaf assignment by recursively deciding how to
split the multiset of output-part labels between the two halves of each
subtree.  For the slice counts that occur in practice (tens of leaves, a
handful of output parts) the state space is tiny.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from functools import lru_cache

from ..errors import MappingError
from ..hardware.htree import HTreeCost, LeafAssignment, assignment_cost


@dataclass(frozen=True)
class IntraCoreProblem:
    """Slices of one core's weight tile: ``input_parts x output_parts``."""

    input_parts: int
    output_parts: int
    num_leaves: int = 32

    def __post_init__(self) -> None:
        if self.input_parts <= 0 or self.output_parts <= 0:
            raise MappingError("input_parts and output_parts must be positive")
        if self.num_leaves <= 0 or (self.num_leaves & (self.num_leaves - 1)) != 0:
            raise MappingError("num_leaves must be a positive power of two")
        if self.input_parts * self.output_parts > self.num_leaves:
            raise MappingError(
                f"{self.input_parts * self.output_parts} slices do not fit "
                f"{self.num_leaves} crossbars"
            )

    @property
    def num_slices(self) -> int:
        return self.input_parts * self.output_parts


@dataclass
class IntraCoreResult:
    """Optimal leaf assignment plus its cost and a naive reference cost."""

    assignment: LeafAssignment
    cost: HTreeCost
    objective: int
    naive_objective: int

    @property
    def improvement(self) -> float:
        """Relative reduction of the DP objective versus the naive layout."""
        if self.naive_objective == 0:
            return 0.0
        return 1.0 - self.objective / self.naive_objective


def _pad_slices(problem: IntraCoreProblem) -> list[tuple[int, int]]:
    """Slices of the tile, padded with copies so the leaf count is a power of two.

    Padding replicates existing slices (the hardware would simply leave those
    crossbars idle); replicated slices share output parts with their source so
    they never introduce extra concatenations.
    """
    slices = [
        (i, o)
        for o in range(problem.output_parts)
        for i in range(problem.input_parts)
    ]
    index = 0
    while len(slices) < problem.num_leaves:
        slices.append(slices[index % problem.num_slices])
        index += 1
    return slices


def naive_assignment(problem: IntraCoreProblem) -> LeafAssignment:
    """Interleave output parts across adjacent leaves (worst-case layout).

    Placing different output parts next to each other forces concatenations at
    the deepest tree levels, which is the situation Fig. 8 warns about.
    """
    slices = _pad_slices(problem)
    # Sort by input part first so adjacent leaves hold *different* output parts.
    interleaved = sorted(slices, key=lambda slice_: (slice_[0], slice_[1]))
    return LeafAssignment(slices=interleaved)


def grouped_assignment(problem: IntraCoreProblem) -> LeafAssignment:
    """Group leaves by output part (reductions at the bottom, concats on top)."""
    slices = _pad_slices(problem)
    grouped = sorted(slices, key=lambda slice_: (slice_[1], slice_[0]))
    return LeafAssignment(slices=grouped)


class IntraCoreMapper:
    """Exact DP minimising the depth-weighted concatenation objective."""

    def __init__(self, problem: IntraCoreProblem) -> None:
        self.problem = problem
        self._total_levels = int(math.log2(problem.num_leaves))

    def optimize(self) -> IntraCoreResult:
        slices = _pad_slices(self.problem)
        counts: dict[int, int] = {}
        for _, output_part in slices:
            counts[output_part] = counts.get(output_part, 0) + 1
        parts = tuple(sorted(counts))
        start = tuple(counts[part] for part in parts)

        # Guard against state-space blow-up: when the exact DP would enumerate
        # too many splits, fall back to the grouped layout, which realises the
        # optimal structure (reductions at the bottom, concatenations at the
        # top) whenever the per-part counts are balanced.
        split_estimate = 1
        for count in start:
            split_estimate *= count + 1
        if split_estimate > 50_000:
            assignment = grouped_assignment(self.problem)
            cost = assignment_cost(assignment)
            naive_cost = assignment_cost(naive_assignment(self.problem))
            return IntraCoreResult(
                assignment=assignment,
                cost=cost,
                objective=cost.weighted_concat_depth,
                naive_objective=naive_cost.weighted_concat_depth,
            )

        @lru_cache(maxsize=None)
        def dp(state: tuple[int, ...], size: int) -> tuple[int, tuple]:
            """Return (objective, layout) for a subtree holding ``state`` slices."""
            if size == 1:
                part = parts[next(i for i, c in enumerate(state) if c > 0)]
                return 0, (part,)
            half = size // 2
            node_depth = self._total_levels - int(math.log2(size)) + 1
            best: tuple[int, tuple] | None = None
            for left in _splits(state, half):
                right = tuple(s - l for s, l in zip(state, left))
                left_cost, left_layout = dp(left, half)
                right_cost, right_layout = dp(right, half)
                left_parts = frozenset(
                    parts[i] for i, c in enumerate(left) if c > 0
                )
                right_parts = frozenset(
                    parts[i] for i, c in enumerate(right) if c > 0
                )
                concat = 1 if left_parts != right_parts else 0
                cost = left_cost + right_cost + concat * node_depth
                if best is None or cost < best[0]:
                    best = (cost, left_layout + right_layout)
            assert best is not None
            return best

        objective, layout = dp(start, self.problem.num_leaves)

        # Rebuild a full (input_part, output_part) leaf ordering from the
        # output-part layout by drawing input parts in order per output part.
        pools: dict[int, list[int]] = {}
        for input_part, output_part in slices:
            pools.setdefault(output_part, []).append(input_part)
        ordered: list[tuple[int, int]] = []
        for output_part in layout:
            ordered.append((pools[output_part].pop(0), output_part))
        assignment = LeafAssignment(slices=ordered)
        cost = assignment_cost(assignment)
        naive_cost = assignment_cost(naive_assignment(self.problem))
        return IntraCoreResult(
            assignment=assignment,
            cost=cost,
            objective=objective,
            naive_objective=naive_cost.weighted_concat_depth,
        )


def _splits(state: tuple[int, ...], half: int):
    """Yield every way to put ``half`` slices into the left subtree."""
    ranges = [range(min(count, half) + 1) for count in state]
    for combo in itertools.product(*ranges):
        if sum(combo) == half:
            yield combo
