"""Fault tolerance through replacement-chain remapping (Section 4.3.3).

Ouroboros keeps every functional core active (no spare cores).  When a core
fails during operation two cases arise:

* **KV-storage core fails** -- only the sequences stored on that core need to
  be recomputed; the KV manager marks the core unusable.
* **Weight core fails** -- the weights of the failed core are shifted to a
  neighbouring core, whose weights shift to the next, forming a *replacement
  chain* that terminates at the nearest KV-cache core.  The terminal KV core's
  cached data is evicted (those sequences are recomputed) and it becomes a
  weight core.  The recovery is purely local: it never re-runs the MIQP
  mapping and finishes in sub-millisecond time.

Interconnect (link) failures are handled separately by the NoC model, which
re-routes around faulty links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MappingError
from ..hardware.noc import NoCModel
from ..hardware.wafer import Wafer
from ..kvcache.manager import DistributedKVCacheManager
from .intercore import WaferMapping


@dataclass
class RemappingResult:
    """Outcome of recovering from one core failure."""

    failed_core: int
    #: cores traversed by the replacement chain, starting at the failed core
    chain: list[int] = field(default_factory=list)
    #: KV core sacrificed at the end of the chain (None for KV-core failures)
    reclaimed_kv_core: int | None = None
    #: sequences whose KV data was lost and must be recomputed
    affected_sequences: list[int] = field(default_factory=list)
    #: estimated wall-clock time of the weight shuffle along the chain
    recovery_latency_s: float = 0.0
    #: bytes of weights moved during recovery
    moved_weight_bytes: int = 0

    @property
    def chain_length(self) -> int:
        return max(0, len(self.chain) - 1)


class FaultToleranceManager:
    """Applies the replacement-chain recovery to a mapped wafer."""

    def __init__(
        self,
        wafer: Wafer,
        mapping: WaferMapping,
        kv_manager: DistributedKVCacheManager | None = None,
        noc: NoCModel | None = None,
    ) -> None:
        self.wafer = wafer
        self.mapping = mapping
        self.kv_manager = kv_manager
        self.noc = noc or NoCModel(wafer)
        self._weight_cores: set[int] = set(mapping.weight_core_ids)
        self._kv_cores: set[int] = set(mapping.kv_core_ids)
        self._failed_cores: set[int] = set()

    # ------------------------------------------------------------------ state

    @property
    def weight_cores(self) -> set[int]:
        return set(self._weight_cores)

    @property
    def kv_cores(self) -> set[int]:
        return set(self._kv_cores)

    @property
    def failed_cores(self) -> set[int]:
        return set(self._failed_cores)

    def role_of(self, core_id: int) -> str:
        if core_id in self._failed_cores:
            return "failed"
        if core_id in self._weight_cores:
            return "weight"
        if core_id in self._kv_cores:
            return "kv"
        return "unassigned"

    # --------------------------------------------------------------- recovery

    def fail_core(self, core_id: int) -> RemappingResult:
        """Handle a runtime failure of ``core_id``."""
        if core_id in self._failed_cores:
            raise MappingError(f"core {core_id} already failed")
        if core_id in self._kv_cores:
            return self._fail_kv_core(core_id)
        if core_id in self._weight_cores:
            return self._fail_weight_core(core_id)
        # Unassigned core: nothing to recover.
        self._failed_cores.add(core_id)
        return RemappingResult(failed_core=core_id)

    def _fail_kv_core(self, core_id: int) -> RemappingResult:
        self._kv_cores.discard(core_id)
        self._failed_cores.add(core_id)
        affected: list[int] = []
        if self.kv_manager is not None and core_id in self.kv_manager.kv_core_ids:
            affected = self.kv_manager.fail_core(core_id)
        return RemappingResult(
            failed_core=core_id,
            chain=[core_id],
            affected_sequences=affected,
        )

    def _fail_weight_core(self, core_id: int) -> RemappingResult:
        target_kv = self._nearest_kv_core(core_id)
        if target_kv is None:
            raise MappingError(
                "no healthy KV core available to terminate the replacement chain"
            )
        chain = self._build_chain(core_id, target_kv)
        weight_bytes = self.wafer.config.die.core.weight_capacity_bytes

        # Shift weights: every core in the chain takes over its predecessor's
        # tile; the terminal KV core becomes a weight core.
        latency = 0.0
        moved = 0
        for src, dst in zip(chain, chain[1:]):
            cost = self.noc.transfer_cost(src, dst, weight_bytes)
            latency += cost.latency_s
            moved += weight_bytes

        affected: list[int] = []
        if self.kv_manager is not None and target_kv in self.kv_manager.kv_core_ids:
            affected = self.kv_manager.fail_core(target_kv)

        self._failed_cores.add(core_id)
        self._weight_cores.discard(core_id)
        self._kv_cores.discard(target_kv)
        self._weight_cores.add(target_kv)

        return RemappingResult(
            failed_core=core_id,
            chain=chain,
            reclaimed_kv_core=target_kv,
            affected_sequences=affected,
            recovery_latency_s=latency,
            moved_weight_bytes=moved,
        )

    # ------------------------------------------------------------------ helpers

    def _nearest_kv_core(self, core_id: int) -> int | None:
        candidates = [
            kv for kv in self._kv_cores
            if kv not in self._failed_cores and not self.wafer.is_defective(kv)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda kv: self.wafer.manhattan(core_id, kv))

    def _build_chain(self, start: int, end: int) -> list[int]:
        """Greedy Manhattan walk from the failed core to the reclaimed KV core."""
        chain = [start]
        current = start
        visited = {start}
        while current != end:
            neighbors = [
                n
                for n in self.wafer.neighbors(current)
                if n not in visited
                and n not in self._failed_cores
                and not self.wafer.is_defective(n)
            ]
            if not neighbors:
                raise MappingError(
                    f"replacement chain from core {start} to {end} is blocked"
                )
            current = min(neighbors, key=lambda n: self.wafer.manhattan(n, end))
            chain.append(current)
            visited.add(current)
        return chain
