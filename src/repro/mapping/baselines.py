"""Mapping baselines for the transmission-volume comparison (Fig. 18).

The paper compares the on-wafer communication volume of its mapping against
two wafer-scale execution schemes:

* **Cerebras (SUMMA + pipelined all-reduce)** -- each layer's weights are
  spread over a near-square 2D core grid; activations are broadcast
  systolically along grid rows, 32-bit partial sums are reduced down grid
  columns, and the layer output is all-gathered before the next layer starts.
* **WaferLLM** -- locality-aware 1D (output-channel) tiling like Ouroboros,
  but placed without the MIQP-style refinement and with a leader-core gather
  of every layer's output before redistribution.
* **Ouroboros** -- 1D output-channel tiling placed by the annealed mapper; the
  activation is forwarded along the S-shaped chain of the consumer layer's
  cores, so each link carries the full input vector exactly once.

All three schemes are charged with the same *chain/systolic* accounting --
byte-hops actually carried by mesh links per processed token -- so the
comparison isolates the mapping/execution strategy rather than the accounting
convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hardware.wafer import Wafer
from ..models.architectures import ModelArch
from ..models.layers import PARTIAL_SUM_BYTES, BlockLayer, build_block_layers
from .intercore import WaferMapping, map_model
from .objective import MappingProblem


@dataclass(frozen=True)
class TransmissionVolume:
    """Per-token communication volume of one mapping scheme."""

    scheme: str
    byte_hops_per_token: float
    bytes_per_token: float

    def normalized_to(self, reference: "TransmissionVolume") -> float:
        if reference.byte_hops_per_token == 0:
            return 0.0
        return self.byte_hops_per_token / reference.byte_hops_per_token


def _grid_shape(num_cores: int) -> tuple[int, int]:
    """Near-square factorisation used for the SUMMA layer grids."""
    rows = max(1, int(math.sqrt(num_cores)))
    cols = max(1, math.ceil(num_cores / rows))
    return rows, cols


def _region_centroid(
    wafer: Wafer, mapping: WaferMapping, problem: MappingProblem, layer: BlockLayer
) -> tuple[float, float]:
    block = mapping.block_mappings[0]
    coords = [
        wafer.coordinate_of(block.placement.core_of(tile))
        for tile in problem.tiles_of_layer(layer.index)
    ]
    return (
        sum(c.row for c in coords) / len(coords),
        sum(c.col for c in coords) / len(coords),
    )


def _chain_volume(
    arch: ModelArch,
    wafer: Wafer,
    mapping: WaferMapping,
    leader_gather_fraction: float = 0.0,
) -> tuple[float, float]:
    """Per-token (byte-hops, bytes) for 1D output-channel tiling with chains.

    Each consumer layer's cores form a forwarding chain: every link carries the
    full input activation once, so the inter-layer byte-hops are
    ``input_bytes * (chain_links + region_distance)``.  Input-channel splits
    add a partial-sum reduction chain.  ``leader_gather_fraction`` optionally
    charges a WaferLLM-style gather of the layer output to a leader core.
    """
    capacity = wafer.config.die.core.weight_capacity_bytes
    problem = MappingProblem.from_arch(arch, capacity, wafer.config.inter_die_cost_factor)
    layers = build_block_layers(arch)
    act = arch.activation_bytes
    byte_hops = 0.0
    bytes_moved = 0.0
    centroids = {
        layer.index: _region_centroid(wafer, mapping, problem, layer) for layer in layers
    }
    for previous, layer in zip([None] + layers[:-1], layers):
        cores = layer.num_cores(capacity)
        input_bytes = layer.input_dim * act
        output_bytes = layer.output_dim * act
        psum_bytes = layer.output_dim * PARTIAL_SUM_BYTES
        if previous is not None:
            a = centroids[previous.index]
            b = centroids[layer.index]
            region_distance = abs(a[0] - b[0]) + abs(a[1] - b[1])
        else:
            region_distance = 1.0

        # Candidate tilings for this layer.  The Ouroboros mapper (MIQP over
        # the tiling/placement space plus the intra-core DP) effectively picks
        # whichever decomposition moves the fewest bytes; WaferLLM-style
        # execution sticks to the 1D output-channel chain.
        output_split_hops = input_bytes * max(0, cores - 1)
        input_split_hops = input_bytes + psum_bytes * max(0, cores - 1)
        rows, cols = _grid_shape(cores)
        summa_hops = (
            input_bytes * cols
            + psum_bytes * max(0, rows - 1)
            + output_bytes * (rows + cols) / 2.0
        )
        if leader_gather_fraction > 0:
            intra_layer = output_split_hops
        else:
            intra_layer = min(output_split_hops, input_split_hops, summa_hops)

        byte_hops += intra_layer + input_bytes * region_distance
        bytes_moved += input_bytes * max(1, cores)
        if leader_gather_fraction > 0 and cores > 1:
            span = math.sqrt(cores)
            byte_hops += leader_gather_fraction * output_bytes * span
            bytes_moved += leader_gather_fraction * output_bytes
    return byte_hops * arch.num_blocks, bytes_moved * arch.num_blocks


def cerebras_summa_volume(arch: ModelArch, wafer: Wafer) -> TransmissionVolume:
    """Per-token byte-hops of the SUMMA / pipelined all-reduce scheme."""
    capacity = wafer.config.die.core.weight_capacity_bytes
    act = arch.activation_bytes
    total_hops = 0.0
    total_bytes = 0.0
    for layer in build_block_layers(arch):
        cores = layer.num_cores(capacity)
        rows, cols = _grid_shape(cores)
        input_bytes = layer.input_dim * act
        output_bytes = layer.output_dim * act
        psum_bytes = layer.output_dim * PARTIAL_SUM_BYTES
        # Systolic broadcast of the input slices along every grid row: each of
        # the `rows` row-chains carries input_bytes / rows over `cols` links.
        broadcast_hops = input_bytes * cols
        broadcast_bytes = input_bytes * cols / max(1, rows)
        # Pipelined reduction of 32-bit partial sums down every grid column.
        reduce_hops = psum_bytes * max(0, rows - 1)
        reduce_bytes = psum_bytes * max(0, rows - 1) / max(1, rows)
        # All-gather of the layer output around the grid perimeter so the next
        # layer (and the attention cores) can consume a contiguous vector.
        gather_hops = output_bytes * (rows + cols) / 2.0
        gather_bytes = output_bytes
        # Cerebras's default placement does not co-locate consecutive layers;
        # the gathered output travels roughly one grid diagonal to reach the
        # next layer's grid.
        inter_layer_hops = output_bytes * (rows + cols) / 2.0
        total_hops += broadcast_hops + reduce_hops + gather_hops + inter_layer_hops
        total_bytes += broadcast_bytes + reduce_bytes + gather_bytes + output_bytes
    total_hops *= arch.num_blocks
    total_bytes *= arch.num_blocks
    return TransmissionVolume(
        scheme="Cerebras", byte_hops_per_token=total_hops, bytes_per_token=total_bytes
    )


def waferllm_volume(arch: ModelArch, wafer: Wafer) -> TransmissionVolume:
    """Per-token byte-hops of a WaferLLM-style locality-aware placement."""
    mapping = map_model(arch, wafer, anneal_iterations=0)
    byte_hops, bytes_moved = _chain_volume(
        arch, wafer, mapping, leader_gather_fraction=0.5
    )
    return TransmissionVolume(
        scheme="WaferLLM", byte_hops_per_token=byte_hops, bytes_per_token=bytes_moved
    )


def ouroboros_volume(
    arch: ModelArch, wafer: Wafer, anneal_iterations: int = 200, seed: int = 0
) -> TransmissionVolume:
    """Per-token byte-hops of the Ouroboros MIQP-style mapping."""
    mapping = map_model(arch, wafer, anneal_iterations=anneal_iterations, seed=seed)
    byte_hops, bytes_moved = _chain_volume(arch, wafer, mapping)
    return TransmissionVolume(
        scheme="Ouroboros", byte_hops_per_token=byte_hops, bytes_per_token=bytes_moved
    )


def compare_mapping_schemes(
    arch: ModelArch, wafer: Wafer, anneal_iterations: int = 200, seed: int = 0
) -> dict[str, TransmissionVolume]:
    """All three schemes for one model, keyed by scheme name."""
    return {
        "Cerebras": cerebras_summa_volume(arch, wafer),
        "WaferLLM": waferllm_volume(arch, wafer),
        "Ours": ouroboros_volume(arch, wafer, anneal_iterations, seed),
    }
