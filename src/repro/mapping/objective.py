"""Communication-cost objective for the inter-core mapping (Eq. 1-3).

The mapper places *tiles* -- (layer, input part, output part) slices of one
transformer block's weight matrices -- onto CIM cores.  The objective charges
Manhattan byte-hops (with a die-crossing penalty) for three kinds of traffic,
mirroring Eq. 1:

* **inter-layer** -- each tile of layer ``l+1`` must receive the output
  activation produced by the tiles of layer ``l`` (the ``output(l)`` term);
* **reduction**   -- tiles of the same layer that share an output part but
  hold different input parts must reduce 32-bit partial sums (the
  ``reduction(l)`` term);
* **gather**      -- output-channel parts of a layer are concatenated at the
  part-0 tile before being handed to consumers that need the contiguous
  vector (the ``gather(l)`` term).

All volumes are per processed token; the simulator scales them by token counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MappingError
from ..hardware.wafer import Wafer
from ..models.architectures import ModelArch
from ..models.layers import BlockLayer, build_block_layers


@dataclass(frozen=True)
class Tile:
    """One weight tile: a slice of one layer's weight matrix."""

    layer_index: int
    input_part: int
    output_part: int

    def __str__(self) -> str:
        return f"L{self.layer_index}[i{self.input_part},o{self.output_part}]"


@dataclass(frozen=True)
class MappingProblem:
    """Everything needed to evaluate a placement of one block's tiles."""

    arch: ModelArch
    layers: tuple[BlockLayer, ...]
    core_weight_capacity_bytes: int
    inter_die_cost_factor: float = 4.0

    @classmethod
    def from_arch(
        cls,
        arch: ModelArch,
        core_weight_capacity_bytes: int,
        inter_die_cost_factor: float = 4.0,
    ) -> "MappingProblem":
        return cls(
            arch=arch,
            layers=tuple(build_block_layers(arch)),
            core_weight_capacity_bytes=core_weight_capacity_bytes,
            inter_die_cost_factor=inter_die_cost_factor,
        )

    # ------------------------------------------------------------------- tiles

    def tiles(self) -> list[Tile]:
        """All tiles of one block, in layer order."""
        result: list[Tile] = []
        for layer in self.layers:
            o_parts = layer.output_splits(self.core_weight_capacity_bytes)
            i_parts = layer.input_splits(self.core_weight_capacity_bytes)
            for o in range(o_parts):
                for i in range(i_parts):
                    result.append(Tile(layer.index, i, o))
        return result

    def tiles_of_layer(self, layer_index: int) -> list[Tile]:
        return [tile for tile in self.tiles() if tile.layer_index == layer_index]

    def num_cores_required(self) -> int:
        return len(self.tiles())

    def layer(self, layer_index: int) -> BlockLayer:
        for layer in self.layers:
            if layer.index == layer_index:
                return layer
        raise MappingError(f"no layer with index {layer_index}")

    # -------------------------------------------------------------- volumes

    def tile_weight_bytes(self, tile: Tile) -> int:
        layer = self.layer(tile.layer_index)
        parts = layer.output_splits(self.core_weight_capacity_bytes) * layer.input_splits(
            self.core_weight_capacity_bytes
        )
        return layer.weight_bytes // parts

    def inter_layer_bytes(self, producer_layer: BlockLayer) -> float:
        """Bytes one producer tile sends to one consumer tile (per token)."""
        o_parts = producer_layer.output_splits(self.core_weight_capacity_bytes)
        return producer_layer.output_volume_bytes() / o_parts

    def reduction_bytes(self, layer: BlockLayer) -> float:
        """Bytes of partial sums one reduction hop carries (per token)."""
        o_parts = layer.output_splits(self.core_weight_capacity_bytes)
        return layer.reduction_volume_bytes(self.core_weight_capacity_bytes) / max(1, o_parts)

    def gather_bytes(self, layer: BlockLayer) -> float:
        """Bytes one output part contributes to the gather (per token)."""
        o_parts = layer.output_splits(self.core_weight_capacity_bytes)
        return layer.gather_volume_bytes(self.core_weight_capacity_bytes) / max(1, o_parts)


@dataclass
class CommunicationCost:
    """Byte-hop volumes of a placement, split by traffic class."""

    inter_layer: float = 0.0
    reduction: float = 0.0
    gather: float = 0.0
    #: plain bytes moved (no hop weighting), for transmission-volume figures
    total_bytes: float = 0.0

    @property
    def total(self) -> float:
        return self.inter_layer + self.reduction + self.gather

    def __add__(self, other: "CommunicationCost") -> "CommunicationCost":
        return CommunicationCost(
            inter_layer=self.inter_layer + other.inter_layer,
            reduction=self.reduction + other.reduction,
            gather=self.gather + other.gather,
            total_bytes=self.total_bytes + other.total_bytes,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "inter_layer": self.inter_layer,
            "reduction": self.reduction,
            "gather": self.gather,
            "total_byte_hops": self.total,
            "total_bytes": self.total_bytes,
        }


@dataclass
class Placement:
    """Assignment of tiles to core ids."""

    assignment: dict[Tile, int] = field(default_factory=dict)

    def core_of(self, tile: Tile) -> int:
        try:
            return self.assignment[tile]
        except KeyError as exc:
            raise MappingError(f"tile {tile} is not placed") from exc

    def cores(self) -> list[int]:
        return list(self.assignment.values())

    def validate(self, wafer: Wafer) -> None:
        """Check constraints Eq. 2: one tile per core, no defective cores."""
        seen: set[int] = set()
        for tile, core_id in self.assignment.items():
            if core_id in seen:
                raise MappingError(f"core {core_id} holds more than one tile")
            if wafer.is_defective(core_id):
                raise MappingError(f"tile {tile} placed on defective core {core_id}")
            seen.add(core_id)


def _weighted_distance(wafer: Wafer, problem: MappingProblem, a: int, b: int) -> float:
    """Manhattan distance with the die-crossing penalty of Eq. 1."""
    distance = float(wafer.manhattan(a, b))
    if not wafer.same_die(a, b):
        distance *= problem.inter_die_cost_factor
    return distance


def evaluate_placement(
    problem: MappingProblem,
    placement: Placement,
    wafer: Wafer,
    next_block_entry_core: int | None = None,
) -> CommunicationCost:
    """Per-token communication cost of a placement of one block's tiles.

    ``next_block_entry_core`` optionally charges the hand-off from this block's
    last layer to the first layer of the following block (used when evaluating
    whole-wafer mappings).
    """
    cost = CommunicationCost()
    layers = sorted(problem.layers, key=lambda layer: layer.index)
    tiles_by_layer = {
        layer.index: problem.tiles_of_layer(layer.index) for layer in layers
    }

    # Inter-layer traffic: producer tiles -> consumer tiles of the next layer.
    for producer, consumer in zip(layers, layers[1:]):
        volume = problem.inter_layer_bytes(producer)
        for src_tile in tiles_by_layer[producer.index]:
            src = placement.core_of(src_tile)
            for dst_tile in tiles_by_layer[consumer.index]:
                dst = placement.core_of(dst_tile)
                cost.inter_layer += volume * _weighted_distance(wafer, problem, src, dst)
                cost.total_bytes += volume

    # Hand-off to the next block's first layer (single representative core).
    if next_block_entry_core is not None and layers:
        last = layers[-1]
        volume = problem.inter_layer_bytes(last)
        for src_tile in tiles_by_layer[last.index]:
            src = placement.core_of(src_tile)
            cost.inter_layer += volume * _weighted_distance(
                wafer, problem, src, next_block_entry_core
            )
            cost.total_bytes += volume

    # Intra-layer reduction and gather traffic.
    for layer in layers:
        tiles = tiles_by_layer[layer.index]
        reduction_volume = problem.reduction_bytes(layer)
        gather_volume = problem.gather_bytes(layer)
        by_output: dict[int, list[Tile]] = {}
        for tile in tiles:
            by_output.setdefault(tile.output_part, []).append(tile)
        gather_roots: list[int] = []
        for _, group in sorted(by_output.items()):
            group = sorted(group, key=lambda t: t.input_part)
            root = placement.core_of(group[-1])
            gather_roots.append(root)
            if reduction_volume > 0:
                for tile in group[:-1]:
                    src = placement.core_of(tile)
                    cost.reduction += reduction_volume * _weighted_distance(
                        wafer, problem, src, root
                    )
                    cost.total_bytes += reduction_volume
        if gather_volume > 0 and len(gather_roots) > 1:
            anchor = gather_roots[0]
            for root in gather_roots[1:]:
                cost.gather += gather_volume * _weighted_distance(
                    wafer, problem, root, anchor
                )
                cost.total_bytes += gather_volume
    return cost
