"""Communication-cost objective for the inter-core mapping (Eq. 1-3).

The mapper places *tiles* -- (layer, input part, output part) slices of one
transformer block's weight matrices -- onto CIM cores.  The objective charges
Manhattan byte-hops (with a die-crossing penalty) for three kinds of traffic,
mirroring Eq. 1:

* **inter-layer** -- each tile of layer ``l+1`` must receive the output
  activation produced by the tiles of layer ``l`` (the ``output(l)`` term);
* **reduction**   -- tiles of the same layer that share an output part but
  hold different input parts must reduce 32-bit partial sums (the
  ``reduction(l)`` term);
* **gather**      -- output-channel parts of a layer are concatenated at the
  part-0 tile before being handed to consumers that need the contiguous
  vector (the ``gather(l)`` term).

All volumes are per processed token; the simulator scales them by token counts.

The objective is evaluated many thousands of times by the annealer and the
per-block pattern replication, so the traffic structure -- which is a pure
function of the problem, not of the placement -- is precomputed once into flat
edge arrays (:meth:`MappingProblem.edge_arrays`) and every full evaluation is
a handful of vectorised numpy operations over cached wafer geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import MappingError
from ..hardware.wafer import Wafer
from ..models.architectures import ModelArch
from ..models.layers import BlockLayer, build_block_layers


@dataclass(frozen=True)
class Tile:
    """One weight tile: a slice of one layer's weight matrix."""

    layer_index: int
    input_part: int
    output_part: int

    def __str__(self) -> str:
        return f"L{self.layer_index}[i{self.input_part},o{self.output_part}]"


@dataclass(frozen=True)
class EdgeArrays:
    """Static per-token traffic of one block, as flat tile-index edge lists.

    Each traffic class is a triple of aligned arrays: source tile index,
    destination tile index, and per-edge byte volume.  The arrays depend only
    on the problem (layer splits), never on the placement, so they are built
    once and reused by every :func:`evaluate_placement` call and by the
    annealer's incremental delta evaluation.
    """

    inter_src: np.ndarray
    inter_dst: np.ndarray
    inter_vol: np.ndarray
    reduction_src: np.ndarray
    reduction_dst: np.ndarray
    reduction_vol: np.ndarray
    gather_src: np.ndarray
    gather_dst: np.ndarray
    gather_vol: np.ndarray
    #: tile indices of the last layer and the per-tile hand-off volume
    handoff_tiles: np.ndarray
    handoff_vol: float


@dataclass(frozen=True)
class MappingProblem:
    """Everything needed to evaluate a placement of one block's tiles."""

    arch: ModelArch
    layers: tuple[BlockLayer, ...]
    core_weight_capacity_bytes: int
    inter_die_cost_factor: float = 4.0

    @classmethod
    def from_arch(
        cls,
        arch: ModelArch,
        core_weight_capacity_bytes: int,
        inter_die_cost_factor: float = 4.0,
    ) -> "MappingProblem":
        return cls(
            arch=arch,
            layers=tuple(build_block_layers(arch)),
            core_weight_capacity_bytes=core_weight_capacity_bytes,
            inter_die_cost_factor=inter_die_cost_factor,
        )

    # ------------------------------------------------------------------- tiles

    def _tile_cache(self) -> tuple[tuple[Tile, ...], dict[int, tuple[Tile, ...]]]:
        """Tile list and per-layer grouping, built once per problem instance."""
        cached = self.__dict__.get("_tiles_cached")
        if cached is None:
            all_tiles: list[Tile] = []
            by_layer: dict[int, tuple[Tile, ...]] = {}
            for layer in self.layers:
                o_parts = layer.output_splits(self.core_weight_capacity_bytes)
                i_parts = layer.input_splits(self.core_weight_capacity_bytes)
                layer_tiles = [
                    Tile(layer.index, i, o)
                    for o in range(o_parts)
                    for i in range(i_parts)
                ]
                by_layer[layer.index] = tuple(layer_tiles)
                all_tiles.extend(layer_tiles)
            cached = (tuple(all_tiles), by_layer)
            object.__setattr__(self, "_tiles_cached", cached)
        return cached

    def tiles(self) -> list[Tile]:
        """All tiles of one block, in layer order."""
        return list(self._tile_cache()[0])

    def tiles_of_layer(self, layer_index: int) -> list[Tile]:
        by_layer = self._tile_cache()[1]
        if layer_index not in by_layer:
            return []
        return list(by_layer[layer_index])

    def tile_indices(self) -> dict[Tile, int]:
        """Tile -> position in :meth:`tiles` order (cached)."""
        cached = self.__dict__.get("_tile_index_cached")
        if cached is None:
            cached = {tile: i for i, tile in enumerate(self._tile_cache()[0])}
            object.__setattr__(self, "_tile_index_cached", cached)
        return cached

    def num_cores_required(self) -> int:
        return len(self._tile_cache()[0])

    def layer(self, layer_index: int) -> BlockLayer:
        for layer in self.layers:
            if layer.index == layer_index:
                return layer
        raise MappingError(f"no layer with index {layer_index}")

    # -------------------------------------------------------------- volumes

    def tile_weight_bytes(self, tile: Tile) -> int:
        layer = self.layer(tile.layer_index)
        parts = layer.output_splits(self.core_weight_capacity_bytes) * layer.input_splits(
            self.core_weight_capacity_bytes
        )
        return layer.weight_bytes // parts

    def inter_layer_bytes(self, producer_layer: BlockLayer) -> float:
        """Bytes one producer tile sends to one consumer tile (per token)."""
        o_parts = producer_layer.output_splits(self.core_weight_capacity_bytes)
        return producer_layer.output_volume_bytes() / o_parts

    def reduction_bytes(self, layer: BlockLayer) -> float:
        """Bytes of partial sums one reduction hop carries (per token)."""
        o_parts = layer.output_splits(self.core_weight_capacity_bytes)
        return layer.reduction_volume_bytes(self.core_weight_capacity_bytes) / max(1, o_parts)

    def gather_bytes(self, layer: BlockLayer) -> float:
        """Bytes one output part contributes to the gather (per token)."""
        o_parts = layer.output_splits(self.core_weight_capacity_bytes)
        return layer.gather_volume_bytes(self.core_weight_capacity_bytes) / max(1, o_parts)

    # ------------------------------------------------------------ edge arrays

    def edge_arrays(self) -> EdgeArrays:
        """The static traffic structure as flat tile-index edge lists (cached)."""
        cached = self.__dict__.get("_edges_cached")
        if cached is not None:
            return cached
        tiles, by_layer = self._tile_cache()
        index_of = self.tile_indices()
        layers = sorted(self.layers, key=lambda layer: layer.index)

        inter_src: list[int] = []
        inter_dst: list[int] = []
        inter_vol: list[float] = []
        for producer, consumer in zip(layers, layers[1:]):
            volume = self.inter_layer_bytes(producer)
            src_ids = [index_of[t] for t in by_layer[producer.index]]
            dst_ids = [index_of[t] for t in by_layer[consumer.index]]
            for src in src_ids:
                for dst in dst_ids:
                    inter_src.append(src)
                    inter_dst.append(dst)
                    inter_vol.append(volume)

        reduction_src: list[int] = []
        reduction_dst: list[int] = []
        reduction_vol: list[float] = []
        gather_src: list[int] = []
        gather_dst: list[int] = []
        gather_vol: list[float] = []
        for layer in layers:
            r_volume = self.reduction_bytes(layer)
            g_volume = self.gather_bytes(layer)
            by_output: dict[int, list[Tile]] = {}
            for tile in by_layer[layer.index]:
                by_output.setdefault(tile.output_part, []).append(tile)
            gather_roots: list[int] = []
            for _, group in sorted(by_output.items()):
                group = sorted(group, key=lambda t: t.input_part)
                root = index_of[group[-1]]
                gather_roots.append(root)
                if r_volume > 0:
                    for tile in group[:-1]:
                        reduction_src.append(index_of[tile])
                        reduction_dst.append(root)
                        reduction_vol.append(r_volume)
            if g_volume > 0 and len(gather_roots) > 1:
                anchor = gather_roots[0]
                for root in gather_roots[1:]:
                    gather_src.append(root)
                    gather_dst.append(anchor)
                    gather_vol.append(g_volume)

        last = layers[-1]
        handoff_tiles = np.asarray(
            [index_of[t] for t in by_layer[last.index]], dtype=np.int64
        )
        cached = EdgeArrays(
            inter_src=np.asarray(inter_src, dtype=np.int64),
            inter_dst=np.asarray(inter_dst, dtype=np.int64),
            inter_vol=np.asarray(inter_vol, dtype=np.float64),
            reduction_src=np.asarray(reduction_src, dtype=np.int64),
            reduction_dst=np.asarray(reduction_dst, dtype=np.int64),
            reduction_vol=np.asarray(reduction_vol, dtype=np.float64),
            gather_src=np.asarray(gather_src, dtype=np.int64),
            gather_dst=np.asarray(gather_dst, dtype=np.int64),
            gather_vol=np.asarray(gather_vol, dtype=np.float64),
            handoff_tiles=handoff_tiles,
            handoff_vol=self.inter_layer_bytes(last),
        )
        object.__setattr__(self, "_edges_cached", cached)
        return cached

    def tile_adjacency(self) -> list[list[tuple[int, float]]]:
        """Undirected tile adjacency [(neighbour index, volume)] (cached).

        Combines all three traffic classes; used by the annealer to evaluate
        the cost change of moving one tile without re-walking the whole edge
        list.
        """
        cached = self.__dict__.get("_adjacency_cached")
        if cached is not None:
            return cached
        edges = self.edge_arrays()
        adjacency: list[list[tuple[int, float]]] = [
            [] for _ in range(self.num_cores_required())
        ]
        for src_arr, dst_arr, vol_arr in (
            (edges.inter_src, edges.inter_dst, edges.inter_vol),
            (edges.reduction_src, edges.reduction_dst, edges.reduction_vol),
            (edges.gather_src, edges.gather_dst, edges.gather_vol),
        ):
            for src, dst, vol in zip(src_arr.tolist(), dst_arr.tolist(), vol_arr.tolist()):
                adjacency[src].append((dst, vol))
                adjacency[dst].append((src, vol))
        object.__setattr__(self, "_adjacency_cached", adjacency)
        return adjacency


@dataclass
class CommunicationCost:
    """Byte-hop volumes of a placement, split by traffic class."""

    inter_layer: float = 0.0
    reduction: float = 0.0
    gather: float = 0.0
    #: plain bytes moved (no hop weighting), for transmission-volume figures
    total_bytes: float = 0.0

    @property
    def total(self) -> float:
        return self.inter_layer + self.reduction + self.gather

    def __add__(self, other: "CommunicationCost") -> "CommunicationCost":
        return CommunicationCost(
            inter_layer=self.inter_layer + other.inter_layer,
            reduction=self.reduction + other.reduction,
            gather=self.gather + other.gather,
            total_bytes=self.total_bytes + other.total_bytes,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "inter_layer": self.inter_layer,
            "reduction": self.reduction,
            "gather": self.gather,
            # Emitted under a unit-qualified name on purpose: the ``total``
            # property is in byte-hops, and renaming the key would silently
            # fork downstream readers of saved reports.
            "total_byte_hops": self.total,  # repro-lint: allow=SER002
            "total_bytes": self.total_bytes,
        }


@dataclass
class Placement:
    """Assignment of tiles to core ids."""

    assignment: dict[Tile, int] = field(default_factory=dict)

    def core_of(self, tile: Tile) -> int:
        try:
            return self.assignment[tile]
        except KeyError as exc:
            raise MappingError(f"tile {tile} is not placed") from exc

    def cores(self) -> list[int]:
        return list(self.assignment.values())

    def validate(self, wafer: Wafer) -> None:
        """Check constraints Eq. 2: one tile per core, no defective cores."""
        seen: set[int] = set()
        for tile, core_id in self.assignment.items():
            if core_id in seen:
                raise MappingError(f"core {core_id} holds more than one tile")
            if wafer.is_defective(core_id):
                raise MappingError(f"tile {tile} placed on defective core {core_id}")
            seen.add(core_id)


def _weighted_distance(wafer: Wafer, problem: MappingProblem, a: int, b: int) -> float:
    """Manhattan distance with the die-crossing penalty of Eq. 1."""
    distance = float(wafer.manhattan(a, b))
    if not wafer.same_die(a, b):
        distance *= problem.inter_die_cost_factor
    return distance


def placement_core_array(problem: MappingProblem, placement: Placement) -> np.ndarray:
    """Core id of every tile, in :meth:`MappingProblem.tiles` order."""
    tiles = problem._tile_cache()[0]
    assignment = placement.assignment
    cores = np.empty(len(tiles), dtype=np.int64)
    for i, tile in enumerate(tiles):
        core = assignment.get(tile)
        if core is None:
            raise MappingError(f"tile {tile} is not placed")
        cores[i] = core
    return cores


def _class_cost(
    geometry,
    factor: float,
    cores: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    vol: np.ndarray,
) -> float:
    """Σ volume · weighted Manhattan distance over one traffic class."""
    if len(src) == 0:
        return 0.0
    a = cores[src]
    b = cores[dst]
    dist = np.abs(geometry.rows[a] - geometry.rows[b]) + np.abs(
        geometry.cols[a] - geometry.cols[b]
    )
    weighted = dist.astype(np.float64)
    cross = (geometry.die_rows[a] != geometry.die_rows[b]) | (
        geometry.die_cols[a] != geometry.die_cols[b]
    )
    weighted[cross] *= factor
    return float(np.dot(vol, weighted))


def evaluate_placement(
    problem: MappingProblem,
    placement: Placement,
    wafer: Wafer,
    next_block_entry_core: int | None = None,
) -> CommunicationCost:
    """Per-token communication cost of a placement of one block's tiles.

    ``next_block_entry_core`` optionally charges the hand-off from this block's
    last layer to the first layer of the following block (used when evaluating
    whole-wafer mappings).
    """
    edges = problem.edge_arrays()
    geometry = wafer.geometry()
    factor = problem.inter_die_cost_factor
    cores = placement_core_array(problem, placement)

    inter = _class_cost(
        geometry, factor, cores, edges.inter_src, edges.inter_dst, edges.inter_vol
    )
    reduction = _class_cost(
        geometry,
        factor,
        cores,
        edges.reduction_src,
        edges.reduction_dst,
        edges.reduction_vol,
    )
    gather = _class_cost(
        geometry, factor, cores, edges.gather_src, edges.gather_dst, edges.gather_vol
    )
    total_bytes = float(
        edges.inter_vol.sum() + edges.reduction_vol.sum() + edges.gather_vol.sum()
    )

    # Hand-off to the next block's first layer (single representative core).
    if next_block_entry_core is not None and len(edges.handoff_tiles) > 0:
        src_cores = cores[edges.handoff_tiles]
        entry = int(next_block_entry_core)
        dist = np.abs(geometry.rows[src_cores] - geometry.rows[entry]) + np.abs(
            geometry.cols[src_cores] - geometry.cols[entry]
        )
        weighted = dist.astype(np.float64)
        cross = (geometry.die_rows[src_cores] != geometry.die_rows[entry]) | (
            geometry.die_cols[src_cores] != geometry.die_cols[entry]
        )
        weighted[cross] *= factor
        inter += float(edges.handoff_vol * weighted.sum())
        total_bytes += edges.handoff_vol * len(src_cores)

    return CommunicationCost(
        inter_layer=inter,
        reduction=reduction,
        gather=gather,
        total_bytes=total_bytes,
    )
