"""Murphy yield model and defect-map generation (Section 5).

The paper models per-core yield with the Murphy model

    Y = ((1 - exp(-A * D0)) / (A * D0)) ** 2

with a defect density ``D0 = 0.09 / cm^2`` and a core area ``A = 2.97 mm^2``.
Defective-core locations are drawn uniformly at random; the mapper treats them
as unusable (constraint Eq. 2) and the fault-tolerance scheme handles cores
that fail after deployment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .config import WaferConfig


def murphy_yield(area_mm2: float, defect_density_per_cm2: float) -> float:
    """Per-die (or per-core) yield under the Murphy model."""
    if area_mm2 < 0 or defect_density_per_cm2 < 0:
        raise ValueError("area and defect density must be non-negative")
    a_d0 = (area_mm2 / 100.0) * defect_density_per_cm2  # mm^2 -> cm^2
    if a_d0 == 0.0:
        return 1.0
    # expm1 keeps the ratio numerically stable for very small A*D0.
    return (-math.expm1(-a_d0) / a_d0) ** 2


@dataclass(frozen=True)
class DefectMap:
    """Set of defective core ids on a wafer."""

    defective_cores: frozenset[int]
    core_yield: float
    total_cores: int

    @property
    def healthy_cores(self) -> int:
        return self.total_cores - len(self.defective_cores)

    @property
    def observed_yield(self) -> float:
        if self.total_cores == 0:
            return 1.0
        return self.healthy_cores / self.total_cores

    def is_defective(self, core_id: int) -> bool:
        return core_id in self.defective_cores


def sample_defect_map(
    config: WaferConfig,
    seed: int | None = 0,
    core_area_mm2: float | None = None,
) -> DefectMap:
    """Draw a random defect map for a wafer.

    Each core independently fails with probability ``1 - Y`` where ``Y`` is the
    Murphy yield of a single core.
    """
    area = core_area_mm2 if core_area_mm2 is not None else config.die.core.core_area_mm2
    core_yield = murphy_yield(area, config.defect_density_per_cm2)
    rng = np.random.default_rng(seed)
    total = config.cores_per_wafer
    draws = rng.random(total)
    defective = frozenset(int(i) for i in np.nonzero(draws > core_yield)[0])
    return DefectMap(
        defective_cores=defective, core_yield=core_yield, total_cores=total
    )


def expected_defective_cores(config: WaferConfig) -> float:
    """Expected number of defective cores on a wafer."""
    core_yield = murphy_yield(
        config.die.core.core_area_mm2, config.defect_density_per_cm2
    )
    return config.cores_per_wafer * (1.0 - core_yield)
