"""Hardware configuration dataclasses for the Ouroboros wafer-scale CIM system.

The defaults reproduce the geometry described in Section 3 of the paper:

* a 215mm x 215mm wafer built from a 9 x 7 grid of dies,
* each die a 13 x 17 grid of CIM cores connected by a mesh NoC,
* each core a 32-crossbar array (4 MB SRAM) plus input/output buffers and an
  SFU,
* each crossbar a 1024 x 1024 6T SRAM array organised as 128 MAC arrays with a
  1/32 row-activation ratio and bit-serial 8-bit inputs.

Every quantity that the paper states explicitly is a dataclass field; derived
quantities (capacities, peak throughput, cycle counts) are exposed as
properties so that design-space sweeps (e.g. the row-activation-ratio study of
Fig. 11) can simply replace a field and re-read the derived values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError
from ..units import GHZ, KB, MB, MHZ


@dataclass(frozen=True)
class CrossbarConfig:
    """A single digital SRAM CIM crossbar (Fig. 10).

    The crossbar stores ``rows x columns`` 1-bit cells.  Weights are 8-bit, so
    the logical weight matrix held by one crossbar is ``rows x (columns /
    weight_bits)``.  Inputs are streamed bit-serially through an 8:1
    multiplexer, and ``rows * row_activation_ratio`` rows are activated per
    cycle (one row per bank).
    """

    rows: int = 1024
    columns: int = 1024
    weight_bits: int = 8
    activation_bits: int = 8
    output_bits: int = 32
    #: fraction of rows activated simultaneously (1/32 in the paper)
    row_activation_ratio: float = 1.0 / 32.0
    #: number of MAC arrays (= number of output columns of the weight matrix)
    mac_arrays: int = 128
    frequency_hz: float = 300 * MHZ
    #: number of logical blocks the array is partitioned into in attention mode
    attention_logical_blocks: int = 8

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.columns <= 0:
            raise ConfigurationError("crossbar dimensions must be positive")
        if self.columns % self.weight_bits != 0:
            raise ConfigurationError(
                "crossbar columns must be divisible by the weight bit-width"
            )
        if not 0.0 < self.row_activation_ratio <= 1.0:
            raise ConfigurationError(
                "row_activation_ratio must lie in (0, 1], got "
                f"{self.row_activation_ratio}"
            )
        if self.mac_arrays != self.columns // self.weight_bits:
            raise ConfigurationError(
                "mac_arrays must equal columns / weight_bits "
                f"({self.columns // self.weight_bits}), got {self.mac_arrays}"
            )

    # -- capacities -----------------------------------------------------------

    @property
    def sram_bytes(self) -> int:
        """Raw SRAM capacity of the array in bytes."""
        return self.rows * self.columns // 8

    @property
    def weight_rows(self) -> int:
        """Number of weight rows (input-channel entries) stored by the array."""
        return self.rows

    @property
    def weight_columns(self) -> int:
        """Number of weight columns (output channels) stored by the array."""
        return self.columns // self.weight_bits

    @property
    def weight_capacity_bytes(self) -> int:
        """Bytes of 8-bit weights the crossbar can hold (== SRAM capacity)."""
        return self.weight_rows * self.weight_columns * (self.weight_bits // 8)

    @property
    def rows_active_per_cycle(self) -> int:
        """Rows activated simultaneously each cycle (>= 1)."""
        return max(1, int(round(self.rows * self.row_activation_ratio)))

    # -- timing ---------------------------------------------------------------

    @property
    def cycle_time_s(self) -> float:
        """Duration of one crossbar cycle in seconds."""
        return 1.0 / self.frequency_hz

    @property
    def gemv_cycles(self) -> int:
        """Cycles for one full GEMV against the whole stored weight matrix.

        Bit-serial activations need ``activation_bits`` passes; covering all
        rows needs ``rows / rows_active_per_cycle`` row groups.
        """
        row_groups = math.ceil(self.rows / self.rows_active_per_cycle)
        return self.activation_bits * row_groups

    @property
    def macs_per_cycle(self) -> float:
        """Average 8-bit multiply-accumulates retired per cycle."""
        total_macs = self.weight_rows * self.weight_columns
        return total_macs / self.gemv_cycles

    @property
    def peak_ops_per_second(self) -> float:
        """Peak 8-bit operations/second (2 ops per MAC)."""
        return 2.0 * self.macs_per_cycle * self.frequency_hz


@dataclass(frozen=True)
class CoreConfig:
    """A CIM core: 32 crossbars, buffers, an SFU and a control unit (Fig. 2c)."""

    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)
    crossbars_per_core: int = 32
    input_buffer_bytes: int = 128 * KB
    output_buffer_bytes: int = 32 * KB
    sfu_buffer_bytes: int = 10 * KB
    sfu_parallel_lanes: int = 64
    sfu_frequency_hz: float = 1 * GHZ
    #: bidirectional link width to each mesh neighbour, in bits
    link_width_bits: int = 256
    #: width of the intra-core H-tree links, in bits
    htree_width_bits: int = 1024
    core_area_mm2: float = 2.97

    def __post_init__(self) -> None:
        if self.crossbars_per_core <= 0:
            raise ConfigurationError("crossbars_per_core must be positive")
        if self.core_area_mm2 <= 0:
            raise ConfigurationError("core_area_mm2 must be positive")

    @property
    def sram_bytes(self) -> int:
        """Total crossbar SRAM per core (4 MB with default parameters)."""
        return self.crossbars_per_core * self.crossbar.sram_bytes

    @property
    def weight_capacity_bytes(self) -> int:
        """Bytes of 8-bit weights one core can hold."""
        return self.crossbars_per_core * self.crossbar.weight_capacity_bytes

    @property
    def peak_ops_per_second(self) -> float:
        """Peak 8-bit operations/second of the whole core."""
        return self.crossbars_per_core * self.crossbar.peak_ops_per_second

    @property
    def macs_per_cycle(self) -> float:
        """MACs retired per crossbar cycle across all crossbars."""
        return self.crossbars_per_core * self.crossbar.macs_per_cycle

    @property
    def htree_levels(self) -> int:
        """Depth of the binary H-tree connecting the crossbars."""
        return int(math.ceil(math.log2(self.crossbars_per_core)))


@dataclass(frozen=True)
class DieConfig:
    """A die: a rows x cols grid of CIM cores (Fig. 2b)."""

    core: CoreConfig = field(default_factory=CoreConfig)
    rows: int = 13
    cols: int = 17
    width_mm: float = 23.0
    height_mm: float = 30.0

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("die grid dimensions must be positive")

    @property
    def cores_per_die(self) -> int:
        return self.rows * self.cols

    @property
    def sram_bytes(self) -> int:
        return self.cores_per_die * self.core.sram_bytes


@dataclass(frozen=True)
class WaferConfig:
    """The full wafer: a grid of dies stitched into one mesh (Fig. 2a)."""

    die: DieConfig = field(default_factory=DieConfig)
    die_rows: int = 9
    die_cols: int = 7
    wafer_side_mm: float = 215.0
    #: manufacturing defect density used by the Murphy yield model, per cm^2
    defect_density_per_cm2: float = 0.09
    #: penalty factor for crossing a die boundary relative to an intra-die hop
    inter_die_cost_factor: float = 4.0
    #: number of 100 Gbit/s optical Ethernet ports used for multi-wafer scaling
    optical_ports: int = 8
    optical_port_gbps: float = 100.0

    def __post_init__(self) -> None:
        if self.die_rows <= 0 or self.die_cols <= 0:
            raise ConfigurationError("wafer die grid dimensions must be positive")
        if self.inter_die_cost_factor < 1.0:
            raise ConfigurationError("inter_die_cost_factor must be >= 1")

    @property
    def dies_per_wafer(self) -> int:
        return self.die_rows * self.die_cols

    @property
    def core_rows(self) -> int:
        """Total rows of cores across the wafer mesh."""
        return self.die_rows * self.die.rows

    @property
    def core_cols(self) -> int:
        """Total columns of cores across the wafer mesh."""
        return self.die_cols * self.die.cols

    @property
    def cores_per_wafer(self) -> int:
        return self.dies_per_wafer * self.die.cores_per_die

    @property
    def sram_bytes(self) -> int:
        """Total first-level SRAM on the wafer (~54 GB with defaults)."""
        return self.cores_per_wafer * self.die.core.sram_bytes

    @property
    def peak_ops_per_second(self) -> float:
        return self.cores_per_wafer * self.die.core.peak_ops_per_second

    @property
    def inter_wafer_bandwidth_bytes_per_s(self) -> float:
        """Aggregate optical bandwidth available for multi-wafer scaling."""
        return self.optical_ports * self.optical_port_gbps * 1e9 / 8.0


def default_wafer_config() -> WaferConfig:
    """The paper's default single-wafer configuration."""
    return WaferConfig()


def with_row_activation_ratio(config: WaferConfig, ratio: float) -> WaferConfig:
    """Return a copy of ``config`` with a different crossbar row-activation ratio.

    Used by the Fig. 11 design-space sweep.  Changing the activation ratio also
    changes the peripheral-logic area of each crossbar, which the area model in
    :mod:`repro.hardware.crossbar` converts into a different per-core SRAM
    capacity.
    """
    crossbar = replace(config.die.core.crossbar, row_activation_ratio=ratio)
    core = replace(config.die.core, crossbar=crossbar)
    die = replace(config.die, core=core)
    return replace(config, die=die)
