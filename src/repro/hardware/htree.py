"""Cost model of the intra-core H-tree interconnect (Section 4.3.2).

The 32 crossbars of a core are the leaves of a binary H-tree whose internal
nodes either *reduce* (add partial sums that share output channels) or
*concatenate* (stack partial sums of disjoint output channels).  Reduction
keeps the data volume constant as it moves up the tree, whereas concatenation
doubles it, so concatenations performed close to the leaves put the most
pressure on the tree links.  The intra-core mapper (``repro.mapping.intracore``)
chooses the leaf assignment that pushes concatenations toward the root.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError


class NodeOp(enum.Enum):
    """Operation performed at an internal H-tree node."""

    REDUCTION = "reduction"
    CONCATENATION = "concatenation"
    PASS_THROUGH = "pass_through"


@dataclass
class HTreeNode:
    """One node of the binary H-tree abstraction."""

    depth: int
    op: NodeOp = NodeOp.PASS_THROUGH
    left: "HTreeNode | None" = None
    right: "HTreeNode | None" = None
    #: leaf payload: identifier of the weight slice mapped to this crossbar
    leaf_slice: tuple[int, int] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


@dataclass
class HTreeCost:
    """Aggregate cost of a leaf assignment."""

    #: the paper's DP objective: sum over nodes of depth(node) * weight(node)
    weighted_concat_depth: int
    concat_nodes: int
    reduction_nodes: int
    #: bytes moved across every tree level for one output vector
    traffic_bytes: float = 0.0
    levels: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "weighted_concat_depth": self.weighted_concat_depth,
            "concat_nodes": self.concat_nodes,
            "reduction_nodes": self.reduction_nodes,
            "traffic_bytes": self.traffic_bytes,
            "levels": self.levels,
        }


@dataclass
class LeafAssignment:
    """Assignment of weight slices ``(input_part, output_part)`` to leaves.

    ``slices[i]`` is the slice held by leaf ``i`` (in left-to-right order).
    Two sibling subtrees whose slices share the same set of output parts can be
    *reduced*; otherwise their outputs must be *concatenated*.
    """

    slices: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        count = len(self.slices)
        if count == 0 or (count & (count - 1)) != 0:
            raise ConfigurationError(
                f"leaf count must be a positive power of two, got {count}"
            )


def build_tree(assignment: LeafAssignment) -> HTreeNode:
    """Build the H-tree for a leaf assignment and label each internal node."""
    leaves = [
        HTreeNode(depth=0, leaf_slice=slice_) for slice_ in assignment.slices
    ]
    # Depth convention follows the paper's Eq. 4: leaves are the deepest nodes,
    # the root has depth equal to log2(#leaves).  We first build bottom-up and
    # then relabel depths so that depth(root) = levels and depth(leaf) = 0;
    # the DP objective only uses the *distance from the root*, so we record
    # that directly.
    level_nodes = leaves
    level = 0
    while len(level_nodes) > 1:
        level += 1
        next_level: list[HTreeNode] = []
        for i in range(0, len(level_nodes), 2):
            left, right = level_nodes[i], level_nodes[i + 1]
            node = HTreeNode(depth=level, left=left, right=right)
            node.op = _classify(left, right)
            next_level.append(node)
        level_nodes = next_level
    return level_nodes[0]


def _output_parts(node: HTreeNode) -> frozenset[int]:
    if node.is_leaf:
        assert node.leaf_slice is not None
        return frozenset({node.leaf_slice[1]})
    return _output_parts(node.left) | _output_parts(node.right)  # type: ignore[arg-type]


def _classify(left: HTreeNode, right: HTreeNode) -> NodeOp:
    """Reduction if both subtrees cover the same output parts, else concat."""
    left_parts = _output_parts(left)
    right_parts = _output_parts(right)
    if left_parts == right_parts:
        return NodeOp.REDUCTION
    return NodeOp.CONCATENATION


def evaluate_tree(
    root: HTreeNode,
    output_bytes_per_part: float = 0.0,
) -> HTreeCost:
    """Compute the DP objective and traffic for a labelled H-tree.

    The node weight follows Eq. 4 of the paper: concatenation nodes weigh 1,
    reduction nodes weigh 0.  A concatenation node's *pressure* is larger the
    closer it sits to the leaves, i.e. the more levels its doubled data volume
    must still traverse; we therefore weight each concatenation by its distance
    from the root (``total_levels - depth + 1``) is equivalent up to a constant
    to the paper's ``depth(node)`` once depths are measured from the leaves.
    """
    total_levels = root.depth
    weighted = 0
    concat = 0
    reduction = 0
    traffic = 0.0

    def visit(node: HTreeNode) -> float:
        """Return bytes flowing out of ``node``; accumulate costs."""
        nonlocal weighted, concat, reduction, traffic
        if node.is_leaf:
            return output_bytes_per_part
        left_bytes = visit(node.left)  # type: ignore[arg-type]
        right_bytes = visit(node.right)  # type: ignore[arg-type]
        distance_from_root = total_levels - node.depth
        if node.op is NodeOp.CONCATENATION:
            concat += 1
            # Deeper (closer to the leaves) concatenations are worse.
            weighted += (distance_from_root + 1)
            out_bytes = left_bytes + right_bytes
        else:
            reduction += 1
            out_bytes = max(left_bytes, right_bytes)
        traffic += out_bytes
        return out_bytes

    visit(root)
    return HTreeCost(
        weighted_concat_depth=weighted,
        concat_nodes=concat,
        reduction_nodes=reduction,
        traffic_bytes=traffic,
        levels=total_levels,
    )


def assignment_cost(
    assignment: LeafAssignment, output_bytes_per_part: float = 0.0
) -> HTreeCost:
    """Convenience wrapper: build the tree for ``assignment`` and evaluate it."""
    return evaluate_tree(build_tree(assignment), output_bytes_per_part)
