"""Analytical network-on-wafer model.

The paper uses BookSim2 for cycle-level NoC characterisation and consumes its
per-hop latency/energy figures.  We model the mesh analytically: a transfer of
``B`` bytes between two cores takes

    latency = hops * per_hop_latency + die_crossings * die_crossing_latency
              + B / link_bandwidth

and consumes ``B * hops`` bytes-hops of router/link energy plus a surcharge for
each stitched die boundary.  Link faults are handled by re-routing on the mesh
graph (networkx shortest path excluding faulty links), matching the paper's
real-time routing-table reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import ConfigurationError
from ..units import GHZ, NS
from .energy import EnergyModel
from .wafer import Wafer


@dataclass(frozen=True)
class NoCConfig:
    """Timing parameters of the mesh network-on-wafer."""

    #: router traversal + link latency per hop
    per_hop_latency_s: float = 2 * NS
    #: additional latency when a flit crosses a stitched die boundary
    die_crossing_latency_s: float = 4 * NS
    #: link clock frequency
    frequency_hz: float = 1 * GHZ
    #: link width in bits (matches the core buffer width)
    link_width_bits: int = 256

    @property
    def link_bandwidth_bytes_per_s(self) -> float:
        return self.frequency_hz * self.link_width_bits / 8.0


@dataclass
class TransferCost:
    """Latency and energy of one point-to-point transfer."""

    latency_s: float
    energy_j: float
    hops: int
    die_crossings: int
    num_bytes: float


@dataclass
class NoCTrafficStats:
    """Aggregated traffic counters kept by the NoC model."""

    total_bytes: float = 0.0
    total_byte_hops: float = 0.0
    total_transfers: int = 0
    total_energy_j: float = 0.0
    per_link_bytes: dict[tuple[int, int], float] = field(default_factory=dict)


class NoCModel:
    """Mesh network model bound to a specific wafer."""

    def __init__(
        self,
        wafer: Wafer,
        config: NoCConfig | None = None,
        energy: EnergyModel | None = None,
    ) -> None:
        self.wafer = wafer
        self.config = config or NoCConfig()
        self.energy = energy or wafer.energy
        self.stats = NoCTrafficStats()
        self._faulty_links: set[frozenset[int]] = set()
        self._graph: nx.Graph | None = None

    # ------------------------------------------------------------------ faults

    def mark_link_faulty(self, core_a: int, core_b: int) -> None:
        """Mark the mesh link between two adjacent cores as faulty."""
        if self.wafer.manhattan(core_a, core_b) != 1:
            raise ConfigurationError(
                f"cores {core_a} and {core_b} are not mesh neighbours"
            )
        self._faulty_links.add(frozenset((core_a, core_b)))
        self._graph = None

    def clear_link_faults(self) -> None:
        self._faulty_links.clear()
        self._graph = None

    @property
    def faulty_links(self) -> set[frozenset[int]]:
        return set(self._faulty_links)

    def _mesh_graph(self) -> nx.Graph:
        """Mesh graph with faulty links removed (built lazily)."""
        if self._graph is None:
            graph = nx.Graph()
            for core_id in range(self.wafer.num_cores):
                graph.add_node(core_id)
            for core_id in range(self.wafer.num_cores):
                for neighbor in self.wafer.neighbors(core_id):
                    if neighbor > core_id:
                        link = frozenset((core_id, neighbor))
                        if link not in self._faulty_links:
                            graph.add_edge(core_id, neighbor)
            self._graph = graph
        return self._graph

    # --------------------------------------------------------------- transfers

    def route_hops(self, src: int, dst: int) -> tuple[int, int]:
        """Return (hops, die_crossings) for a transfer from src to dst.

        Without link faults the route is the minimal XY route; with faults the
        shortest path on the surviving mesh is used (routing-table
        reconfiguration, Section 4.3.3).
        """
        if src == dst:
            return 0, 0
        if not self._faulty_links:
            return self.wafer.manhattan(src, dst), self.wafer.die_crossings(src, dst)
        graph = self._mesh_graph()
        try:
            path = nx.shortest_path(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise ConfigurationError(
                f"no route between cores {src} and {dst} with current link faults"
            ) from exc
        hops = len(path) - 1
        crossings = sum(
            0 if self.wafer.same_die(a, b) else 1 for a, b in zip(path, path[1:])
        )
        return hops, crossings

    def transfer_cost(self, src: int, dst: int, num_bytes: float) -> TransferCost:
        """Latency/energy to move ``num_bytes`` from ``src`` to ``dst``."""
        hops, crossings = self.route_hops(src, dst)
        if num_bytes <= 0 or hops == 0:
            return TransferCost(0.0, 0.0, hops, crossings, max(0.0, num_bytes))
        serialization = num_bytes / self.config.link_bandwidth_bytes_per_s
        latency = (
            hops * self.config.per_hop_latency_s
            + crossings * self.config.die_crossing_latency_s
            + serialization
        )
        energy = self.energy.noc_transfer_energy_j(num_bytes, hops, crossings)
        return TransferCost(latency, energy, hops, crossings, num_bytes)

    def record_transfer(self, src: int, dst: int, num_bytes: float) -> TransferCost:
        """Like :meth:`transfer_cost` but also accumulates traffic statistics."""
        cost = self.transfer_cost(src, dst, num_bytes)
        self.stats.total_bytes += cost.num_bytes
        self.stats.total_byte_hops += cost.num_bytes * cost.hops
        self.stats.total_transfers += 1
        self.stats.total_energy_j += cost.energy_j
        return cost

    def reset_stats(self) -> None:
        self.stats = NoCTrafficStats()

    # ------------------------------------------------------------- broadcasts

    def multicast_cost(self, src: int, dsts: list[int], num_bytes: float) -> TransferCost:
        """Cost of sending the same payload from ``src`` to several cores.

        Modelled as a chain of unicasts along the mesh (the paper's S-shaped
        producer/consumer flow), so latency is dominated by the farthest
        destination while energy accumulates byte-hops to every destination.
        """
        if not dsts:
            return TransferCost(0.0, 0.0, 0, 0, 0.0)
        latency = 0.0
        energy = 0.0
        max_hops = 0
        max_crossings = 0
        for dst in dsts:
            cost = self.transfer_cost(src, dst, num_bytes)
            latency = max(latency, cost.latency_s)
            energy += cost.energy_j
            max_hops = max(max_hops, cost.hops)
            max_crossings = max(max_crossings, cost.die_crossings)
        return TransferCost(latency, energy, max_hops, max_crossings, num_bytes * len(dsts))
