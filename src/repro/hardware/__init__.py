"""Hardware substrate models for the Ouroboros wafer-scale CIM system.

The hierarchy mirrors Fig. 2 of the paper: crossbar -> CIM core -> die ->
wafer, plus the mesh network-on-wafer, the intra-core H-tree, the energy /
area characterisation tables and the Murphy yield model.
"""

from .config import (
    CoreConfig,
    CrossbarConfig,
    DieConfig,
    WaferConfig,
    default_wafer_config,
    with_row_activation_ratio,
)
from .core import CIMCore, CoreRole, SfuCost
from .crossbar import (
    Crossbar,
    CrossbarMode,
    GemvCost,
    effective_sram_ratio,
    throughput_vs_activation_ratio,
)
from .die import CoreCoordinate, Die, DieCoordinate
from .energy import (
    DEFAULT_AREA_MODEL,
    DEFAULT_ENERGY_MODEL,
    CrossbarAreaModel,
    CrossbarEnergyModel,
    EnergyModel,
)
from .htree import (
    HTreeCost,
    HTreeNode,
    LeafAssignment,
    NodeOp,
    assignment_cost,
    build_tree,
    evaluate_tree,
)
from .noc import NoCConfig, NoCModel, NoCTrafficStats, TransferCost
from .wafer import Wafer
from .yieldmodel import DefectMap, expected_defective_cores, murphy_yield, sample_defect_map

__all__ = [
    "CrossbarConfig",
    "CoreConfig",
    "DieConfig",
    "WaferConfig",
    "default_wafer_config",
    "with_row_activation_ratio",
    "CIMCore",
    "CoreRole",
    "SfuCost",
    "Crossbar",
    "CrossbarMode",
    "GemvCost",
    "effective_sram_ratio",
    "throughput_vs_activation_ratio",
    "CoreCoordinate",
    "Die",
    "DieCoordinate",
    "EnergyModel",
    "CrossbarEnergyModel",
    "CrossbarAreaModel",
    "DEFAULT_ENERGY_MODEL",
    "DEFAULT_AREA_MODEL",
    "HTreeCost",
    "HTreeNode",
    "LeafAssignment",
    "NodeOp",
    "assignment_cost",
    "build_tree",
    "evaluate_tree",
    "NoCConfig",
    "NoCModel",
    "NoCTrafficStats",
    "TransferCost",
    "Wafer",
    "DefectMap",
    "murphy_yield",
    "sample_defect_map",
    "expected_defective_cores",
]
