"""Die-level organisation: a grid of CIM cores on a mesh (Fig. 2b)."""

from __future__ import annotations

from dataclasses import dataclass

from .config import DieConfig


@dataclass(frozen=True)
class DieCoordinate:
    """Position of a die within the wafer grid."""

    row: int
    col: int

    def manhattan(self, other: "DieCoordinate") -> int:
        return abs(self.row - other.row) + abs(self.col - other.col)


@dataclass(frozen=True)
class CoreCoordinate:
    """Global position of a core within the wafer-wide core mesh."""

    row: int
    col: int

    def manhattan(self, other: "CoreCoordinate") -> int:
        return abs(self.row - other.row) + abs(self.col - other.col)


class Die:
    """A die: bookkeeping for one rows x cols tile of the wafer core mesh."""

    def __init__(self, die_id: int, coordinate: DieCoordinate, config: DieConfig) -> None:
        self.die_id = die_id
        self.coordinate = coordinate
        self.config = config

    @property
    def cores_per_die(self) -> int:
        return self.config.cores_per_die

    @property
    def sram_bytes(self) -> int:
        return self.config.sram_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Die(id={self.die_id}, row={self.coordinate.row}, col={self.coordinate.col})"
