"""Behavioural model of a CIM core (Fig. 2c).

A core bundles 32 crossbars behind a 1024-bit H-tree, a 64-lane SFU for
softmax/layernorm style operations, ping-pong input/output buffers and a
control unit.  The core is the unit of the inter-core mapping: a core either
holds a weight tile of one layer (FFN mode crossbars), serves as KV-cache
storage-and-compute (attention mode crossbars), or is idle/defective.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import CapacityError
from .config import CoreConfig
from .crossbar import Crossbar, CrossbarMode, GemvCost
from .energy import EnergyModel


class CoreRole(enum.Enum):
    """What a core has been assigned to do by the mapper."""

    UNASSIGNED = "unassigned"
    WEIGHT = "weight"
    KV_CACHE = "kv_cache"
    DEFECTIVE = "defective"


@dataclass
class SfuCost:
    """Latency/energy of an SFU operation (softmax, layernorm, residual)."""

    latency_s: float
    energy_j: float
    elements: int


class CIMCore:
    """A single CIM core composed of crossbars, buffers and an SFU."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig | None = None,
        energy: EnergyModel | None = None,
    ) -> None:
        self.core_id = core_id
        self.config = config or CoreConfig()
        self.energy = energy or EnergyModel()
        self.role = CoreRole.UNASSIGNED
        self.crossbars = [
            Crossbar(self.config.crossbar, self.energy)
            for _ in range(self.config.crossbars_per_core)
        ]
        #: label of the layer tile mapped onto this core (set by the mapper)
        self.assigned_tile: object | None = None

    # ------------------------------------------------------------------ roles

    def mark_defective(self) -> None:
        self.role = CoreRole.DEFECTIVE
        self.assigned_tile = None

    def assign_weights(self, tile: object, weight_bytes: int) -> None:
        """Assign a weight tile to this core, loading crossbars in FFN mode."""
        if self.role is CoreRole.DEFECTIVE:
            raise CapacityError(f"core {self.core_id} is defective")
        if weight_bytes > self.weight_capacity_bytes:
            raise CapacityError(
                f"tile of {weight_bytes} bytes does not fit core capacity "
                f"{self.weight_capacity_bytes}"
            )
        self.role = CoreRole.WEIGHT
        self.assigned_tile = tile
        remaining = weight_bytes
        for crossbar in self.crossbars:
            crossbar.mode = CrossbarMode.FFN
            crossbar.reset_weights()
            chunk = min(remaining, crossbar.config.weight_capacity_bytes)
            if chunk > 0:
                crossbar.load_weights(chunk)
                remaining -= chunk
        # remaining == 0 guaranteed by the capacity check above

    def assign_kv_cache(self) -> None:
        """Configure all crossbars of this core for dynamic KV storage."""
        if self.role is CoreRole.DEFECTIVE:
            raise CapacityError(f"core {self.core_id} is defective")
        self.role = CoreRole.KV_CACHE
        self.assigned_tile = None
        for crossbar in self.crossbars:
            crossbar.mode = CrossbarMode.ATTENTION
            crossbar.reset_blocks()

    def release(self) -> None:
        """Return the core to the unassigned pool."""
        if self.role is CoreRole.DEFECTIVE:
            return
        self.role = CoreRole.UNASSIGNED
        self.assigned_tile = None
        for crossbar in self.crossbars:
            crossbar.reset_weights()
            crossbar.reset_blocks()
            crossbar.mode = CrossbarMode.FFN

    @property
    def is_available(self) -> bool:
        return self.role is CoreRole.UNASSIGNED

    @property
    def is_defective(self) -> bool:
        return self.role is CoreRole.DEFECTIVE

    # -------------------------------------------------------------- capacities

    @property
    def weight_capacity_bytes(self) -> int:
        return self.config.weight_capacity_bytes

    @property
    def weight_bytes_used(self) -> int:
        return sum(crossbar.weight_bytes_used for crossbar in self.crossbars)

    @property
    def weight_bytes_free(self) -> int:
        return self.weight_capacity_bytes - self.weight_bytes_used

    @property
    def total_logical_blocks(self) -> int:
        return sum(
            crossbar.config.attention_logical_blocks for crossbar in self.crossbars
        )

    @property
    def free_logical_blocks(self) -> int:
        if self.role is not CoreRole.KV_CACHE:
            return 0
        return sum(crossbar.free_blocks for crossbar in self.crossbars)

    # ------------------------------------------------------------------ compute

    def gemv_cost(self, input_dim: int, output_dim: int) -> GemvCost:
        """Latency/energy of an ``input_dim x output_dim`` GEMV on this core.

        The GEMV is tiled over the core's crossbars; crossbars work in
        parallel, so latency is that of the most loaded crossbar while energy
        sums over all of them.  Partial sums are reduced over the H-tree.
        """
        cfg = self.config.crossbar
        row_tiles = max(1, math.ceil(input_dim / cfg.weight_rows))
        col_tiles = max(1, math.ceil(output_dim / cfg.weight_columns))
        total_tiles = row_tiles * col_tiles
        parallel = min(total_tiles, self.config.crossbars_per_core)
        waves = math.ceil(total_tiles / parallel)

        last_rows = input_dim - (row_tiles - 1) * cfg.weight_rows
        last_cols = output_dim - (col_tiles - 1) * cfg.weight_columns
        full_tile = self.crossbars[0].gemv_cost(cfg.weight_rows, cfg.weight_columns)
        edge_tile = self.crossbars[0].gemv_cost(last_rows, last_cols)

        latency = waves * full_tile.latency_s if total_tiles > 1 else edge_tile.latency_s
        macs = float(input_dim * output_dim)
        energy = macs * self.energy.cim_mac_j(cfg)
        # H-tree reduction of partial sums across row tiles.
        psum_bytes = output_dim * (cfg.output_bits // 8)
        levels = self.config.htree_levels
        htree_energy = self.energy.htree_energy_j(psum_bytes * max(0, row_tiles - 1), levels)
        cycles = int(round(latency / cfg.cycle_time_s)) if cfg.cycle_time_s else 0
        return GemvCost(
            cycles=cycles,
            latency_s=latency,
            energy_j=energy + htree_energy,
            macs=macs,
        )

    def sfu_cost(self, elements: int) -> SfuCost:
        """Latency/energy of an element-wise / reduction SFU pass."""
        lanes = self.config.sfu_parallel_lanes
        cycles = math.ceil(max(0, elements) / lanes)
        latency = cycles / self.config.sfu_frequency_hz
        energy = elements * self.energy.sfu_j_per_element
        return SfuCost(latency_s=latency, energy_j=energy, elements=elements)

    def buffer_write_cost(self, num_bytes: int) -> float:
        """Energy of staging ``num_bytes`` through the input/output buffers."""
        return num_bytes * self.energy.sram_write_j_per_byte

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CIMCore(id={self.core_id}, role={self.role.value})"
