"""Wafer-scale fabric: the full grid of dies and cores (Fig. 2a).

The wafer exposes:

* global core coordinates and Manhattan distances (used by the mapping
  objective, Eq. 1),
* die membership and die-boundary crossing counts (used for the ``Penalty``
  term of Eq. 1),
* an S-shaped (boustrophedon) traversal order over cores that follows the
  paper's S-shaped logical routing topology for pipeline stages,
* lazy instantiation of behavioural :class:`~repro.hardware.core.CIMCore`
  objects, so that constructing a 13,923-core wafer stays cheap until a core
  is actually exercised.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .config import WaferConfig
from .core import CIMCore, CoreRole
from .die import CoreCoordinate, Die, DieCoordinate
from .energy import EnergyModel
from .yieldmodel import DefectMap


@dataclass(frozen=True)
class WaferGeometry:
    """Flat per-core coordinate arrays for vectorised distance computations.

    ``rows[i]``/``cols[i]`` are core ``i``'s global mesh coordinates and
    ``die_rows[i]``/``die_cols[i]`` the coordinates of the die it sits on.
    Built once per wafer and shared by the mapping objective, the annealer and
    the route-hop estimator, which would otherwise pay a Python call stack per
    coordinate lookup.
    """

    rows: np.ndarray
    cols: np.ndarray
    die_rows: np.ndarray
    die_cols: np.ndarray

    def weighted_distance(self, a: int, b: int, inter_die_factor: float) -> float:
        """Manhattan distance with the die-crossing penalty (scalar fast path)."""
        distance = float(
            abs(int(self.rows[a]) - int(self.rows[b]))
            + abs(int(self.cols[a]) - int(self.cols[b]))
        )
        if (
            self.die_rows[a] != self.die_rows[b]
            or self.die_cols[a] != self.die_cols[b]
        ):
            distance *= inter_die_factor
        return distance


class Wafer:
    """The full wafer-scale CIM fabric."""

    def __init__(
        self,
        config: WaferConfig | None = None,
        defect_map: DefectMap | None = None,
        energy: EnergyModel | None = None,
    ) -> None:
        self.config = config or WaferConfig()
        self.energy = energy or EnergyModel()
        self.defect_map = defect_map
        if defect_map is not None and defect_map.total_cores != self.config.cores_per_wafer:
            raise ConfigurationError(
                "defect map was generated for a wafer with "
                f"{defect_map.total_cores} cores, this wafer has "
                f"{self.config.cores_per_wafer}"
            )
        self.dies = [
            Die(
                die_id=row * self.config.die_cols + col,
                coordinate=DieCoordinate(row, col),
                config=self.config.die,
            )
            for row in range(self.config.die_rows)
            for col in range(self.config.die_cols)
        ]
        self._cores: dict[int, CIMCore] = {}
        self._geometry: WaferGeometry | None = None

    # --------------------------------------------------------------- geometry

    def geometry(self) -> WaferGeometry:
        """Cached flat coordinate arrays for every core (built on first use)."""
        if self._geometry is None:
            ids = np.arange(self.num_cores, dtype=np.int64)
            rows = ids // self.core_cols
            cols = ids % self.core_cols
            self._geometry = WaferGeometry(
                rows=rows,
                cols=cols,
                die_rows=rows // self.config.die.rows,
                die_cols=cols // self.config.die.cols,
            )
        return self._geometry

    @property
    def num_cores(self) -> int:
        return self.config.cores_per_wafer

    @property
    def core_rows(self) -> int:
        return self.config.core_rows

    @property
    def core_cols(self) -> int:
        return self.config.core_cols

    def coordinate_of(self, core_id: int) -> CoreCoordinate:
        """Global (row, col) of a core in the wafer-wide mesh."""
        self._check_core_id(core_id)
        return CoreCoordinate(core_id // self.core_cols, core_id % self.core_cols)

    def core_id_at(self, row: int, col: int) -> int:
        if not (0 <= row < self.core_rows and 0 <= col < self.core_cols):
            raise ConfigurationError(f"coordinate ({row}, {col}) outside the wafer")
        return row * self.core_cols + col

    def die_coordinate_of(self, core_id: int) -> DieCoordinate:
        coord = self.coordinate_of(core_id)
        return DieCoordinate(
            coord.row // self.config.die.rows, coord.col // self.config.die.cols
        )

    def die_of(self, core_id: int) -> Die:
        die_coord = self.die_coordinate_of(core_id)
        return self.dies[die_coord.row * self.config.die_cols + die_coord.col]

    def manhattan(self, core_a: int, core_b: int) -> int:
        """Manhattan hop distance between two cores on the mesh."""
        a, b = self.coordinate_of(core_a), self.coordinate_of(core_b)
        return a.manhattan(b)

    def die_crossings(self, core_a: int, core_b: int) -> int:
        """Number of die boundaries an XY route between two cores crosses."""
        a, b = self.die_coordinate_of(core_a), self.die_coordinate_of(core_b)
        return a.manhattan(b)

    def same_die(self, core_a: int, core_b: int) -> bool:
        return self.die_crossings(core_a, core_b) == 0

    def neighbors(self, core_id: int) -> list[int]:
        """Mesh neighbours (up/down/left/right) of a core."""
        coord = self.coordinate_of(core_id)
        result = []
        for d_row, d_col in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            row, col = coord.row + d_row, coord.col + d_col
            if 0 <= row < self.core_rows and 0 <= col < self.core_cols:
                result.append(self.core_id_at(row, col))
        return result

    def s_shaped_order(self, band_height: int = 1) -> list[int]:
        """Boustrophedon traversal of all cores, in bands of ``band_height`` rows.

        Neighbouring positions in the returned list are adjacent (or nearly so)
        on the mesh, which matches the S-shaped logical routing topology the
        paper uses to propagate activations between consecutive pipeline
        stages.  A band height larger than one keeps any contiguous slice of
        the order *compact in two dimensions*: a slice of ``k`` cores spans
        roughly ``band_height x (k / band_height)`` mesh positions, which is
        what the per-block mapping regions want.
        """
        if band_height < 1:
            band_height = 1
        order: list[int] = []
        num_bands = (self.core_rows + band_height - 1) // band_height
        for band in range(num_bands):
            row_start = band * band_height
            row_end = min(self.core_rows, row_start + band_height)
            cols: Iterator[int] = (
                range(self.core_cols) if band % 2 == 0 else reversed(range(self.core_cols))
            )
            for index, col in enumerate(cols):
                rows: Iterator[int] = (
                    range(row_start, row_end)
                    if index % 2 == 0
                    else reversed(range(row_start, row_end))
                )
                for row in rows:
                    order.append(self.core_id_at(row, col))
        return order

    # ----------------------------------------------------------------- defects

    def is_defective(self, core_id: int) -> bool:
        self._check_core_id(core_id)
        if self.defect_map is None:
            return False
        return self.defect_map.is_defective(core_id)

    def healthy_core_ids(self) -> list[int]:
        return [cid for cid in range(self.num_cores) if not self.is_defective(cid)]

    @property
    def num_healthy_cores(self) -> int:
        if self.defect_map is None:
            return self.num_cores
        return self.defect_map.healthy_cores

    # ------------------------------------------------------------------- cores

    def core(self, core_id: int) -> CIMCore:
        """Return (lazily creating) the behavioural model of one core."""
        self._check_core_id(core_id)
        core = self._cores.get(core_id)
        if core is None:
            core = CIMCore(core_id, self.config.die.core, self.energy)
            if self.is_defective(core_id):
                core.mark_defective()
            self._cores[core_id] = core
        return core

    def instantiated_cores(self) -> dict[int, CIMCore]:
        """Cores that have been touched so far (for inspection in tests)."""
        return dict(self._cores)

    def cores_with_role(self, role: CoreRole) -> list[int]:
        return [cid for cid, core in self._cores.items() if core.role is role]

    # --------------------------------------------------------------- capacities

    @property
    def sram_bytes(self) -> int:
        return self.config.sram_bytes

    @property
    def usable_sram_bytes(self) -> int:
        """SRAM on healthy cores only."""
        return self.num_healthy_cores * self.config.die.core.sram_bytes

    @property
    def peak_ops_per_second(self) -> float:
        return self.num_healthy_cores * self.config.die.core.peak_ops_per_second

    # ------------------------------------------------------------------ private

    def _check_core_id(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ConfigurationError(
                f"core id {core_id} outside wafer with {self.num_cores} cores"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Wafer({self.config.die_rows}x{self.config.die_cols} dies, "
            f"{self.num_cores} cores, {self.sram_bytes / (1 << 30):.1f} GiB SRAM)"
        )
