"""Energy and latency characterisation tables.

Section 5 of the paper characterises each component with CACTI, Synopsys DC on
the ASAP7 7-nm PDK, MNSIM 2.0 and BookSim2, and reports only the resulting
scalar numbers (area, dynamic/static power, frequency).  This module embeds
those published numbers and derives per-operation energies from them.  The
baselines additionally need standard per-byte energies for HBM/DRAM/NVLink
traffic; those use widely published figures and are documented inline.

All energies are expressed in joules per elementary event so the accounting
layer can simply multiply event counts by table entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import BITS_PER_BYTE, MHZ, MW, PJ
from .config import CoreConfig, CrossbarConfig


@dataclass(frozen=True)
class CrossbarEnergyModel:
    """Per-crossbar power numbers from Section 5 (ASAP7, 300 MHz, 0.7 V)."""

    #: dynamic power of the 1024x1024 SRAM CIM array while computing
    array_dynamic_power_w: float = 6.6 * MW
    #: static (leakage) power of the array
    array_static_power_w: float = 0.11 * MW
    #: dynamic power of the bitwise AND multipliers (per crossbar, 50% sparsity)
    and_logic_power_w: float = 0.054 * MW
    #: dynamic power of the 5-stage 32-input adder trees (per crossbar)
    adder_tree_power_w: float = 4.94 * MW
    #: dynamic power of the 32-bit shift adders (per crossbar)
    shift_adder_power_w: float = 3.26 * MW
    #: clock frequency of the CIM array and its peripheral logic
    frequency_hz: float = 300 * MHZ

    @property
    def dynamic_power_w(self) -> float:
        """Total dynamic power of one busy crossbar."""
        return (
            self.array_dynamic_power_w
            + self.and_logic_power_w
            + self.adder_tree_power_w
            + self.shift_adder_power_w
        )

    @property
    def energy_per_cycle_j(self) -> float:
        """Dynamic energy of one busy crossbar cycle."""
        return self.dynamic_power_w / self.frequency_hz

    @property
    def static_energy_per_cycle_j(self) -> float:
        return self.array_static_power_w / self.frequency_hz

    def energy_per_mac_j(self, crossbar: CrossbarConfig) -> float:
        """Dynamic energy of a single 8-bit MAC retired in CIM mode."""
        return self.energy_per_cycle_j / crossbar.macs_per_cycle


@dataclass(frozen=True)
class CrossbarAreaModel:
    """Area model used for the row-activation-ratio trade-off (Fig. 11).

    The SRAM bitcell area is fixed; the peripheral compute logic (adder trees
    and shift adders) scales with the number of simultaneously activated rows
    because wider activation needs wider adder trees per MAC array.  When a
    core's area is held constant, more peripheral logic means less area is left
    for SRAM, which shrinks the wafer-level KV-cache capacity.
    """

    #: area of the 1024x1024 SRAM array (CACTI, 7 nm)
    array_area_mm2: float = 0.063
    #: area of the AND multipliers per crossbar
    and_logic_area_mm2: float = 0.0023
    #: area of the adder trees per crossbar at the reference 1/32 ratio
    adder_tree_area_mm2: float = 0.0093
    #: area of the shift adders per crossbar at the reference 1/32 ratio
    shift_adder_area_mm2: float = 0.0022
    #: activation ratio at which the adder-tree/shift-adder areas were measured
    reference_activation_ratio: float = 1.0 / 32.0

    def crossbar_area_mm2(self, ratio: float) -> float:
        """Area of one crossbar when built for a given row-activation ratio."""
        scale = ratio / self.reference_activation_ratio
        compute_area = (self.adder_tree_area_mm2 + self.shift_adder_area_mm2) * scale
        return self.array_area_mm2 + self.and_logic_area_mm2 + compute_area

    def crossbars_per_core(self, core: CoreConfig, ratio: float) -> int:
        """How many crossbars fit a core's area budget at a given ratio.

        The core area budget is taken from the default configuration: the area
        occupied by 32 crossbars at the reference 1/32 ratio.  Buffers, SFU and
        control logic are assumed ratio-independent.
        """
        budget = core.crossbars_per_core * self.crossbar_area_mm2(
            self.reference_activation_ratio
        )
        per_crossbar = self.crossbar_area_mm2(ratio)
        return max(1, int(budget / per_crossbar))


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy table for the whole system and its baselines."""

    crossbar: CrossbarEnergyModel = field(default_factory=CrossbarEnergyModel)

    # -- on-chip SRAM (buffers, KV writes) ------------------------------------
    #: energy per byte for reading a local SRAM buffer (7 nm, ~0.2 pJ/bit)
    sram_read_j_per_byte: float = 0.20 * PJ * BITS_PER_BYTE
    #: energy per byte for writing a local SRAM buffer
    sram_write_j_per_byte: float = 0.25 * PJ * BITS_PER_BYTE

    # -- special function unit -------------------------------------------------
    #: energy per element for softmax/layernorm style SFU operations
    sfu_j_per_element: float = 1.5 * PJ

    # -- network on wafer -------------------------------------------------------
    #: energy per byte per mesh hop (router + link, 7 nm scaled BookSim model)
    noc_hop_j_per_byte: float = 0.8 * PJ * BITS_PER_BYTE
    #: extra energy per byte for crossing a stitched die boundary
    die_crossing_j_per_byte: float = 1.2 * PJ * BITS_PER_BYTE
    #: energy per byte on the intra-core H-tree, per level traversed
    htree_j_per_byte_per_level: float = 0.15 * PJ * BITS_PER_BYTE
    #: energy per byte over the inter-wafer optical Ethernet ports
    optical_j_per_byte: float = 30.0 * PJ * BITS_PER_BYTE

    # -- off-chip memories (baselines only) -------------------------------------
    #: HBM2/HBM2e access energy per byte (~3.9 pJ/bit)
    hbm_j_per_byte: float = 3.9 * PJ * BITS_PER_BYTE
    #: DDR/LPDDR DRAM access energy per byte (~15 pJ/bit)
    dram_j_per_byte: float = 15.0 * PJ * BITS_PER_BYTE
    #: NVLink / inter-package SerDes energy per byte (~10 pJ/bit)
    nvlink_j_per_byte: float = 10.0 * PJ * BITS_PER_BYTE
    #: PCIe energy per byte
    pcie_j_per_byte: float = 20.0 * PJ * BITS_PER_BYTE

    # -- digital compute on baselines -------------------------------------------
    #: GPU/TPU 8-bit MAC energy including datapath overheads (~0.4 pJ/op => 0.8/MAC)
    digital_mac_j: float = 0.8 * PJ
    #: core-level overhead multiplier on crossbar MAC energy (control unit,
    #: clocking, buffer interfaces); calibrated so the CIM core reaches the
    #: paper's 10.98 TOPS/W instead of the crossbar-only ~21 TOPS/W
    cim_core_overhead_factor: float = 1.88
    #: SRAM-but-not-CIM architectures (WSE-2 like) must read each weight byte
    #: from SRAM into the datapath for every use.
    non_cim_weight_read_j_per_byte: float = 0.45 * PJ * BITS_PER_BYTE

    # -- derived helpers ---------------------------------------------------------

    def cim_mac_j(self, crossbar: CrossbarConfig) -> float:
        """Energy per 8-bit MAC performed in-situ inside a crossbar.

        Includes the core-level overhead factor so that a fully busy core
        lands at the paper's reported 10.98 TOPS/W.
        """
        return self.crossbar.energy_per_mac_j(crossbar) * self.cim_core_overhead_factor

    def cim_gemv_energy_j(self, crossbar: CrossbarConfig, macs: float) -> float:
        """Dynamic energy for ``macs`` multiply-accumulates in CIM mode."""
        return macs * self.cim_mac_j(crossbar)

    def noc_transfer_energy_j(
        self, num_bytes: float, hops: float, die_crossings: float = 0.0
    ) -> float:
        """Energy to move ``num_bytes`` across ``hops`` mesh hops."""
        energy = num_bytes * hops * self.noc_hop_j_per_byte
        energy += num_bytes * die_crossings * self.die_crossing_j_per_byte
        return energy

    def htree_energy_j(self, num_bytes: float, levels: float) -> float:
        """Energy to move ``num_bytes`` up ``levels`` levels of the H-tree."""
        return num_bytes * levels * self.htree_j_per_byte_per_level


DEFAULT_ENERGY_MODEL = EnergyModel()
DEFAULT_AREA_MODEL = CrossbarAreaModel()
