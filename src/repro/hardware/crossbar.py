"""Behavioural model of a single digital SRAM CIM crossbar (Fig. 10).

A crossbar operates in one of two modes:

* **FFN mode** -- the whole array persistently stores static weights and
  executes GEMV against them.
* **Attention mode** -- the array is partitioned into logical blocks
  (128 x 1024 with default parameters) that are dynamically allocated to
  sequences by the distributed KV-cache manager.  Row/column-valid registers
  mask out unallocated cells during computation, and the array cannot compute
  and be written in the same cycle.

The model tracks block occupancy, computes GEMV latency/energy for partial
activations (only the valid rows need to be covered), and exposes the area
trade-off behind the Fig. 11 row-activation-ratio sweep.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import CapacityError, KVCacheError
from .config import CrossbarConfig
from .energy import CrossbarAreaModel, CrossbarEnergyModel, EnergyModel


class CrossbarMode(enum.Enum):
    """Operating mode of a crossbar."""

    FFN = "ffn"
    ATTENTION = "attention"


@dataclass
class GemvCost:
    """Latency and dynamic energy of one GEMV executed on a crossbar."""

    cycles: int
    latency_s: float
    energy_j: float
    macs: float


class Crossbar:
    """A single crossbar with dynamic logical-block management."""

    def __init__(
        self,
        config: CrossbarConfig | None = None,
        energy: EnergyModel | None = None,
        mode: CrossbarMode = CrossbarMode.FFN,
    ) -> None:
        self.config = config or CrossbarConfig()
        self.energy = energy or EnergyModel()
        self.mode = mode
        # Per logical block: number of occupied rows (attention mode only).
        self._block_rows_used: list[int] = [0] * self.config.attention_logical_blocks
        # Owner tag per logical block (sequence id or None).
        self._block_owner: list[int | None] = [None] * self.config.attention_logical_blocks
        # FFN mode: bytes of static weights resident.
        self._weight_bytes_used: int = 0

    # ------------------------------------------------------------------ state

    @property
    def logical_block_rows(self) -> int:
        """Rows per logical block in attention mode."""
        return self.config.rows // self.config.attention_logical_blocks

    @property
    def free_blocks(self) -> int:
        """Number of completely free logical blocks."""
        return sum(1 for owner in self._block_owner if owner is None)

    @property
    def weight_bytes_used(self) -> int:
        return self._weight_bytes_used

    @property
    def weight_bytes_free(self) -> int:
        return self.config.weight_capacity_bytes - self._weight_bytes_used

    def block_owner(self, block_index: int) -> int | None:
        return self._block_owner[block_index]

    def block_rows_used(self, block_index: int) -> int:
        return self._block_rows_used[block_index]

    # ------------------------------------------------------------- FFN weights

    def load_weights(self, num_bytes: int) -> None:
        """Load ``num_bytes`` of static weights (FFN mode)."""
        if self.mode is not CrossbarMode.FFN:
            raise KVCacheError("cannot load static weights into an attention-mode crossbar")
        if num_bytes < 0:
            raise ValueError("weight bytes must be non-negative")
        if self._weight_bytes_used + num_bytes > self.config.weight_capacity_bytes:
            raise CapacityError(
                f"crossbar weight capacity exceeded: "
                f"{self._weight_bytes_used + num_bytes} > {self.config.weight_capacity_bytes}"
            )
        self._weight_bytes_used += num_bytes

    def reset_weights(self) -> None:
        self._weight_bytes_used = 0

    # ------------------------------------------------------ attention KV blocks

    def allocate_block(self, owner: int) -> int:
        """Allocate one free logical block to ``owner``; return its index."""
        if self.mode is not CrossbarMode.ATTENTION:
            raise KVCacheError("logical blocks only exist in attention mode")
        for index, existing in enumerate(self._block_owner):
            if existing is None:
                self._block_owner[index] = owner
                self._block_rows_used[index] = 0
                return index
        raise CapacityError("no free logical blocks in crossbar")

    def release_block(self, block_index: int) -> None:
        """Free a previously allocated logical block."""
        if self._block_owner[block_index] is None:
            raise KVCacheError(f"block {block_index} is not allocated")
        self._block_owner[block_index] = None
        self._block_rows_used[block_index] = 0

    def release_owner(self, owner: int) -> int:
        """Free every block owned by ``owner``; return how many were freed."""
        freed = 0
        for index, existing in enumerate(self._block_owner):
            if existing == owner:
                self.release_block(index)
                freed += 1
        return freed

    def append_rows(self, block_index: int, rows: int) -> int:
        """Append ``rows`` KV entries to a block; return rows actually stored."""
        if self._block_owner[block_index] is None:
            raise KVCacheError(f"block {block_index} is not allocated")
        free = self.logical_block_rows - self._block_rows_used[block_index]
        stored = min(free, rows)
        self._block_rows_used[block_index] += stored
        return stored

    def block_free_rows(self, block_index: int) -> int:
        if self._block_owner[block_index] is None:
            return self.logical_block_rows
        return self.logical_block_rows - self._block_rows_used[block_index]

    def reset_blocks(self) -> None:
        self._block_rows_used = [0] * self.config.attention_logical_blocks
        self._block_owner = [None] * self.config.attention_logical_blocks

    # ------------------------------------------------------------------ compute

    def gemv_cost(self, active_rows: int | None = None, active_cols: int | None = None) -> GemvCost:
        """Latency/energy for one GEMV over ``active_rows`` x ``active_cols``.

        ``active_rows`` defaults to the full array; masked rows (invalid KV
        entries) are skipped by the row-valid registers, so only the occupied
        row groups consume cycles.
        """
        cfg = self.config
        rows = cfg.rows if active_rows is None else max(0, min(active_rows, cfg.rows))
        cols = cfg.weight_columns if active_cols is None else max(
            0, min(active_cols, cfg.weight_columns)
        )
        if rows == 0 or cols == 0:
            return GemvCost(cycles=0, latency_s=0.0, energy_j=0.0, macs=0.0)
        row_groups = math.ceil(rows / cfg.rows_active_per_cycle)
        cycles = cfg.activation_bits * row_groups
        latency = cycles * cfg.cycle_time_s
        macs = float(rows * cols)
        # Energy scales with the busy fraction of the array.
        busy_fraction = macs / float(cfg.rows * cfg.weight_columns)
        energy = cycles * self.energy.crossbar.energy_per_cycle_j * busy_fraction
        return GemvCost(cycles=cycles, latency_s=latency, energy_j=energy, macs=macs)

    def write_cost(self, num_bytes: int) -> GemvCost:
        """Latency/energy for writing ``num_bytes`` into the SRAM array.

        Writes use the normal SRAM port (256 bits per cycle through the buffer
        interface) and cannot overlap with computation on the same crossbar.
        """
        bytes_per_cycle = 32  # 256-bit port
        cycles = math.ceil(num_bytes / bytes_per_cycle)
        latency = cycles * self.config.cycle_time_s
        energy = num_bytes * self.energy.sram_write_j_per_byte
        return GemvCost(cycles=cycles, latency_s=latency, energy_j=energy, macs=0.0)


def effective_sram_ratio(
    ratio: float,
    area_model: CrossbarAreaModel | None = None,
) -> float:
    """SRAM capacity retained at a given row-activation ratio, relative to 1/32.

    Used by the Fig. 11 sweep: larger activation ratios need proportionally
    larger adder trees, which crowd out SRAM within a fixed core area.
    """
    model = area_model or CrossbarAreaModel()
    reference = model.crossbar_area_mm2(model.reference_activation_ratio)
    actual = model.crossbar_area_mm2(ratio)
    return reference / actual


def throughput_vs_activation_ratio(
    ratios: list[float],
    kv_capacity_weight: float = 1.0,
    compute_weight: float = 1.0,
    config: CrossbarConfig | None = None,
    area_model: CrossbarAreaModel | None = None,
) -> dict[float, float]:
    """Relative system throughput as a function of row-activation ratio.

    Two regimes bound throughput (Fig. 11):

    * **compute bound** -- throughput grows with the number of rows activated
      per cycle (more MACs per cycle);
    * **SRAM capacity bound** -- throughput is limited by how many sequences
      the remaining KV capacity can hold concurrently, which shrinks as the
      compute periphery grows.

    The returned values are normalized to the best ratio.
    """
    base = config or CrossbarConfig()
    results: dict[float, float] = {}
    for ratio in ratios:
        candidate = CrossbarConfig(
            rows=base.rows,
            columns=base.columns,
            weight_bits=base.weight_bits,
            activation_bits=base.activation_bits,
            output_bits=base.output_bits,
            row_activation_ratio=ratio,
            mac_arrays=base.mac_arrays,
            frequency_hz=base.frequency_hz,
            attention_logical_blocks=base.attention_logical_blocks,
        )
        compute = compute_weight * candidate.macs_per_cycle / base.macs_per_cycle
        capacity = kv_capacity_weight * effective_sram_ratio(ratio, area_model)
        results[ratio] = min(compute, capacity)
    peak = max(results.values()) if results else 1.0
    return {ratio: value / peak for ratio, value in results.items()}
